#ifndef GMR_BASELINES_ARIMAX_H_
#define GMR_BASELINES_ARIMAX_H_

#include <cstddef>
#include <vector>

namespace gmr::baselines {

/// ARMAX(p, q) time-series baseline with exogenous regressors
/// (paper Section IV-B2; substitute for pmdarima's AutoARIMA — see
/// DESIGN.md §4). Orders are selected by AIC over a grid, coefficients by
/// Hannan-Rissanen conditional least squares; evaluation is recursive
/// one-step-ahead forecasting, matching the paper's setup of predicting the
/// next value from currently observed variables.
struct ArimaxConfig {
  int max_p = 5;  ///< AR order grid: 1..max_p.
  int max_q = 2;  ///< MA order grid: 0..max_q.
  /// Long-AR order of the Hannan-Rissanen first stage.
  int long_ar_order = 10;
};

struct ArimaxResult {
  int p = 0;
  int q = 0;
  double aic = 0.0;
  /// [intercept, phi_1..phi_p, theta_1..theta_q, beta_1..beta_k].
  std::vector<double> coefficients;
  double train_rmse = 0.0;
  double train_mae = 0.0;
  double test_rmse = 0.0;
  double test_mae = 0.0;
  /// One-step-ahead test predictions, parallel to the test period.
  std::vector<double> test_predictions;
};

/// Fits on y[0..train_end) with exogenous series `exogenous[k][t]` (all of
/// length y.size()) and evaluates on the remainder. Requires train_end to
/// leave enough lags (> long_ar_order + max_p + max_q).
ArimaxResult FitArimax(const std::vector<double>& y,
                       const std::vector<std::vector<double>>& exogenous,
                       std::size_t train_end, const ArimaxConfig& config);

}  // namespace gmr::baselines

#endif  // GMR_BASELINES_ARIMAX_H_
