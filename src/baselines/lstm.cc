#include "baselines/lstm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"

namespace gmr::baselines {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// A flat parameter tensor with Adam state.
struct Tensor {
  std::vector<double> value;
  std::vector<double> grad;
  std::vector<double> m;
  std::vector<double> v;

  void Init(std::size_t n, double scale, Rng& rng) {
    value.resize(n);
    for (double& w : value) w = rng.Gaussian(0.0, scale);
    grad.assign(n, 0.0);
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }
};

/// One LSTM layer: z = W x + U h + b with gate order (i, f, g, o).
struct LstmLayer {
  std::size_t input = 0;
  std::size_t hidden = 0;
  Tensor w;  // [4H x I]
  Tensor u;  // [4H x H]
  Tensor b;  // [4H]

  void Init(std::size_t in, std::size_t hid, Rng& rng) {
    input = in;
    hidden = hid;
    const double scale = 1.0 / std::sqrt(static_cast<double>(in + hid));
    w.Init(4 * hid * in, scale, rng);
    u.Init(4 * hid * hid, scale, rng);
    b.Init(4 * hid, 0.0, rng);
    // Forget-gate bias starts positive (standard practice).
    for (std::size_t j = hid; j < 2 * hid; ++j) b.value[j] = 1.0;
  }
};

/// Per-timestep forward cache for BPTT.
struct StepCache {
  std::vector<double> x;       // layer input
  std::vector<double> i, f, g, o;
  std::vector<double> c, tanh_c;
  std::vector<double> h;
  std::vector<double> c_prev, h_prev;
};

struct Network {
  std::vector<LstmLayer> layers;
  Tensor head1_w;  // [H x H]
  Tensor head1_b;  // [H]
  Tensor head2_w;  // [H]
  Tensor head2_b;  // [1]
  std::size_t hidden = 0;

  std::vector<Tensor*> AllTensors() {
    std::vector<Tensor*> all;
    for (LstmLayer& layer : layers) {
      all.push_back(&layer.w);
      all.push_back(&layer.u);
      all.push_back(&layer.b);
    }
    all.push_back(&head1_w);
    all.push_back(&head1_b);
    all.push_back(&head2_w);
    all.push_back(&head2_b);
    return all;
  }
};

/// Forward pass of one layer for one timestep.
void LayerForward(const LstmLayer& layer, const std::vector<double>& x,
                  const std::vector<double>& h_prev,
                  const std::vector<double>& c_prev, StepCache* cache) {
  const std::size_t hid = layer.hidden;
  std::vector<double> z(4 * hid);
  for (std::size_t j = 0; j < 4 * hid; ++j) {
    double sum = layer.b.value[j];
    const double* wr = &layer.w.value[j * layer.input];
    for (std::size_t k = 0; k < layer.input; ++k) sum += wr[k] * x[k];
    const double* ur = &layer.u.value[j * hid];
    for (std::size_t k = 0; k < hid; ++k) sum += ur[k] * h_prev[k];
    z[j] = sum;
  }
  cache->x = x;
  cache->h_prev = h_prev;
  cache->c_prev = c_prev;
  cache->i.resize(hid);
  cache->f.resize(hid);
  cache->g.resize(hid);
  cache->o.resize(hid);
  cache->c.resize(hid);
  cache->tanh_c.resize(hid);
  cache->h.resize(hid);
  for (std::size_t j = 0; j < hid; ++j) {
    cache->i[j] = Sigmoid(z[j]);
    cache->f[j] = Sigmoid(z[hid + j]);
    cache->g[j] = std::tanh(z[2 * hid + j]);
    cache->o[j] = Sigmoid(z[3 * hid + j]);
    cache->c[j] = cache->f[j] * c_prev[j] + cache->i[j] * cache->g[j];
    cache->tanh_c[j] = std::tanh(cache->c[j]);
    cache->h[j] = cache->o[j] * cache->tanh_c[j];
  }
}

/// Backward pass of one layer for one timestep. dh/dc are gradients flowing
/// into h(t)/c(t); outputs gradients for h(t-1), c(t-1) and the layer input.
void LayerBackward(LstmLayer& layer, const StepCache& cache,
                   const std::vector<double>& dh, const std::vector<double>& dc_in,
                   std::vector<double>* dh_prev, std::vector<double>* dc_prev,
                   std::vector<double>* dx) {
  const std::size_t hid = layer.hidden;
  std::vector<double> dz(4 * hid);
  dc_prev->assign(hid, 0.0);
  for (std::size_t j = 0; j < hid; ++j) {
    const double do_ = dh[j] * cache.tanh_c[j];
    double dc = dc_in[j] + dh[j] * cache.o[j] *
                               (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
    const double di = dc * cache.g[j];
    const double df = dc * cache.c_prev[j];
    const double dg = dc * cache.i[j];
    (*dc_prev)[j] = dc * cache.f[j];
    dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
    dz[hid + j] = df * cache.f[j] * (1.0 - cache.f[j]);
    dz[2 * hid + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
    dz[3 * hid + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
  }
  dh_prev->assign(hid, 0.0);
  dx->assign(layer.input, 0.0);
  for (std::size_t j = 0; j < 4 * hid; ++j) {
    const double d = dz[j];
    if (d == 0.0) continue;
    double* wg = &layer.w.grad[j * layer.input];
    const double* wv = &layer.w.value[j * layer.input];
    for (std::size_t k = 0; k < layer.input; ++k) {
      wg[k] += d * cache.x[k];
      (*dx)[k] += d * wv[k];
    }
    double* ug = &layer.u.grad[j * hid];
    const double* uv = &layer.u.value[j * hid];
    for (std::size_t k = 0; k < hid; ++k) {
      ug[k] += d * cache.h_prev[k];
      (*dh_prev)[k] += d * uv[k];
    }
    layer.b.grad[j] += d;
  }
}

/// Head forward: y = w2 . relu(W1 h + b1) + b2.
double HeadForward(const Network& net, const std::vector<double>& h,
                   std::vector<double>* hidden_act) {
  const std::size_t hid = net.hidden;
  hidden_act->resize(hid);
  for (std::size_t j = 0; j < hid; ++j) {
    double sum = net.head1_b.value[j];
    const double* wr = &net.head1_w.value[j * hid];
    for (std::size_t k = 0; k < hid; ++k) sum += wr[k] * h[k];
    (*hidden_act)[j] = sum > 0.0 ? sum : 0.0;  // ReLU
  }
  double y = net.head2_b.value[0];
  for (std::size_t j = 0; j < hid; ++j) {
    y += net.head2_w.value[j] * (*hidden_act)[j];
  }
  return y;
}

/// Head backward: returns gradient wrt h.
std::vector<double> HeadBackward(Network& net, const std::vector<double>& h,
                                 const std::vector<double>& hidden_act,
                                 double dy) {
  const std::size_t hid = net.hidden;
  std::vector<double> dhidden(hid);
  for (std::size_t j = 0; j < hid; ++j) {
    net.head2_w.grad[j] += dy * hidden_act[j];
    dhidden[j] = hidden_act[j] > 0.0 ? dy * net.head2_w.value[j] : 0.0;
  }
  net.head2_b.grad[0] += dy;
  std::vector<double> dh(hid, 0.0);
  for (std::size_t j = 0; j < hid; ++j) {
    const double d = dhidden[j];
    if (d == 0.0) continue;
    double* wg = &net.head1_w.grad[j * hid];
    const double* wv = &net.head1_w.value[j * hid];
    for (std::size_t k = 0; k < hid; ++k) {
      wg[k] += d * h[k];
      dh[k] += d * wv[k];
    }
    net.head1_b.grad[j] += d;
  }
  return dh;
}

void AdamStep(Network& net, const LstmConfig& config, std::size_t step) {
  const double bias1 =
      1.0 - std::pow(config.beta1, static_cast<double>(step));
  const double bias2 =
      1.0 - std::pow(config.beta2, static_cast<double>(step));
  for (Tensor* tensor : net.AllTensors()) {
    for (std::size_t i = 0; i < tensor->value.size(); ++i) {
      // Decoupled weight decay, applied with the learning rate.
      const double g =
          tensor->grad[i] + config.weight_decay * tensor->value[i];
      tensor->m[i] = config.beta1 * tensor->m[i] + (1.0 - config.beta1) * g;
      tensor->v[i] =
          config.beta2 * tensor->v[i] + (1.0 - config.beta2) * g * g;
      const double mhat = tensor->m[i] / bias1;
      const double vhat = tensor->v[i] / bias2;
      tensor->value[i] -=
          config.learning_rate * mhat / (std::sqrt(vhat) + 1e-8);
      tensor->grad[i] = 0.0;
    }
  }
}

/// Stateful full-sequence prediction (standardized domain).
std::vector<double> PredictSequence(
    const Network& net, const std::vector<std::vector<double>>& inputs) {
  const std::size_t num_layers = net.layers.size();
  const std::size_t hid = net.hidden;
  std::vector<std::vector<double>> h(num_layers,
                                     std::vector<double>(hid, 0.0));
  std::vector<std::vector<double>> c(num_layers,
                                     std::vector<double>(hid, 0.0));
  std::vector<double> predictions(inputs.size());
  StepCache cache;
  std::vector<double> head_hidden;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    std::vector<double> x = inputs[t];
    for (std::size_t l = 0; l < num_layers; ++l) {
      LayerForward(net.layers[l], x, h[l], c[l], &cache);
      h[l] = cache.h;
      c[l] = cache.c;
      x = cache.h;
    }
    predictions[t] = HeadForward(net, x, &head_hidden);
  }
  return predictions;
}

}  // namespace

LstmResult TrainAndEvaluateLstm(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& y, std::size_t train_end,
    const LstmConfig& config) {
  GMR_CHECK_GT(features.size(), 0u);
  GMR_CHECK_GT(train_end, static_cast<std::size_t>(config.window + 2));
  GMR_CHECK_LT(train_end, y.size());
  const std::size_t num_features = features.size();
  const std::size_t num_days = y.size();

  // Standardize features and target on training statistics.
  std::vector<Standardizer> feature_standardizers(num_features);
  std::vector<std::vector<double>> inputs(num_days,
                                          std::vector<double>(num_features));
  for (std::size_t k = 0; k < num_features; ++k) {
    const std::vector<double> train_slice(
        features[k].begin(),
        features[k].begin() + static_cast<std::ptrdiff_t>(train_end));
    feature_standardizers[k] = FitStandardizer(train_slice);
    for (std::size_t t = 0; t < num_days; ++t) {
      inputs[t][k] = feature_standardizers[k].Transform(features[k][t]);
    }
  }
  const std::vector<double> y_train_slice(
      y.begin(), y.begin() + static_cast<std::ptrdiff_t>(train_end));
  const Standardizer y_standardizer = FitStandardizer(y_train_slice);

  // Targets: next-day biomass (standardized). The last usable input day is
  // num_days - 2.
  std::vector<double> targets(num_days, 0.0);
  for (std::size_t t = 0; t + 1 < num_days; ++t) {
    targets[t] = y_standardizer.Transform(y[t + 1]);
  }

  Rng rng(config.seed);
  Network net;
  std::size_t hidden = config.hidden_size > 0
                           ? static_cast<std::size_t>(config.hidden_size)
                           : num_features;
  hidden = std::min(hidden, static_cast<std::size_t>(config.hidden_cap));
  net.hidden = hidden;
  net.layers.resize(static_cast<std::size_t>(config.num_layers));
  for (std::size_t l = 0; l < net.layers.size(); ++l) {
    net.layers[l].Init(l == 0 ? num_features : hidden, hidden, rng);
  }
  const double head_scale = 1.0 / std::sqrt(static_cast<double>(hidden));
  net.head1_w.Init(hidden * hidden, head_scale, rng);
  net.head1_b.Init(hidden, 0.0, rng);
  net.head2_w.Init(hidden, head_scale, rng);
  net.head2_b.Init(1, 0.0, rng);

  // Evaluation helper (unstandardized RMSE/MAE, one-step-ahead).
  auto evaluate = [&](double* train_rmse, double* train_mae,
                      double* test_rmse, double* test_mae) {
    const std::vector<double> z = PredictSequence(net, inputs);
    std::vector<double> train_pred, train_obs, test_pred, test_obs;
    for (std::size_t t = 0; t + 1 < num_days; ++t) {
      const double pred = y_standardizer.Inverse(z[t]);
      const double obs = y[t + 1];
      if (t + 1 < train_end) {
        train_pred.push_back(pred);
        train_obs.push_back(obs);
      } else {
        test_pred.push_back(pred);
        test_obs.push_back(obs);
      }
    }
    *train_rmse = Rmse(train_pred, train_obs);
    *train_mae = Mae(train_pred, train_obs);
    *test_rmse = Rmse(test_pred, test_obs);
    *test_mae = Mae(test_pred, test_obs);
  };

  LstmResult result;
  result.best_test_rmse = 1e300;
  const std::size_t window = static_cast<std::size_t>(config.window);
  const std::size_t num_layers = net.layers.size();
  std::size_t adam_step = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Truncated BPTT over consecutive windows; hidden state carries across
    // windows within the epoch, gradients do not.
    std::vector<std::vector<double>> h(num_layers,
                                       std::vector<double>(hidden, 0.0));
    std::vector<std::vector<double>> c(num_layers,
                                       std::vector<double>(hidden, 0.0));
    for (std::size_t begin = 0; begin + 1 < train_end; begin += window) {
      const std::size_t end = std::min(begin + window, train_end - 1);
      const std::size_t len = end - begin;
      if (len == 0) break;
      // Forward with caches.
      std::vector<std::vector<StepCache>> caches(
          num_layers, std::vector<StepCache>(len));
      std::vector<std::vector<double>> head_hidden(len);
      std::vector<double> predictions(len);
      for (std::size_t s = 0; s < len; ++s) {
        std::vector<double> x = inputs[begin + s];
        for (std::size_t l = 0; l < num_layers; ++l) {
          LayerForward(net.layers[l], x, h[l], c[l], &caches[l][s]);
          h[l] = caches[l][s].h;
          c[l] = caches[l][s].c;
          x = caches[l][s].h;
        }
        predictions[s] = HeadForward(net, x, &head_hidden[s]);
      }
      // Backward through the window.
      std::vector<std::vector<double>> dh(num_layers,
                                          std::vector<double>(hidden, 0.0));
      std::vector<std::vector<double>> dc(num_layers,
                                          std::vector<double>(hidden, 0.0));
      for (std::size_t s = len; s > 0; --s) {
        const std::size_t idx = s - 1;
        const double dy = 2.0 *
                          (predictions[idx] - targets[begin + idx]) /
                          static_cast<double>(len);
        std::vector<double> dtop = HeadBackward(
            net, caches[num_layers - 1][idx].h, head_hidden[idx], dy);
        for (std::size_t l = num_layers; l > 0; --l) {
          const std::size_t layer = l - 1;
          std::vector<double> dh_total = dh[layer];
          for (std::size_t j = 0; j < hidden; ++j) dh_total[j] += dtop[j];
          std::vector<double> dh_prev, dc_prev, dx;
          LayerBackward(net.layers[layer], caches[layer][idx], dh_total,
                        dc[layer], &dh_prev, &dc_prev, &dx);
          dh[layer] = std::move(dh_prev);
          dc[layer] = std::move(dc_prev);
          dtop = std::move(dx);  // Flows into the layer below as dh of its h.
        }
      }
      // Gradient clipping for stability.
      for (Tensor* tensor : net.AllTensors()) {
        for (double& g : tensor->grad) {
          g = std::min(std::max(g, -5.0), 5.0);
        }
      }
      AdamStep(net, config, ++adam_step);
    }

    double train_rmse, train_mae, test_rmse, test_mae;
    evaluate(&train_rmse, &train_mae, &test_rmse, &test_mae);
    result.curve.emplace_back(train_rmse, test_rmse);
    if (test_rmse < result.best_test_rmse) {
      result.best_test_rmse = test_rmse;
      result.best_test_mae = test_mae;
    }
    result.train_rmse = train_rmse;
    result.train_mae = train_mae;
    result.test_rmse = test_rmse;
    result.test_mae = test_mae;
  }
  result.final_train_rmse = result.train_rmse;
  return result;
}

}  // namespace gmr::baselines
