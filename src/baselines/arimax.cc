#include "baselines/arimax.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/matrix.h"
#include "common/metrics.h"
#include "common/stats.h"

namespace gmr::baselines {
namespace {

/// Fits one ARMAX(p, q) by conditional least squares given residual
/// estimates from the Hannan-Rissanen first stage. Returns false on a
/// singular regression.
bool FitOrder(const std::vector<double>& y,
              const std::vector<std::vector<double>>& exogenous,
              const std::vector<double>& residuals, std::size_t train_end,
              int p, int q, std::vector<double>* coefficients,
              double* aic) {
  const std::size_t k = exogenous.size();
  const std::size_t start = static_cast<std::size_t>(std::max(p, q));
  GMR_CHECK_LT(start, train_end);
  const std::size_t rows = train_end - start;
  const std::size_t cols =
      1 + static_cast<std::size_t>(p) + static_cast<std::size_t>(q) + k;

  Matrix x(rows, cols);
  std::vector<double> target(rows);
  for (std::size_t t = start; t < train_end; ++t) {
    const std::size_t r = t - start;
    std::size_t c = 0;
    x.At(r, c++) = 1.0;
    for (int i = 1; i <= p; ++i) {
      x.At(r, c++) = y[t - static_cast<std::size_t>(i)];
    }
    for (int j = 1; j <= q; ++j) {
      x.At(r, c++) = residuals[t - static_cast<std::size_t>(j)];
    }
    for (std::size_t e = 0; e < k; ++e) x.At(r, c++) = exogenous[e][t];
    target[r] = y[t];
  }
  if (!LeastSquares(x, target, coefficients)) return false;

  const std::vector<double> fitted = x.MultiplyVector(*coefficients);
  const double ll = GaussianLogLikelihood(fitted, target);
  *aic = Aic(ll, cols + 1);  // +1 for the residual variance.
  return true;
}

/// One-step-ahead prediction at time t given observed history and running
/// residuals.
double Predict(const std::vector<double>& y,
               const std::vector<std::vector<double>>& exogenous,
               const std::vector<double>& residuals,
               const std::vector<double>& coefficients, int p, int q,
               std::size_t t) {
  std::size_t c = 0;
  double pred = coefficients[c++];
  for (int i = 1; i <= p; ++i) {
    pred += coefficients[c++] * y[t - static_cast<std::size_t>(i)];
  }
  for (int j = 1; j <= q; ++j) {
    pred += coefficients[c++] * residuals[t - static_cast<std::size_t>(j)];
  }
  for (const auto& series : exogenous) pred += coefficients[c++] * series[t];
  return pred;
}

}  // namespace

ArimaxResult FitArimax(const std::vector<double>& y,
                       const std::vector<std::vector<double>>& raw_exogenous,
                       std::size_t train_end, const ArimaxConfig& config) {
  GMR_CHECK_GT(train_end, static_cast<std::size_t>(config.long_ar_order +
                                                   config.max_p +
                                                   config.max_q + 2));
  GMR_CHECK_LT(train_end, y.size());
  for (const auto& series : raw_exogenous) {
    GMR_CHECK_EQ(series.size(), y.size());
  }

  // Standardize the regressors on training statistics: exogenous series
  // span orders of magnitude (conductivity in the hundreds, phosphorus in
  // thousandths), and an unstandardized wide regression (the -ALL
  // variants) is numerically fragile.
  std::vector<std::vector<double>> exogenous;
  exogenous.reserve(raw_exogenous.size());
  for (const auto& series : raw_exogenous) {
    const std::vector<double> train_slice(
        series.begin(), series.begin() + static_cast<std::ptrdiff_t>(train_end));
    const Standardizer standardizer = FitStandardizer(train_slice);
    exogenous.push_back(StandardizeSeries(standardizer, series));
  }

  // Hannan-Rissanen stage 1: long-AR (+ exogenous) regression provides
  // residual estimates to serve as lagged-innovation regressors.
  std::vector<double> residuals(y.size(), 0.0);
  {
    const int m = config.long_ar_order;
    const std::size_t start = static_cast<std::size_t>(m);
    const std::size_t rows = train_end - start;
    const std::size_t cols = 1 + static_cast<std::size_t>(m) +
                             exogenous.size();
    Matrix x(rows, cols);
    std::vector<double> target(rows);
    for (std::size_t t = start; t < train_end; ++t) {
      const std::size_t r = t - start;
      std::size_t c = 0;
      x.At(r, c++) = 1.0;
      for (int i = 1; i <= m; ++i) {
        x.At(r, c++) = y[t - static_cast<std::size_t>(i)];
      }
      for (const auto& series : exogenous) x.At(r, c++) = series[t];
      target[r] = y[t];
    }
    std::vector<double> beta;
    GMR_CHECK_MSG(LeastSquares(x, target, &beta),
                  "long-AR stage is singular");
    const std::vector<double> fitted = x.MultiplyVector(beta);
    for (std::size_t t = start; t < train_end; ++t) {
      residuals[t] = y[t] - fitted[t - start];
    }
  }

  // Stage 2: AIC grid search over (p, q).
  ArimaxResult best;
  best.aic = std::numeric_limits<double>::infinity();
  for (int p = 1; p <= config.max_p; ++p) {
    for (int q = 0; q <= config.max_q; ++q) {
      std::vector<double> coefficients;
      double aic = 0.0;
      if (!FitOrder(y, exogenous, residuals, train_end, p, q, &coefficients,
                    &aic)) {
        continue;
      }
      if (aic < best.aic) {
        best.aic = aic;
        best.p = p;
        best.q = q;
        best.coefficients = std::move(coefficients);
      }
    }
  }
  GMR_CHECK_MSG(!best.coefficients.empty(), "no ARMAX order could be fit");

  // Training accuracy: one-step-ahead over the usable training range.
  const std::size_t start = static_cast<std::size_t>(
      std::max({best.p, best.q, config.long_ar_order}));
  std::vector<double> train_pred;
  std::vector<double> train_obs;
  for (std::size_t t = start; t < train_end; ++t) {
    train_pred.push_back(Predict(y, exogenous, residuals, best.coefficients,
                                 best.p, best.q, t));
    train_obs.push_back(y[t]);
  }
  best.train_rmse = Rmse(train_pred, train_obs);
  best.train_mae = Mae(train_pred, train_obs);

  // Test: recursive one-step-ahead with running residual updates (the
  // observation becomes available after each prediction).
  std::vector<double> test_obs;
  for (std::size_t t = train_end; t < y.size(); ++t) {
    const double pred = Predict(y, exogenous, residuals, best.coefficients,
                                best.p, best.q, t);
    residuals[t] = y[t] - pred;
    best.test_predictions.push_back(pred);
    test_obs.push_back(y[t]);
  }
  best.test_rmse = Rmse(best.test_predictions, test_obs);
  best.test_mae = Mae(best.test_predictions, test_obs);
  return best;
}

}  // namespace gmr::baselines
