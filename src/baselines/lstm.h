#ifndef GMR_BASELINES_LSTM_H_
#define GMR_BASELINES_LSTM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gmr::baselines {

/// From-scratch LSTM forecaster reproducing the paper's RNN baseline
/// (Appendix B; substitute for the PyTorch implementation — see DESIGN.md
/// §4): a two-layer LSTM whose hidden size equals the number of input
/// features, a two-layer dense head, Adam (alpha 0.01, beta1 0.9,
/// beta2 0.999, weight decay 5e-4), standardized inputs, MSE loss. It
/// predicts the next-day phytoplankton biomass from the variables observed
/// at the current day.
struct LstmConfig {
  int num_layers = 2;
  /// Hidden size; 0 = number of input features (the paper's choice),
  /// clamped to hidden_cap for tractability on wide inputs.
  int hidden_size = 0;
  int hidden_cap = 64;
  int epochs = 150;
  /// Truncated-BPTT window length (days).
  int window = 30;
  double learning_rate = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double weight_decay = 5e-4;
  std::uint64_t seed = 1;
};

struct LstmResult {
  /// Metrics of the final trained model (one-step-ahead).
  double train_rmse = 0.0;
  double train_mae = 0.0;
  double test_rmse = 0.0;
  double test_mae = 0.0;
  /// Best test RMSE over epochs and the final-epoch value — their gap is
  /// the overfitting the paper reports (test RMSE rising as training
  /// continues).
  double best_test_rmse = 0.0;
  double best_test_mae = 0.0;
  double final_train_rmse = 0.0;
  /// Per-epoch (train RMSE, test RMSE) learning curve.
  std::vector<std::pair<double, double>> curve;
};

/// Trains on features[k][t] (k series of length y.size()) against next-day
/// y, splitting at train_end, and evaluates one-step-ahead.
LstmResult TrainAndEvaluateLstm(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& y, std::size_t train_end,
    const LstmConfig& config);

}  // namespace gmr::baselines

#endif  // GMR_BASELINES_LSTM_H_
