#ifndef GMR_CKPT_CHECKPOINT_H_
#define GMR_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "common/retry.h"
#include "obs/telemetry.h"

/// The driver-facing checkpoint service (DESIGN.md §4i).
///
/// A Checkpointer is handed to a run through `obs::RunContext::checkpointer`.
/// Drivers call `ResumeFor(driver, fingerprint)` once before initialization
/// (restoring state from the returned snapshot when non-null) and
/// `Save(snapshot)` at their batch barrier whenever `ShouldSnapshot(step)`.
///
/// Failure policy — checkpointing must never take a run down:
///   - a failed Save (disk fault, after bounded retry/backoff) emits a
///     `ckpt` operational event and returns false; the run continues and
///     the next cadence point tries again;
///   - a corrupt/truncated newest snapshot falls back to the previous valid
///     one (SnapshotStore walks the chain), with the skip count reported;
///   - when every snapshot is corrupt, or the fingerprint does not match
///     (different seed/config reusing a stale directory), ResumeFor returns
///     null and the driver starts fresh.
///
/// Operational events go only to the Checkpointer's own sink, never to the
/// run's trace sink: the run trace must stay byte-identical between
/// interrupted and uninterrupted runs, and resume/fallback events by
/// definition only occur in one of them.
namespace gmr::ckpt {

struct CheckpointOptions {
  /// Snapshot directory (created if missing).
  std::string dir;
  /// Snapshot every N steps (generations / iterations). 0 behaves as 1.
  std::uint64_t every_steps = 1;
  /// Snapshots retained on disk (older ones pruned).
  int retain = 3;
  /// Transient-I/O retry policy for snapshot and manifest writes.
  RetryOptions retry;
};

class Checkpointer {
 public:
  /// `operational_sink` receives ckpt lifecycle events (save/resume/
  /// fallback/error); null means no reporting. Not owned.
  explicit Checkpointer(CheckpointOptions options,
                        obs::TelemetrySink* operational_sink = nullptr);

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// False when the snapshot directory could not be created; Save becomes
  /// a no-op that reports one error event.
  bool ok() const { return store_.ok(); }

  /// Loads (once, cached) the newest snapshot that validates, walking the
  /// chain past corrupt entries. Null when the store is empty or nothing
  /// validates. Called by the run owner before constructing a resumed
  /// trace sink, and internally by ResumeFor.
  const Snapshot* Load();

  /// Trace continuation offsets recorded in the loaded snapshot (0 when
  /// there is no snapshot or it carries no trace section). Feed these into
  /// JsonlTraceOptions::resume_bytes / resume_sequence.
  std::uint64_t resume_trace_bytes() const { return resume_trace_bytes_; }
  std::uint64_t resume_trace_sequence() const { return resume_trace_seq_; }

  /// Attaches the run's trace sink: every Save then durably flushes it and
  /// records its byte/sequence offsets in a `trace` section. Not owned.
  void AttachTraceSink(obs::JsonlTraceSink* sink) { trace_sink_ = sink; }

  /// The loaded snapshot when it matches this driver and config
  /// fingerprint (exact line-for-line match of the `fingerprint` section);
  /// null otherwise — the driver then starts fresh. Mismatches emit an
  /// operational event, so silently ignoring a stale directory is visible.
  /// Idempotent for a repeated identical query (the run owner may probe the
  /// resume decision before the driver restores): the cached answer is
  /// returned and events are emitted only once.
  const Snapshot* ResumeFor(const std::string& driver,
                            const std::vector<std::string>& fingerprint);

  /// True when `step` is on the snapshot cadence.
  bool ShouldSnapshot(std::uint64_t step) const {
    const std::uint64_t every =
        options_.every_steps == 0 ? 1 : options_.every_steps;
    return step % every == 0;
  }

  /// Durably writes the snapshot (adding the `trace` section when a trace
  /// sink is attached). False on failure — reported, never fatal.
  bool Save(Snapshot snapshot);

  /// Saves attempted / failed (for tests and telemetry).
  std::uint64_t saves_attempted() const { return saves_attempted_; }
  std::uint64_t saves_failed() const { return saves_failed_; }

  SnapshotStore& store() { return store_; }
  const CheckpointOptions& options() const { return options_; }

 private:
  void EmitOperational(const char* action, double step, double detail);

  CheckpointOptions options_;
  SnapshotStore store_;
  obs::TelemetrySink* operational_;
  obs::JsonlTraceSink* trace_sink_ = nullptr;

  bool load_attempted_ = false;
  bool load_succeeded_ = false;
  bool resume_attempted_ = false;
  std::string resume_driver_;
  std::vector<std::string> resume_fingerprint_;
  const Snapshot* resume_result_ = nullptr;
  Snapshot loaded_;
  std::uint64_t resume_trace_bytes_ = 0;
  std::uint64_t resume_trace_seq_ = 0;
  std::uint64_t saves_attempted_ = 0;
  std::uint64_t saves_failed_ = 0;
};

/// Builds the standard config-fingerprint section contents: sorted
/// `key value` lines. Drivers include seed, population/chain sizes, and
/// anything else that must match for a resume to be meaningful.
std::vector<std::string> MakeFingerprint(
    const std::vector<std::pair<std::string, std::string>>& entries);

}  // namespace gmr::ckpt

#endif  // GMR_CKPT_CHECKPOINT_H_
