// gmr_crashdrill — the checkpoint/resume crash drill (DESIGN.md §4i).
//
// Proves the preemption contract against real SIGKILLs, end to end: a small
// TAG3P run is executed once uninterrupted (the reference), then re-executed
// as a sequence of forked child processes that are SIGKILLed at K randomly
// chosen generations and resumed from the durable snapshots each time. The
// drill passes when the interrupted sequence's final trace file and result
// digest equal the reference byte for byte.
//
// The kill lands inside the generation callback — after the generation's
// batch barrier but *before* its checkpoint is saved — so every resume
// genuinely replays work the dying process had completed but not persisted.
// SIGKILL cannot be caught: whatever the child had buffered (trace lines,
// half-written snapshots) is lost unless the fsync discipline made it
// durable first, which is exactly the property under test.
//
// Usage:
//   gmr_crashdrill [--dir DIR] [--kills K] [--drill-seed S] [--threads N]
//                  [--gens G] [--pop P] [--cache 0|1] [--keep]
//
// Defaults drill a serial run with the tree cache on (the cache is part of
// the snapshot, so resuming must reproduce its hit counters exactly);
// `--threads 2 --cache 0` drills the parallel trace-determinism envelope
// (DESIGN.md §4f: byte-identical traces need TC off under threads).
// Exit status 0 = drill passed.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "common/rng.h"
#include "expr/ast.h"
#include "expr/eval.h"
#include "gp/fitness.h"
#include "gp/tag3p.h"
#include "obs/run_context.h"
#include "obs/telemetry.h"
#include "tag/grammar.h"

namespace gmr {
namespace {

namespace e = expr;
namespace t = tag;

struct DrillOptions {
  std::string dir;       // working directory ("" = mkdtemp under TMPDIR)
  int kills = 3;         // SIGKILLed segments before the finishing one
  std::uint64_t drill_seed = 42;  // picks the kill generations
  int threads = 1;
  int gens = 8;
  int pop = 24;
  bool cache = true;
  bool keep = false;  // leave the working directory behind for inspection
};

// Same toy problem as the gp/obs/parallel test suites: seed "x + 0",
// revisions "Exp* + R" and "Exp* * R", target concept 2x + 1.
t::Grammar ToyGrammar() {
  t::Grammar grammar;
  {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::LeafNode(e::Variable(0, "x")));
    children.push_back(t::LeafNode(e::Constant(0.0)));
    grammar.AddAlphaTree(t::ElementaryTree(
        "seed", t::OperatorNode(t::kExpSymbol, e::NodeKind::kAdd,
                                std::move(children))));
  }
  for (e::NodeKind op : {e::NodeKind::kAdd, e::NodeKind::kMul}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(t::kExpSymbol));
    children.push_back(t::SlotNode("R"));
    grammar.AddBetaTree(t::ElementaryTree(
        std::string("beta") + e::KindName(op),
        t::OperatorNode(t::kExpSymbol, op, std::move(children))));
  }
  grammar.SetSlotSpec("R", t::SlotSpec{0.0, 1.0});
  return grammar;
}

class ToyFitness : public gp::SequentialFitness {
 public:
  explicit ToyFitness(std::size_t n) : n_(n) {}

  std::size_t num_cases() const override { return n_; }
  std::size_t num_parameters() const override { return 0; }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<e::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override {
    class Eval : public gp::SequentialEvaluation {
     public:
      Eval(const e::ExprPtr& eq, std::vector<double> params, std::size_t n)
          : equation_(eq), params_(std::move(params)), n_(n) {}
      bool Step() override {
        const double x =
            n_ > 1 ? static_cast<double>(t_) / static_cast<double>(n_ - 1)
                   : 0.0;
        e::EvalContext ctx;
        ctx.variables = &x;
        ctx.num_variables = 1;
        ctx.parameters = params_.data();
        ctx.num_parameters = params_.size();
        const double pred = e::EvalExpr(*equation_, ctx);
        const double err = pred - (2.0 * x + 1.0);
        sse_ += err * err;
        ++t_;
        return t_ < n_;
      }
      double CurrentFitness() const override {
        return t_ == 0 ? 0.0 : std::sqrt(sse_ / static_cast<double>(t_));
      }
      std::size_t steps_taken() const override { return t_; }

     private:
      e::ExprPtr equation_;
      std::vector<double> params_;
      std::size_t n_;
      std::size_t t_ = 0;
      double sse_ = 0.0;
    };
    (void)use_compiled_backend;
    return std::make_unique<Eval>(equations[0], parameters, n_);
  }

 private:
  std::size_t n_;
};

gp::Tag3pConfig DrillConfig(const DrillOptions& options) {
  gp::Tag3pConfig config;
  config.population_size = options.pop;
  config.max_generations = options.gens;
  config.bounds = gp::SizeBounds{2, 12};
  config.local_search_steps = 2;
  config.elite_polish_steps = 5;
  config.sigma_rampdown_generations = 3;
  config.seed = 5;
  config.speedups.tree_caching = options.cache;
  config.speedups.short_circuiting = true;
  config.speedups.frontier_mode = gp::FrontierMode::kFrozenFrontier;
  config.speedups.num_threads = options.threads;
  return config;
}

/// The deterministic fingerprint of a finished run: best individual (bits,
/// genotype, parameters), per-generation history, and every EvalStats
/// counter that the determinism contract covers. Timing fields are
/// excluded; their cross-segment accumulation has its own unit test.
std::string ResultDigest(const gp::Tag3pResult& result) {
  std::ostringstream out;
  out << "best_fitness " << ckpt::HexDouble(result.best.fitness) << '\n';
  out << "best_params " << ckpt::SerializeDoubles(result.best.parameters)
      << '\n';
  if (result.best.genotype != nullptr) {
    out << "best_genotype " << ckpt::SerializeDerivation(*result.best.genotype)
        << '\n';
  }
  for (const gp::GenerationStats& g : result.history) {
    out << "gen " << g.generation << ' ' << ckpt::HexDouble(g.best_fitness)
        << ' ' << ckpt::HexDouble(g.mean_fitness) << ' '
        << ckpt::HexDouble(g.best_size) << '\n';
  }
  const gp::EvalStats& s = result.eval_stats;
  out << "evaluated " << s.individuals_evaluated << " hits " << s.cache_hits
      << " lookups " << s.cache_lookups << " full " << s.full_evaluations
      << " short " << s.short_circuited << " static " << s.static_rejects
      << " steps " << s.time_steps_evaluated << '\n';
  out << "outcomes";
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    out << ' ' << s.outcomes[i];
  }
  out << '\n';
  return out.str();
}

/// One run segment in the current process: resume from `ckpt_dir` if a
/// snapshot exists, continue `trace_path`, and either die at generation
/// `kill_at` (SIGKILL, no cleanup) or finish and write the digest.
/// Factored so the reference run (no checkpointer) shares every line of
/// the setup with the drill segments.
int RunSegment(const DrillOptions& options, const std::string& trace_path,
               const std::string& ckpt_dir, const std::string& digest_path,
               int kill_at) {
  const t::Grammar grammar = ToyGrammar();
  const ToyFitness fitness(60);
  const gp::Tag3pProblem problem{&grammar, &fitness, {}};

  std::unique_ptr<ckpt::Checkpointer> checkpointer;
  obs::JsonlTraceOptions trace_options =
      obs::JsonlTraceOptions::Deterministic();
  if (!ckpt_dir.empty()) {
    ckpt::CheckpointOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    checkpointer = std::make_unique<ckpt::Checkpointer>(ckpt_options);
    if (checkpointer->Load() != nullptr) {
      trace_options.resume = true;
      trace_options.resume_bytes = checkpointer->resume_trace_bytes();
      trace_options.resume_sequence = checkpointer->resume_trace_sequence();
    }
  }

  gp::Tag3pResult result;
  {
    obs::JsonlTraceSink sink(trace_path, trace_options);
    if (!sink.ok()) {
      std::fprintf(stderr, "crashdrill: cannot open trace %s\n",
                   trace_path.c_str());
      return 2;
    }
    obs::RunContext context;
    context.sink = &sink;
    if (checkpointer != nullptr) {
      checkpointer->AttachTraceSink(&sink);
      context.checkpointer = checkpointer.get();
    }
    gp::Tag3pEngine engine(problem, DrillConfig(options), context);
    if (kill_at >= 0) {
      engine.set_generation_callback(
          [kill_at](const gp::GenerationStats& stats) {
            if (stats.generation == kill_at) {
              raise(SIGKILL);  // instant, uncatchable — never returns
            }
          });
    }
    result = engine.Run();
  }  // sink destroyed: writer thread joined, file closed

  std::ofstream digest(digest_path, std::ios::binary | std::ios::trunc);
  digest << ResultDigest(result);
  return digest.good() ? 0 : 2;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Runs one segment in a forked child and reports how it ended.
/// `expect_kill` distinguishes the SIGKILLed middle segments from the
/// finishing one.
bool RunChildSegment(const DrillOptions& options, const std::string& trace,
                     const std::string& ckpt_dir, const std::string& digest,
                     int kill_at, bool expect_kill) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("crashdrill: fork");
    return false;
  }
  if (pid == 0) {
    // Child: run the segment and leave without touching the parent's
    // buffered state (_exit skips atexit / stdio flushing).
    _exit(RunSegment(options, trace, ckpt_dir, digest, kill_at));
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    std::perror("crashdrill: waitpid");
    return false;
  }
  if (expect_kill) {
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::fprintf(stderr,
                   "crashdrill: segment (kill at gen %d) did not die by "
                   "SIGKILL (status %d)\n",
                   kill_at, status);
      return false;
    }
    return true;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "crashdrill: finishing segment failed (status %d)\n",
                 status);
    return false;
  }
  return true;
}

bool ParseFlag(int argc, char** argv, int* i, const char* name,
               std::string* value) {
  if (std::strcmp(argv[*i], name) != 0) return false;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "crashdrill: %s needs a value\n", name);
    std::exit(2);
  }
  *value = argv[++*i];
  return true;
}

int DrillMain(int argc, char** argv) {
  DrillOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argc, argv, &i, "--dir", &value)) {
      options.dir = value;
    } else if (ParseFlag(argc, argv, &i, "--kills", &value)) {
      options.kills = std::atoi(value.c_str());
    } else if (ParseFlag(argc, argv, &i, "--drill-seed", &value)) {
      options.drill_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argc, argv, &i, "--threads", &value)) {
      options.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argc, argv, &i, "--gens", &value)) {
      options.gens = std::atoi(value.c_str());
    } else if (ParseFlag(argc, argv, &i, "--pop", &value)) {
      options.pop = std::atoi(value.c_str());
    } else if (ParseFlag(argc, argv, &i, "--cache", &value)) {
      options.cache = value != "0";
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      options.keep = true;
    } else {
      std::fprintf(stderr, "crashdrill: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (options.gens < 3 || options.kills < 1 ||
      options.kills > options.gens - 1) {
    std::fprintf(stderr,
                 "crashdrill: need gens >= 3 and 1 <= kills <= gens-1\n");
    return 2;
  }

  std::string dir = options.dir;
  if (dir.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    std::string pattern = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                          "/gmr_crashdrill_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    if (mkdtemp(buffer.data()) == nullptr) {
      std::perror("crashdrill: mkdtemp");
      return 2;
    }
    dir.assign(buffer.data());
  } else {
    // An explicit --dir is scratch space owned by the drill: clear any
    // artifacts a previous (failed, --keep) run left behind, so stale
    // checkpoints can never leak into this run's resume chain.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
  }

  const std::string ref_trace = dir + "/reference.jsonl";
  const std::string ref_digest = dir + "/reference.digest";
  const std::string drill_trace = dir + "/drill.jsonl";
  const std::string drill_digest = dir + "/drill.digest";
  const std::string ckpt_dir = dir + "/ckpt";

  // Reference: one uninterrupted run, no checkpointer — the drill must
  // reproduce a run that never knew checkpointing existed.
  {
    const int rc =
        RunSegment(options, ref_trace, /*ckpt_dir=*/"", ref_digest,
                   /*kill_at=*/-1);
    if (rc != 0) return rc;
  }

  // Kill generations: distinct draws from [1, gens-1], sorted. Generation
  // g's checkpoint lands after the kill point at g, so each resume replays
  // at least one completed-but-unpersisted generation.
  Rng rng(options.drill_seed);
  std::vector<int> kill_points;
  while (static_cast<int>(kill_points.size()) < options.kills) {
    const int g = 1 + static_cast<int>(rng.UniformInt(
                          static_cast<std::uint64_t>(options.gens - 1)));
    bool duplicate = false;
    for (int seen : kill_points) duplicate |= seen == g;
    if (!duplicate) kill_points.push_back(g);
  }
  std::sort(kill_points.begin(), kill_points.end());

  std::printf("crashdrill: %d gens, killing at:", options.gens);
  for (int g : kill_points) std::printf(" %d", g);
  std::printf(" (threads=%d cache=%d)\n", options.threads,
              options.cache ? 1 : 0);

  for (int g : kill_points) {
    if (!RunChildSegment(options, drill_trace, ckpt_dir, drill_digest, g,
                         /*expect_kill=*/true)) {
      return 1;
    }
  }
  if (!RunChildSegment(options, drill_trace, ckpt_dir, drill_digest,
                       /*kill_at=*/-1, /*expect_kill=*/false)) {
    return 1;
  }

  const std::string ref_trace_bytes = ReadFileBytes(ref_trace);
  const std::string drill_trace_bytes = ReadFileBytes(drill_trace);
  const std::string ref_digest_bytes = ReadFileBytes(ref_digest);
  const std::string drill_digest_bytes = ReadFileBytes(drill_digest);

  bool ok = true;
  if (ref_trace_bytes.empty() || ref_trace_bytes != drill_trace_bytes) {
    std::fprintf(stderr,
                 "crashdrill: FAIL — traces differ (reference %zu bytes, "
                 "drill %zu bytes)\n",
                 ref_trace_bytes.size(), drill_trace_bytes.size());
    ok = false;
  }
  if (ref_digest_bytes.empty() || ref_digest_bytes != drill_digest_bytes) {
    std::fprintf(stderr, "crashdrill: FAIL — result digests differ:\n"
                         "--- reference ---\n%s--- drill ---\n%s",
                 ref_digest_bytes.c_str(), drill_digest_bytes.c_str());
    ok = false;
  }

  if (ok && !options.keep) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  } else if (!ok) {
    std::fprintf(stderr, "crashdrill: artifacts kept in %s\n", dir.c_str());
  }

  if (ok) {
    std::printf("crashdrill: PASS — %d kills, trace (%zu bytes) and digest "
                "byte-identical\n",
                options.kills, ref_trace_bytes.size());
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gmr

int main(int argc, char** argv) { return gmr::DrillMain(argc, argv); }
