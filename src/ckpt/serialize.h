#ifndef GMR_CKPT_SERIALIZE_H_
#define GMR_CKPT_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "expr/ast.h"
#include "tag/derivation.h"

/// Bit-exact text serialization for checkpoint payloads.
///
/// The repo's pretty printer (`expr::ToString`) round-trips *values* but not
/// *structure*: `-1.5` reparses as `Neg(1.5)`, which changes NodeCount and
/// therefore every subsequent RNG node pick in a resumed run. Checkpoints
/// must reproduce the exact tree, so this module defines its own S-expression
/// encoding with IEEE-754 doubles spelled as 16 hex digits of their bit
/// pattern — serialize→parse is an exact structural and bitwise fixpoint
/// (property-tested by the `ckpt_roundtrip` oracle in src/check/).
///
/// Encodings (each value is a single line of space-separated tokens):
///   double       16 lowercase hex digits of the IEEE-754 bits
///   expr         (c <hex>) | (p <slot> <name>) | (v <slot> <name>)
///                | (<op> <expr> <expr>) | (<op> <expr>)   op ∈ + - * / min
///                max neg log exp; names are %XX-escaped outside
///                [A-Za-z0-9_.-]
///   derivation   (d <tree_index> (<hex-lexeme>...) ((<addr> <derivation>)...))
///   rng state    <s0> <s1> <s2> <s3> <cached-gaussian> <0|1>   (all hex)
namespace gmr::ckpt {

/// IEEE-754 bits of `value` as 16 lowercase hex digits.
std::string HexDouble(double value);
bool ParseHexDouble(const std::string& token, double* value);

std::string HexUint64(std::uint64_t value);
bool ParseHexUint64(const std::string& token, std::uint64_t* value);

/// %XX-escapes bytes outside [A-Za-z0-9_.-] so names survive tokenization.
std::string EscapeToken(const std::string& name);
std::string UnescapeToken(const std::string& token);

/// One-line S-expression of the exact tree (see the header comment).
std::string SerializeExpr(const expr::Expr& root);

/// Parses a SerializeExpr line. Returns null with *error set on malformed
/// input. Extra trailing tokens are an error.
expr::ExprPtr ParseExprLine(const std::string& line, std::string* error);

/// One-line S-expression of a TAG derivation tree.
std::string SerializeDerivation(const tag::DerivationNode& root);

/// Parses a SerializeDerivation line. Null with *error set on malformed
/// input. The caller validates against its grammar (tag::Validate).
tag::DerivationPtr ParseDerivationLine(const std::string& line,
                                       std::string* error);

/// One line: the full xoshiro256++ state plus the Box-Muller cache.
std::string SerializeRngState(const RngState& state);
bool ParseRngState(const std::string& line, RngState* state);

/// One line: `<n> <hex>...` — a double vector, bit-exact.
std::string SerializeDoubles(const std::vector<double>& values);
bool ParseDoubles(const std::string& line, std::vector<double>* values);

/// Splits a payload line into whitespace-separated tokens, treating '('
/// and ')' as standalone tokens.
std::vector<std::string> TokenizeSExpr(const std::string& line);

}  // namespace gmr::ckpt

#endif  // GMR_CKPT_SERIALIZE_H_
