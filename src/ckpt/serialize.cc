#include "ckpt/serialize.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace gmr::ckpt {
namespace {

bool IsPlainNameChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Token-stream cursor for the recursive-descent S-expression parsers.
struct Cursor {
  const std::vector<std::string>* tokens;
  std::size_t pos = 0;

  bool Done() const { return pos >= tokens->size(); }
  const std::string& Peek() const { return (*tokens)[pos]; }
  const std::string& Next() { return (*tokens)[pos++]; }
  bool Eat(const char* literal) {
    if (Done() || Peek() != literal) return false;
    ++pos;
    return true;
  }
};

bool ParseInt(const std::string& token, int* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *value = static_cast<int>(v);
  return true;
}

expr::ExprPtr ParseExprNode(Cursor* cur, std::string* error);

expr::ExprPtr Fail(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
  return nullptr;
}

expr::ExprPtr ParseExprNode(Cursor* cur, std::string* error) {
  if (!cur->Eat("(")) return Fail(error, "expected '('");
  if (cur->Done()) return Fail(error, "truncated expression");
  const std::string head = cur->Next();
  expr::ExprPtr result;
  if (head == "c") {
    double value;
    if (cur->Done() || !ParseHexDouble(cur->Next(), &value)) {
      return Fail(error, "bad constant");
    }
    result = expr::Constant(value);
  } else if (head == "p" || head == "v") {
    int slot;
    if (cur->Done() || !ParseInt(cur->Next(), &slot)) {
      return Fail(error, "bad slot");
    }
    if (cur->Done()) return Fail(error, "missing name");
    const std::string name = UnescapeToken(cur->Next());
    result = head == "p" ? expr::Parameter(slot, name)
                         : expr::Variable(slot, name);
  } else {
    expr::NodeKind kind;
    int arity = 2;
    if (head == "+") {
      kind = expr::NodeKind::kAdd;
    } else if (head == "-") {
      kind = expr::NodeKind::kSub;
    } else if (head == "*") {
      kind = expr::NodeKind::kMul;
    } else if (head == "/") {
      kind = expr::NodeKind::kDiv;
    } else if (head == "min") {
      kind = expr::NodeKind::kMin;
    } else if (head == "max") {
      kind = expr::NodeKind::kMax;
    } else if (head == "neg") {
      kind = expr::NodeKind::kNeg;
      arity = 1;
    } else if (head == "log") {
      kind = expr::NodeKind::kLog;
      arity = 1;
    } else if (head == "exp") {
      kind = expr::NodeKind::kExp;
      arity = 1;
    } else {
      return Fail(error, "unknown operator '" + head + "'");
    }
    expr::ExprPtr a = ParseExprNode(cur, error);
    if (a == nullptr) return nullptr;
    if (arity == 1) {
      result = expr::MakeUnary(kind, std::move(a));
    } else {
      expr::ExprPtr b = ParseExprNode(cur, error);
      if (b == nullptr) return nullptr;
      result = expr::MakeBinary(kind, std::move(a), std::move(b));
    }
  }
  if (!cur->Eat(")")) return Fail(error, "expected ')'");
  return result;
}

void AppendExpr(const expr::Expr& node, std::string* out) {
  out->push_back('(');
  switch (node.kind()) {
    case expr::NodeKind::kConstant:
      *out += "c ";
      *out += HexDouble(node.value());
      break;
    case expr::NodeKind::kParameter:
    case expr::NodeKind::kVariable:
      out->push_back(node.kind() == expr::NodeKind::kParameter ? 'p' : 'v');
      out->push_back(' ');
      *out += std::to_string(node.slot());
      out->push_back(' ');
      *out += EscapeToken(node.name());
      break;
    case expr::NodeKind::kAdd:
    case expr::NodeKind::kSub:
    case expr::NodeKind::kMul:
    case expr::NodeKind::kDiv:
    case expr::NodeKind::kMin:
    case expr::NodeKind::kMax:
    case expr::NodeKind::kNeg:
    case expr::NodeKind::kLog:
    case expr::NodeKind::kExp: {
      const char* op = "?";
      switch (node.kind()) {
        case expr::NodeKind::kAdd: op = "+"; break;
        case expr::NodeKind::kSub: op = "-"; break;
        case expr::NodeKind::kMul: op = "*"; break;
        case expr::NodeKind::kDiv: op = "/"; break;
        case expr::NodeKind::kMin: op = "min"; break;
        case expr::NodeKind::kMax: op = "max"; break;
        case expr::NodeKind::kNeg: op = "neg"; break;
        case expr::NodeKind::kLog: op = "log"; break;
        case expr::NodeKind::kExp: op = "exp"; break;
        default: break;
      }
      *out += op;
      for (const expr::ExprPtr& child : node.children()) {
        out->push_back(' ');
        AppendExpr(*child, out);
      }
      break;
    }
  }
  out->push_back(')');
}

void AppendDerivation(const tag::DerivationNode& node, std::string* out) {
  *out += "(d ";
  *out += std::to_string(node.tree_index);
  *out += " (";
  for (std::size_t i = 0; i < node.lexemes.size(); ++i) {
    if (i > 0) out->push_back(' ');
    *out += HexDouble(node.lexemes[i]);
  }
  *out += ") (";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out->push_back(' ');
    out->push_back('(');
    *out += std::to_string(node.children[i].address_index);
    out->push_back(' ');
    AppendDerivation(*node.children[i].node, out);
    out->push_back(')');
  }
  *out += "))";
}

tag::DerivationPtr ParseDerivationNode(Cursor* cur, std::string* error) {
  auto fail = [error](const std::string& message) -> tag::DerivationPtr {
    if (error != nullptr && error->empty()) *error = message;
    return nullptr;
  };
  if (!cur->Eat("(") || !cur->Eat("d")) return fail("expected '(d'");
  auto node = std::make_unique<tag::DerivationNode>();
  if (cur->Done() || !ParseInt(cur->Next(), &node->tree_index)) {
    return fail("bad tree index");
  }
  if (!cur->Eat("(")) return fail("expected lexeme list");
  while (!cur->Done() && cur->Peek() != ")") {
    double lexeme;
    if (!ParseHexDouble(cur->Next(), &lexeme)) return fail("bad lexeme");
    node->lexemes.push_back(lexeme);
  }
  if (!cur->Eat(")")) return fail("unterminated lexeme list");
  if (!cur->Eat("(")) return fail("expected child list");
  while (!cur->Done() && cur->Peek() != ")") {
    if (!cur->Eat("(")) return fail("expected '(' in child list");
    tag::DerivationNode::AdjunctionChild child;
    if (cur->Done() || !ParseInt(cur->Next(), &child.address_index)) {
      return fail("bad adjunction address");
    }
    child.node = ParseDerivationNode(cur, error);
    if (child.node == nullptr) return nullptr;
    if (!cur->Eat(")")) return fail("unterminated child");
    node->children.push_back(std::move(child));
  }
  if (!cur->Eat(")")) return fail("unterminated child list");
  if (!cur->Eat(")")) return fail("expected ')'");
  return node;
}

}  // namespace

std::string HexDouble(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return HexUint64(bits);
}

bool ParseHexDouble(const std::string& token, double* value) {
  std::uint64_t bits;
  if (!ParseHexUint64(token, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

std::string HexUint64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ParseHexUint64(const std::string& token, std::uint64_t* value) {
  if (token.size() != 16) return false;
  std::uint64_t bits = 0;
  for (const char c : token) {
    const int digit = HexValue(c);
    if (digit < 0) return false;
    bits = (bits << 4) | static_cast<std::uint64_t>(digit);
  }
  *value = bits;
  return true;
}

std::string EscapeToken(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (IsPlainNameChar(c)) {
      out.push_back(c);
    } else {
      char buffer[4];
      std::snprintf(buffer, sizeof(buffer), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buffer;
    }
  }
  // An empty name still needs a token to hold its place.
  if (out.empty()) out = "%";
  return out;
}

std::string UnescapeToken(const std::string& token) {
  if (token == "%") return "";
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '%' && i + 2 < token.size()) {
      const int hi = HexValue(token[i + 1]);
      const int lo = HexValue(token[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(token[i]);
  }
  return out;
}

std::string SerializeExpr(const expr::Expr& root) {
  std::string out;
  AppendExpr(root, &out);
  return out;
}

expr::ExprPtr ParseExprLine(const std::string& line, std::string* error) {
  const std::vector<std::string> tokens = TokenizeSExpr(line);
  Cursor cur{&tokens};
  expr::ExprPtr result = ParseExprNode(&cur, error);
  if (result != nullptr && !cur.Done()) {
    if (error != nullptr) *error = "trailing tokens after expression";
    return nullptr;
  }
  return result;
}

std::string SerializeDerivation(const tag::DerivationNode& root) {
  std::string out;
  AppendDerivation(root, &out);
  return out;
}

tag::DerivationPtr ParseDerivationLine(const std::string& line,
                                       std::string* error) {
  const std::vector<std::string> tokens = TokenizeSExpr(line);
  Cursor cur{&tokens};
  tag::DerivationPtr result = ParseDerivationNode(&cur, error);
  if (result != nullptr && !cur.Done()) {
    if (error != nullptr) *error = "trailing tokens after derivation";
    return nullptr;
  }
  return result;
}

std::string SerializeRngState(const RngState& state) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out += HexUint64(state.s[i]);
    out.push_back(' ');
  }
  out += HexDouble(state.cached_gaussian);
  out.push_back(' ');
  out.push_back(state.has_cached_gaussian ? '1' : '0');
  return out;
}

bool ParseRngState(const std::string& line, RngState* state) {
  const std::vector<std::string> tokens = TokenizeSExpr(line);
  if (tokens.size() != 6) return false;
  for (int i = 0; i < 4; ++i) {
    if (!ParseHexUint64(tokens[i], &state->s[i])) return false;
  }
  if (!ParseHexDouble(tokens[4], &state->cached_gaussian)) return false;
  if (tokens[5] != "0" && tokens[5] != "1") return false;
  state->has_cached_gaussian = tokens[5] == "1";
  return true;
}

std::string SerializeDoubles(const std::vector<double>& values) {
  std::string out = std::to_string(values.size());
  for (const double value : values) {
    out.push_back(' ');
    out += HexDouble(value);
  }
  return out;
}

bool ParseDoubles(const std::string& line, std::vector<double>* values) {
  const std::vector<std::string> tokens = TokenizeSExpr(line);
  if (tokens.empty()) return false;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(tokens[0].c_str(), &end, 10);
  if (end != tokens[0].c_str() + tokens[0].size()) return false;
  if (tokens.size() != n + 1) return false;
  values->clear();
  values->reserve(n);
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    double value;
    if (!ParseHexDouble(tokens[i], &value)) return false;
    values->push_back(value);
  }
  return true;
}

std::vector<std::string> TokenizeSExpr(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == '(' || c == ')') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      tokens.emplace_back(1, c);
    } else if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace gmr::ckpt
