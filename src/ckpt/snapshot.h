#ifndef GMR_CKPT_SNAPSHOT_H_
#define GMR_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

/// Durable snapshot storage (DESIGN.md §4i).
///
/// On-disk layout inside a checkpoint directory:
///
///   MANIFEST                    the snapshot chain (rewritten atomically)
///   snap-<seq>.gmrck            one snapshot file per retained checkpoint
///
/// Snapshot file format — line-oriented text, CRC-sealed:
///
///   # gmr-ckpt v1
///   driver <name>
///   step <n>
///   section <name> <line-count>
///   <payload lines...>
///   ...
///   crc <8-hex-digit CRC32 of every preceding byte>
///
/// MANIFEST format — a hash chain over the snapshot records:
///
///   # gmr-ckpt-manifest v1
///   snap <seq> <step> <file> <file-crc> <chain>
///
/// where chain_i = CRC32(chain_{i-1} || "seq step file file-crc"). The
/// manifest is rewritten whole via write→fsync→rename on every update, so
/// a crash leaves either the old or the new manifest, never a torn one; a
/// torn *snapshot* write leaves a stray `.tmp` that is swept on open.
/// Loading walks the valid chain prefix newest→oldest and returns the
/// first snapshot whose file CRC verifies — a corrupt or truncated newest
/// snapshot degrades to its predecessor instead of failing the resume.
namespace gmr::ckpt {

/// CRC32 (IEEE 802.3, reflected) of `data`, seeded by `crc` so calls chain.
std::uint32_t Crc32(std::uint32_t crc, const void* data, std::size_t size);

/// One named payload block of a snapshot. Lines must not contain '\n'.
struct Section {
  std::string name;
  std::vector<std::string> lines;
};

/// A complete checkpoint of one run at one step.
struct Snapshot {
  std::string driver;
  std::uint64_t step = 0;
  std::vector<Section> sections;

  Section* AddSection(const std::string& name);
  /// Null when absent.
  const Section* FindSection(const std::string& name) const;
};

/// Serializes a snapshot to its exact file bytes (including the crc line).
std::string EncodeSnapshot(const Snapshot& snapshot);

/// Parses + CRC-verifies snapshot file bytes. Error on any corruption.
Status DecodeSnapshot(const std::string& bytes, Snapshot* snapshot);

/// Manages the manifest chain and snapshot files in one directory.
/// Coordinator-only (no internal locking): drivers checkpoint from the
/// batch barrier, never from worker lanes.
class SnapshotStore {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t step = 0;
    std::string file;           // basename within dir
    std::uint32_t file_crc = 0;
    std::uint32_t chain = 0;
  };

  /// Opens (creating if needed) the store at `dir`, keeping at most
  /// `retain` snapshots. Reads the existing MANIFEST, accepting the valid
  /// chain prefix, and sweeps stray `*.tmp` files from torn writes.
  SnapshotStore(std::string dir, int retain = 3);

  /// False when the directory could not be created.
  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }

  /// Durably writes `snapshot` (write→fsync→rename, then manifest update,
  /// then retention pruning), retrying transient failures per `retry`.
  /// Honors the ckpt_write / ckpt_fsync / ckpt_corrupt fault points.
  Status Save(const Snapshot& snapshot, const RetryOptions& retry = {});

  /// Loads the newest snapshot that CRC-verifies, walking older entries on
  /// corruption (the resume_torn fault point truncates reads). On success
  /// *fallbacks is the number of corrupt snapshots skipped (0 = newest was
  /// good). Error when no entry verifies or the store is empty.
  Status LoadLatest(Snapshot* snapshot, int* fallbacks = nullptr);

  /// Deletes every snapshot with step > `step` and rewrites the manifest
  /// (recomputing the chain). Used by in-process resume tests to rewind a
  /// finished store to a mid-run checkpoint; symmetric with retention.
  Status DropNewerThan(std::uint64_t step);

  /// Manifest entries, oldest first (valid chain prefix only).
  const std::vector<Entry>& entries() const { return entries_; }

  int retain() const { return retain_; }

 private:
  std::string PathFor(const std::string& basename) const;
  Status WriteFileDurably(const std::string& basename,
                          const std::string& bytes);
  Status RewriteManifest();
  void PruneToRetention();

  std::string dir_;
  int retain_;
  bool ok_ = false;
  std::uint64_t next_seq_ = 1;
  std::vector<Entry> entries_;
};

}  // namespace gmr::ckpt

#endif  // GMR_CKPT_SNAPSHOT_H_
