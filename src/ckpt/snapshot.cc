#include "ckpt/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/fault_injection.h"

namespace gmr::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr char kSnapshotHeader[] = "# gmr-ckpt v1";
constexpr char kManifestHeader[] = "# gmr-ckpt-manifest v1";
constexpr char kManifestName[] = "MANIFEST";

std::string Hex32(std::uint32_t value) {
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%08x", value);
  return buffer;
}

bool ParseHex32(const std::string& token, std::uint32_t* value) {
  if (token.size() != 8) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(token.c_str(), &end, 16);
  if (end != token.c_str() + token.size()) return false;
  *value = static_cast<std::uint32_t>(v);
  return true;
}

bool ParseU64(const std::string& token, std::uint64_t* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  *value = std::strtoull(token.c_str(), &end, 10);
  return end == token.c_str() + token.size();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (begin < line.size()) {
    while (begin < line.size() && line[begin] == ' ') ++begin;
    if (begin >= line.size()) break;
    std::size_t end = line.find(' ', begin);
    if (end == std::string::npos) end = line.size();
    fields.push_back(line.substr(begin, end - begin));
    begin = end;
  }
  return fields;
}

/// The chained record content: everything in a manifest line except the
/// chain value itself.
std::string EntryCore(const SnapshotStore::Entry& entry) {
  return std::to_string(entry.seq) + " " + std::to_string(entry.step) + " " +
         entry.file + " " + Hex32(entry.file_crc);
}

Status ReadWholeFile(const std::string& path, std::string* bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::Error("cannot open " + path);
  bytes->clear();
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes->append(buffer, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::Error("read error on " + path);
  return Status::Ok();
}

}  // namespace

std::uint32_t Crc32(std::uint32_t crc, const void* data, std::size_t size) {
  static const std::uint32_t* const kTable = [] {
    static std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

Section* Snapshot::AddSection(const std::string& name) {
  sections.push_back(Section{name, {}});
  return &sections.back();
}

const Section* Snapshot::FindSection(const std::string& name) const {
  for (const Section& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

std::string EncodeSnapshot(const Snapshot& snapshot) {
  std::string out = kSnapshotHeader;
  out.push_back('\n');
  out += "driver " + snapshot.driver + "\n";
  out += "step " + std::to_string(snapshot.step) + "\n";
  for (const Section& section : snapshot.sections) {
    out += "section " + section.name + " " +
           std::to_string(section.lines.size()) + "\n";
    for (const std::string& line : section.lines) {
      out += line;
      out.push_back('\n');
    }
  }
  const std::uint32_t crc = Crc32(0, out.data(), out.size());
  out += "crc " + Hex32(crc) + "\n";
  return out;
}

Status DecodeSnapshot(const std::string& bytes, Snapshot* snapshot) {
  if (bytes.empty() || bytes.back() != '\n') {
    return Status::Error("snapshot truncated (no trailing newline)");
  }
  // Locate the final "crc ..." line and verify it seals everything before.
  const std::size_t last_line_start = bytes.rfind('\n', bytes.size() - 2);
  const std::size_t crc_line_begin =
      last_line_start == std::string::npos ? 0 : last_line_start + 1;
  const std::string crc_line =
      bytes.substr(crc_line_begin, bytes.size() - 1 - crc_line_begin);
  std::uint32_t recorded_crc;
  if (crc_line.size() != 12 || crc_line.compare(0, 4, "crc ") != 0 ||
      !ParseHex32(crc_line.substr(4), &recorded_crc)) {
    return Status::Error("snapshot missing crc seal");
  }
  const std::uint32_t actual_crc = Crc32(0, bytes.data(), crc_line_begin);
  if (actual_crc != recorded_crc) {
    return Status::Error("snapshot crc mismatch");
  }

  const std::vector<std::string> lines =
      SplitLines(bytes.substr(0, crc_line_begin));
  std::size_t i = 0;
  if (i >= lines.size() || lines[i] != kSnapshotHeader) {
    return Status::Error("bad snapshot header");
  }
  ++i;
  Snapshot parsed;
  if (i >= lines.size() || lines[i].compare(0, 7, "driver ") != 0) {
    return Status::Error("missing driver line");
  }
  parsed.driver = lines[i].substr(7);
  ++i;
  if (i >= lines.size() || lines[i].compare(0, 5, "step ") != 0 ||
      !ParseU64(lines[i].substr(5), &parsed.step)) {
    return Status::Error("missing step line");
  }
  ++i;
  while (i < lines.size()) {
    const std::vector<std::string> fields = SplitFields(lines[i]);
    std::uint64_t count;
    if (fields.size() != 3 || fields[0] != "section" ||
        !ParseU64(fields[2], &count)) {
      return Status::Error("bad section header at line " + std::to_string(i));
    }
    ++i;
    if (i + count > lines.size()) {
      return Status::Error("section '" + fields[1] + "' truncated");
    }
    Section* section = parsed.AddSection(fields[1]);
    section->lines.assign(lines.begin() + static_cast<long>(i),
                          lines.begin() + static_cast<long>(i + count));
    i += count;
  }
  *snapshot = std::move(parsed);
  return Status::Ok();
}

SnapshotStore::SnapshotStore(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain < 1 ? 1 : retain) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) return;
  ok_ = true;

  // Sweep stray temp files from torn writes (crash between write and
  // rename): they were never linked into the manifest, so deleting them is
  // always safe.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code ignore;
      fs::remove(entry.path(), ignore);
    }
  }

  // Accept the valid chain prefix of an existing manifest; anything after
  // the first bad record (torn tail, tampering) is ignored.
  std::string bytes;
  if (!ReadWholeFile(PathFor(kManifestName), &bytes).ok()) return;
  const std::vector<std::string> lines = SplitLines(bytes);
  if (lines.empty() || lines[0] != kManifestHeader) return;
  std::uint32_t chain = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> fields = SplitFields(lines[i]);
    Entry entry;
    if (fields.size() != 6 || fields[0] != "snap" ||
        !ParseU64(fields[1], &entry.seq) || !ParseU64(fields[2], &entry.step) ||
        !ParseHex32(fields[4], &entry.file_crc) ||
        !ParseHex32(fields[5], &entry.chain)) {
      break;
    }
    entry.file = fields[3];
    const std::string core = EntryCore(entry);
    const std::uint32_t expected = Crc32(chain, core.data(), core.size());
    if (entry.chain != expected) break;
    chain = expected;
    if (entry.seq >= next_seq_) next_seq_ = entry.seq + 1;
    entries_.push_back(std::move(entry));
  }
}

std::string SnapshotStore::PathFor(const std::string& basename) const {
  return dir_ + "/" + basename;
}

Status SnapshotStore::WriteFileDurably(const std::string& basename,
                                       const std::string& bytes) {
  if (FaultInjected(FaultPoint::kCkptWrite)) {
    return Status::Error("fault injection: ckpt_write");
  }
  const std::string tmp_path = PathFor(basename + ".tmp");
  const std::string final_path = PathFor(basename);
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) return Status::Error("cannot open " + tmp_path);
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file);
  if (written != bytes.size() || std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    return Status::Error("short write to " + tmp_path);
  }
  if (FaultInjected(FaultPoint::kCkptFsync) || fsync(fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    return Status::Error("fsync failed for " + tmp_path);
  }
  std::fclose(file);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Error("rename failed for " + final_path);
  }
  // Persist the rename itself: fsync the directory entry.
  const int dir_fd = open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    fsync(dir_fd);
    close(dir_fd);
  }
  return Status::Ok();
}

Status SnapshotStore::RewriteManifest() {
  std::string out = kManifestHeader;
  out.push_back('\n');
  std::uint32_t chain = 0;
  for (Entry& entry : entries_) {
    const std::string core = EntryCore(entry);
    chain = Crc32(chain, core.data(), core.size());
    entry.chain = chain;
    out += "snap " + core + " " + Hex32(chain) + "\n";
  }
  return WriteFileDurably(kManifestName, out);
}

void SnapshotStore::PruneToRetention() {
  while (entries_.size() > static_cast<std::size_t>(retain_)) {
    std::error_code ignore;
    fs::remove(PathFor(entries_.front().file), ignore);
    entries_.erase(entries_.begin());
  }
}

Status SnapshotStore::Save(const Snapshot& snapshot,
                           const RetryOptions& retry) {
  if (!ok_) return Status::Error("checkpoint dir unavailable: " + dir_);
  const std::string bytes = EncodeSnapshot(snapshot);
  Entry entry;
  entry.seq = next_seq_;
  entry.step = snapshot.step;
  char name[32];
  std::snprintf(name, sizeof(name), "snap-%08llu.gmrck",
                static_cast<unsigned long long>(entry.seq));
  entry.file = name;
  entry.file_crc = Crc32(0, bytes.data(), bytes.size());

  Status status = RetryWithBackoff(
      retry, [&] { return WriteFileDurably(entry.file, bytes); });
  if (!status.ok()) return status;

  // Simulated bit rot: flip one payload byte of the file that was just
  // durably written. The manifest keeps the good CRC, so LoadLatest must
  // detect the damage and fall back to the previous snapshot.
  if (FaultInjected(FaultPoint::kCkptCorrupt)) {
    std::FILE* file = std::fopen(PathFor(entry.file).c_str(), "r+b");
    if (file != nullptr) {
      std::fseek(file, static_cast<long>(bytes.size() / 2), SEEK_SET);
      const int c = std::fgetc(file);
      if (c != EOF) {
        std::fseek(file, -1, SEEK_CUR);
        std::fputc(c ^ 0x40, file);
      }
      std::fclose(file);
    }
  }

  next_seq_ += 1;
  entries_.push_back(std::move(entry));
  PruneToRetention();
  status = RetryWithBackoff(retry, [&] { return RewriteManifest(); });
  if (!status.ok()) {
    // The snapshot file exists but is not linked; drop it from the
    // in-memory chain so the store stays consistent with disk.
    entries_.pop_back();
    return status;
  }
  return Status::Ok();
}

Status SnapshotStore::LoadLatest(Snapshot* snapshot, int* fallbacks) {
  if (fallbacks != nullptr) *fallbacks = 0;
  if (!ok_) return Status::Error("checkpoint dir unavailable: " + dir_);
  if (entries_.empty()) return Status::Error("no snapshots in " + dir_);
  int skipped = 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    std::string bytes;
    Status status = ReadWholeFile(PathFor(it->file), &bytes);
    if (status.ok() && FaultInjected(FaultPoint::kResumeTorn)) {
      bytes.resize(bytes.size() / 2);  // simulate a torn read/partial page
    }
    if (status.ok() &&
        Crc32(0, bytes.data(), bytes.size()) != it->file_crc) {
      status = Status::Error("file crc mismatch for " + it->file);
    }
    if (status.ok()) status = DecodeSnapshot(bytes, snapshot);
    if (status.ok()) {
      if (fallbacks != nullptr) *fallbacks = skipped;
      return Status::Ok();
    }
    ++skipped;
  }
  if (fallbacks != nullptr) *fallbacks = skipped;
  return Status::Error("every snapshot in " + dir_ + " failed validation");
}

Status SnapshotStore::DropNewerThan(std::uint64_t step) {
  if (!ok_) return Status::Error("checkpoint dir unavailable: " + dir_);
  std::vector<Entry> kept;
  for (Entry& entry : entries_) {
    if (entry.step <= step) {
      kept.push_back(std::move(entry));
    } else {
      std::error_code ignore;
      fs::remove(PathFor(entry.file), ignore);
    }
  }
  entries_ = std::move(kept);
  return RewriteManifest();
}

}  // namespace gmr::ckpt
