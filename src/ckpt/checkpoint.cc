#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace gmr::ckpt {
namespace {

constexpr char kTraceSection[] = "trace";
constexpr char kFingerprintSection[] = "fingerprint";

bool ParseU64Token(const std::string& text, std::size_t begin,
                   std::uint64_t* value) {
  if (begin >= text.size()) return false;
  char* end = nullptr;
  *value = std::strtoull(text.c_str() + begin, &end, 10);
  return end != text.c_str() + begin;
}

}  // namespace

Checkpointer::Checkpointer(CheckpointOptions options,
                           obs::TelemetrySink* operational_sink)
    : options_(std::move(options)),
      store_(options_.dir, options_.retain),
      operational_(obs::ResolveSink(operational_sink)) {
  if (!store_.ok()) {
    EmitOperational("dir_error", 0, 0);
  }
}

const Snapshot* Checkpointer::Load() {
  if (load_attempted_) return load_succeeded_ ? &loaded_ : nullptr;
  load_attempted_ = true;
  if (!store_.ok() || store_.entries().empty()) return nullptr;
  int fallbacks = 0;
  const Status status = store_.LoadLatest(&loaded_, &fallbacks);
  if (fallbacks > 0) {
    EmitOperational(status.ok() ? "load_fallback" : "load_failed",
                    static_cast<double>(loaded_.step),
                    static_cast<double>(fallbacks));
  }
  if (!status.ok()) return nullptr;
  load_succeeded_ = true;
  // Trace continuation offsets: "bytes <n>" and "seq <n>" lines.
  if (const Section* trace = loaded_.FindSection(kTraceSection)) {
    for (const std::string& line : trace->lines) {
      if (line.compare(0, 6, "bytes ") == 0) {
        ParseU64Token(line, 6, &resume_trace_bytes_);
      } else if (line.compare(0, 4, "seq ") == 0) {
        ParseU64Token(line, 4, &resume_trace_seq_);
      }
    }
  }
  return &loaded_;
}

const Snapshot* Checkpointer::ResumeFor(
    const std::string& driver, const std::vector<std::string>& fingerprint) {
  if (resume_attempted_ && driver == resume_driver_ &&
      fingerprint == resume_fingerprint_) {
    return resume_result_;
  }
  resume_attempted_ = true;
  resume_driver_ = driver;
  resume_fingerprint_ = fingerprint;
  resume_result_ = nullptr;
  const Snapshot* snapshot = Load();
  if (snapshot == nullptr) return nullptr;
  if (snapshot->driver != driver) {
    EmitOperational("driver_mismatch", static_cast<double>(snapshot->step), 0);
    return nullptr;
  }
  const Section* section = snapshot->FindSection(kFingerprintSection);
  const std::vector<std::string> empty;
  const std::vector<std::string>& stored =
      section != nullptr ? section->lines : empty;
  if (stored != fingerprint) {
    EmitOperational("fingerprint_mismatch",
                    static_cast<double>(snapshot->step), 0);
    return nullptr;
  }
  EmitOperational("resume", static_cast<double>(snapshot->step), 0);
  resume_result_ = snapshot;
  return snapshot;
}

bool Checkpointer::Save(Snapshot snapshot) {
  ++saves_attempted_;
  if (!store_.ok()) {
    ++saves_failed_;
    return false;
  }
  if (trace_sink_ != nullptr) {
    // Durable-flush the run trace first so the recorded offset covers every
    // event emitted before this checkpoint: a resumed sink truncates to
    // exactly this point and re-emits everything after it.
    const std::uint64_t bytes = trace_sink_->DurableFlush();
    Section* trace = snapshot.AddSection(kTraceSection);
    trace->lines.push_back("bytes " + std::to_string(bytes));
    trace->lines.push_back("seq " +
                           std::to_string(trace_sink_->events_emitted()));
  }
  const Status status = store_.Save(snapshot, options_.retry);
  if (!status.ok()) {
    ++saves_failed_;
    EmitOperational("save_error", static_cast<double>(snapshot.step), 0);
    return false;
  }
  EmitOperational("save", static_cast<double>(snapshot.step),
                  static_cast<double>(store_.entries().back().seq));
  return true;
}

void Checkpointer::EmitOperational(const char* action, double step,
                                   double detail) {
  if (!operational_->enabled()) return;
  obs::TraceEvent event("ckpt");
  event.Label("action", action).Field("step", step);
  if (detail != 0) event.Field("detail", detail);
  operational_->Emit(std::move(event));
}

std::vector<std::string> MakeFingerprint(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<std::string> lines;
  lines.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    lines.push_back(key + " " + value);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace gmr::ckpt
