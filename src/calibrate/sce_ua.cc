#include <algorithm>
#include <cmath>

#include "calibrate/methods.h"

namespace gmr::calibrate {
namespace {

struct Point {
  std::vector<double> x;
  double f = 1e300;
};

bool ByFitness(const Point& a, const Point& b) { return a.f < b.f; }

}  // namespace

CalibrationResult SceUaCalibrator::Calibrate(
    const Objective& objective, const BoxBounds& bounds,
    const std::vector<double>& initial, std::size_t budget, Rng& rng) const {
  BudgetedObjective f(&objective, budget);
  const std::size_t dim = bounds.dim();

  // Standard SCE-UA sizing (Duan et al. 1994): p complexes of m = 2n+1
  // points each; subcomplexes of q = n+1 points evolve by competitive
  // simplex steps.
  const std::size_t num_complexes = 4;
  const std::size_t complex_size = 2 * dim + 1;
  const std::size_t subcomplex_size = dim + 1;
  const std::size_t pop_size = num_complexes * complex_size;

  std::vector<Point> population;
  population.push_back({initial, f(initial)});
  while (population.size() < pop_size && !f.Exhausted()) {
    Point p;
    p.x = bounds.Sample(rng);
    p.f = f(p.x);
    population.push_back(std::move(p));
  }

  while (!f.Exhausted()) {
    std::sort(population.begin(), population.end(), ByFitness);

    // Partition into complexes by rank striping (complex k receives points
    // k, k+p, k+2p, ...).
    for (std::size_t k = 0; k < num_complexes && !f.Exhausted(); ++k) {
      std::vector<std::size_t> members;
      for (std::size_t j = k; j < population.size(); j += num_complexes) {
        members.push_back(j);
      }

      // CCE: several evolution steps per complex.
      for (std::size_t step = 0; step < subcomplex_size && !f.Exhausted();
           ++step) {
        // Triangular selection favors better-ranked members.
        std::vector<std::size_t> sub;
        while (sub.size() < std::min(subcomplex_size, members.size())) {
          const double u = rng.Uniform();
          const std::size_t rank = static_cast<std::size_t>(
              (1.0 - std::sqrt(1.0 - u)) *
              static_cast<double>(members.size()));
          const std::size_t pick =
              members[std::min(rank, members.size() - 1)];
          if (std::find(sub.begin(), sub.end(), pick) == sub.end()) {
            sub.push_back(pick);
          }
        }
        std::sort(sub.begin(), sub.end(), [&](std::size_t a, std::size_t b) {
          return population[a].f < population[b].f;
        });
        const std::size_t worst = sub.back();

        // Centroid of the subcomplex excluding the worst point.
        std::vector<double> centroid(dim, 0.0);
        for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
          for (std::size_t d = 0; d < dim; ++d) {
            centroid[d] += population[sub[i]].x[d];
          }
        }
        for (double& c : centroid) {
          c /= static_cast<double>(sub.size() - 1);
        }

        // Reflection.
        std::vector<double> reflected(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          reflected[d] = 2.0 * centroid[d] - population[worst].x[d];
        }
        bounds.Clamp(&reflected);
        double rf = f(reflected);
        if (rf < population[worst].f) {
          population[worst] = {std::move(reflected), rf};
          continue;
        }
        // Contraction.
        std::vector<double> contracted(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          contracted[d] = 0.5 * (centroid[d] + population[worst].x[d]);
        }
        double cf = f(contracted);
        if (cf < population[worst].f) {
          population[worst] = {std::move(contracted), cf};
          continue;
        }
        // Random replacement (mutation) when both fail.
        std::vector<double> random_point = bounds.Sample(rng);
        const double qf = f(random_point);
        population[worst] = {std::move(random_point), qf};
      }
    }
    // Implicit shuffle: the next iteration re-sorts and re-stripes.
  }
  return {f.best_x(), f.best_f(), f.used()};
}

std::vector<std::unique_ptr<Calibrator>> AllCalibrators() {
  std::vector<std::unique_ptr<Calibrator>> calibrators;
  calibrators.push_back(std::make_unique<GaCalibrator>());
  calibrators.push_back(std::make_unique<MonteCarloCalibrator>());
  calibrators.push_back(std::make_unique<LhsCalibrator>());
  calibrators.push_back(std::make_unique<MleCalibrator>());
  calibrators.push_back(std::make_unique<McmcCalibrator>());
  calibrators.push_back(std::make_unique<SaCalibrator>());
  calibrators.push_back(std::make_unique<DreamCalibrator>());
  calibrators.push_back(std::make_unique<SceUaCalibrator>());
  calibrators.push_back(std::make_unique<DeMczCalibrator>());
  return calibrators;
}

}  // namespace gmr::calibrate
