#include <algorithm>
#include <cmath>
#include <utility>

#include "calibrate/methods.h"
#include "calibrate/resume.h"

namespace gmr::calibrate {
namespace {

constexpr char kPopulationSection[] = "population";

bool ByFitness(const ScoredPoint& a, const ScoredPoint& b) {
  return a.f < b.f;
}

}  // namespace

CalibrationResult SceUaCalibrator::Calibrate(
    const Objective& objective, const BoxBounds& bounds,
    const std::vector<double>& initial, std::size_t budget, Rng& rng,
    const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  const std::size_t dim = bounds.dim();

  // Standard SCE-UA sizing (Duan et al. 1994): p complexes of m = 2n+1
  // points each; subcomplexes of q = n+1 points evolve by competitive
  // simplex steps.
  const std::size_t num_complexes = 4;
  const std::size_t complex_size = 2 * dim + 1;
  const std::size_t subcomplex_size = dim + 1;
  const std::size_t pop_size = num_complexes * complex_size;

  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  ckpt::Checkpointer* checkpointer = context.checkpointer;
  std::vector<ScoredPoint> population;
  std::uint64_t iteration = 0;
  bool resumed = false;
  if (checkpointer != nullptr) {
    if (const ckpt::Snapshot* snapshot = checkpointer->ResumeFor(
            "calibrate",
            CalibrateFingerprint(name(), budget, bounds, initial))) {
      std::vector<ScoredPoint> restored;
      if (ParsePointsSection(*snapshot, kPopulationSection, pop_size,
                             &restored) &&
          RestoreCalibrateCommon(*snapshot, &rng, &f)) {
        population = std::move(restored);
        iteration = snapshot->step;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    std::vector<std::vector<double>> points;
    points.push_back(initial);
    while (points.size() < pop_size) points.push_back(bounds.Sample(rng));
    const std::vector<double> fs = f.EvaluateBatch(context.pool, points);
    population.reserve(pop_size);
    for (std::size_t i = 0; i < points.size(); ++i) {
      population.push_back({std::move(points[i]), fs[i]});
    }
  }

  while (!f.Exhausted()) {
    std::sort(population.begin(), population.end(), ByFitness);

    // Partition into complexes by rank striping (complex k receives points
    // k, k+p, k+2p, ...).
    std::vector<std::vector<std::size_t>> complexes(num_complexes);
    for (std::size_t k = 0; k < num_complexes; ++k) {
      for (std::size_t j = k; j < population.size(); j += num_complexes) {
        complexes[k].push_back(j);
      }
    }

    // CCE, step-synchronous across complexes: at each step every complex
    // proposes a reflection, the reflections are evaluated as one batch,
    // then the contractions of the failures, then the random replacements.
    // All RNG draws stay on the coordinator, in complex order, so the
    // trajectory is identical for any thread count.
    for (std::size_t step = 0; step < subcomplex_size && !f.Exhausted();
         ++step) {
      struct ComplexStep {
        std::size_t worst = 0;
        std::vector<double> centroid;
      };
      std::vector<ComplexStep> steps(num_complexes);
      std::vector<std::vector<double>> proposals(num_complexes);
      for (std::size_t k = 0; k < num_complexes; ++k) {
        const std::vector<std::size_t>& members = complexes[k];
        // Triangular selection favors better-ranked members.
        std::vector<std::size_t> sub;
        while (sub.size() < std::min(subcomplex_size, members.size())) {
          const double u = rng.Uniform();
          const std::size_t rank = static_cast<std::size_t>(
              (1.0 - std::sqrt(1.0 - u)) *
              static_cast<double>(members.size()));
          const std::size_t pick =
              members[std::min(rank, members.size() - 1)];
          if (std::find(sub.begin(), sub.end(), pick) == sub.end()) {
            sub.push_back(pick);
          }
        }
        std::sort(sub.begin(), sub.end(), [&](std::size_t a, std::size_t b) {
          return population[a].f < population[b].f;
        });
        steps[k].worst = sub.back();

        // Centroid of the subcomplex excluding the worst point.
        std::vector<double>& centroid = steps[k].centroid;
        centroid.assign(dim, 0.0);
        for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
          for (std::size_t d = 0; d < dim; ++d) {
            centroid[d] += population[sub[i]].x[d];
          }
        }
        for (double& c : centroid) {
          c /= static_cast<double>(sub.size() - 1);
        }

        // Reflection.
        std::vector<double> reflected(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          reflected[d] =
              2.0 * centroid[d] - population[steps[k].worst].x[d];
        }
        bounds.Clamp(&reflected);
        proposals[k] = std::move(reflected);
      }

      std::vector<double> fs = f.EvaluateBatch(context.pool, proposals);
      std::vector<std::size_t> open;  // complexes whose reflection failed
      for (std::size_t k = 0; k < num_complexes; ++k) {
        if (fs[k] < population[steps[k].worst].f) {
          population[steps[k].worst] = {std::move(proposals[k]), fs[k]};
        } else {
          open.push_back(k);
        }
      }

      // Contraction for the failures.
      proposals.clear();
      proposals.reserve(open.size());
      for (std::size_t k : open) {
        std::vector<double> contracted(dim);
        for (std::size_t d = 0; d < dim; ++d) {
          contracted[d] = 0.5 * (steps[k].centroid[d] +
                                 population[steps[k].worst].x[d]);
        }
        proposals.push_back(std::move(contracted));
      }
      fs = f.EvaluateBatch(context.pool, proposals);
      std::vector<std::size_t> still_open;
      for (std::size_t i = 0; i < open.size(); ++i) {
        const std::size_t k = open[i];
        if (fs[i] < population[steps[k].worst].f) {
          population[steps[k].worst] = {std::move(proposals[i]), fs[i]};
        } else {
          still_open.push_back(k);
        }
      }

      // Random replacement (mutation) when both fail. Skipped for points
      // whose evaluation no longer fits the budget (fs stays +inf).
      proposals.clear();
      proposals.reserve(still_open.size());
      for (std::size_t k : still_open) {
        (void)k;
        proposals.push_back(bounds.Sample(rng));
      }
      fs = f.EvaluateBatch(context.pool, proposals);
      for (std::size_t i = 0; i < still_open.size(); ++i) {
        if (fs[i] < 1e299) {
          population[steps[still_open[i]].worst] = {std::move(proposals[i]),
                                                    fs[i]};
        }
      }
    }
    // Implicit shuffle: the next iteration re-sorts and re-stripes.

    ++iteration;
    if (checkpointer != nullptr && checkpointer->ShouldSnapshot(iteration)) {
      // One shuffling loop is this method's outer batch barrier: every
      // complex has folded back into the population and no RNG draw is in
      // flight, so the snapshot is a clean cut.
      sink->Flush();
      ckpt::Snapshot snapshot = MakeCalibrateSnapshot(
          name(), iteration, budget, bounds, initial, rng, f);
      AddPointsSection(&snapshot, kPopulationSection, population);
      checkpointer->Save(std::move(snapshot));
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

std::vector<std::unique_ptr<Calibrator>> AllCalibrators() {
  std::vector<std::unique_ptr<Calibrator>> calibrators;
  calibrators.push_back(std::make_unique<GaCalibrator>());
  calibrators.push_back(std::make_unique<MonteCarloCalibrator>());
  calibrators.push_back(std::make_unique<LhsCalibrator>());
  calibrators.push_back(std::make_unique<MleCalibrator>());
  calibrators.push_back(std::make_unique<McmcCalibrator>());
  calibrators.push_back(std::make_unique<SaCalibrator>());
  calibrators.push_back(std::make_unique<DreamCalibrator>());
  calibrators.push_back(std::make_unique<SceUaCalibrator>());
  calibrators.push_back(std::make_unique<DeMczCalibrator>());
  calibrators.push_back(std::make_unique<LbfgsCalibrator>());
  calibrators.push_back(std::make_unique<AdamCalibrator>());
  return calibrators;
}

}  // namespace gmr::calibrate
