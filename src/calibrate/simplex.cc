#include <algorithm>
#include <cmath>

#include "calibrate/methods.h"

namespace gmr::calibrate {
namespace {

struct Vertex {
  std::vector<double> x;
  double f = 1e300;
};

/// One Nelder-Mead run from `start` until the simplex collapses or the
/// budget runs out. Minimizing RMSE is the maximum-likelihood estimate
/// under the concentrated Gaussian likelihood, so this doubles as MLE.
void NelderMead(BudgetedObjective& f, const BoxBounds& bounds,
                const std::vector<double>& start, double step_fraction,
                Rng& rng) {
  const std::size_t dim = bounds.dim();
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);
  {
    Vertex v0{start, f(start)};
    simplex.push_back(v0);
  }
  for (std::size_t d = 0; d < dim && !f.Exhausted(); ++d) {
    Vertex v;
    v.x = start;
    const double span = bounds.hi[d] - bounds.lo[d];
    v.x[d] += step_fraction * span * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
    bounds.Clamp(&v.x);
    v.f = f(v.x);
    simplex.push_back(std::move(v));
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  while (!f.Exhausted()) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    // Convergence: simplex collapsed in objective value.
    if (simplex.back().f - simplex.front().f < 1e-10) break;

    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i = 0; i + 1 < simplex.size(); ++i) {
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i].x[d];
    }
    for (double& c : centroid) c /= static_cast<double>(simplex.size() - 1);

    Vertex& worst = simplex.back();
    auto affine = [&](double t) {
      std::vector<double> x(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        x[d] = centroid[d] + t * (centroid[d] - worst.x[d]);
      }
      bounds.Clamp(&x);
      return x;
    };

    Vertex reflected{affine(kAlpha), 0.0};
    reflected.f = f(reflected.x);
    if (reflected.f < simplex.front().f) {
      Vertex expanded{affine(kGamma), 0.0};
      expanded.f = f(expanded.x);
      worst = expanded.f < reflected.f ? std::move(expanded)
                                       : std::move(reflected);
      continue;
    }
    if (reflected.f < simplex[simplex.size() - 2].f) {
      worst = std::move(reflected);
      continue;
    }
    Vertex contracted{affine(-kRho), 0.0};
    contracted.f = f(contracted.x);
    if (contracted.f < worst.f) {
      worst = std::move(contracted);
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 1; i < simplex.size() && !f.Exhausted(); ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        simplex[i].x[d] = simplex[0].x[d] +
                          kSigma * (simplex[i].x[d] - simplex[0].x[d]);
      }
      simplex[i].f = f(simplex[i].x);
    }
  }
}

}  // namespace

CalibrationResult MleCalibrator::Calibrate(const Objective& objective,
                                           const BoxBounds& bounds,
                                           const std::vector<double>& initial,
                                           std::size_t budget, Rng& rng,
                                           const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  // First descent from the expert point, then random restarts.
  NelderMead(f, bounds, initial, /*step_fraction=*/0.15, rng);
  while (!f.Exhausted()) {
    NelderMead(f, bounds, bounds.Sample(rng), /*step_fraction=*/0.25, rng);
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
