#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "calibrate/methods.h"
#include "calibrate/resume.h"
#include "common/check.h"

namespace gmr::calibrate {
namespace {

constexpr char kCurrentSection[] = "current";
constexpr char kGradientSection[] = "gradient";
constexpr char kSMemSection[] = "smem";
constexpr char kYMemSection[] = "ymem";
constexpr char kAdamMSection[] = "adam_m";
constexpr char kAdamVSection[] = "adam_v";

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

bool AllFinite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Budget-accounted gradient access shared by L-BFGS and Adam. Every
/// evaluation — value-only, adjoint gradient, or finite-difference probe —
/// routes through one BudgetedObjective, so the budget, incumbent, and
/// containment accounting are identical to the derivative-free methods'.
/// An adjoint gradient call is charged one unit (it costs a small constant
/// factor of a rollout); the FD fallback charges 2·dim units per gradient,
/// with probes clamped into the box (a probe can become the incumbent, so
/// it must be feasible).
class GradientAccount {
 public:
  GradientAccount(const Objective& objective, const GradientObjective* gradient,
                  const BoxBounds& bounds, std::size_t budget)
      : objective_(&objective),
        gradient_(gradient != nullptr && *gradient ? gradient : nullptr),
        bounds_(&bounds),
        dispatch_([this](const std::vector<double>& x) {
          if (grad_out_ != nullptr) {
            std::vector<double>* g = grad_out_;
            grad_out_ = nullptr;
            return (*gradient_)(x, g);
          }
          return (*objective_)(x);
        }),
        f_(&dispatch_, budget) {}

  BudgetedObjective& f() { return f_; }
  bool has_adjoint() const { return gradient_ != nullptr; }

  double Value(const std::vector<double>& x) { return f_(x); }

  /// Evaluates f and ∂f/∂x. False when the gradient is untrustworthy
  /// (non-finite entries, dimension mismatch, failed/contained probes):
  /// the caller degrades to derivative-free search.
  bool ValueAndGradient(const std::vector<double>& x, double* value,
                        std::vector<double>* g) {
    if (gradient_ != nullptr) {
      grad_out_ = g;
      g->clear();
      *value = f_(x);
      grad_out_ = nullptr;  // not consumed when the budget was exhausted
      return *value < 1e300 && g->size() == x.size() && AllFinite(*g);
    }
    *value = f_(x);
    if (*value >= 1e300) return false;
    g->assign(x.size(), 0.0);
    std::vector<double> probe = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double span = bounds_->hi[i] - bounds_->lo[i];
      const double h =
          std::max(1e-6 * std::max(std::abs(x[i]), 1.0), 1e-9 * span);
      const double xp = std::min(x[i] + h, bounds_->hi[i]);
      const double xm = std::max(x[i] - h, bounds_->lo[i]);
      if (xp == xm) continue;  // degenerate (zero-width) dimension
      probe[i] = xp;
      const double fp = f_(probe);
      probe[i] = xm;
      const double fm = f_(probe);
      probe[i] = x[i];
      if (fp >= 1e300 || fm >= 1e300) return false;
      (*g)[i] = (fp - fm) / (xp - xm);
    }
    return AllFinite(*g);
  }

 private:
  const Objective* objective_;
  const GradientObjective* gradient_;
  const BoxBounds* bounds_;
  std::vector<double>* grad_out_ = nullptr;
  Objective dispatch_;
  BudgetedObjective f_;
};

/// Permanent degrade: gradient information failed (or the local search
/// converged with budget left), so the remaining budget goes to the
/// derivative-free MLE simplex, restarted from the gradient incumbent. The
/// two accounts merge; the better incumbent wins.
CalibrationResult DegradeToDerivativeFree(const Objective& objective,
                                          const BoxBounds& bounds,
                                          const std::vector<double>& initial,
                                          std::size_t budget, Rng& rng,
                                          const obs::RunContext& context,
                                          BudgetedObjective& f) {
  const std::vector<double> start =
      f.best_x().empty() ? initial : f.best_x();
  const std::size_t remaining = budget - std::min(budget, f.used());
  CalibrationResult result{f.best_x(), f.best_f(), f.used(),
                           f.task_failures()};
  if (remaining == 0) return result;
  // The nested run gets a bare context: checkpoints of the outer gradient
  // run must not be overwritten by the inner method's (differently
  // fingerprinted) snapshots.
  obs::RunContext inner_context;
  inner_context.sink = context.sink;
  const CalibrationResult inner = MleCalibrator().Calibrate(
      objective, bounds, start, remaining, rng, inner_context);
  result.evaluations += inner.evaluations;
  result.failed_evaluations += inner.failed_evaluations;
  if (inner.best_objective < result.best_objective) {
    result.best_parameters = inner.best_parameters;
    result.best_objective = inner.best_objective;
  }
  return result;
}

struct LbfgsState {
  std::vector<double> x;
  double fx = 1e300;
  std::vector<double> g;
  std::vector<ScoredPoint> s_mem;  // score slot carries rho = 1/(s·y)
  std::vector<ScoredPoint> y_mem;
};

/// Two-loop recursion over the (s, y) memory; steepest descent when empty.
std::vector<double> LbfgsDirection(const LbfgsState& state) {
  std::vector<double> q = state.g;
  const std::size_t m = state.s_mem.size();
  std::vector<double> alpha(m, 0.0);
  for (std::size_t i = m; i-- > 0;) {
    alpha[i] = state.s_mem[i].f * Dot(state.s_mem[i].x, q);
    for (std::size_t d = 0; d < q.size(); ++d) {
      q[d] -= alpha[i] * state.y_mem[i].x[d];
    }
  }
  if (m > 0) {
    const double yy = Dot(state.y_mem[m - 1].x, state.y_mem[m - 1].x);
    if (yy > 0.0) {
      const double gamma =
          Dot(state.s_mem[m - 1].x, state.y_mem[m - 1].x) / yy;
      for (double& qi : q) qi *= gamma;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double beta = state.s_mem[i].f * Dot(state.y_mem[i].x, q);
    for (std::size_t d = 0; d < q.size(); ++d) {
      q[d] += (alpha[i] - beta) * state.s_mem[i].x[d];
    }
  }
  for (double& qi : q) qi = -qi;
  return q;
}

}  // namespace

CalibrationResult LbfgsCalibrator::Calibrate(
    const Objective& objective, const BoxBounds& bounds,
    const std::vector<double>& initial, std::size_t budget, Rng& rng,
    const obs::RunContext& context) const {
  return CalibrateWithGradient(objective, GradientObjective{}, bounds,
                               initial, budget, rng, context);
}

CalibrationResult LbfgsCalibrator::CalibrateWithGradient(
    const Objective& objective, const GradientObjective& gradient,
    const BoxBounds& bounds, const std::vector<double>& initial,
    std::size_t budget, Rng& rng, const obs::RunContext& context) const {
  constexpr std::size_t kMemory = 5;
  constexpr int kMaxLinesearch = 25;
  constexpr double kArmijo = 1e-4;
  constexpr double kCurvatureFloor = 1e-12;

  GradientAccount account(objective, &gradient, bounds, budget);
  BudgetedObjective& f = account.f();
  f.AttachTelemetry(context.sink, name());
  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  ckpt::Checkpointer* checkpointer = context.checkpointer;

  LbfgsState state;
  std::uint64_t iteration = 0;
  bool resumed = false;
  if (checkpointer != nullptr) {
    if (const ckpt::Snapshot* snapshot = checkpointer->ResumeFor(
            "calibrate",
            CalibrateFingerprint(name(), budget, bounds, initial))) {
      std::vector<ScoredPoint> current;
      std::vector<ScoredPoint> grad_point;
      LbfgsState restored;
      if (ParsePointsSection(*snapshot, kCurrentSection, 1, &current) &&
          ParsePointsSection(*snapshot, kGradientSection, 1, &grad_point) &&
          ParsePointsSection(*snapshot, kSMemSection, 0, &restored.s_mem) &&
          ParsePointsSection(*snapshot, kYMemSection, 0, &restored.y_mem) &&
          restored.s_mem.size() == restored.y_mem.size() &&
          RestoreCalibrateCommon(*snapshot, &rng, &f)) {
        state = std::move(restored);
        state.x = std::move(current[0].x);
        state.fx = current[0].f;
        state.g = std::move(grad_point[0].x);
        iteration = snapshot->step;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    state.x = initial;
    bounds.Clamp(&state.x);
    if (!account.ValueAndGradient(state.x, &state.fx, &state.g)) {
      return DegradeToDerivativeFree(objective, bounds, initial, budget, rng,
                                     context, f);
    }
  }

  while (!f.Exhausted()) {
    std::vector<double> direction = LbfgsDirection(state);
    if (Dot(direction, state.g) >= 0.0) {
      // Memory produced an ascent (or null) direction: reset to steepest
      // descent.
      state.s_mem.clear();
      state.y_mem.clear();
      direction = state.g;
      for (double& d : direction) d = -d;
    }
    // Projected backtracking: candidates are clamped into the box and the
    // Armijo decrease is measured along the projected displacement.
    bool accepted = false;
    std::vector<double> xt;
    double ft = 1e300;
    double t = 1.0;
    for (int ls = 0; ls < kMaxLinesearch && !f.Exhausted(); ++ls, t *= 0.5) {
      xt = state.x;
      for (std::size_t d = 0; d < xt.size(); ++d) {
        xt[d] += t * direction[d];
      }
      bounds.Clamp(&xt);
      if (xt == state.x) break;  // projection absorbed the whole step
      std::vector<double> displacement(xt.size());
      for (std::size_t d = 0; d < xt.size(); ++d) {
        displacement[d] = xt[d] - state.x[d];
      }
      const double slope = Dot(state.g, displacement);
      ft = account.Value(xt);
      if (ft < state.fx + kArmijo * std::min(slope, 0.0) && ft < 1e300) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      // Converged (or the line search ran dry): hand the leftover budget
      // to the derivative-free path rather than idling.
      return DegradeToDerivativeFree(objective, bounds, initial, budget, rng,
                                     context, f);
    }
    std::vector<double> g_next;
    double f_next = 1e300;
    if (!account.ValueAndGradient(xt, &f_next, &g_next)) {
      return DegradeToDerivativeFree(objective, bounds, initial, budget, rng,
                                     context, f);
    }
    ScoredPoint s;
    ScoredPoint y;
    s.x.resize(xt.size());
    y.x.resize(xt.size());
    for (std::size_t d = 0; d < xt.size(); ++d) {
      s.x[d] = xt[d] - state.x[d];
      y.x[d] = g_next[d] - state.g[d];
    }
    const double sy = Dot(s.x, y.x);
    if (sy > kCurvatureFloor) {
      s.f = 1.0 / sy;  // rho rides in the score slot
      y.f = 0.0;
      state.s_mem.push_back(std::move(s));
      state.y_mem.push_back(std::move(y));
      if (state.s_mem.size() > kMemory) {
        state.s_mem.erase(state.s_mem.begin());
        state.y_mem.erase(state.y_mem.begin());
      }
    }
    state.x = std::move(xt);
    state.fx = f_next;
    state.g = std::move(g_next);

    ++iteration;
    if (checkpointer != nullptr && checkpointer->ShouldSnapshot(iteration)) {
      sink->Flush();
      ckpt::Snapshot snapshot = MakeCalibrateSnapshot(
          name(), iteration, budget, bounds, initial, rng, f);
      AddPointsSection(&snapshot, kCurrentSection, {{state.x, state.fx}});
      AddPointsSection(&snapshot, kGradientSection, {{state.g, 0.0}});
      AddPointsSection(&snapshot, kSMemSection, state.s_mem);
      AddPointsSection(&snapshot, kYMemSection, state.y_mem);
      checkpointer->Save(std::move(snapshot));
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

CalibrationResult AdamCalibrator::Calibrate(
    const Objective& objective, const BoxBounds& bounds,
    const std::vector<double>& initial, std::size_t budget, Rng& rng,
    const obs::RunContext& context) const {
  return CalibrateWithGradient(objective, GradientObjective{}, bounds,
                               initial, budget, rng, context);
}

CalibrationResult AdamCalibrator::CalibrateWithGradient(
    const Objective& objective, const GradientObjective& gradient,
    const BoxBounds& bounds, const std::vector<double>& initial,
    std::size_t budget, Rng& rng, const obs::RunContext& context) const {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEpsilon = 1e-8;
  constexpr double kLrSpanFraction = 0.02;

  GradientAccount account(objective, &gradient, bounds, budget);
  BudgetedObjective& f = account.f();
  f.AttachTelemetry(context.sink, name());
  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  ckpt::Checkpointer* checkpointer = context.checkpointer;
  const std::size_t dim = bounds.dim();

  std::vector<double> x;
  double fx = 1e300;
  std::vector<double> g;
  std::vector<double> m(dim, 0.0);
  std::vector<double> v(dim, 0.0);
  std::uint64_t iteration = 0;
  bool resumed = false;
  if (checkpointer != nullptr) {
    if (const ckpt::Snapshot* snapshot = checkpointer->ResumeFor(
            "calibrate",
            CalibrateFingerprint(name(), budget, bounds, initial))) {
      std::vector<ScoredPoint> current;
      std::vector<ScoredPoint> grad_point;
      std::vector<ScoredPoint> m_point;
      std::vector<ScoredPoint> v_point;
      if (ParsePointsSection(*snapshot, kCurrentSection, 1, &current) &&
          ParsePointsSection(*snapshot, kGradientSection, 1, &grad_point) &&
          ParsePointsSection(*snapshot, kAdamMSection, 1, &m_point) &&
          ParsePointsSection(*snapshot, kAdamVSection, 1, &v_point) &&
          RestoreCalibrateCommon(*snapshot, &rng, &f)) {
        x = std::move(current[0].x);
        fx = current[0].f;
        g = std::move(grad_point[0].x);
        m = std::move(m_point[0].x);
        v = std::move(v_point[0].x);
        iteration = snapshot->step;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    x = initial;
    bounds.Clamp(&x);
    if (!account.ValueAndGradient(x, &fx, &g)) {
      return DegradeToDerivativeFree(objective, bounds, initial, budget, rng,
                                     context, f);
    }
  }

  while (!f.Exhausted()) {
    ++iteration;
    const double bias1 =
        1.0 - std::pow(kBeta1, static_cast<double>(iteration));
    const double bias2 =
        1.0 - std::pow(kBeta2, static_cast<double>(iteration));
    for (std::size_t d = 0; d < dim; ++d) {
      m[d] = kBeta1 * m[d] + (1.0 - kBeta1) * g[d];
      v[d] = kBeta2 * v[d] + (1.0 - kBeta2) * g[d] * g[d];
      const double m_hat = m[d] / bias1;
      const double v_hat = v[d] / bias2;
      const double lr = kLrSpanFraction * (bounds.hi[d] - bounds.lo[d]);
      x[d] -= lr * m_hat / (std::sqrt(v_hat) + kEpsilon);
    }
    bounds.Clamp(&x);
    if (!account.ValueAndGradient(x, &fx, &g)) {
      return DegradeToDerivativeFree(objective, bounds, initial, budget, rng,
                                     context, f);
    }
    if (checkpointer != nullptr && checkpointer->ShouldSnapshot(iteration)) {
      sink->Flush();
      ckpt::Snapshot snapshot = MakeCalibrateSnapshot(
          name(), iteration, budget, bounds, initial, rng, f);
      AddPointsSection(&snapshot, kCurrentSection, {{x, fx}});
      AddPointsSection(&snapshot, kGradientSection, {{g, 0.0}});
      AddPointsSection(&snapshot, kAdamMSection, {{m, 0.0}});
      AddPointsSection(&snapshot, kAdamVSection, {{v, 0.0}});
      checkpointer->Save(std::move(snapshot));
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
