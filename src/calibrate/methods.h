#ifndef GMR_CALIBRATE_METHODS_H_
#define GMR_CALIBRATE_METHODS_H_

#include <memory>
#include <vector>

#include "calibrate/calibrator.h"

namespace gmr::calibrate {

/// The nine model-calibration baselines of paper Section IV-B3. Each method
/// follows the core update rule of its published form (citations in the
/// paper); all optimize the same bounded parameter vector on the same
/// objective, as in the SPOTPY setup the paper used.

/// (a) GA: real-coded genetic algorithm — tournament selection, BLX-alpha
/// blend crossover, Gaussian mutation, elitism.
class GaCalibrator : public Calibrator {
 public:
  const char* name() const override { return "GA"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (b) MC: uniform Monte Carlo random search.
class MonteCarloCalibrator : public Calibrator {
 public:
  const char* name() const override { return "MC"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (c) LHS: Latin hypercube sampling in successive stratified batches.
class LhsCalibrator : public Calibrator {
 public:
  const char* name() const override { return "LHS"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (d) MLE: maximum likelihood via Nelder-Mead simplex with restarts
/// (minimizing RMSE is equivalent to maximizing the concentrated Gaussian
/// likelihood).
class MleCalibrator : public Calibrator {
 public:
  const char* name() const override { return "MLE"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (e) MCMC: adaptive random-walk Metropolis; the likelihood is the
/// concentrated Gaussian likelihood of the residuals.
class McmcCalibrator : public Calibrator {
 public:
  const char* name() const override { return "MCMC"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (f) SA: simulated annealing with geometric cooling.
class SaCalibrator : public Calibrator {
 public:
  const char* name() const override { return "SA"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (g) DREAM: differential evolution adaptive Metropolis (Vrugt 2016):
/// multiple chains, DE proposals with subspace crossover, outlier-safe
/// Metropolis acceptance.
class DreamCalibrator : public Calibrator {
 public:
  const char* name() const override { return "DREAM"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (h) SCE-UA: shuffled complex evolution (Duan et al. 1994): the
/// population is partitioned into complexes, each evolved by competitive
/// simplex (CCE) steps, then shuffled.
class SceUaCalibrator : public Calibrator {
 public:
  const char* name() const override { return "SCE-UA"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (i) DE-MCz: differential evolution Markov chain with a sampled archive Z
/// (ter Braak & Vrugt 2008).
class DeMczCalibrator : public Calibrator {
 public:
  const char* name() const override { return "DE-MCz"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
};

/// (j) L-BFGS: limited-memory quasi-Newton with projected backtracking
/// line search, consuming the exact reverse-mode rollout gradient when the
/// problem carries one (grad/adjoint.h) and central finite differences
/// otherwise. Gradient failures — tape faults, non-finite adjoints — and
/// line-search convergence degrade permanently to the derivative-free MLE
/// simplex on the remaining budget. Deterministic: the gradient path draws
/// no random numbers.
class LbfgsCalibrator : public Calibrator {
 public:
  const char* name() const override { return "L-BFGS"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
  CalibrationResult CalibrateWithGradient(
      const Objective& objective, const GradientObjective& gradient,
      const BoxBounds& bounds, const std::vector<double>& initial,
      std::size_t budget, Rng& rng,
      const obs::RunContext& context) const override;
};

/// (k) Adam: first-order moment-adaptive descent with per-dimension step
/// sizes scaled to the box span. Same gradient sourcing and degrade
/// discipline as L-BFGS.
class AdamCalibrator : public Calibrator {
 public:
  const char* name() const override { return "Adam"; }
  using Calibrator::Calibrate;
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng,
                              const obs::RunContext& context) const override;
  CalibrationResult CalibrateWithGradient(
      const Objective& objective, const GradientObjective& gradient,
      const BoxBounds& bounds, const std::vector<double>& initial,
      std::size_t budget, Rng& rng,
      const obs::RunContext& context) const override;
};

/// All eleven calibrators: the nine Table V baselines in table order, then
/// the two gradient-based methods.
std::vector<std::unique_ptr<Calibrator>> AllCalibrators();

}  // namespace gmr::calibrate

#endif  // GMR_CALIBRATE_METHODS_H_
