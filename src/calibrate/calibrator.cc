#include "calibrate/calibrator.h"

#include <algorithm>

#include "common/check.h"

namespace gmr::calibrate {

void BoxBounds::Clamp(std::vector<double>* x) const {
  GMR_CHECK_EQ(x->size(), lo.size());
  for (std::size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::min(std::max((*x)[i], lo[i]), hi[i]);
  }
}

std::vector<double> BoxBounds::Sample(Rng& rng) const {
  std::vector<double> x(lo.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.Uniform(lo[i], hi[i]);
  return x;
}

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors) {
  BoxBounds bounds;
  bounds.lo.reserve(priors.size());
  bounds.hi.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    bounds.lo.push_back(prior.lo);
    bounds.hi.push_back(prior.hi);
  }
  return bounds;
}

double BudgetedObjective::operator()(const std::vector<double>& x) {
  if (used_ >= budget_) return 1e300;
  ++used_;
  double f = 1e300;
  // Containment: an objective that throws is charged against the budget and
  // scored as the exhaustion sentinel; the calibration continues.
  try {
    f = (*objective_)(x);
  } catch (...) {
    ++task_failures_;
    return 1e300;
  }
  if (f < best_f_) {
    best_f_ = f;
    best_x_ = x;
  }
  return f;
}

std::vector<double> BudgetedObjective::EvaluateBatch(
    ThreadPool* pool, const std::vector<std::vector<double>>& xs) {
  std::vector<double> fs(xs.size(), 1e300);
  const std::size_t take = std::min(xs.size(), budget_ - used_);
  const std::vector<TaskFailure> failures = ParallelFor(
      pool, take,
      [this, &xs, &fs](std::size_t i) { fs[i] = (*objective_)(xs[i]); });
  for (const TaskFailure& failure : failures) {
    // A throwing candidate keeps the sentinel score (a partially written
    // fs entry is overwritten) and can never become the incumbent.
    fs[failure.index] = 1e300;
    ++task_failures_;
  }
  used_ += take;
  for (std::size_t i = 0; i < take; ++i) {
    if (fs[i] < best_f_) {
      best_f_ = fs[i];
      best_x_ = xs[i];
    }
  }
  return fs;
}

}  // namespace gmr::calibrate
