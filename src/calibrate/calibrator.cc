#include "calibrate/calibrator.h"

#include <algorithm>

#include "calibrate/resume.h"
#include "ckpt/checkpoint.h"
#include "common/check.h"
#include "obs/manifest.h"

namespace gmr::calibrate {

void BoxBounds::Clamp(std::vector<double>* x) const {
  GMR_CHECK_EQ(x->size(), lo.size());
  for (std::size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::min(std::max((*x)[i], lo[i]), hi[i]);
  }
}

std::vector<double> BoxBounds::Sample(Rng& rng) const {
  std::vector<double> x(lo.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.Uniform(lo[i], hi[i]);
  return x;
}

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors) {
  BoxBounds bounds;
  bounds.lo.reserve(priors.size());
  bounds.hi.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    bounds.lo.push_back(prior.lo);
    bounds.hi.push_back(prior.hi);
  }
  return bounds;
}

void BudgetedObjective::AttachTelemetry(obs::TelemetrySink* sink,
                                        const char* method,
                                        std::size_t progress_stride) {
  sink_ = obs::ResolveSink(sink);
  method_ = method;
  progress_stride_ = std::max<std::size_t>(progress_stride, 1);
}

double BudgetedObjective::operator()(const std::vector<double>& x) {
  if (used_ >= budget_) return 1e300;
  ++used_;
  double f = 1e300;
  bool failed = false;
  // Containment: an objective that throws is charged against the budget and
  // scored as the exhaustion sentinel; the calibration continues.
  try {
    f = (*objective_)(x);
  } catch (...) {
    ++task_failures_;
    failed = true;
  }
  if (!failed && f < best_f_) {
    best_f_ = f;
    best_x_ = x;
  }
  // Serial-path cadence: one progress event per `progress_stride_` calls,
  // a pure function of the call count (deterministic).
  if (sink_->enabled() && used_ % progress_stride_ == 0) {
    obs::TraceEvent event("calibrate_progress");
    event.Label("method", method_)
        .Field("used", static_cast<double>(used_))
        .Field("best_f", best_f_);
    sink_->Emit(std::move(event));
  }
  return failed ? 1e300 : f;
}

std::vector<double> BudgetedObjective::EvaluateBatch(
    ThreadPool* pool, const std::vector<std::vector<double>>& xs) {
  std::vector<double> fs(xs.size(), 1e300);
  const std::size_t take = std::min(xs.size(), budget_ - used_);
  const std::vector<TaskFailure> failures = ParallelFor(
      pool, take,
      [this, &xs, &fs](std::size_t i) { fs[i] = (*objective_)(xs[i]); });
  for (const TaskFailure& failure : failures) {
    // A throwing candidate keeps the sentinel score (a partially written
    // fs entry is overwritten) and can never become the incumbent.
    fs[failure.index] = 1e300;
    ++task_failures_;
  }
  used_ += take;
  for (std::size_t i = 0; i < take; ++i) {
    if (fs[i] < best_f_) {
      best_f_ = fs[i];
      best_x_ = xs[i];
    }
  }
  if (sink_->enabled()) {
    // Batch barrier: coordinator-only emission, deterministic order.
    obs::TraceEvent event("calibrate_batch");
    event.Label("method", method_)
        .Field("n", static_cast<double>(xs.size()))
        .Field("evaluated", static_cast<double>(take))
        .Field("used", static_cast<double>(used_))
        .Field("task_failures", static_cast<double>(failures.size()))
        .Field("best_f", best_f_);
    sink_->Emit(std::move(event));
  }
  return fs;
}

CalibrationResult Run(const Calibrator& method,
                      const CalibrationConfig& config,
                      const CalibrationProblem& problem,
                      const obs::RunContext& context) {
  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  // A resumed run continues an existing trace whose manifest is already on
  // disk; re-emitting would make the interrupted trace diverge from an
  // uninterrupted one. ResumeFor caches the decision, so the method's own
  // identical query below sees the same snapshot without duplicate events.
  bool resuming = false;
  if (context.checkpointer != nullptr) {
    resuming = context.checkpointer->ResumeFor(
                   "calibrate",
                   CalibrateFingerprint(method.name(), config.budget,
                                        problem.bounds, problem.initial)) !=
               nullptr;
  }
  if (sink->enabled() && !resuming) {
    obs::RunManifest manifest =
        obs::MakeRunManifest("calibrate", config.seed);
    manifest.config_fields = {
        {"budget", static_cast<double>(config.budget)},
        {"dim", static_cast<double>(problem.bounds.dim())},
    };
    manifest.config_labels = {{"method", method.name()}};
    manifest.num_threads =
        context.pool != nullptr ? context.pool->num_threads() : 1;
    obs::EmitManifest(sink, manifest);
  }
  Rng own_rng(config.seed);
  Rng& rng = context.rng != nullptr ? *context.rng : own_rng;
  CalibrationResult result =
      method.Calibrate(problem.objective, problem.bounds, problem.initial,
                       config.budget, rng, context);
  if (sink->enabled()) {
    obs::TraceEvent event("calibrate_result");
    event.Label("method", method.name())
        .Field("best_objective", result.best_objective)
        .Field("evaluations", static_cast<double>(result.evaluations))
        .Field("failed_evaluations",
               static_cast<double>(result.failed_evaluations));
    sink->Emit(std::move(event));
  }
  return result;
}

}  // namespace gmr::calibrate
