#include "calibrate/calibrator.h"

#include <algorithm>
#include <limits>

#include "calibrate/resume.h"
#include "ckpt/checkpoint.h"
#include "common/check.h"
#include "obs/manifest.h"

namespace gmr::calibrate {

void BoxBounds::Clamp(std::vector<double>* x) const {
  GMR_CHECK_EQ(x->size(), lo.size());
  for (std::size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = std::min(std::max((*x)[i], lo[i]), hi[i]);
  }
}

std::vector<double> BoxBounds::Sample(Rng& rng) const {
  std::vector<double> x(lo.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.Uniform(lo[i], hi[i]);
  return x;
}

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors) {
  BoxBounds bounds;
  bounds.lo.reserve(priors.size());
  bounds.hi.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    bounds.lo.push_back(prior.lo);
    bounds.hi.push_back(prior.hi);
  }
  return bounds;
}

void BudgetedObjective::AttachTelemetry(obs::TelemetrySink* sink,
                                        const char* method,
                                        std::size_t progress_stride) {
  sink_ = obs::ResolveSink(sink);
  method_ = method;
  progress_stride_ = std::max<std::size_t>(progress_stride, 1);
}

double BudgetedObjective::operator()(const std::vector<double>& x) {
  if (used_ >= budget_) return 1e300;
  ++used_;
  double f = 1e300;
  bool failed = false;
  // Containment: an objective that throws is charged against the budget and
  // scored as the exhaustion sentinel; the calibration continues.
  try {
    f = (*objective_)(x);
  } catch (...) {
    ++task_failures_;
    failed = true;
  }
  if (!failed && f < best_f_) {
    best_f_ = f;
    best_x_ = x;
  }
  // Serial-path cadence: one progress event per `progress_stride_` calls,
  // a pure function of the call count (deterministic).
  if (sink_->enabled() && used_ % progress_stride_ == 0) {
    obs::TraceEvent event("calibrate_progress");
    event.Label("method", method_)
        .Field("used", static_cast<double>(used_))
        .Field("best_f", best_f_);
    sink_->Emit(std::move(event));
  }
  return failed ? 1e300 : f;
}

std::vector<double> BudgetedObjective::EvaluateBatch(
    ThreadPool* pool, const std::vector<std::vector<double>>& xs) {
  std::vector<double> fs(xs.size(), 1e300);
  const std::size_t take = std::min(xs.size(), budget_ - used_);
  const std::vector<TaskFailure> failures = ParallelFor(
      pool, take,
      [this, &xs, &fs](std::size_t i) { fs[i] = (*objective_)(xs[i]); });
  for (const TaskFailure& failure : failures) {
    // A throwing candidate keeps the sentinel score (a partially written
    // fs entry is overwritten) and can never become the incumbent.
    fs[failure.index] = 1e300;
    ++task_failures_;
  }
  used_ += take;
  for (std::size_t i = 0; i < take; ++i) {
    if (fs[i] < best_f_) {
      best_f_ = fs[i];
      best_x_ = xs[i];
    }
  }
  if (sink_->enabled()) {
    // Batch barrier: coordinator-only emission, deterministic order.
    obs::TraceEvent event("calibrate_batch");
    event.Label("method", method_)
        .Field("n", static_cast<double>(xs.size()))
        .Field("evaluated", static_cast<double>(take))
        .Field("used", static_cast<double>(used_))
        .Field("task_failures", static_cast<double>(failures.size()))
        .Field("best_f", best_f_);
    sink_->Emit(std::move(event));
  }
  return fs;
}

CalibrationResult Run(const Calibrator& method,
                      const CalibrationConfig& config,
                      const CalibrationProblem& problem,
                      const obs::RunContext& context) {
  // Reduce to the active subspace when a mask excludes some dimensions:
  // the method sees a smaller box (bounds, initial, and the objective all
  // reindexed), inactive parameters stay pinned at their initial values,
  // and the result is expanded back to the full vector afterwards.
  const std::size_t full_dim = problem.bounds.dim();
  std::vector<std::size_t> active_dims;
  if (!problem.active.empty()) {
    GMR_CHECK_EQ(problem.active.size(), full_dim);
    for (std::size_t i = 0; i < full_dim; ++i) {
      if (problem.active[i] != 0) active_dims.push_back(i);
    }
  }
  const bool reduced =
      !problem.active.empty() && active_dims.size() < full_dim;
  BoxBounds bounds;
  std::vector<double> initial;
  Objective reduced_objective;
  GradientObjective reduced_gradient;
  const Objective* objective = &problem.objective;
  const GradientObjective* gradient = &problem.gradient;
  if (reduced) {
    GMR_CHECK_EQ(problem.initial.size(), full_dim);
    for (const std::size_t i : active_dims) {
      bounds.lo.push_back(problem.bounds.lo[i]);
      bounds.hi.push_back(problem.bounds.hi[i]);
      initial.push_back(problem.initial[i]);
    }
    // Safe for concurrent calls (each builds its own full vector), as the
    // population-based methods require of the objective.
    reduced_objective = [&problem,
                         &active_dims](const std::vector<double>& x) {
      std::vector<double> full = problem.initial;
      for (std::size_t j = 0; j < active_dims.size(); ++j) {
        full[active_dims[j]] = x[j];
      }
      return problem.objective(full);
    };
    objective = &reduced_objective;
    if (problem.gradient) {
      // The reduced gradient evaluates the full gradient at the expanded
      // point and slices out the active dimensions; frozen (provably
      // inactive) dimensions never reach the method. A full-side failure
      // (size mismatch) propagates as an all-NaN reduced gradient.
      reduced_gradient = [&problem, &active_dims](
                             const std::vector<double>& x,
                             std::vector<double>* g) {
        std::vector<double> full = problem.initial;
        for (std::size_t j = 0; j < active_dims.size(); ++j) {
          full[active_dims[j]] = x[j];
        }
        std::vector<double> full_g;
        const double value = problem.gradient(full, &full_g);
        g->assign(x.size(), std::numeric_limits<double>::quiet_NaN());
        if (full_g.size() == full.size()) {
          for (std::size_t j = 0; j < active_dims.size(); ++j) {
            (*g)[j] = full_g[active_dims[j]];
          }
        }
        return value;
      };
      gradient = &reduced_gradient;
    }
  } else {
    bounds = problem.bounds;
    initial = problem.initial;
  }
  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  // A resumed run continues an existing trace whose manifest is already on
  // disk; re-emitting would make the interrupted trace diverge from an
  // uninterrupted one. ResumeFor caches the decision, so the method's own
  // identical query below sees the same snapshot without duplicate events.
  bool resuming = false;
  if (context.checkpointer != nullptr) {
    // Fingerprint the *reduced* problem: the methods resume against the
    // box and start point they actually search.
    resuming = context.checkpointer->ResumeFor(
                   "calibrate",
                   CalibrateFingerprint(method.name(), config.budget, bounds,
                                        initial)) != nullptr;
  }
  if (sink->enabled() && !resuming) {
    obs::RunManifest manifest =
        obs::MakeRunManifest("calibrate", config.seed);
    manifest.config_fields = {
        {"budget", static_cast<double>(config.budget)},
        {"dim", static_cast<double>(full_dim)},
        {"active_dim", static_cast<double>(bounds.dim())},
    };
    manifest.config_labels = {{"method", method.name()}};
    manifest.num_threads =
        context.pool != nullptr ? context.pool->num_threads() : 1;
    obs::EmitManifest(sink, manifest);
  }
  Rng own_rng(config.seed);
  Rng& rng = context.rng != nullptr ? *context.rng : own_rng;
  CalibrationResult result =
      problem.gradient
          ? method.CalibrateWithGradient(*objective, *gradient, bounds,
                                         initial, config.budget, rng, context)
          : method.Calibrate(*objective, bounds, initial, config.budget, rng,
                             context);
  if (reduced && result.best_parameters.size() == active_dims.size()) {
    std::vector<double> full = problem.initial;
    for (std::size_t j = 0; j < active_dims.size(); ++j) {
      full[active_dims[j]] = result.best_parameters[j];
    }
    result.best_parameters = std::move(full);
  }
  if (sink->enabled()) {
    obs::TraceEvent event("calibrate_result");
    event.Label("method", method.name())
        .Field("best_objective", result.best_objective)
        .Field("evaluations", static_cast<double>(result.evaluations))
        .Field("failed_evaluations",
               static_cast<double>(result.failed_evaluations));
    sink->Emit(std::move(event));
  }
  return result;
}

}  // namespace gmr::calibrate
