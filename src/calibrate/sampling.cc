#include <algorithm>

#include "calibrate/methods.h"
#include "common/check.h"

namespace gmr::calibrate {

CalibrationResult MonteCarloCalibrator::Calibrate(
    const Objective& objective, const BoxBounds& bounds,
    const std::vector<double>& initial, std::size_t budget, Rng& rng,
    const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  f(initial);  // The expert point is always worth one evaluation.
  while (!f.Exhausted()) f(bounds.Sample(rng));
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

CalibrationResult LhsCalibrator::Calibrate(const Objective& objective,
                                           const BoxBounds& bounds,
                                           const std::vector<double>& initial,
                                           std::size_t budget, Rng& rng,
                                           const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  f(initial);
  const std::size_t dim = bounds.dim();
  // Stratified batches: each batch of size m places exactly one sample in
  // each of m equiprobable strata per dimension, with independently
  // shuffled stratum assignments per dimension.
  const std::size_t batch = std::max<std::size_t>(10, dim);
  while (!f.Exhausted()) {
    std::vector<std::vector<std::size_t>> strata(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      strata[d].resize(batch);
      for (std::size_t i = 0; i < batch; ++i) strata[d][i] = i;
      rng.Shuffle(strata[d]);
    }
    for (std::size_t i = 0; i < batch && !f.Exhausted(); ++i) {
      std::vector<double> x(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        const double cell_lo =
            static_cast<double>(strata[d][i]) / static_cast<double>(batch);
        const double u = (cell_lo + rng.Uniform() / static_cast<double>(batch));
        x[d] = bounds.lo[d] + u * (bounds.hi[d] - bounds.lo[d]);
      }
      f(x);
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
