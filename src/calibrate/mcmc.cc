#include <algorithm>
#include <cmath>
#include <utility>

#include "calibrate/methods.h"
#include "calibrate/resume.h"

namespace gmr::calibrate {
namespace {

constexpr char kChainsSection[] = "chains";

/// Concentrated Gaussian log-likelihood up to constants: maximizing it is
/// minimizing log(RMSE). The scale plays the role of the number of
/// observations and controls posterior peakedness.
constexpr double kLikelihoodScale = 200.0;

double LogLikelihood(double rmse) {
  return -kLikelihoodScale * std::log(std::max(rmse, 1e-12));
}

}  // namespace

CalibrationResult McmcCalibrator::Calibrate(const Objective& objective,
                                            const BoxBounds& bounds,
                                            const std::vector<double>& initial,
                                            std::size_t budget, Rng& rng,
                                            const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  const std::size_t dim = bounds.dim();
  std::vector<double> current = initial;
  double current_ll = LogLikelihood(f(current));

  // Adaptive random-walk Metropolis: the global step scale adapts toward
  // the canonical ~23% acceptance rate.
  double step_scale = 0.05;
  double acceptance_ema = 0.23;
  while (!f.Exhausted()) {
    std::vector<double> candidate = current;
    for (std::size_t d = 0; d < dim; ++d) {
      candidate[d] +=
          rng.Gaussian(0.0, step_scale * (bounds.hi[d] - bounds.lo[d]));
    }
    bounds.Clamp(&candidate);
    const double candidate_ll = LogLikelihood(f(candidate));
    const double log_alpha = candidate_ll - current_ll;
    const bool accept =
        log_alpha >= 0.0 || rng.Bernoulli(std::exp(log_alpha));
    if (accept) {
      current = std::move(candidate);
      current_ll = candidate_ll;
    }
    acceptance_ema = 0.99 * acceptance_ema + 0.01 * (accept ? 1.0 : 0.0);
    step_scale *= acceptance_ema > 0.23 ? 1.01 : 0.99;
    step_scale = std::min(std::max(step_scale, 1e-4), 0.5);
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

CalibrationResult DreamCalibrator::Calibrate(const Objective& objective,
                                             const BoxBounds& bounds,
                                             const std::vector<double>& initial,
                                             std::size_t budget, Rng& rng,
                                             const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  const std::size_t dim = bounds.dim();
  const std::size_t num_chains = std::max<std::size_t>(8, dim / 2);

  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  ckpt::Checkpointer* checkpointer = context.checkpointer;
  std::vector<std::vector<double>> chains(num_chains);
  std::vector<double> lls(num_chains, -1e300);
  std::uint64_t sweep = 0;
  bool resumed = false;
  if (checkpointer != nullptr) {
    if (const ckpt::Snapshot* snapshot = checkpointer->ResumeFor(
            "calibrate",
            CalibrateFingerprint(name(), budget, bounds, initial))) {
      // Chain states checkpoint as scored points whose score slot holds the
      // chain's log-likelihood (not an objective value).
      std::vector<ScoredPoint> restored;
      if (ParsePointsSection(*snapshot, kChainsSection, num_chains,
                             &restored) &&
          RestoreCalibrateCommon(*snapshot, &rng, &f)) {
        for (std::size_t c = 0; c < num_chains; ++c) {
          chains[c] = std::move(restored[c].x);
          lls[c] = restored[c].f;
        }
        sweep = snapshot->step;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    chains[0] = initial;
    for (std::size_t c = 1; c < num_chains; ++c) {
      chains[c] = bounds.Sample(rng);
    }
    const std::vector<double> fs = f.EvaluateBatch(context.pool, chains);
    for (std::size_t c = 0; c < num_chains; ++c) {
      lls[c] = LogLikelihood(fs[c]);
    }
  }

  // Synchronous parallel DREAM: every sweep builds one proposal per chain
  // against the sweep-start chain states (all RNG on the coordinator),
  // evaluates them as one batch, then accepts/rejects chain by chain. The
  // trajectory is identical for any thread count.
  constexpr double kCrossover = 0.3;  // CR: per-dimension update probability
  while (!f.Exhausted()) {
    std::vector<std::vector<double>> proposals(num_chains);
    for (std::size_t c = 0; c < num_chains; ++c) {
      // DE proposal from two other chains; subspace crossover selects the
      // dimensions that move.
      std::size_t r1 = rng.PickIndex(chains);
      std::size_t r2 = rng.PickIndex(chains);
      while (r1 == c) r1 = rng.PickIndex(chains);
      while (r2 == c || r2 == r1) r2 = rng.PickIndex(chains);

      std::vector<bool> move(dim);
      std::size_t d_eff = 0;
      for (std::size_t d = 0; d < dim; ++d) {
        move[d] = rng.Bernoulli(kCrossover);
        if (move[d]) ++d_eff;
      }
      if (d_eff == 0) {
        const std::size_t d = static_cast<std::size_t>(
            rng.UniformInt(static_cast<std::uint64_t>(dim)));
        move[d] = true;
        d_eff = 1;
      }
      // gamma = 2.38 / sqrt(2 d'); unit jumps 10% of the time enable mode
      // hopping (Vrugt 2016).
      const double gamma =
          rng.Bernoulli(0.1)
              ? 1.0
              : 2.38 / std::sqrt(2.0 * static_cast<double>(d_eff));

      std::vector<double> candidate = chains[c];
      for (std::size_t d = 0; d < dim; ++d) {
        if (!move[d]) continue;
        const double e =
            rng.Gaussian(0.0, 1e-3 * (bounds.hi[d] - bounds.lo[d]));
        candidate[d] += gamma * (chains[r1][d] - chains[r2][d]) + e;
      }
      bounds.Clamp(&candidate);
      proposals[c] = std::move(candidate);
    }

    const std::vector<double> fs = f.EvaluateBatch(context.pool, proposals);
    for (std::size_t c = 0; c < num_chains; ++c) {
      if (fs[c] >= 1e299) continue;  // past the budget; chain unchanged
      const double candidate_ll = LogLikelihood(fs[c]);
      const double log_alpha = candidate_ll - lls[c];
      if (log_alpha >= 0.0 || rng.Bernoulli(std::exp(log_alpha))) {
        chains[c] = std::move(proposals[c]);
        lls[c] = candidate_ll;
      }
    }

    ++sweep;
    if (checkpointer != nullptr && checkpointer->ShouldSnapshot(sweep)) {
      sink->Flush();
      ckpt::Snapshot snapshot = MakeCalibrateSnapshot(
          name(), sweep, budget, bounds, initial, rng, f);
      std::vector<ScoredPoint> points;
      points.reserve(num_chains);
      for (std::size_t c = 0; c < num_chains; ++c) {
        points.push_back({chains[c], lls[c]});
      }
      AddPointsSection(&snapshot, kChainsSection, points);
      checkpointer->Save(std::move(snapshot));
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

CalibrationResult DeMczCalibrator::Calibrate(const Objective& objective,
                                             const BoxBounds& bounds,
                                             const std::vector<double>& initial,
                                             std::size_t budget, Rng& rng,
                                             const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  const std::size_t dim = bounds.dim();
  const std::size_t num_chains = 3;  // DE-MCz needs few parallel chains.
  const double gamma_base = 2.38 / std::sqrt(2.0 * static_cast<double>(dim));

  // Archive Z of past states, seeded with an initial sample.
  std::vector<std::vector<double>> archive;
  archive.push_back(initial);
  for (std::size_t i = 0; i < std::max<std::size_t>(10, dim) && !f.Exhausted();
       ++i) {
    archive.push_back(bounds.Sample(rng));
  }

  std::vector<std::vector<double>> chains(num_chains);
  std::vector<double> lls(num_chains);
  for (std::size_t c = 0; c < num_chains && !f.Exhausted(); ++c) {
    chains[c] = c == 0 ? initial : bounds.Sample(rng);
    lls[c] = LogLikelihood(f(chains[c]));
  }

  std::size_t iteration = 0;
  while (!f.Exhausted()) {
    for (std::size_t c = 0; c < num_chains && !f.Exhausted(); ++c) {
      // Proposal difference sampled from the archive, not the chains.
      std::size_t r1 = rng.PickIndex(archive);
      std::size_t r2 = rng.PickIndex(archive);
      while (r2 == r1 && archive.size() > 1) r2 = rng.PickIndex(archive);
      const double gamma = rng.Bernoulli(0.1) ? 1.0 : gamma_base;
      std::vector<double> candidate = chains[c];
      for (std::size_t d = 0; d < dim; ++d) {
        const double e =
            rng.Gaussian(0.0, 1e-3 * (bounds.hi[d] - bounds.lo[d]));
        candidate[d] += gamma * (archive[r1][d] - archive[r2][d]) + e;
      }
      bounds.Clamp(&candidate);
      const double candidate_ll = LogLikelihood(f(candidate));
      const double log_alpha = candidate_ll - lls[c];
      if (log_alpha >= 0.0 || rng.Bernoulli(std::exp(log_alpha))) {
        chains[c] = std::move(candidate);
        lls[c] = candidate_ll;
      }
    }
    // Thin: append the chain states to Z every few sweeps.
    if (++iteration % 5 == 0) {
      for (const auto& chain : chains) archive.push_back(chain);
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
