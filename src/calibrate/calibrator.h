#ifndef GMR_CALIBRATE_CALIBRATOR_H_
#define GMR_CALIBRATE_CALIBRATOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/parameter_prior.h"

namespace gmr::calibrate {

/// Box constraints on the parameter vector (from the Table III priors).
struct BoxBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  std::size_t dim() const { return lo.size(); }
  /// Clamps x into the box, in place.
  void Clamp(std::vector<double>* x) const;
  /// Uniform sample inside the box.
  std::vector<double> Sample(Rng& rng) const;
};

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors);

/// Minimization objective over a parameter vector (train RMSE of the fixed
/// MANUAL process in the river task).
using Objective = std::function<double(const std::vector<double>&)>;

struct CalibrationResult {
  std::vector<double> best_parameters;
  double best_objective = 0.0;
  std::size_t evaluations = 0;
  /// Objective calls that threw and were contained (charged against the
  /// budget, scored as the 1e300 sentinel, never the incumbent).
  std::size_t failed_evaluations = 0;
};

/// A model-calibration method (paper Section IV-B3): optimizes the values of
/// the process parameters without revising the form of the equations.
class Calibrator {
 public:
  virtual ~Calibrator() = default;

  /// Method name as reported in Table V ("GA", "SCE-UA", ...).
  virtual const char* name() const = 0;

  /// Minimizes `objective` within `bounds`, spending at most `budget`
  /// objective evaluations. `initial` is the expert starting point (prior
  /// means).
  virtual CalibrationResult Calibrate(const Objective& objective,
                                      const BoxBounds& bounds,
                                      const std::vector<double>& initial,
                                      std::size_t budget, Rng& rng) const = 0;

  /// Attaches a thread pool the population-based methods (GA, SCE-UA,
  /// DREAM) fan candidate evaluations out over; null (the default) keeps
  /// everything serial. The objective must be safe to call concurrently
  /// when a pool is attached. Not owned; must outlive Calibrate calls.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 protected:
  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_ = nullptr;
};

/// Budget-tracking helper shared by the implementations.
class BudgetedObjective {
 public:
  BudgetedObjective(const Objective* objective, std::size_t budget)
      : objective_(objective), budget_(budget) {}

  /// Evaluates and tracks the incumbent. Returns +inf once the budget is
  /// exhausted (callers should also poll Exhausted()).
  double operator()(const std::vector<double>& x);

  /// Evaluates the candidates concurrently over `pool` (inline when null),
  /// in budget order: only the first `budget - used` entries are charged
  /// and evaluated; the rest come back as +inf, exactly as if `operator()`
  /// had been called past exhaustion. The incumbent is updated by an
  /// index-order scan after the parallel section, so results do not depend
  /// on thread interleaving.
  std::vector<double> EvaluateBatch(ThreadPool* pool,
                                    const std::vector<std::vector<double>>& xs);

  bool Exhausted() const { return used_ >= budget_; }
  std::size_t used() const { return used_; }
  /// Objective calls that threw (contained; see CalibrationResult).
  std::size_t task_failures() const { return task_failures_; }
  const std::vector<double>& best_x() const { return best_x_; }
  double best_f() const { return best_f_; }

 private:
  const Objective* objective_;
  std::size_t budget_;
  std::size_t used_ = 0;
  std::size_t task_failures_ = 0;
  std::vector<double> best_x_;
  double best_f_ = 1e300;
};

}  // namespace gmr::calibrate

#endif  // GMR_CALIBRATE_CALIBRATOR_H_
