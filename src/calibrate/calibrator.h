#ifndef GMR_CALIBRATE_CALIBRATOR_H_
#define GMR_CALIBRATE_CALIBRATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/parameter_prior.h"
#include "obs/run_context.h"

namespace gmr::calibrate {

/// Box constraints on the parameter vector (from the Table III priors).
struct BoxBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  std::size_t dim() const { return lo.size(); }
  /// Clamps x into the box, in place.
  void Clamp(std::vector<double>* x) const;
  /// Uniform sample inside the box.
  std::vector<double> Sample(Rng& rng) const;
};

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors);

/// Minimization objective over a parameter vector (train RMSE of the fixed
/// MANUAL process in the river task).
using Objective = std::function<double(const std::vector<double>&)>;

/// Gradient-reporting objective: returns the objective value and fills
/// `*gradient` (resized to the query dimension) with ∂f/∂x. A failed
/// gradient — reverse-mode tape unavailable, non-finite adjoints — is
/// signaled by non-finite entries (or a size mismatch); gradient-based
/// methods then degrade to their derivative-free path instead of
/// trusting a poisoned direction. One call is charged one budget unit,
/// exactly like a value evaluation (the adjoint costs a small constant
/// factor of the forward rollout, not 2·dim of it).
using GradientObjective =
    std::function<double(const std::vector<double>&, std::vector<double>*)>;

struct CalibrationResult {
  std::vector<double> best_parameters;
  double best_objective = 0.0;
  std::size_t evaluations = 0;
  /// Objective calls that threw and were contained (charged against the
  /// budget, scored as the 1e300 sentinel, never the incumbent).
  std::size_t failed_evaluations = 0;
};

/// A model-calibration method (paper Section IV-B3): optimizes the values of
/// the process parameters without revising the form of the equations.
class Calibrator {
 public:
  virtual ~Calibrator() = default;

  /// Method name as reported in Table V ("GA", "SCE-UA", ...).
  virtual const char* name() const = 0;

  /// Minimizes `objective` within `bounds`, spending at most `budget`
  /// objective evaluations. `initial` is the expert starting point (prior
  /// means). Shared run resources come from `context`: the population-based
  /// methods (GA, SCE-UA, DREAM) fan candidate evaluations out over
  /// `context.pool` (null keeps everything serial; the objective must be
  /// safe to call concurrently when a pool is set), and progress events go
  /// to `context.sink`.
  virtual CalibrationResult Calibrate(const Objective& objective,
                                      const BoxBounds& bounds,
                                      const std::vector<double>& initial,
                                      std::size_t budget, Rng& rng,
                                      const obs::RunContext& context) const = 0;

  /// Convenience overload: default context (serial, tracing off).
  CalibrationResult Calibrate(const Objective& objective,
                              const BoxBounds& bounds,
                              const std::vector<double>& initial,
                              std::size_t budget, Rng& rng) const {
    return Calibrate(objective, bounds, initial, budget, rng,
                     obs::RunContext{});
  }

  /// Gradient-aware entry point, dispatched by Run() when the problem
  /// carries a GradientObjective. The default ignores the gradient and
  /// runs the derivative-free Calibrate, so every method accepts
  /// gradient-carrying problems; L-BFGS/Adam override this to actually
  /// consume it.
  virtual CalibrationResult CalibrateWithGradient(
      const Objective& objective, const GradientObjective& gradient,
      const BoxBounds& bounds, const std::vector<double>& initial,
      std::size_t budget, Rng& rng, const obs::RunContext& context) const {
    (void)gradient;
    return Calibrate(objective, bounds, initial, budget, rng, context);
  }
};

/// Method-independent calibration settings, the config side of the unified
/// `Run(config, problem, context)` driver API.
struct CalibrationConfig {
  std::size_t budget = 1000;
  std::uint64_t seed = 1;
};

/// The task side: what is optimized, inside which box, from where.
struct CalibrationProblem {
  Objective objective;
  BoxBounds bounds;
  std::vector<double> initial;
  /// Optional per-dimension activity mask (empty = every dimension is
  /// active). A zero entry freezes that parameter at its `initial` value:
  /// Run() hands the method a problem reduced to the active subspace and
  /// expands the result back, so the method never spends budget exploring
  /// dimensions that provably cannot change the objective. Produced by the
  /// activity pass (analysis/activity.h InactiveParameters over the
  /// candidate's output closure). Must match bounds.dim() when non-empty.
  std::vector<std::uint8_t> active;
  /// Optional exact gradient of `objective` (the reverse-mode discrete
  /// adjoint of the rollout; see grad/adjoint.h). When set, Run() hands
  /// the method the gradient-aware entry point — reduced to the active
  /// subspace exactly like the objective. Empty keeps every method on its
  /// derivative-free path.
  GradientObjective gradient;
};

/// Unified driver entry point: runs `method` on `problem` under `config`,
/// drawing shared resources from `context` (context.rng overrides the
/// config seed). Emits a run manifest and a final "calibrate_result" event
/// when the context carries an enabled sink.
CalibrationResult Run(const Calibrator& method,
                      const CalibrationConfig& config,
                      const CalibrationProblem& problem,
                      const obs::RunContext& context = {});

/// Budget-tracking helper shared by the implementations.
class BudgetedObjective {
 public:
  BudgetedObjective(const Objective* objective, std::size_t budget)
      : objective_(objective), budget_(budget) {}

  /// Routes calibration telemetry to `sink` labeled with `method`: one
  /// "calibrate_batch" event per EvaluateBatch barrier, and for the serial
  /// operator() path one "calibrate_progress" event every
  /// `progress_stride` evaluations. Event cadence is a pure function of
  /// the evaluation count, so traces stay deterministic.
  void AttachTelemetry(obs::TelemetrySink* sink, const char* method,
                       std::size_t progress_stride = 64);

  /// Evaluates and tracks the incumbent. Returns +inf once the budget is
  /// exhausted (callers should also poll Exhausted()).
  double operator()(const std::vector<double>& x);

  /// Evaluates the candidates concurrently over `pool` (inline when null),
  /// in budget order: only the first `budget - used` entries are charged
  /// and evaluated; the rest come back as +inf, exactly as if `operator()`
  /// had been called past exhaustion. The incumbent is updated by an
  /// index-order scan after the parallel section, so results do not depend
  /// on thread interleaving.
  std::vector<double> EvaluateBatch(ThreadPool* pool,
                                    const std::vector<std::vector<double>>& xs);

  /// Restores checkpointed budget progress (resume): the call counter,
  /// contained-failure count, and incumbent continue exactly where the
  /// interrupted segment left them, so batch telemetry and the final
  /// CalibrationResult match an uninterrupted run bit for bit.
  void Restore(std::size_t used, std::size_t task_failures,
               std::vector<double> best_x, double best_f) {
    used_ = used;
    task_failures_ = task_failures;
    best_x_ = std::move(best_x);
    best_f_ = best_f;
  }

  bool Exhausted() const { return used_ >= budget_; }
  std::size_t used() const { return used_; }
  /// Objective calls that threw (contained; see CalibrationResult).
  std::size_t task_failures() const { return task_failures_; }
  const std::vector<double>& best_x() const { return best_x_; }
  double best_f() const { return best_f_; }

 private:
  const Objective* objective_;
  std::size_t budget_;
  std::size_t used_ = 0;
  std::size_t task_failures_ = 0;
  std::vector<double> best_x_;
  double best_f_ = 1e300;
  obs::TelemetrySink* sink_ = obs::NullTelemetrySink();
  const char* method_ = "";
  std::size_t progress_stride_ = 64;
};

}  // namespace gmr::calibrate

#endif  // GMR_CALIBRATE_CALIBRATOR_H_
