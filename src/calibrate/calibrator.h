#ifndef GMR_CALIBRATE_CALIBRATOR_H_
#define GMR_CALIBRATE_CALIBRATOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "gp/parameter_prior.h"

namespace gmr::calibrate {

/// Box constraints on the parameter vector (from the Table III priors).
struct BoxBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  std::size_t dim() const { return lo.size(); }
  /// Clamps x into the box, in place.
  void Clamp(std::vector<double>* x) const;
  /// Uniform sample inside the box.
  std::vector<double> Sample(Rng& rng) const;
};

BoxBounds BoundsFromPriors(const gp::ParameterPriors& priors);

/// Minimization objective over a parameter vector (train RMSE of the fixed
/// MANUAL process in the river task).
using Objective = std::function<double(const std::vector<double>&)>;

struct CalibrationResult {
  std::vector<double> best_parameters;
  double best_objective = 0.0;
  std::size_t evaluations = 0;
};

/// A model-calibration method (paper Section IV-B3): optimizes the values of
/// the process parameters without revising the form of the equations.
class Calibrator {
 public:
  virtual ~Calibrator() = default;

  /// Method name as reported in Table V ("GA", "SCE-UA", ...).
  virtual const char* name() const = 0;

  /// Minimizes `objective` within `bounds`, spending at most `budget`
  /// objective evaluations. `initial` is the expert starting point (prior
  /// means).
  virtual CalibrationResult Calibrate(const Objective& objective,
                                      const BoxBounds& bounds,
                                      const std::vector<double>& initial,
                                      std::size_t budget, Rng& rng) const = 0;
};

/// Budget-tracking helper shared by the implementations.
class BudgetedObjective {
 public:
  BudgetedObjective(const Objective* objective, std::size_t budget)
      : objective_(objective), budget_(budget) {}

  /// Evaluates and tracks the incumbent. Returns +inf once the budget is
  /// exhausted (callers should also poll Exhausted()).
  double operator()(const std::vector<double>& x);

  bool Exhausted() const { return used_ >= budget_; }
  std::size_t used() const { return used_; }
  const std::vector<double>& best_x() const { return best_x_; }
  double best_f() const { return best_f_; }

 private:
  const Objective* objective_;
  std::size_t budget_;
  std::size_t used_ = 0;
  std::vector<double> best_x_;
  double best_f_ = 1e300;
};

}  // namespace gmr::calibrate

#endif  // GMR_CALIBRATE_CALIBRATOR_H_
