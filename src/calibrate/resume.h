#ifndef GMR_CALIBRATE_RESUME_H_
#define GMR_CALIBRATE_RESUME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "calibrate/calibrator.h"
#include "ckpt/checkpoint.h"
#include "ckpt/snapshot.h"
#include "common/rng.h"

/// Checkpoint/resume helpers shared by the resumable calibrators (GA,
/// SCE-UA, DREAM). All three snapshot under the driver name "calibrate" at
/// the end of each iteration/sweep (their batch barrier); the fingerprint
/// pins the method, budget, box, and starting point, so a stale directory
/// from a different calibration is never silently resumed.
namespace gmr::calibrate {

/// One scored point — the generic population member / complex point /
/// chain state. For MCMC-family methods the score slot carries the chain's
/// log-likelihood instead of an objective value.
struct ScoredPoint {
  std::vector<double> x;
  double f = 1e300;
};

/// Config-identity lines: method, budget, dim, and the exact bit patterns
/// of the bounds and the expert starting point.
std::vector<std::string> CalibrateFingerprint(
    const char* method, std::size_t budget, const BoxBounds& bounds,
    const std::vector<double>& initial);

/// Builds the snapshot skeleton every calibrator shares: the fingerprint,
/// rng, and budget (used / task_failures / incumbent) sections. The caller
/// appends its method-specific point sections.
ckpt::Snapshot MakeCalibrateSnapshot(const char* method, std::uint64_t step,
                                     std::size_t budget,
                                     const BoxBounds& bounds,
                                     const std::vector<double>& initial,
                                     const Rng& rng,
                                     const BudgetedObjective& f);

/// Appends a section holding `points` — one line per point: the score
/// bits, then the coordinate vector.
void AddPointsSection(ckpt::Snapshot* snapshot, const std::string& name,
                      const std::vector<ScoredPoint>& points);

/// Parses a section written by AddPointsSection into `points`. False when
/// the section is missing or malformed, or when `expected_size` (nonzero)
/// does not match — the caller then starts fresh.
bool ParsePointsSection(const ckpt::Snapshot& snapshot,
                        const std::string& name, std::size_t expected_size,
                        std::vector<ScoredPoint>* points);

/// Restores the shared rng/budget state. False on any malformed section
/// with `rng` and `f` untouched. Mutates on success, so callers parse all
/// method-specific sections into locals first and call this last.
bool RestoreCalibrateCommon(const ckpt::Snapshot& snapshot, Rng* rng,
                            BudgetedObjective* f);

}  // namespace gmr::calibrate

#endif  // GMR_CALIBRATE_RESUME_H_
