#include "calibrate/resume.h"

#include <cstdlib>
#include <utility>

#include "ckpt/serialize.h"

namespace gmr::calibrate {
namespace {

constexpr char kFingerprintSection[] = "fingerprint";
constexpr char kRngSection[] = "rng";
constexpr char kBudgetSection[] = "budget";

bool ParseCount(const std::string& token, std::size_t* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  *value = static_cast<std::size_t>(std::strtoull(token.c_str(), &end, 10));
  return end == token.c_str() + token.size();
}

}  // namespace

std::vector<std::string> CalibrateFingerprint(
    const char* method, std::size_t budget, const BoxBounds& bounds,
    const std::vector<double>& initial) {
  return ckpt::MakeFingerprint({
      {"method", method},
      {"budget", std::to_string(budget)},
      {"dim", std::to_string(bounds.dim())},
      {"lo", ckpt::SerializeDoubles(bounds.lo)},
      {"hi", ckpt::SerializeDoubles(bounds.hi)},
      {"initial", ckpt::SerializeDoubles(initial)},
  });
}

ckpt::Snapshot MakeCalibrateSnapshot(const char* method, std::uint64_t step,
                                     std::size_t budget,
                                     const BoxBounds& bounds,
                                     const std::vector<double>& initial,
                                     const Rng& rng,
                                     const BudgetedObjective& f) {
  ckpt::Snapshot snapshot;
  snapshot.driver = "calibrate";
  snapshot.step = step;
  snapshot.AddSection(kFingerprintSection)->lines =
      CalibrateFingerprint(method, budget, bounds, initial);
  snapshot.AddSection(kRngSection)
      ->lines.push_back(ckpt::SerializeRngState(rng.SaveState()));
  ckpt::Section* section = snapshot.AddSection(kBudgetSection);
  section->lines.push_back("used " + std::to_string(f.used()));
  section->lines.push_back("task_failures " +
                           std::to_string(f.task_failures()));
  section->lines.push_back("best_f " + ckpt::HexDouble(f.best_f()));
  section->lines.push_back("best_x " + ckpt::SerializeDoubles(f.best_x()));
  return snapshot;
}

void AddPointsSection(ckpt::Snapshot* snapshot, const std::string& name,
                      const std::vector<ScoredPoint>& points) {
  ckpt::Section* section = snapshot->AddSection(name);
  section->lines.reserve(points.size());
  for (const ScoredPoint& point : points) {
    section->lines.push_back(ckpt::HexDouble(point.f) + " " +
                             ckpt::SerializeDoubles(point.x));
  }
}

bool ParsePointsSection(const ckpt::Snapshot& snapshot,
                        const std::string& name, std::size_t expected_size,
                        std::vector<ScoredPoint>* points) {
  const ckpt::Section* section = snapshot.FindSection(name);
  if (section == nullptr) return false;
  if (expected_size != 0 && section->lines.size() != expected_size) {
    return false;
  }
  std::vector<ScoredPoint> parsed;
  parsed.reserve(section->lines.size());
  for (const std::string& line : section->lines) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return false;
    ScoredPoint point;
    if (!ckpt::ParseHexDouble(line.substr(0, space), &point.f)) return false;
    if (!ckpt::ParseDoubles(line.substr(space + 1), &point.x)) return false;
    parsed.push_back(std::move(point));
  }
  *points = std::move(parsed);
  return true;
}

bool RestoreCalibrateCommon(const ckpt::Snapshot& snapshot, Rng* rng,
                            BudgetedObjective* f) {
  const ckpt::Section* rng_section = snapshot.FindSection(kRngSection);
  if (rng_section == nullptr || rng_section->lines.size() != 1) return false;
  RngState state;
  if (!ckpt::ParseRngState(rng_section->lines[0], &state)) return false;

  const ckpt::Section* budget = snapshot.FindSection(kBudgetSection);
  if (budget == nullptr) return false;
  std::size_t used = 0;
  std::size_t task_failures = 0;
  double best_f = 1e300;
  std::vector<double> best_x;
  bool have_used = false;
  bool have_failures = false;
  bool have_best = false;
  for (const std::string& line : budget->lines) {
    if (line.compare(0, 5, "used ") == 0) {
      if (!ParseCount(line.substr(5), &used)) return false;
      have_used = true;
    } else if (line.compare(0, 14, "task_failures ") == 0) {
      if (!ParseCount(line.substr(14), &task_failures)) return false;
      have_failures = true;
    } else if (line.compare(0, 7, "best_f ") == 0) {
      if (!ckpt::ParseHexDouble(line.substr(7), &best_f)) return false;
      have_best = true;
    } else if (line.compare(0, 7, "best_x ") == 0) {
      if (!ckpt::ParseDoubles(line.substr(7), &best_x)) return false;
    }
  }
  if (!have_used || !have_failures || !have_best) return false;

  rng->RestoreState(state);
  f->Restore(used, task_failures, std::move(best_x), best_f);
  return true;
}

}  // namespace gmr::calibrate
