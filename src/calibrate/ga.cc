#include <algorithm>
#include <utility>

#include "calibrate/methods.h"
#include "calibrate/resume.h"
#include "common/check.h"

namespace gmr::calibrate {
namespace {

constexpr char kPopulationSection[] = "population";

const ScoredPoint& Tournament(const std::vector<ScoredPoint>& population,
                              int size, Rng& rng) {
  const ScoredPoint* best = nullptr;
  for (int i = 0; i < size; ++i) {
    const ScoredPoint& candidate = population[rng.PickIndex(population)];
    if (best == nullptr || candidate.f < best->f) best = &candidate;
  }
  return *best;
}

}  // namespace

CalibrationResult GaCalibrator::Calibrate(const Objective& objective,
                                          const BoxBounds& bounds,
                                          const std::vector<double>& initial,
                                          std::size_t budget, Rng& rng,
                                          const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  const std::size_t dim = bounds.dim();
  const std::size_t pop_size = std::max<std::size_t>(20, 2 * dim);
  constexpr double kBlxAlpha = 0.3;
  constexpr double kMutationProb = 0.15;
  constexpr int kTournament = 3;
  constexpr std::size_t kElites = 2;

  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  ckpt::Checkpointer* checkpointer = context.checkpointer;
  std::vector<ScoredPoint> population;
  std::uint64_t iteration = 0;
  bool resumed = false;
  if (checkpointer != nullptr) {
    if (const ckpt::Snapshot* snapshot = checkpointer->ResumeFor(
            "calibrate",
            CalibrateFingerprint(name(), budget, bounds, initial))) {
      std::vector<ScoredPoint> restored;
      if (ParsePointsSection(*snapshot, kPopulationSection, pop_size,
                             &restored) &&
          RestoreCalibrateCommon(*snapshot, &rng, &f)) {
        population = std::move(restored);
        iteration = snapshot->step;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    // Sampling is sequential (it owns the RNG); candidate evaluations fan
    // out across the attached pool as one batch per generation.
    std::vector<std::vector<double>> points;
    points.push_back(initial);
    while (points.size() < pop_size) points.push_back(bounds.Sample(rng));
    const std::vector<double> fs = f.EvaluateBatch(context.pool, points);
    population.reserve(pop_size);
    for (std::size_t i = 0; i < points.size(); ++i) {
      population.push_back({std::move(points[i]), fs[i]});
    }
  }

  while (!f.Exhausted()) {
    std::sort(population.begin(), population.end(),
              [](const ScoredPoint& a, const ScoredPoint& b) {
                return a.f < b.f;
              });
    std::vector<ScoredPoint> next(population.begin(),
                                  population.begin() +
                                      std::min(kElites, population.size()));
    std::vector<std::vector<double>> children;
    children.reserve(population.size() - next.size());
    while (next.size() + children.size() < population.size()) {
      const ScoredPoint& pa = Tournament(population, kTournament, rng);
      const ScoredPoint& pb = Tournament(population, kTournament, rng);
      std::vector<double> child(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        // BLX-alpha blend crossover.
        const double lo = std::min(pa.x[d], pb.x[d]);
        const double hi = std::max(pa.x[d], pb.x[d]);
        const double span = hi - lo;
        child[d] = rng.Uniform(lo - kBlxAlpha * span, hi + kBlxAlpha * span);
        if (rng.Bernoulli(kMutationProb)) {
          child[d] += rng.Gaussian(0.0, 0.1 * (bounds.hi[d] - bounds.lo[d]));
        }
      }
      bounds.Clamp(&child);
      children.push_back(std::move(child));
    }
    const std::vector<double> fs = f.EvaluateBatch(context.pool, children);
    for (std::size_t i = 0; i < children.size(); ++i) {
      next.push_back({std::move(children[i]), fs[i]});
    }
    population = std::move(next);

    ++iteration;
    if (checkpointer != nullptr && checkpointer->ShouldSnapshot(iteration)) {
      sink->Flush();
      ckpt::Snapshot snapshot = MakeCalibrateSnapshot(
          name(), iteration, budget, bounds, initial, rng, f);
      AddPointsSection(&snapshot, kPopulationSection, population);
      checkpointer->Save(std::move(snapshot));
    }
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
