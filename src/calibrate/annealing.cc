#include <cmath>

#include "calibrate/methods.h"

namespace gmr::calibrate {

CalibrationResult SaCalibrator::Calibrate(const Objective& objective,
                                          const BoxBounds& bounds,
                                          const std::vector<double>& initial,
                                          std::size_t budget, Rng& rng,
                                          const obs::RunContext& context) const {
  BudgetedObjective f(&objective, budget);
  f.AttachTelemetry(context.sink, name());
  std::vector<double> current = initial;
  double current_f = f(current);

  // Initial temperature set so a typical early uphill move (~10% of the
  // initial objective) is accepted with probability ~0.5; geometric cooling
  // tuned to the budget.
  const double initial_temperature =
      std::max(0.1 * current_f / std::log(2.0), 1e-6);
  double temperature = initial_temperature;
  const double cooling =
      std::pow(1e-4, 1.0 / static_cast<double>(std::max<std::size_t>(
                          budget, std::size_t{2})));
  const std::size_t dim = bounds.dim();

  while (!f.Exhausted()) {
    std::vector<double> candidate = current;
    // Perturb a random subset of coordinates with bound-scaled steps that
    // shrink as the system cools.
    const double scale = 0.02 + 0.2 * temperature / initial_temperature;
    for (std::size_t d = 0; d < dim; ++d) {
      if (!rng.Bernoulli(0.5)) continue;
      candidate[d] +=
          rng.Gaussian(0.0, scale * (bounds.hi[d] - bounds.lo[d]));
    }
    bounds.Clamp(&candidate);
    const double candidate_f = f(candidate);
    const double delta = candidate_f - current_f;
    if (delta <= 0.0 ||
        rng.Bernoulli(std::exp(-delta / std::max(temperature, 1e-12)))) {
      current = std::move(candidate);
      current_f = candidate_f;
    }
    temperature *= cooling;
  }
  return {f.best_x(), f.best_f(), f.used(), f.task_failures()};
}

}  // namespace gmr::calibrate
