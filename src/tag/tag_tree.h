#ifndef GMR_TAG_TAG_TREE_H_
#define GMR_TAG_TAG_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/ast.h"

namespace gmr::tag {

/// Non-terminal symbol of the tree-adjoining grammar. Plain expression
/// nodes are labeled "Exp"; extension points use connector/extender labels
/// such as "ExtC1"/"ExtE1" (paper Section III-B3), which is what restricts
/// where each auxiliary tree may adjoin.
using Symbol = std::string;

/// The generic expression label.
inline const char kExpSymbol[] = "Exp";

struct TagNode;
using TagNodePtr = std::unique_ptr<TagNode>;

/// Node of an elementary or derived TAG tree.
///
/// The object-tree encoding follows Figures 3 and 7 of the paper: interior
/// nodes carry an operator (the Op child of the figures is folded into the
/// node), wrapper nodes mark extension points, frontier nodes are either
/// expression leaves, substitution slots (marked with a down-arrow in the
/// paper), or the auxiliary tree's foot node (marked with an asterisk).
struct TagNode {
  enum class Kind {
    kOperator,  ///< Interior node applying an expr operator to its children.
    kWrapper,   ///< Labeled pass-through with exactly one child (Ext point).
    kSystem,    ///< Root-only: a system of equations, one child per equation.
    kLeaf,      ///< Frontier: a concrete expression leaf.
    kSlot,      ///< Frontier: open substitution site (lexicon) awaiting a
                ///< lexeme; labeled with the slot symbol (e.g. "R").
    kFoot,      ///< Frontier of an auxiliary tree: the foot node.
  };

  Kind kind = Kind::kLeaf;
  /// Non-terminal label; meaningful for every kind except kLeaf.
  Symbol label;
  /// Operator for kOperator nodes.
  expr::NodeKind op = expr::NodeKind::kAdd;
  /// Payload for kLeaf nodes (and for kSlot nodes once filled).
  expr::ExprPtr leaf;
  std::vector<TagNodePtr> children;

  /// Deep copy.
  TagNodePtr Clone() const;

  /// Number of nodes in this subtree.
  std::size_t NodeCount() const;
};

/// Factory helpers for building elementary trees.
TagNodePtr OperatorNode(Symbol label, expr::NodeKind op,
                        std::vector<TagNodePtr> children);
TagNodePtr WrapperNode(Symbol label, TagNodePtr child);
TagNodePtr SystemNode(std::vector<TagNodePtr> equations);
TagNodePtr LeafNode(expr::ExprPtr leaf);
TagNodePtr SlotNode(Symbol label);
TagNodePtr FootNode(Symbol label);

/// Converts a plain expression into a TAG tree whose interior nodes are all
/// labeled `label`. Used for seeds without designated extension points.
TagNodePtr FromExpr(const expr::ExprPtr& e, const Symbol& label);

/// Gorn address: the path of child indices from the root (empty = root).
using Address = std::vector<int>;

/// An elementary tree: an alpha (initial) tree when `foot_address` is empty,
/// or a beta (auxiliary) tree whose foot node's label equals the root label.
/// Construction scans the tree once to index the adjoinable interior nodes
/// and the open substitution slots.
class ElementaryTree {
 public:
  /// Takes ownership of `root`. `name` is used in diagnostics and printing.
  ElementaryTree(std::string name, TagNodePtr root);

  ElementaryTree(ElementaryTree&&) = default;
  ElementaryTree& operator=(ElementaryTree&&) = default;

  const std::string& name() const { return name_; }
  const TagNode& root() const { return *root_; }
  const Symbol& root_label() const { return root_->label; }

  bool IsAuxiliary() const { return has_foot_; }

  /// Labels of the nodes where adjunction may take place, indexed by
  /// "address index" (the integers that appear on derivation-tree links).
  const std::vector<Symbol>& adjoinable_labels() const {
    return adjoinable_labels_;
  }
  const std::vector<Address>& adjoinable_addresses() const {
    return adjoinable_addresses_;
  }

  /// Labels of the open substitution slots, in left-to-right order; the
  /// derivation node's lexeme list is parallel to this.
  const std::vector<Symbol>& slot_labels() const { return slot_labels_; }

  /// Deep-copies the tree and returns raw pointers to the clone's
  /// adjoinable nodes / slot nodes / foot (parallel to the accessors above).
  struct Instance {
    TagNodePtr root;
    std::vector<TagNode*> adjoinable;
    std::vector<TagNode*> slots;
    TagNode* foot = nullptr;
  };
  Instance Instantiate() const;

 private:
  std::string name_;
  TagNodePtr root_;
  bool has_foot_ = false;
  std::vector<Symbol> adjoinable_labels_;
  std::vector<Address> adjoinable_addresses_;
  std::vector<Symbol> slot_labels_;
};

/// Adjoins the auxiliary instance `beta` at node `target` of the tree rooted
/// at `*root` (paper Figure 2(a)): the subtree at `target` is disconnected,
/// `beta.root` takes its place, and the subtree re-attaches at `beta.foot`.
/// `target` must be a node within `*root`; `beta.foot` must be non-null and
/// its label must equal `target->label`.
void Adjoin(TagNodePtr* root, TagNode* target,
            ElementaryTree::Instance beta);

/// Fills the slot node `slot` with lexeme `leaf` (paper Figure 2(b),
/// restricted to childless initial trees per Section III-A2).
void SubstituteLexeme(TagNode* slot, expr::ExprPtr leaf);

/// True when the tree contains no unfilled slots and no foot nodes, i.e.
/// it is a completed derived tree that can be lowered to expressions.
bool IsCompleted(const TagNode& root);

/// Lowers a completed derived tree to one expression per equation (a
/// kSystem root yields one entry per child; anything else yields one).
/// Aborts on incomplete trees.
std::vector<expr::ExprPtr> LowerToExpressions(const TagNode& root);

}  // namespace gmr::tag

#endif  // GMR_TAG_TAG_TREE_H_
