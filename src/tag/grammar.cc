#include "tag/grammar.h"

#include <algorithm>

#include "common/check.h"

namespace gmr::tag {

int Grammar::AddAlphaTree(ElementaryTree tree) {
  GMR_CHECK_MSG(!tree.IsAuxiliary(), "alpha trees must not have a foot node");
  alpha_trees_.push_back(std::move(tree));
  return static_cast<int>(alpha_trees_.size()) - 1;
}

int Grammar::AddBetaTree(ElementaryTree tree) {
  GMR_CHECK_MSG(tree.IsAuxiliary(), "beta trees must have a foot node");
  const int index = static_cast<int>(beta_trees_.size());
  betas_by_root_[tree.root_label()].push_back(index);
  beta_trees_.push_back(std::move(tree));
  return index;
}

void Grammar::SetSlotSpec(const Symbol& label, SlotSpec spec) {
  GMR_CHECK_LE(spec.lo, spec.hi);
  slot_specs_[label] = spec;
}

const ElementaryTree& Grammar::alpha(int index) const {
  GMR_CHECK_GE(index, 0);
  GMR_CHECK_LT(static_cast<std::size_t>(index), alpha_trees_.size());
  return alpha_trees_[static_cast<std::size_t>(index)];
}

const ElementaryTree& Grammar::beta(int index) const {
  GMR_CHECK_GE(index, 0);
  GMR_CHECK_LT(static_cast<std::size_t>(index), beta_trees_.size());
  return beta_trees_[static_cast<std::size_t>(index)];
}

const std::vector<int>& Grammar::BetasWithRootLabel(
    const Symbol& label) const {
  auto it = betas_by_root_.find(label);
  if (it == betas_by_root_.end()) return empty_;
  return it->second;
}

void Grammar::DisableAdjunction(const std::vector<int>& beta_indices) {
  for (const int index : beta_indices) {
    GMR_CHECK_GE(index, 0);
    GMR_CHECK_LT(static_cast<std::size_t>(index), beta_trees_.size());
    const Symbol& label =
        beta_trees_[static_cast<std::size_t>(index)].root_label();
    auto it = betas_by_root_.find(label);
    if (it == betas_by_root_.end()) continue;
    std::vector<int>& candidates = it->second;
    candidates.erase(std::remove(candidates.begin(), candidates.end(), index),
                     candidates.end());
    if (candidates.empty()) betas_by_root_.erase(it);
  }
}

SlotSpec Grammar::slot_spec(const Symbol& label) const {
  auto it = slot_specs_.find(label);
  if (it == slot_specs_.end()) return SlotSpec{};
  return it->second;
}

}  // namespace gmr::tag
