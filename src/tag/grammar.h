#ifndef GMR_TAG_GRAMMAR_H_
#define GMR_TAG_GRAMMAR_H_

#include <map>
#include <string>
#include <vector>

#include "tag/tag_tree.h"

namespace gmr::tag {

/// Initialization range for the lexeme constants substituted into slots with
/// a given label. The paper's "R denotes a random variable between 0 and 1"
/// (Table II) corresponds to the default [0, 1]; Gaussian mutation may later
/// move lexemes outside the initialization range (revised models in the
/// paper contain constants such as 253.4).
struct SlotSpec {
  double lo = 0.0;
  double hi = 1.0;
};

/// The TAG quintuple (T, N, I, A, S) of Section III-A1, specialized to
/// process-equation generation: terminals are expression leaves/operators
/// (implicit in the trees), N is the set of labels in use, I the alpha
/// trees, A the beta trees. The first alpha tree added is conventionally the
/// expert seed process.
class Grammar {
 public:
  Grammar() = default;
  Grammar(Grammar&&) = default;
  Grammar& operator=(Grammar&&) = default;

  /// Registers an initial (alpha) tree; returns its index. The tree must not
  /// contain a foot node.
  int AddAlphaTree(ElementaryTree tree);

  /// Registers an auxiliary (beta) tree; returns its index. The tree must
  /// contain exactly one foot node labeled like its root.
  int AddBetaTree(ElementaryTree tree);

  /// Sets the lexeme initialization range for slots labeled `label`.
  void SetSlotSpec(const Symbol& label, SlotSpec spec);

  std::size_t num_alpha_trees() const { return alpha_trees_.size(); }
  std::size_t num_beta_trees() const { return beta_trees_.size(); }

  const ElementaryTree& alpha(int index) const;
  const ElementaryTree& beta(int index) const;

  /// Indices of beta trees whose root label is `label` (those adjoinable at
  /// a node with that label). Empty when none exist.
  const std::vector<int>& BetasWithRootLabel(const Symbol& label) const;

  /// True when at least one beta tree can adjoin at a `label` node.
  bool HasCompatibleBeta(const Symbol& label) const {
    return !BetasWithRootLabel(label).empty();
  }

  /// Lexeme spec for slots labeled `label` (default [0, 1]).
  SlotSpec slot_spec(const Symbol& label) const;

  /// Removes the given beta trees from the adjunction candidate lists
  /// (BetasWithRootLabel / HasCompatibleBeta), so no new derivation step
  /// can select them. The trees themselves stay registered: beta(index)
  /// remains valid and indices of other betas do not shift, so existing
  /// derivation trees that reference a disabled beta still expand. Used by
  /// the grammar-level dimension pruning (analysis/grammar_lint.h).
  void DisableAdjunction(const std::vector<int>& beta_indices);

 private:
  std::vector<ElementaryTree> alpha_trees_;
  std::vector<ElementaryTree> beta_trees_;
  std::map<Symbol, std::vector<int>> betas_by_root_;
  std::map<Symbol, SlotSpec> slot_specs_;
  std::vector<int> empty_;
};

}  // namespace gmr::tag

#endif  // GMR_TAG_GRAMMAR_H_
