#include "tag/generate.h"

#include <set>

#include "common/check.h"

namespace gmr::tag {
namespace {

void CollectOpenSitesAt(const Grammar& grammar, DerivationNode* node,
                        bool is_root, std::vector<OpenSite>* out) {
  const ElementaryTree& elementary =
      ElementaryTreeOf(grammar, *node, is_root);
  std::set<int> occupied;
  for (const auto& child : node->children) {
    occupied.insert(child.address_index);
  }
  const auto& labels = elementary.adjoinable_labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int address = static_cast<int>(i);
    if (occupied.count(address) > 0) continue;
    if (!grammar.HasCompatibleBeta(labels[i])) continue;
    out->push_back(OpenSite{node, is_root, address});
  }
  for (auto& child : node->children) {
    CollectOpenSitesAt(grammar, child.node.get(), /*is_root=*/false, out);
  }
}

void CollectLeafRefs(DerivationNode* node, std::vector<NodeRef>* out) {
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    DerivationNode* child = node->children[i].node.get();
    if (child->children.empty()) {
      out->push_back(NodeRef{node, i});
    } else {
      CollectLeafRefs(child, out);
    }
  }
}

}  // namespace

std::vector<OpenSite> CollectOpenSites(const Grammar& grammar,
                                       DerivationNode* root) {
  std::vector<OpenSite> sites;
  CollectOpenSitesAt(grammar, root, /*is_root=*/true, &sites);
  return sites;
}

DerivationPtr MakeRandomNode(const Grammar& grammar, int tree_index,
                             bool is_root, Rng& rng) {
  auto node = std::make_unique<DerivationNode>();
  node->tree_index = tree_index;
  const ElementaryTree& elementary =
      ElementaryTreeOf(grammar, *node, is_root);
  node->lexemes.reserve(elementary.slot_labels().size());
  for (const Symbol& label : elementary.slot_labels()) {
    const SlotSpec spec = grammar.slot_spec(label);
    node->lexemes.push_back(rng.Uniform(spec.lo, spec.hi));
  }
  return node;
}

DerivationPtr NewSeedDerivation(const Grammar& grammar, int alpha_index,
                                Rng& rng) {
  return MakeRandomNode(grammar, alpha_index, /*is_root=*/true, rng);
}

bool InsertRandomBeta(const Grammar& grammar, DerivationNode* root,
                      Rng& rng) {
  std::vector<OpenSite> sites = CollectOpenSites(grammar, root);
  if (sites.empty()) return false;
  const OpenSite& site = sites[rng.PickIndex(sites)];
  const ElementaryTree& elementary =
      ElementaryTreeOf(grammar, *site.node, site.node_is_root);
  const Symbol& label =
      elementary.adjoinable_labels()[static_cast<std::size_t>(
          site.address_index)];
  const std::vector<int>& candidates = grammar.BetasWithRootLabel(label);
  GMR_CHECK(!candidates.empty());
  const int beta_index = candidates[rng.PickIndex(candidates)];
  site.node->children.push_back(
      {site.address_index,
       MakeRandomNode(grammar, beta_index, /*is_root=*/false, rng)});
  return true;
}

bool DeleteRandomLeaf(DerivationNode* root, Rng& rng) {
  std::vector<NodeRef> leaves;
  CollectLeafRefs(root, &leaves);
  if (leaves.empty()) return false;
  const NodeRef& ref = leaves[rng.PickIndex(leaves)];
  ref.parent->children.erase(ref.parent->children.begin() +
                             static_cast<std::ptrdiff_t>(ref.child_index));
  return true;
}

DerivationPtr GrowRandom(const Grammar& grammar, int alpha_index,
                         std::size_t target_size, Rng& rng) {
  DerivationPtr root = NewSeedDerivation(grammar, alpha_index, rng);
  while (root->NodeCount() < target_size) {
    if (!InsertRandomBeta(grammar, root.get(), rng)) break;
  }
  return root;
}

DerivationPtr GrowRandomSubtree(const Grammar& grammar,
                                const Symbol& site_label,
                                std::size_t target_size, Rng& rng) {
  const std::vector<int>& candidates = grammar.BetasWithRootLabel(site_label);
  if (candidates.empty()) return nullptr;
  const int beta_index = candidates[rng.PickIndex(candidates)];
  DerivationPtr root =
      MakeRandomNode(grammar, beta_index, /*is_root=*/false, rng);

  // Grow below the subtree root until the requested size. Open-site
  // enumeration treats the beta node as a non-root node.
  while (root->NodeCount() < target_size) {
    std::vector<OpenSite> sites;
    CollectOpenSitesAt(grammar, root.get(), /*is_root=*/false, &sites);
    if (sites.empty()) break;
    const OpenSite& site = sites[rng.PickIndex(sites)];
    const ElementaryTree& elementary =
        ElementaryTreeOf(grammar, *site.node, site.node_is_root);
    const Symbol& label =
        elementary.adjoinable_labels()[static_cast<std::size_t>(
            site.address_index)];
    const std::vector<int>& inner = grammar.BetasWithRootLabel(label);
    GMR_CHECK(!inner.empty());
    const int inner_index = inner[rng.PickIndex(inner)];
    site.node->children.push_back(
        {site.address_index,
         MakeRandomNode(grammar, inner_index, /*is_root=*/false, rng)});
  }
  return root;
}

}  // namespace gmr::tag
