#ifndef GMR_TAG_GENERATE_H_
#define GMR_TAG_GENERATE_H_

#include <vector>

#include "common/rng.h"
#include "tag/derivation.h"

namespace gmr::tag {

/// An open adjunction site: an address of `node`'s elementary tree that is
/// not yet occupied and where at least one beta tree of the grammar can
/// adjoin.
struct OpenSite {
  DerivationNode* node = nullptr;
  bool node_is_root = false;
  int address_index = 0;
};

/// Enumerates every open adjunction site in the derivation tree.
std::vector<OpenSite> CollectOpenSites(const Grammar& grammar,
                                       DerivationNode* root);

/// Creates a derivation node for the given elementary tree with lexemes
/// drawn uniformly from their slot specs.
DerivationPtr MakeRandomNode(const Grammar& grammar, int tree_index,
                             bool is_root, Rng& rng);

/// Creates the minimal derivation: just the seed alpha tree with random
/// lexemes (TAG3P "chooses an initial derivation tree randomly from
/// alpha-trees").
DerivationPtr NewSeedDerivation(const Grammar& grammar, int alpha_index,
                                Rng& rng);

/// Adjoins one randomly chosen compatible beta tree at a uniformly random
/// open site — the local-search *insertion* operator (Figure 6(e)-(f)).
/// Returns false when the tree has no open site.
bool InsertRandomBeta(const Grammar& grammar, DerivationNode* root, Rng& rng);

/// Removes a uniformly random leaf derivation node (never the root) — the
/// local-search *deletion* operator (Figure 6(g)-(h)). Returns false when
/// the derivation consists of the root alone.
bool DeleteRandomLeaf(DerivationNode* root, Rng& rng);

/// Grows a random individual for population initialization: seed alpha tree
/// plus random adjunctions until the derivation reaches `target_size` nodes
/// (or no open site remains).
DerivationPtr GrowRandom(const Grammar& grammar, int alpha_index,
                         std::size_t target_size, Rng& rng);

/// Grows a random derivation *subtree*: a beta-rooted derivation whose root
/// beta can adjoin at a site labeled `site_label`, grown to about
/// `target_size` nodes. Returns nullptr when no beta tree matches the label.
/// Used by subtree mutation to build replacement subtrees "of similar size"
/// and "compatible" with the removed one (Section III-B2).
DerivationPtr GrowRandomSubtree(const Grammar& grammar,
                                const Symbol& site_label,
                                std::size_t target_size, Rng& rng);

}  // namespace gmr::tag

#endif  // GMR_TAG_GENERATE_H_
