#ifndef GMR_TAG_DERIVATION_H_
#define GMR_TAG_DERIVATION_H_

#include <memory>
#include <string>
#include <vector>

#include "tag/grammar.h"
#include "tag/tag_tree.h"

namespace gmr::tag {

struct DerivationNode;
using DerivationPtr = std::unique_ptr<DerivationNode>;

/// Node of a TAG derivation tree (paper Figure 4, formulation with
/// restricted substitution):
///  - the root is labeled with an alpha tree (the input process);
///  - every other node is labeled with a beta tree and carries the address
///    (index into the parent elementary tree's adjoinable list) where the
///    adjunction took place;
///  - each node carries its lexemes: the constants substituted into the open
///    slots (lexicons) of its elementary tree, parallel to slot_labels().
///
/// The derivation tree is the GP genotype; the derived tree / expressions
/// are the phenotype produced by Expand/ExpandToExpressions.
struct DerivationNode {
  /// Index into Grammar::alpha for the root node, Grammar::beta otherwise.
  int tree_index = 0;

  /// Lexeme constants, one per slot of the elementary tree.
  std::vector<double> lexemes;

  struct AdjunctionChild {
    /// Index into the parent node's elementary tree adjoinable list.
    int address_index = 0;
    DerivationPtr node;
  };
  std::vector<AdjunctionChild> children;

  DerivationPtr Clone() const;
  std::size_t NodeCount() const;
};

/// The elementary tree a derivation node refers to (`is_root` selects the
/// alpha vs beta table).
const ElementaryTree& ElementaryTreeOf(const Grammar& grammar,
                                       const DerivationNode& node,
                                       bool is_root);

/// Expands the derivation tree into a completed derived tree: instantiates
/// each node's elementary tree, substitutes its lexemes, and performs all
/// adjunctions bottom-up. Aborts on malformed derivations (bad indices,
/// occupied addresses, label mismatches) — the GP operators maintain those
/// invariants.
TagNodePtr Expand(const Grammar& grammar, const DerivationNode& root);

/// Expand followed by LowerToExpressions.
std::vector<expr::ExprPtr> ExpandToExpressions(const Grammar& grammar,
                                               const DerivationNode& root);

/// Checks the structural invariants of a derivation tree against `grammar`:
/// valid tree indices, lexeme counts matching slot counts, unique and
/// in-range adjunction addresses, and beta root labels matching the labels
/// at their adjunction addresses. Returns false with a diagnostic in
/// `*error` on the first violation.
bool Validate(const Grammar& grammar, const DerivationNode& root,
              std::string* error);

/// Reference to a non-root derivation node through its owning edge; used by
/// the genetic operators to splice subtrees.
struct NodeRef {
  DerivationNode* parent = nullptr;
  std::size_t child_index = 0;

  DerivationNode* node() const {
    return parent->children[child_index].node.get();
  }
  int address_index() const {
    return parent->children[child_index].address_index;
  }
};

/// Collects references to every non-root node, in preorder.
std::vector<NodeRef> CollectNodeRefs(DerivationNode* root);

}  // namespace gmr::tag

#endif  // GMR_TAG_DERIVATION_H_
