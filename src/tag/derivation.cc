#include "tag/derivation.h"

#include <set>

#include "common/check.h"

namespace gmr::tag {

DerivationPtr DerivationNode::Clone() const {
  auto copy = std::make_unique<DerivationNode>();
  copy->tree_index = tree_index;
  copy->lexemes = lexemes;
  copy->children.reserve(children.size());
  for (const auto& child : children) {
    copy->children.push_back({child.address_index, child.node->Clone()});
  }
  return copy;
}

std::size_t DerivationNode::NodeCount() const {
  std::size_t count = 1;
  for (const auto& child : children) count += child.node->NodeCount();
  return count;
}

const ElementaryTree& ElementaryTreeOf(const Grammar& grammar,
                                       const DerivationNode& node,
                                       bool is_root) {
  return is_root ? grammar.alpha(node.tree_index)
                 : grammar.beta(node.tree_index);
}

namespace {

/// Expands one derivation node into an instantiated elementary tree with
/// all lexemes substituted and all child adjunctions applied.
ElementaryTree::Instance ExpandNode(const Grammar& grammar,
                                    const DerivationNode& node,
                                    bool is_root) {
  const ElementaryTree& elementary = ElementaryTreeOf(grammar, node, is_root);
  ElementaryTree::Instance instance = elementary.Instantiate();

  GMR_CHECK_EQ(node.lexemes.size(), instance.slots.size());
  for (std::size_t i = 0; i < instance.slots.size(); ++i) {
    SubstituteLexeme(instance.slots[i], expr::Constant(node.lexemes[i]));
  }

  for (const auto& child : node.children) {
    GMR_CHECK_GE(child.address_index, 0);
    GMR_CHECK_LT(static_cast<std::size_t>(child.address_index),
                 instance.adjoinable.size());
    ElementaryTree::Instance beta_instance =
        ExpandNode(grammar, *child.node, /*is_root=*/false);
    Adjoin(&instance.root,
           instance.adjoinable[static_cast<std::size_t>(child.address_index)],
           std::move(beta_instance));
  }
  return instance;
}

bool ValidateNode(const Grammar& grammar, const DerivationNode& node,
                  bool is_root, std::string* error) {
  const std::size_t table_size =
      is_root ? grammar.num_alpha_trees() : grammar.num_beta_trees();
  if (node.tree_index < 0 ||
      static_cast<std::size_t>(node.tree_index) >= table_size) {
    *error = "tree index out of range";
    return false;
  }
  const ElementaryTree& elementary = ElementaryTreeOf(grammar, node, is_root);
  if (node.lexemes.size() != elementary.slot_labels().size()) {
    *error = "lexeme count does not match slot count in " + elementary.name();
    return false;
  }
  std::set<int> used_addresses;
  for (const auto& child : node.children) {
    if (child.address_index < 0 ||
        static_cast<std::size_t>(child.address_index) >=
            elementary.adjoinable_labels().size()) {
      *error = "adjunction address out of range in " + elementary.name();
      return false;
    }
    if (!used_addresses.insert(child.address_index).second) {
      *error = "duplicate adjunction address in " + elementary.name();
      return false;
    }
    if (child.node == nullptr) {
      *error = "null child node";
      return false;
    }
    if (static_cast<std::size_t>(child.node->tree_index) >=
        grammar.num_beta_trees()) {
      *error = "child beta index out of range";
      return false;
    }
    const Symbol& site_label =
        elementary
            .adjoinable_labels()[static_cast<std::size_t>(child.address_index)];
    const Symbol& beta_label =
        grammar.beta(child.node->tree_index).root_label();
    if (site_label != beta_label) {
      *error = "beta root label '" + beta_label +
               "' does not match adjunction site '" + site_label + "'";
      return false;
    }
    if (!ValidateNode(grammar, *child.node, /*is_root=*/false, error)) {
      return false;
    }
  }
  return true;
}

void CollectRefs(DerivationNode* node, std::vector<NodeRef>* out) {
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    out->push_back(NodeRef{node, i});
    CollectRefs(node->children[i].node.get(), out);
  }
}

}  // namespace

TagNodePtr Expand(const Grammar& grammar, const DerivationNode& root) {
  ElementaryTree::Instance instance =
      ExpandNode(grammar, root, /*is_root=*/true);
  GMR_CHECK(instance.foot == nullptr);
  return std::move(instance.root);
}

std::vector<expr::ExprPtr> ExpandToExpressions(const Grammar& grammar,
                                               const DerivationNode& root) {
  TagNodePtr derived = Expand(grammar, root);
  return LowerToExpressions(*derived);
}

bool Validate(const Grammar& grammar, const DerivationNode& root,
              std::string* error) {
  return ValidateNode(grammar, root, /*is_root=*/true, error);
}

std::vector<NodeRef> CollectNodeRefs(DerivationNode* root) {
  std::vector<NodeRef> refs;
  CollectRefs(root, &refs);
  return refs;
}

}  // namespace gmr::tag
