#include "tag/tag_tree.h"

#include <utility>

#include "common/check.h"

namespace gmr::tag {
namespace {

/// Finds the owning unique_ptr of `target` within the tree rooted at *root.
/// Returns nullptr when target is not in the tree. O(n), acceptable because
/// process trees are small and adjunction is not the evaluation hot path.
TagNodePtr* FindOwner(TagNodePtr* root, TagNode* target) {
  if (root->get() == target) return root;
  for (auto& child : (*root)->children) {
    if (TagNodePtr* found = FindOwner(&child, target)) return found;
  }
  return nullptr;
}

void IndexTree(const TagNode& node, Address* path, bool* has_foot,
               std::vector<Symbol>* adjoinable_labels,
               std::vector<Address>* adjoinable_addresses,
               std::vector<Symbol>* slot_labels) {
  switch (node.kind) {
    case TagNode::Kind::kOperator:
    case TagNode::Kind::kWrapper:
      adjoinable_labels->push_back(node.label);
      adjoinable_addresses->push_back(*path);
      break;
    case TagNode::Kind::kSlot:
      slot_labels->push_back(node.label);
      break;
    case TagNode::Kind::kFoot:
      GMR_CHECK_MSG(!*has_foot, "auxiliary tree has two foot nodes");
      *has_foot = true;
      break;
    case TagNode::Kind::kSystem:
    case TagNode::Kind::kLeaf:
      break;
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    path->push_back(static_cast<int>(i));
    IndexTree(*node.children[i], path, has_foot, adjoinable_labels,
              adjoinable_addresses, slot_labels);
    path->pop_back();
  }
}

void CollectPointers(TagNode* node, std::vector<TagNode*>* adjoinable,
                     std::vector<TagNode*>* slots, TagNode** foot) {
  switch (node->kind) {
    case TagNode::Kind::kOperator:
    case TagNode::Kind::kWrapper:
      adjoinable->push_back(node);
      break;
    case TagNode::Kind::kSlot:
      slots->push_back(node);
      break;
    case TagNode::Kind::kFoot:
      *foot = node;
      break;
    default:
      break;
  }
  for (auto& child : node->children) {
    CollectPointers(child.get(), adjoinable, slots, foot);
  }
}

}  // namespace

TagNodePtr TagNode::Clone() const {
  auto copy = std::make_unique<TagNode>();
  copy->kind = kind;
  copy->label = label;
  copy->op = op;
  copy->leaf = leaf;  // Expressions are immutable and shared.
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::size_t TagNode::NodeCount() const {
  std::size_t count = 1;
  for (const auto& child : children) count += child->NodeCount();
  return count;
}

TagNodePtr OperatorNode(Symbol label, expr::NodeKind op,
                        std::vector<TagNodePtr> children) {
  GMR_CHECK_EQ(static_cast<int>(children.size()), expr::Arity(op));
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kOperator;
  node->label = std::move(label);
  node->op = op;
  node->children = std::move(children);
  return node;
}

TagNodePtr WrapperNode(Symbol label, TagNodePtr child) {
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kWrapper;
  node->label = std::move(label);
  node->children.push_back(std::move(child));
  return node;
}

TagNodePtr SystemNode(std::vector<TagNodePtr> equations) {
  GMR_CHECK_GT(equations.size(), 0u);
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kSystem;
  node->label = "Sys";
  node->children = std::move(equations);
  return node;
}

TagNodePtr LeafNode(expr::ExprPtr leaf) {
  GMR_CHECK(leaf != nullptr);
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kLeaf;
  node->leaf = std::move(leaf);
  return node;
}

TagNodePtr SlotNode(Symbol label) {
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kSlot;
  node->label = std::move(label);
  return node;
}

TagNodePtr FootNode(Symbol label) {
  auto node = std::make_unique<TagNode>();
  node->kind = TagNode::Kind::kFoot;
  node->label = std::move(label);
  return node;
}

TagNodePtr FromExpr(const expr::ExprPtr& e, const Symbol& label) {
  GMR_CHECK(e != nullptr);
  if (e->IsLeaf()) return LeafNode(e);
  std::vector<TagNodePtr> children;
  children.reserve(e->children().size());
  for (const auto& child : e->children()) {
    children.push_back(FromExpr(child, label));
  }
  return OperatorNode(label, e->kind(), std::move(children));
}

ElementaryTree::ElementaryTree(std::string name, TagNodePtr root)
    : name_(std::move(name)), root_(std::move(root)) {
  GMR_CHECK(root_ != nullptr);
  Address path;
  IndexTree(*root_, &path, &has_foot_, &adjoinable_labels_,
            &adjoinable_addresses_, &slot_labels_);
  if (has_foot_) {
    // The foot must carry the same non-terminal as the root (TAG invariant).
    // Locate it for the label check.
    std::vector<TagNode*> adjoinable;
    std::vector<TagNode*> slots;
    TagNode* foot = nullptr;
    CollectPointers(root_.get(), &adjoinable, &slots, &foot);
    GMR_CHECK(foot != nullptr);
    GMR_CHECK_MSG(foot->label == root_->label,
                  "foot label must match root label");
  }
}

ElementaryTree::Instance ElementaryTree::Instantiate() const {
  Instance instance;
  instance.root = root_->Clone();
  CollectPointers(instance.root.get(), &instance.adjoinable, &instance.slots,
                  &instance.foot);
  GMR_CHECK_EQ(instance.adjoinable.size(), adjoinable_labels_.size());
  GMR_CHECK_EQ(instance.slots.size(), slot_labels_.size());
  return instance;
}

void Adjoin(TagNodePtr* root, TagNode* target,
            ElementaryTree::Instance beta) {
  GMR_CHECK(beta.foot != nullptr);
  GMR_CHECK_MSG(beta.foot->label == target->label,
                "adjunction label mismatch");
  TagNodePtr* owner = FindOwner(root, target);
  GMR_CHECK_MSG(owner != nullptr, "adjunction target not in tree");

  // Step 1: disconnect the subtree rooted at the target.
  TagNodePtr detached = std::move(*owner);
  // Step 2: the auxiliary tree takes its place.
  *owner = std::move(beta.root);
  // Step 3: the detached subtree re-attaches at the foot.
  TagNodePtr* foot_owner = FindOwner(owner, beta.foot);
  GMR_CHECK(foot_owner != nullptr);
  *foot_owner = std::move(detached);
}

void SubstituteLexeme(TagNode* slot, expr::ExprPtr leaf) {
  GMR_CHECK(slot->kind == TagNode::Kind::kSlot);
  GMR_CHECK(leaf != nullptr);
  GMR_CHECK(leaf->IsLeaf());
  slot->kind = TagNode::Kind::kLeaf;
  slot->leaf = std::move(leaf);
}

bool IsCompleted(const TagNode& root) {
  if (root.kind == TagNode::Kind::kSlot ||
      root.kind == TagNode::Kind::kFoot) {
    return false;
  }
  for (const auto& child : root.children) {
    if (!IsCompleted(*child)) return false;
  }
  return true;
}

namespace {

expr::ExprPtr LowerNode(const TagNode& node) {
  switch (node.kind) {
    case TagNode::Kind::kLeaf:
      return node.leaf;
    case TagNode::Kind::kWrapper:
      GMR_CHECK_EQ(node.children.size(), 1u);
      return LowerNode(*node.children[0]);
    case TagNode::Kind::kOperator: {
      const int arity = expr::Arity(node.op);
      GMR_CHECK_EQ(static_cast<int>(node.children.size()), arity);
      if (arity == 1) return expr::MakeUnary(node.op, LowerNode(*node.children[0]));
      return expr::MakeBinary(node.op, LowerNode(*node.children[0]),
                              LowerNode(*node.children[1]));
    }
    case TagNode::Kind::kSystem:
      GMR_CHECK_MSG(false, "nested system node");
      return nullptr;
    case TagNode::Kind::kSlot:
      GMR_CHECK_MSG(false, "cannot lower an unfilled slot");
      return nullptr;
    case TagNode::Kind::kFoot:
      GMR_CHECK_MSG(false, "cannot lower a foot node");
      return nullptr;
  }
  return nullptr;
}

}  // namespace

std::vector<expr::ExprPtr> LowerToExpressions(const TagNode& root) {
  GMR_CHECK_MSG(IsCompleted(root), "tree has open slots or a foot node");
  std::vector<expr::ExprPtr> equations;
  if (root.kind == TagNode::Kind::kSystem) {
    equations.reserve(root.children.size());
    for (const auto& child : root.children) {
      equations.push_back(LowerNode(*child));
    }
  } else {
    equations.push_back(LowerNode(root));
  }
  return equations;
}

}  // namespace gmr::tag
