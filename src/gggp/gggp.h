#ifndef GMR_GGGP_GGGP_H_
#define GMR_GGGP_GGGP_H_

#include <cstdint>
#include <vector>

#include "gggp/cfg.h"
#include "gp/fitness.h"
#include "gp/parameter_prior.h"
#include "obs/run_context.h"

namespace gmr::gggp {

/// A GGGP individual: one expression tree per process equation plus the
/// constant-parameter vector.
struct GggpIndividual {
  std::vector<expr::ExprPtr> equations;
  std::vector<double> parameters;
  double fitness = 1e300;
};

/// GGGP search configuration (paper Appendix B: same settings as GMR, but
/// a 1200 population because GGGP has no local search and should spend the
/// same number of fitness evaluations).
struct GggpConfig {
  int population_size = 1200;
  int max_generations = 100;
  int elite_size = 2;
  int tournament_size = 5;
  double p_crossover = 0.3;
  double p_subtree_mutation = 0.3;
  double p_gaussian_mutation = 0.3;
  /// Maximum depth of freshly grown subtrees.
  int grow_depth = 4;
  /// Upper bound on equation size (nodes) to keep bloat in check.
  std::size_t max_equation_nodes = 400;
  int sigma_rampdown_generations = 20;
  double sigma_final_scale = 0.1;
  std::uint64_t seed = 1;
  /// Evaluation backend / short-circuiting (shared with GMR for parity).
  gp::SpeedupConfig speedups;
};

struct GggpResult {
  GggpIndividual best;
  std::vector<double> best_fitness_history;
  std::size_t evaluations = 0;
};

/// The domain side of a GGGP run (unified driver API): the expert process
/// the population is seeded with, plus the grammar/priors/fitness it
/// evolves under. Pointees are borrowed and must outlive the run.
struct GggpProblem {
  std::vector<expr::ExprPtr> seed_equations;
  const CfgGrammar* grammar = nullptr;
  const gp::ParameterPriors* priors = nullptr;
  const gp::SequentialFitness* fitness = nullptr;
};

/// Runs grammar-guided GP model revision: the population is seeded with the
/// input process (`problem.seed_equations`) and evolves both structure (via
/// CFG-constrained crossover/mutation) and parameters (Gaussian mutation
/// under the priors). Shared resources (pool, telemetry, RNG) come from
/// `context`; a default context reproduces the standalone behavior.
GggpResult RunGggp(const GggpConfig& config, const GggpProblem& problem,
                   const obs::RunContext& context = {});

/// Standalone entry point (default RunContext).
GggpResult RunGggp(const std::vector<expr::ExprPtr>& seed_equations,
                   const CfgGrammar& grammar,
                   const gp::ParameterPriors& priors,
                   const gp::SequentialFitness& fitness,
                   const GggpConfig& config);

/// The river CFG: all Table II variables, the model state, all Table III
/// parameters, and the full operator set.
CfgGrammar RiverCfgGrammar();

}  // namespace gmr::gggp

#endif  // GMR_GGGP_GGGP_H_
