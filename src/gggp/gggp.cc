#include "gggp/gggp.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "common/check.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/manifest.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::gggp {
namespace {

void AtomicFetchMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Shared evaluation with optional short-circuiting against the best fully
/// evaluated fitness so far (same scheme as Algorithm 1; GGGP gets the same
/// speedups as GMR for a fair comparison, including parallel batches with
/// the frontier discipline from SpeedupConfig::frontier_mode).
class Evaluator {
 public:
  Evaluator(const gp::SequentialFitness* fitness,
            const gp::SpeedupConfig& config, obs::TelemetrySink* sink)
      : fitness_(fitness), config_(config), sink_(obs::ResolveSink(sink)) {}

  /// Pure evaluation against a caller-supplied frontier; sets *fully to
  /// whether the run went to completion (vs. short-circuited). Safe to call
  /// from several threads at once.
  double EvaluateAgainst(const GggpIndividual& individual, double frontier,
                         bool* fully) const {
    const std::size_t num_cases = fitness_->num_cases();
    auto eval = fitness_->Begin(individual.equations, individual.parameters,
                                config_.runtime_compilation);
    *fully = true;
    double fitness = 0.0;
    std::size_t i = 0;
    while (i < num_cases) {
      const bool more = eval->Step();
      fitness = eval->CurrentFitness();
      ++i;
      if (config_.short_circuiting && frontier < 1e299 && i < num_cases &&
          fitness > frontier * config_.es_threshold) {
        const double estimate = config_.extrapolate(fitness, i, num_cases);
        if (estimate > frontier) {
          *fully = false;
          return estimate;
        }
      }
      if (!more) break;
    }
    return fitness;
  }

  /// Serial path: a one-element batch, so the frontier advances
  /// immediately (the pre-parallel behavior).
  double Evaluate(const GggpIndividual& individual) {
    ++evaluations_;
    bool fully = false;
    const double fitness = EvaluateAgainst(
        individual, best_prev_full_.load(std::memory_order_relaxed), &fully);
    if (fully) AtomicFetchMin(&best_prev_full_, fitness);
    return fitness;
  }

  /// Assigns `individual->fitness` for the whole batch, fanned out across
  /// `pool`. Under kFrozenFrontier every item cuts against the same
  /// snapshot and the batch minimum folds in afterwards, so the assigned
  /// values are identical for any thread count.
  void EvaluateBatch(ThreadPool* pool,
                     const std::vector<GggpIndividual*>& batch) {
    if (batch.empty()) return;
    const bool shared =
        config_.frontier_mode == gp::FrontierMode::kShared;
    const double snapshot = best_prev_full_.load(std::memory_order_relaxed);
    std::vector<double> full_fitness(
        batch.size(), std::numeric_limits<double>::infinity());
    const std::vector<TaskFailure> failures =
        ParallelFor(pool, batch.size(), [&](std::size_t i) {
          const double frontier =
              shared ? best_prev_full_.load(std::memory_order_relaxed)
                     : snapshot;
          bool fully = false;
          const double fitness = EvaluateAgainst(*batch[i], frontier, &fully);
          batch[i]->fitness = fitness;
          if (fully) {
            if (shared) {
              AtomicFetchMin(&best_prev_full_, fitness);
            } else {
              full_fitness[i] = fitness;
            }
          }
        });
    // Barrier conversion, mirroring gp::FitnessEvaluator: a throwing task
    // penalizes only its own individual and never enters the frontier.
    for (const TaskFailure& failure : failures) {
      batch[failure.index]->fitness = kPenaltyFitness;
      full_fitness[failure.index] = std::numeric_limits<double>::infinity();
    }
    evaluations_ += batch.size();
    for (double fitness : full_fitness) {
      AtomicFetchMin(&best_prev_full_, fitness);
    }
    if (sink_->enabled()) {
      // Coordinator-only emission at the batch barrier (the same contract
      // as gp::FitnessEvaluator): deterministic order and, under
      // kFrozenFrontier, deterministic field values for any thread count.
      obs::TraceEvent event("eval_batch");
      event.Field("n", static_cast<double>(batch.size()))
          .Field("individuals", static_cast<double>(batch.size()))
          .Field("task_failures", static_cast<double>(failures.size()))
          .Field("frontier",
                 best_prev_full_.load(std::memory_order_relaxed));
      sink_->Emit(std::move(event));
    }
  }

  std::size_t evaluations() const { return evaluations_; }

  /// Checkpoint hooks (coordinator-only, between batches).
  double best_prev_full() const {
    return best_prev_full_.load(std::memory_order_relaxed);
  }
  void Restore(double frontier, std::size_t evaluations) {
    best_prev_full_.store(frontier, std::memory_order_relaxed);
    evaluations_ = evaluations;
  }

 private:
  const gp::SequentialFitness* fitness_;
  gp::SpeedupConfig config_;
  obs::TelemetrySink* sink_;
  std::atomic<double> best_prev_full_{1e300};
  std::size_t evaluations_ = 0;
};

std::vector<std::string> GggpFingerprint(const GggpConfig& config,
                                         std::size_t num_species) {
  return ckpt::MakeFingerprint({
      {"seed", std::to_string(config.seed)},
      {"population_size", std::to_string(config.population_size)},
      {"max_generations", std::to_string(config.max_generations)},
      {"elite_size", std::to_string(config.elite_size)},
      // State-vector width of the problem: resumes across different
      // constituent registries are refused.
      {"num_species", std::to_string(num_species)},
  });
}

void SaveGggpCheckpoint(ckpt::Checkpointer* checkpointer,
                        const GggpConfig& config, int generation,
                        const std::vector<GggpIndividual>& population,
                        const Evaluator& evaluator, const Rng& rng,
                        const GggpResult& result,
                        std::size_t num_species) {
  ckpt::Snapshot snapshot;
  snapshot.driver = "gggp";
  snapshot.step = static_cast<std::uint64_t>(generation);
  snapshot.AddSection("fingerprint")->lines =
      GggpFingerprint(config, num_species);
  snapshot.AddSection("rng")->lines = {
      ckpt::SerializeRngState(rng.SaveState())};
  ckpt::Section* pop = snapshot.AddSection("population");
  for (const GggpIndividual& individual : population) {
    pop->lines.push_back("i " + ckpt::HexDouble(individual.fitness) + " " +
                         std::to_string(individual.equations.size()));
    for (const expr::ExprPtr& equation : individual.equations) {
      pop->lines.push_back(ckpt::SerializeExpr(*equation));
    }
    pop->lines.push_back(ckpt::SerializeDoubles(individual.parameters));
  }
  ckpt::Section* ev = snapshot.AddSection("evaluator");
  ev->lines.push_back("frontier " +
                      ckpt::HexDouble(evaluator.best_prev_full()));
  ev->lines.push_back("evaluations " +
                      std::to_string(evaluator.evaluations()));
  snapshot.AddSection("history")->lines = {
      ckpt::SerializeDoubles(result.best_fitness_history)};
  checkpointer->Save(std::move(snapshot));
}

bool RestoreGggpCheckpoint(const ckpt::Snapshot& snapshot,
                           const GggpConfig& config,
                           std::vector<GggpIndividual>* population,
                           Evaluator* evaluator, Rng* rng, GggpResult* result,
                           int* start_generation) {
  const ckpt::Section* rng_section = snapshot.FindSection("rng");
  RngState rng_state;
  if (rng_section == nullptr || rng_section->lines.size() != 1 ||
      !ckpt::ParseRngState(rng_section->lines[0], &rng_state)) {
    return false;
  }

  const ckpt::Section* pop_section = snapshot.FindSection("population");
  if (pop_section == nullptr) return false;
  std::vector<GggpIndividual> restored;
  restored.reserve(static_cast<std::size_t>(config.population_size));
  std::size_t i = 0;
  while (i < pop_section->lines.size()) {
    const std::vector<std::string> head =
        ckpt::TokenizeSExpr(pop_section->lines[i]);
    GggpIndividual individual;
    char* end = nullptr;
    if (head.size() != 3 || head[0] != "i" ||
        !ckpt::ParseHexDouble(head[1], &individual.fitness)) {
      return false;
    }
    const unsigned long long num_equations =
        std::strtoull(head[2].c_str(), &end, 10);
    if (end != head[2].c_str() + head[2].size() ||
        i + 1 + num_equations + 1 > pop_section->lines.size()) {
      return false;
    }
    ++i;
    for (unsigned long long eq = 0; eq < num_equations; ++eq, ++i) {
      std::string error;
      expr::ExprPtr equation =
          ckpt::ParseExprLine(pop_section->lines[i], &error);
      if (equation == nullptr) return false;
      individual.equations.push_back(std::move(equation));
    }
    if (!ckpt::ParseDoubles(pop_section->lines[i], &individual.parameters)) {
      return false;
    }
    ++i;
    restored.push_back(std::move(individual));
  }
  if (restored.size() != static_cast<std::size_t>(config.population_size)) {
    return false;
  }

  const ckpt::Section* ev_section = snapshot.FindSection("evaluator");
  double frontier;
  std::size_t evaluations;
  if (ev_section == nullptr || ev_section->lines.size() != 2 ||
      ev_section->lines[0].compare(0, 9, "frontier ") != 0 ||
      !ckpt::ParseHexDouble(ev_section->lines[0].substr(9), &frontier)) {
    return false;
  }
  {
    const std::string& line = ev_section->lines[1];
    char* end = nullptr;
    if (line.compare(0, 12, "evaluations ") != 0) return false;
    evaluations = static_cast<std::size_t>(
        std::strtoull(line.c_str() + 12, &end, 10));
    if (end != line.c_str() + line.size()) return false;
  }

  const ckpt::Section* history_section = snapshot.FindSection("history");
  std::vector<double> history;
  if (history_section == nullptr || history_section->lines.size() != 1 ||
      !ckpt::ParseDoubles(history_section->lines[0], &history)) {
    return false;
  }

  rng->RestoreState(rng_state);
  evaluator->Restore(frontier, evaluations);
  *population = std::move(restored);
  result->best_fitness_history = std::move(history);
  *start_generation = static_cast<int>(snapshot.step) + 1;
  return true;
}

const GggpIndividual& Tournament(const std::vector<GggpIndividual>& population,
                                 int size, Rng& rng) {
  const GggpIndividual* best = nullptr;
  for (int i = 0; i < size; ++i) {
    const GggpIndividual& candidate = population[rng.PickIndex(population)];
    if (best == nullptr || candidate.fitness < best->fitness) {
      best = &candidate;
    }
  }
  return *best;
}

}  // namespace

CfgGrammar RiverCfgGrammar() {
  CfgGrammar grammar;
  for (int slot = 0; slot < river::kNumVariables; ++slot) {
    grammar.variable_slots.push_back(slot);
    grammar.variable_names.push_back(river::VariableName(slot));
  }
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    grammar.parameter_slots.push_back(slot);
    grammar.parameter_names.push_back(river::ParameterName(slot));
  }
  grammar.binary_ops = {expr::NodeKind::kAdd, expr::NodeKind::kSub,
                        expr::NodeKind::kMul, expr::NodeKind::kDiv};
  grammar.unary_ops = {expr::NodeKind::kLog, expr::NodeKind::kExp};
  return grammar;
}

GggpResult RunGggp(const GggpConfig& config, const GggpProblem& problem,
                   const obs::RunContext& context) {
  const std::vector<expr::ExprPtr>& seed_equations = problem.seed_equations;
  const CfgGrammar& grammar = *problem.grammar;
  const gp::ParameterPriors& priors = *problem.priors;
  const gp::SequentialFitness& fitness = *problem.fitness;
  GMR_CHECK(!seed_equations.empty());
  Rng own_rng(config.seed);
  Rng& rng = context.rng != nullptr ? *context.rng : own_rng;
  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  Evaluator evaluator(&fitness, config.speedups, sink);
  obs::PoolLease pool_lease =
      obs::LeasePool(context, config.speedups.num_threads);
  ThreadPool* const pool = pool_lease.pool();
  const std::vector<double> means = gp::PriorMeans(priors);

  GggpResult result;
  std::vector<GggpIndividual> population;
  int start_generation = 0;
  bool resumed = false;
  if (context.checkpointer != nullptr) {
    const ckpt::Snapshot* snapshot =
        context.checkpointer->ResumeFor(
            "gggp", GggpFingerprint(config, fitness.num_states()));
    if (snapshot != nullptr &&
        RestoreGggpCheckpoint(*snapshot, config, &population, &evaluator,
                              &rng, &result, &start_generation)) {
      resumed = true;
    }
  }

  // A resumed trace already contains the first segment's manifest.
  if (!resumed && sink->enabled()) {
    obs::RunManifest manifest = obs::MakeRunManifest("gggp", config.seed);
    manifest.config_fields = {
        {"population_size", static_cast<double>(config.population_size)},
        {"max_generations", static_cast<double>(config.max_generations)},
        {"elite_size", static_cast<double>(config.elite_size)},
        {"tournament_size", static_cast<double>(config.tournament_size)},
        {"p_crossover", config.p_crossover},
        {"p_subtree_mutation", config.p_subtree_mutation},
        {"p_gaussian_mutation", config.p_gaussian_mutation},
        {"grow_depth", static_cast<double>(config.grow_depth)},
        {"short_circuiting",
         config.speedups.short_circuiting ? 1.0 : 0.0},
        {"runtime_compilation",
         config.speedups.runtime_compilation ? 1.0 : 0.0},
    };
    manifest.num_threads = pool != nullptr ? pool->num_threads() : 1;
    obs::EmitManifest(sink, manifest);
  }

  auto mutate_structure = [&](GggpIndividual* individual) {
    const std::size_t eq = rng.PickIndex(individual->equations);
    expr::ExprPtr& tree = individual->equations[eq];
    const std::size_t index =
        static_cast<std::size_t>(rng.UniformInt(tree->NodeCount()));
    const expr::ExprPtr grown =
        GrowRandomExpr(grammar, config.grow_depth, rng);
    expr::ExprPtr candidate = ReplaceNodeAt(tree, index, grown);
    if (candidate->NodeCount() <= config.max_equation_nodes) {
      tree = std::move(candidate);
    }
  };

  // Initial population: the input process with progressively more random
  // structural edits (index 0 is the unmodified expert process).
  if (!resumed) {
    population.reserve(static_cast<std::size_t>(config.population_size));
    while (population.size() <
           static_cast<std::size_t>(config.population_size)) {
      GggpIndividual individual;
      individual.equations = seed_equations;
      individual.parameters = means;
      const int edits = static_cast<int>(population.size() % 4);
      for (int e = 0; e < edits; ++e) mutate_structure(&individual);
      population.push_back(std::move(individual));
    }
    std::vector<GggpIndividual*> batch;
    batch.reserve(population.size());
    for (GggpIndividual& individual : population) {
      batch.push_back(&individual);
    }
    evaluator.EvaluateBatch(pool, batch);
  }

  for (int generation = start_generation;
       generation < config.max_generations; ++generation) {
    const int k = config.sigma_rampdown_generations;
    const int rampdown_start = config.max_generations - k;
    double sigma_scale = 1.0;
    if (k > 0 && generation >= rampdown_start) {
      const double progress = static_cast<double>(generation - rampdown_start) /
                              static_cast<double>(k);
      sigma_scale = 1.0 + (config.sigma_final_scale - 1.0) * progress;
    }

    std::sort(population.begin(), population.end(),
              [](const GggpIndividual& a, const GggpIndividual& b) {
                return a.fitness < b.fitness;
              });
    result.best_fitness_history.push_back(population.front().fitness);
    if (sink->enabled()) {
      double sum = 0.0;
      for (const GggpIndividual& individual : population) {
        sum += individual.fitness;
      }
      obs::TraceEvent event("generation");
      event.Field("gen", static_cast<double>(generation))
          .Field("best_fitness", population.front().fitness)
          .Field("mean_fitness",
                 sum / static_cast<double>(population.size()));
      sink->Emit(std::move(event));
    }

    std::vector<GggpIndividual> next(
        population.begin(),
        population.begin() + std::min<std::size_t>(
                                 static_cast<std::size_t>(config.elite_size),
                                 population.size()));
    // Breeding is sequential (it owns the RNG); modified offspring are
    // batch-evaluated afterwards. Selection only reads the previous
    // generation, so deferring evaluation changes nothing it sees.
    std::vector<std::size_t> pending;  // indices into `next` needing eval
    while (next.size() < population.size()) {
      const double dice = rng.Uniform();
      if (dice < config.p_crossover) {
        GggpIndividual a = Tournament(population, config.tournament_size, rng);
        const GggpIndividual& b =
            Tournament(population, config.tournament_size, rng);
        // Subtree crossover within the same equation index.
        const std::size_t eq = rng.PickIndex(a.equations);
        const expr::ExprPtr& donor = b.equations[eq];
        const std::size_t from =
            static_cast<std::size_t>(rng.UniformInt(donor->NodeCount()));
        const std::size_t to = static_cast<std::size_t>(
            rng.UniformInt(a.equations[eq]->NodeCount()));
        expr::ExprPtr sub = std::shared_ptr<const expr::Expr>(
            donor, &NodeAt(*donor, from));
        expr::ExprPtr candidate = ReplaceNodeAt(a.equations[eq], to, sub);
        if (candidate->NodeCount() <= config.max_equation_nodes) {
          a.equations[eq] = std::move(candidate);
          pending.push_back(next.size());
        }
        next.push_back(std::move(a));
      } else if (dice < config.p_crossover + config.p_subtree_mutation) {
        GggpIndividual child =
            Tournament(population, config.tournament_size, rng);
        mutate_structure(&child);
        pending.push_back(next.size());
        next.push_back(std::move(child));
      } else if (dice < config.p_crossover + config.p_subtree_mutation +
                            config.p_gaussian_mutation) {
        GggpIndividual child =
            Tournament(population, config.tournament_size, rng);
        for (std::size_t i = 0; i < priors.size(); ++i) {
          child.parameters[i] = rng.TruncatedGaussian(
              child.parameters[i], priors[i].InitialSigma() * sigma_scale,
              priors[i].lo, priors[i].hi);
        }
        for (auto& eq : child.equations) {
          eq = JitterConstants(eq, sigma_scale, rng);
        }
        pending.push_back(next.size());
        next.push_back(std::move(child));
      } else {
        next.push_back(Tournament(population, config.tournament_size, rng));
      }
    }
    population = std::move(next);
    {
      std::vector<GggpIndividual*> batch;
      batch.reserve(pending.size());
      for (std::size_t index : pending) batch.push_back(&population[index]);
      evaluator.EvaluateBatch(pool, batch);
    }

    // Batch barrier: drain buffered trace events, then checkpoint on the
    // configured cadence.
    sink->Flush();
    if (context.checkpointer != nullptr &&
        context.checkpointer->ShouldSnapshot(
            static_cast<std::uint64_t>(generation))) {
      SaveGggpCheckpoint(context.checkpointer, config, generation, population,
                         evaluator, rng, result, fitness.num_states());
    }
  }

  std::sort(population.begin(), population.end(),
            [](const GggpIndividual& a, const GggpIndividual& b) {
              return a.fitness < b.fitness;
            });
  result.best = population.front();
  result.best_fitness_history.push_back(result.best.fitness);
  result.evaluations = evaluator.evaluations();
  return result;
}

GggpResult RunGggp(const std::vector<expr::ExprPtr>& seed_equations,
                   const CfgGrammar& grammar,
                   const gp::ParameterPriors& priors,
                   const gp::SequentialFitness& fitness,
                   const GggpConfig& config) {
  GggpProblem problem;
  problem.seed_equations = seed_equations;
  problem.grammar = &grammar;
  problem.priors = &priors;
  problem.fitness = &fitness;
  return RunGggp(config, problem, obs::RunContext{});
}

}  // namespace gmr::gggp
