#include "gggp/cfg.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gmr::gggp {

expr::ExprPtr GrowRandomExpr(const CfgGrammar& grammar, int max_depth,
                             Rng& rng) {
  const bool leaf = max_depth <= 1 || rng.Bernoulli(0.3);
  if (leaf) {
    const double dice = rng.Uniform();
    if (dice < 0.4 && !grammar.variable_slots.empty()) {
      const std::size_t i = rng.PickIndex(grammar.variable_slots);
      return expr::Variable(grammar.variable_slots[i],
                            grammar.variable_names[i]);
    }
    if (dice < 0.6 && !grammar.parameter_slots.empty()) {
      const std::size_t i = rng.PickIndex(grammar.parameter_slots);
      return expr::Parameter(grammar.parameter_slots[i],
                             grammar.parameter_names[i]);
    }
    return expr::Constant(rng.Uniform(grammar.const_lo, grammar.const_hi));
  }
  const bool unary =
      !grammar.unary_ops.empty() &&
      (grammar.binary_ops.empty() || rng.Bernoulli(0.2));
  if (unary) {
    return expr::MakeUnary(grammar.unary_ops[rng.PickIndex(grammar.unary_ops)],
                           GrowRandomExpr(grammar, max_depth - 1, rng));
  }
  GMR_CHECK(!grammar.binary_ops.empty());
  return expr::MakeBinary(
      grammar.binary_ops[rng.PickIndex(grammar.binary_ops)],
      GrowRandomExpr(grammar, max_depth - 1, rng),
      GrowRandomExpr(grammar, max_depth - 1, rng));
}

std::size_t CountNodes(const expr::Expr& root) { return root.NodeCount(); }

const expr::Expr& NodeAt(const expr::Expr& root, std::size_t index) {
  GMR_CHECK_LT(index, root.NodeCount());
  if (index == 0) return root;
  std::size_t offset = 1;
  for (const auto& child : root.children()) {
    const std::size_t size = child->NodeCount();
    if (index < offset + size) return NodeAt(*child, index - offset);
    offset += size;
  }
  GMR_CHECK_MSG(false, "unreachable");
  return root;
}

expr::ExprPtr ReplaceNodeAt(const expr::ExprPtr& root, std::size_t index,
                            const expr::ExprPtr& replacement) {
  GMR_CHECK_LT(index, root->NodeCount());
  if (index == 0) return replacement;
  std::size_t offset = 1;
  std::vector<expr::ExprPtr> kids;
  kids.reserve(root->children().size());
  bool replaced = false;
  for (const auto& child : root->children()) {
    const std::size_t size = child->NodeCount();
    if (!replaced && index < offset + size) {
      kids.push_back(ReplaceNodeAt(child, index - offset, replacement));
      replaced = true;
    } else {
      kids.push_back(child);
    }
    offset += size;
  }
  GMR_CHECK(replaced);
  if (kids.size() == 1) return expr::MakeUnary(root->kind(), kids[0]);
  return expr::MakeBinary(root->kind(), kids[0], kids[1]);
}

expr::ExprPtr JitterConstants(const expr::ExprPtr& root, double sigma_scale,
                              Rng& rng) {
  if (root->kind() == expr::NodeKind::kConstant) {
    const double v = root->value();
    const double sigma = std::max(std::fabs(v) / 4.0, 0.05) * sigma_scale;
    return expr::Constant(rng.Gaussian(v, sigma));
  }
  if (root->IsLeaf()) return root;
  std::vector<expr::ExprPtr> kids;
  kids.reserve(root->children().size());
  for (const auto& child : root->children()) {
    kids.push_back(JitterConstants(child, sigma_scale, rng));
  }
  if (kids.size() == 1) return expr::MakeUnary(root->kind(), kids[0]);
  return expr::MakeBinary(root->kind(), kids[0], kids[1]);
}

}  // namespace gmr::gggp
