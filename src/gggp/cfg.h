#ifndef GMR_GGGP_CFG_H_
#define GMR_GGGP_CFG_H_

#include <vector>

#include "common/rng.h"
#include "expr/ast.h"

namespace gmr::gggp {

/// The context-free expression grammar used by the GGGP baseline:
///   Exp -> Exp op Exp | log(Exp) | exp(Exp) | Var | Param | Const
/// with one generic non-terminal. Compared to the TAG grammar of GMR, it
/// has no extension-point locality and no connector/extender discipline —
/// any subtree may be replaced by any expression — which is exactly the
/// difference the paper's GMR-vs-GGGP comparison isolates.
struct CfgGrammar {
  /// Variable slots terminals may reference (with display names parallel).
  std::vector<int> variable_slots;
  std::vector<std::string> variable_names;
  /// Parameter slots terminals may reference.
  std::vector<int> parameter_slots;
  std::vector<std::string> parameter_names;
  /// Constant initialization range.
  double const_lo = 0.0;
  double const_hi = 1.0;
  /// Operators available to interior nodes.
  std::vector<expr::NodeKind> binary_ops;
  std::vector<expr::NodeKind> unary_ops;
};

/// Grows a random expression of at most `max_depth`.
expr::ExprPtr GrowRandomExpr(const CfgGrammar& grammar, int max_depth,
                             Rng& rng);

/// Number of nodes in `root` (preorder indexable).
std::size_t CountNodes(const expr::Expr& root);

/// The `index`-th node in preorder (0 = root).
const expr::Expr& NodeAt(const expr::Expr& root, std::size_t index);

/// Returns a copy of `root` with the preorder `index`-th subtree replaced
/// by `replacement` (subtrees are shared, so this only rebuilds the spine).
expr::ExprPtr ReplaceNodeAt(const expr::ExprPtr& root, std::size_t index,
                            const expr::ExprPtr& replacement);

/// Returns a copy of `root` with every literal constant jittered by a
/// relative Gaussian step (the CFG analog of GMR's lexeme mutation).
expr::ExprPtr JitterConstants(const expr::ExprPtr& root, double sigma_scale,
                              Rng& rng);

}  // namespace gmr::gggp

#endif  // GMR_GGGP_CFG_H_
