#include "grad/adjoint.h"

#include <cmath>
#include <limits>
#include <memory>
#include <new>
#include <utility>

#include "common/check.h"
#include "expr/eval.h"
#include "grad/tape.h"
#include "river/variables.h"

namespace gmr::grad {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// True when simulate.cc's ClampState passes `raw` through unchanged — the
/// only case with a nonzero (unit) clamp derivative. Pinned or non-finite
/// raw states are locally constant, so their cotangent is dropped exactly.
bool ClampPassesThrough(double raw, const river::SimulationConfig& config) {
  return std::isfinite(raw) && raw >= config.state_min &&
         raw <= config.state_max;
}

double ClampStateValue(double raw, const river::SimulationConfig& config) {
  if (!std::isfinite(raw)) {
    return std::signbit(raw) ? config.state_min : config.state_max;
  }
  if (raw < config.state_min) return config.state_min;
  if (raw > config.state_max) return config.state_max;
  return raw;
}

/// Observation bindings in RiverEvaluation's order, mirrored through the
/// public registry API: every constituent with a mapped series, else the
/// primary state against series 0.
std::vector<std::pair<std::size_t, int>> Bindings(
    const river::ConstituentSet& constituents) {
  std::vector<std::pair<std::size_t, int>> bindings;
  for (std::size_t i = 0; i < constituents.size(); ++i) {
    const int series = constituents.at(i).observed_series;
    if (series >= 0) bindings.emplace_back(i, series);
  }
  if (bindings.empty()) {
    bindings.emplace_back(
        static_cast<std::size_t>(constituents.PrimaryObserved()), 0);
  }
  return bindings;
}

/// Sound pruning env for the rollout: parameters pinned to θ (the tape is
/// rebuilt per gradient query), drivers spanning the window's data hull,
/// and states spanning the commit clamp (Euler feeds equations committed
/// states only) or unbounded with the NaN bit (RK4 stage inputs are
/// unclamped sums that can overflow or go NaN).
analysis::DomainEnv RolloutEnv(const std::vector<double>& parameters,
                               const river::RiverDataset& dataset,
                               std::size_t t_begin, std::size_t t_end,
                               std::size_t num_species,
                               const river::SimulationConfig& config) {
  analysis::DomainEnv env;
  analysis::Interval state_interval;
  if (config.method == river::IntegrationMethod::kEuler) {
    state_interval = analysis::Interval::Of(config.state_min,
                                            config.state_max);
  } else {
    state_interval = analysis::Interval::All();
    state_interval.maybe_nan = true;
  }
  env.variables.assign(num_species, state_interval);
  for (int k = 0; k < river::kNumDriverVariables; ++k) {
    const std::vector<double>& series =
        dataset.drivers[static_cast<std::size_t>(river::kVlgt + k)];
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    bool clean = t_begin < t_end;
    for (std::size_t t = t_begin; t < t_end && clean; ++t) {
      clean = std::isfinite(series[t]);
      lo = std::min(lo, series[t]);
      hi = std::max(hi, series[t]);
    }
    env.variables.push_back(clean ? analysis::Interval::Of(lo, hi)
                                  : analysis::Interval::All());
  }
  env.parameters.reserve(parameters.size());
  for (const double p : parameters) {
    env.parameters.push_back(analysis::Interval::Point(p));
  }
  return env;
}

/// Per-stage forward record of one substep: the variable vector the
/// equations saw, every tape's value buffer (concatenated at per-equation
/// offsets), and the resulting slopes.
struct StageRecord {
  std::vector<double> vars;
  std::vector<double> values;
  std::vector<double> k;
};

struct SubstepRecord {
  std::vector<double> begin_state;
  std::vector<double> raw;
  std::vector<StageRecord> stages;
};

}  // namespace

GradientResult RmseGradient(const std::vector<expr::ExprPtr>& equations,
                            const std::vector<double>& parameters,
                            const river::RiverDataset& dataset,
                            std::size_t t_begin, std::size_t t_end,
                            const river::ConstituentSet& constituents,
                            const std::vector<double>& initial_state,
                            const river::SimulationConfig& config,
                            bool prune) {
  GradientResult result;
  const std::size_t num_species = constituents.size();
  const std::size_t num_variables =
      num_species + static_cast<std::size_t>(river::kNumDriverVariables);
  const std::size_t steps = t_end - t_begin;
  result.gradient.assign(parameters.size(), 0.0);

  // Forward sweep: the ordinary interpreter rollout (bit-identical to the
  // fitness evaluator's VM path), whose trajectory doubles as the
  // begin-of-day state checkpoints of the reverse sweep.
  const river::SimulationTrajectory trajectory =
      river::Simulate(equations, parameters, dataset, t_begin, t_end,
                      constituents, initial_state, config,
                      /*compiled=*/false, &result.report);
  const std::vector<std::pair<std::size_t, int>> bindings =
      Bindings(constituents);
  double sse = 0.0;
  for (std::size_t d = 0; d < steps; ++d) {
    for (const auto& [species, series] : bindings) {
      const double error = trajectory.series[species][d] -
                           dataset.ObservedSeries(series)[t_begin + d];
      sse += error * error;
    }
  }
  result.rmse =
      steps == 0
          ? 0.0
          : std::sqrt(sse / static_cast<double>(steps * bindings.size()));
  if (steps == 0) {
    result.gradient_valid = true;
    return result;
  }

  // One tape per equation, activity-pruned over the rollout env.
  analysis::DomainEnv env;
  if (prune) {
    env = RolloutEnv(parameters, dataset, t_begin, t_end, num_species,
                     config);
  }
  std::vector<Tape> tapes;
  tapes.reserve(equations.size());
  std::size_t max_tape = 0;
  std::vector<std::size_t> offsets;
  std::size_t total_nodes = 0;
  try {
    for (const expr::ExprPtr& eq : equations) {
      tapes.emplace_back(*eq, static_cast<int>(parameters.size()),
                         static_cast<int>(num_species),
                         prune ? &env : nullptr);
      offsets.push_back(total_nodes);
      total_nodes += tapes.back().size();
      max_tape = std::max(max_tape, tapes.back().size());
      result.tape_nodes += tapes.back().size();
      result.pruned_nodes += tapes.back().pruned_nodes();
    }
  } catch (const std::bad_alloc&) {
    // `tape_alloc` fault or a genuine allocation failure: the value is
    // still good; the gradient is not. Consumers degrade.
    result.gradient_valid = false;
    return result;
  }

  // Days at or after the abort point predict the constant penalty state:
  // zero gradient by construction, so the reverse sweep skips them.
  const std::size_t good_days =
      result.report.aborted ? result.report.days_before_abort : steps;
  if (result.rmse == 0.0) {
    // RMSE is non-differentiable at exactly 0; report the zero subgradient.
    result.gradient_valid = true;
    return result;
  }

  const int substeps = config.substeps;
  const double dt = 1.0 / static_cast<double>(substeps);
  const bool rk4 = config.method == river::IntegrationMethod::kRk4;
  const std::size_t num_stages = rk4 ? 4 : 1;
  const double stage_offsets[4] = {0.0, 0.5, 0.5, 1.0};

  std::vector<SubstepRecord> records(static_cast<std::size_t>(substeps));
  for (SubstepRecord& record : records) {
    record.begin_state.assign(num_species, 0.0);
    record.raw.assign(num_species, 0.0);
    record.stages.resize(num_stages);
    for (StageRecord& stage : record.stages) {
      stage.vars.assign(num_variables, 0.0);
      stage.values.assign(total_nodes, 0.0);
      stage.k.assign(num_species, 0.0);
    }
  }

  std::vector<double> lambda(num_species, 0.0);   // dSSE/d(end-of-day state)
  std::vector<double> param_adjoint(parameters.size(), 0.0);
  std::vector<double> lambda_raw(num_species, 0.0);
  std::vector<double> lambda_next(num_species, 0.0);
  std::vector<double> stage_adjoint(num_species, 0.0);
  std::vector<double> gk(4 * num_species, 0.0);
  std::vector<double> cotangents(max_tape, 0.0);
  std::vector<double> state(num_species, 0.0);

  for (std::size_t d = good_days; d-- > 0;) {
    // Seed with this day's residuals: d(SSE)/d(prediction) = 2 * error.
    for (const auto& [species, series] : bindings) {
      const double error = trajectory.series[species][d] -
                           dataset.ObservedSeries(series)[t_begin + d];
      lambda[species] += 2.0 * error;
    }
    // Recompute the day's substeps from the begin-of-day checkpoint,
    // recording every stage context and tape value buffer. This replays
    // the integrator's exact arithmetic (same kernels, same operation
    // order), so the committed states match the forward sweep bitwise.
    for (std::size_t s = 0; s < num_species; ++s) {
      state[s] = d == 0 ? ClampStateValue(initial_state[s], config)
                        : trajectory.series[s][d - 1];
    }
    for (int step = 0; step < substeps; ++step) {
      SubstepRecord& record = records[static_cast<std::size_t>(step)];
      record.begin_state = state;
      for (std::size_t stage = 0; stage < num_stages; ++stage) {
        StageRecord& sr = record.stages[stage];
        const double o = rk4 ? stage_offsets[stage] : 0.0;
        const std::vector<double>& k_prev =
            stage == 0 ? sr.k : record.stages[stage - 1].k;
        for (std::size_t s = 0; s < num_species; ++s) {
          sr.vars[s] = o == 0.0 ? state[s] : state[s] + o * dt * k_prev[s];
        }
        for (int k = 0; k < river::kNumDriverVariables; ++k) {
          sr.vars[num_species + static_cast<std::size_t>(k)] =
              dataset.drivers[static_cast<std::size_t>(river::kVlgt + k)]
                             [t_begin + d];
        }
        expr::EvalContext ctx;
        ctx.variables = sr.vars.data();
        ctx.num_variables = num_variables;
        ctx.parameters = parameters.data();
        ctx.num_parameters = parameters.size();
        for (std::size_t e = 0; e < tapes.size(); ++e) {
          sr.k[e] = tapes[e].Forward(ctx, sr.values.data() + offsets[e]);
        }
      }
      if (rk4) {
        for (std::size_t s = 0; s < num_species; ++s) {
          record.raw[s] =
              state[s] + dt / 6.0 *
                             (record.stages[0].k[s] +
                              2.0 * record.stages[1].k[s] +
                              2.0 * record.stages[2].k[s] +
                              record.stages[3].k[s]);
        }
      } else {
        for (std::size_t s = 0; s < num_species; ++s) {
          record.raw[s] = state[s] + dt * record.stages[0].k[s];
        }
      }
      for (std::size_t s = 0; s < num_species; ++s) {
        state[s] = ClampStateValue(record.raw[s], config);
      }
    }
    // Reverse the substeps: through the commit clamp, the RK4 stage
    // chain, and each equation's tape.
    for (int step = substeps; step-- > 0;) {
      const SubstepRecord& record = records[static_cast<std::size_t>(step)];
      for (std::size_t s = 0; s < num_species; ++s) {
        lambda_raw[s] =
            ClampPassesThrough(record.raw[s], config) ? lambda[s] : 0.0;
        lambda_next[s] = lambda_raw[s];  // raw = state + ... (identity term)
      }
      if (rk4) {
        for (std::size_t s = 0; s < num_species; ++s) {
          gk[0 * num_species + s] = lambda_raw[s] * (dt / 6.0);
          gk[1 * num_species + s] = lambda_raw[s] * (dt / 3.0);
          gk[2 * num_species + s] = lambda_raw[s] * (dt / 3.0);
          gk[3 * num_species + s] = lambda_raw[s] * (dt / 6.0);
        }
      } else {
        for (std::size_t s = 0; s < num_species; ++s) {
          gk[s] = lambda_raw[s] * dt;
        }
      }
      for (std::size_t stage = num_stages; stage-- > 0;) {
        const StageRecord& sr = record.stages[stage];
        std::fill(stage_adjoint.begin(), stage_adjoint.end(), 0.0);
        for (std::size_t e = 0; e < tapes.size(); ++e) {
          const double seed = gk[stage * num_species + e];
          if (seed == 0.0) continue;
          tapes[e].Reverse(sr.values.data() + offsets[e], seed,
                           param_adjoint.data(), stage_adjoint.data(),
                           cotangents.data());
        }
        // Stage input x = state + o * dt * k_prev: the identity part feeds
        // the substep's state cotangent, the k_prev part the previous
        // stage's slope cotangent.
        for (std::size_t s = 0; s < num_species; ++s) {
          lambda_next[s] += stage_adjoint[s];
        }
        if (stage > 0) {
          const double o = stage_offsets[stage];
          for (std::size_t s = 0; s < num_species; ++s) {
            gk[(stage - 1) * num_species + s] += o * dt * stage_adjoint[s];
          }
        }
      }
      lambda = lambda_next;
    }
  }

  // dRMSE/dθ = dSSE/dθ / (2 * RMSE * days * observations).
  const double scale =
      1.0 / (2.0 * result.rmse * static_cast<double>(steps) *
             static_cast<double>(bindings.size()));
  bool valid = true;
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    result.gradient[i] = param_adjoint[i] == 0.0 ? 0.0
                                                 : param_adjoint[i] * scale;
    valid = valid && std::isfinite(result.gradient[i]);
  }
  result.gradient_valid = valid;
  return result;
}

RiverGradientFitness::RiverGradientFitness(
    const river::RiverDataset* dataset, std::size_t t_begin,
    std::size_t t_end, river::ConstituentSet constituents,
    std::vector<double> initial_state, river::SimulationConfig config)
    : dataset_(dataset),
      t_begin_(t_begin),
      t_end_(t_end),
      constituents_(std::move(constituents)),
      initial_state_(std::move(initial_state)),
      config_(config) {
  GMR_CHECK(dataset_ != nullptr);
  config_.num_species = static_cast<int>(constituents_.size());
}

RiverGradientFitness RiverGradientFitness::ForTraining(
    const river::RiverDataset* dataset,
    const river::ConstituentSet& constituents,
    river::SimulationConfig config) {
  return RiverGradientFitness(dataset, 0, dataset->train_end, constituents,
                              constituents.InitialStates(), config);
}

bool RiverGradientFitness::EvaluateGradient(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters, double* value,
    std::vector<double>* gradient, GradientStats* stats) const {
  const GradientResult result =
      RmseGradient(equations, parameters, *dataset_, t_begin_, t_end_,
                   constituents_, initial_state_, config_);
  *value = result.rmse;
  *gradient = result.gradient;
  if (stats != nullptr) {
    stats->tape_nodes = result.tape_nodes;
    stats->pruned_nodes = result.pruned_nodes;
  }
  return result.gradient_valid;
}

namespace {

/// Shared capture of the calibration adapters.
struct RolloutProblem {
  std::vector<expr::ExprPtr> equations;
  const river::RiverDataset* dataset;
  std::size_t t_begin;
  std::size_t t_end;
  river::ConstituentSet constituents;
  std::vector<double> initial_state;
  river::SimulationConfig config;
};

std::shared_ptr<RolloutProblem> MakeRolloutProblem(
    std::vector<expr::ExprPtr> equations, const river::RiverDataset* dataset,
    std::size_t t_begin, std::size_t t_end,
    river::ConstituentSet constituents, std::vector<double> initial_state,
    river::SimulationConfig config) {
  auto problem = std::make_shared<RolloutProblem>();
  problem->equations = std::move(equations);
  problem->dataset = dataset;
  problem->t_begin = t_begin;
  problem->t_end = t_end;
  problem->constituents = std::move(constituents);
  problem->initial_state = std::move(initial_state);
  problem->config = config;
  problem->config.num_species =
      static_cast<int>(problem->constituents.size());
  return problem;
}

}  // namespace

calibrate::Objective MakeRmseObjective(
    std::vector<expr::ExprPtr> equations, const river::RiverDataset* dataset,
    std::size_t t_begin, std::size_t t_end,
    river::ConstituentSet constituents, std::vector<double> initial_state,
    river::SimulationConfig config) {
  auto problem = MakeRolloutProblem(std::move(equations), dataset, t_begin,
                                    t_end, std::move(constituents),
                                    std::move(initial_state), config);
  return [problem](const std::vector<double>& x) {
    const river::SimulationTrajectory trajectory = river::Simulate(
        problem->equations, x, *problem->dataset, problem->t_begin,
        problem->t_end, problem->constituents, problem->initial_state,
        problem->config, /*compiled=*/false);
    const std::vector<std::pair<std::size_t, int>> bindings =
        Bindings(problem->constituents);
    const std::size_t steps = problem->t_end - problem->t_begin;
    double sse = 0.0;
    for (std::size_t d = 0; d < steps; ++d) {
      for (const auto& [species, series] : bindings) {
        const double error =
            trajectory.series[species][d] -
            problem->dataset->ObservedSeries(series)[problem->t_begin + d];
        sse += error * error;
      }
    }
    return steps == 0
               ? 0.0
               : std::sqrt(sse /
                           static_cast<double>(steps * bindings.size()));
  };
}

calibrate::GradientObjective MakeRmseGradientObjective(
    std::vector<expr::ExprPtr> equations, const river::RiverDataset* dataset,
    std::size_t t_begin, std::size_t t_end,
    river::ConstituentSet constituents, std::vector<double> initial_state,
    river::SimulationConfig config) {
  auto problem = MakeRolloutProblem(std::move(equations), dataset, t_begin,
                                    t_end, std::move(constituents),
                                    std::move(initial_state), config);
  return [problem](const std::vector<double>& x, std::vector<double>* g) {
    const GradientResult result = RmseGradient(
        problem->equations, x, *problem->dataset, problem->t_begin,
        problem->t_end, problem->constituents, problem->initial_state,
        problem->config);
    if (result.gradient_valid) {
      *g = result.gradient;
    } else {
      g->assign(x.size(), kNan);
    }
    return result.rmse;
  };
}

}  // namespace gmr::grad
