#ifndef GMR_GRAD_ADJOINT_H_
#define GMR_GRAD_ADJOINT_H_

#include <cstddef>
#include <vector>

#include "calibrate/calibrator.h"
#include "expr/ast.h"
#include "gp/fitness.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"

/// Discrete adjoint of the river rollout: exact ∂RMSE/∂θ through the Euler
/// and RK4 integrators of river/simulate.cc, differentiating the code that
/// actually runs — state clamps, watchdog aborts, protected kernels — not
/// the idealized ODE. See DESIGN.md §4l.
namespace gmr::grad {

struct GradientResult {
  /// Training RMSE at θ, bit-identical to the interpreter/VM rollout the
  /// fitness evaluator computes (RiverFitness + RiverEvaluation).
  double rmse = 0.0;
  /// ∂RMSE/∂θ, one entry per parameter slot. All-zero (and still valid)
  /// when the rollout aborted on day 0 or RMSE is exactly 0.
  std::vector<double> gradient;
  /// False when the tape could not be built (`tape_alloc` fault,
  /// allocation failure) or any adjoint came back non-finite
  /// (`adjoint_nan` fault, overflowing cotangents). The rmse/report fields
  /// are valid either way; consumers degrade to derivative-free search.
  bool gradient_valid = false;
  /// Containment telemetry of the underlying forward rollout.
  river::SimulationReport report;
  /// Tape-size telemetry: total linearized nodes across the equations, and
  /// how many of them the activity pass pruned.
  std::size_t tape_nodes = 0;
  std::size_t pruned_nodes = 0;
};

/// Exact gradient of the windowed RMSE fitness (days [t_begin, t_end),
/// squared error summed over every observed constituent) with respect to
/// the parameter vector, for an arbitrary ConstituentSet registry.
///
/// Forward sweep: the ordinary rollout, checkpointing each begin-of-day
/// state. Reverse sweep: days in reverse order, recomputing the day's
/// substeps (and RK4 stage evaluations) from the checkpoint, then
/// propagating the state cotangent λ backwards — through the commit clamp
/// (cotangent dropped exactly where the clamp pinned the state), each RK4
/// stage in reverse, and each equation's tape. Watchdog-aware: days at or
/// after `days_before_abort` predict the constant penalty state, so they
/// contribute exactly zero gradient and the reverse sweep skips them — an
/// aborted candidate yields the deterministic penalty gradient, never NaN.
///
/// When `prune` is set, each equation's tape is activity-pruned over a
/// sound rollout env: parameters pinned to θ, drivers spanning the
/// dataset hull of the window, and states spanning the commit clamp under
/// Euler or unbounded (RK4 stage inputs are unclamped and may even be
/// NaN) under RK4.
GradientResult RmseGradient(const std::vector<expr::ExprPtr>& equations,
                            const std::vector<double>& parameters,
                            const river::RiverDataset& dataset,
                            std::size_t t_begin, std::size_t t_end,
                            const river::ConstituentSet& constituents,
                            const std::vector<double>& initial_state,
                            const river::SimulationConfig& config,
                            bool prune = true);

/// gp::GradientFitness over RmseGradient: the gradient side-channel of a
/// RiverFitness problem, used for elite constant polish in TAG3P.
class RiverGradientFitness : public gp::GradientFitness {
 public:
  RiverGradientFitness(const river::RiverDataset* dataset,
                       std::size_t t_begin, std::size_t t_end,
                       river::ConstituentSet constituents,
                       std::vector<double> initial_state,
                       river::SimulationConfig config = {});

  /// Training-window gradient problem of `constituents` over `dataset`
  /// (initial states from the registry), matching
  /// RiverFitness::ForTrainingWith.
  static RiverGradientFitness ForTraining(
      const river::RiverDataset* dataset,
      const river::ConstituentSet& constituents,
      river::SimulationConfig config = {});

  bool EvaluateGradient(const std::vector<expr::ExprPtr>& equations,
                        const std::vector<double>& parameters, double* value,
                        std::vector<double>* gradient,
                        GradientStats* stats) const override;

 private:
  const river::RiverDataset* dataset_;
  std::size_t t_begin_;
  std::size_t t_end_;
  river::ConstituentSet constituents_;
  std::vector<double> initial_state_;
  river::SimulationConfig config_;
};

/// Calibration adapters: value and gradient objectives over the training
/// RMSE of a fixed equation system, ready for CalibrationProblem. The
/// value objective is exactly the rollout RMSE; the gradient objective
/// reports failures (tape faults, non-finite adjoints) by filling the
/// gradient with NaN, which the gradient-based calibrators treat as a
/// signal to degrade to derivative-free search.
calibrate::Objective MakeRmseObjective(
    std::vector<expr::ExprPtr> equations, const river::RiverDataset* dataset,
    std::size_t t_begin, std::size_t t_end,
    river::ConstituentSet constituents, std::vector<double> initial_state,
    river::SimulationConfig config = {});

calibrate::GradientObjective MakeRmseGradientObjective(
    std::vector<expr::ExprPtr> equations, const river::RiverDataset* dataset,
    std::size_t t_begin, std::size_t t_end,
    river::ConstituentSet constituents, std::vector<double> initial_state,
    river::SimulationConfig config = {});

}  // namespace gmr::grad

#endif  // GMR_GRAD_ADJOINT_H_
