#include "grad/tape.h"

#include <algorithm>
#include <limits>
#include <new>
#include <unordered_map>

#include "common/check.h"
#include "common/fault_injection.h"

namespace gmr::grad {
namespace {

/// Wanted-bit mask for slots [0, count) in the Activity bit layout (slot
/// >= 63 shares the sticky bit, so large layouts stay conservative).
std::uint64_t WantedMask(int count) {
  std::uint64_t mask = 0;
  for (int slot = 0; slot < count && slot <= 63; ++slot) {
    mask |= analysis::ActivityBit(slot);
  }
  return mask;
}

struct Builder {
  std::vector<TapeNode>* nodes;
  std::unordered_map<const expr::Expr*, std::int32_t> memo;

  std::int32_t Visit(const expr::Expr& node) {
    const auto it = memo.find(&node);
    if (it != memo.end()) return it->second;
    TapeNode out;
    out.kind = node.kind();
    switch (node.kind()) {
      case expr::NodeKind::kConstant:
        out.constant = node.value();
        break;
      case expr::NodeKind::kParameter:
      case expr::NodeKind::kVariable:
        out.slot = node.slot();
        break;
      default:
        out.a = Visit(*node.children()[0]);
        if (node.children().size() > 1) out.b = Visit(*node.children()[1]);
        break;
    }
    const auto index = static_cast<std::int32_t>(nodes->size());
    nodes->push_back(out);
    memo.emplace(&node, index);
    return index;
  }
};

}  // namespace

Tape::Tape(const expr::Expr& root, int num_parameters,
           int num_state_variables, const analysis::DomainEnv* prune_env)
    : num_parameters_(num_parameters),
      num_state_variables_(num_state_variables) {
  if (FaultInjected(FaultPoint::kTapeAlloc)) throw std::bad_alloc();
  Builder builder{&nodes_, {}};
  root_ = builder.Visit(root);
  const std::uint64_t wanted_params = WantedMask(num_parameters_);
  const std::uint64_t wanted_vars = WantedMask(num_state_variables_);
  if (prune_env == nullptr) {
    // No env, no pruning: every node keeps its cotangent slot and the root
    // is conservatively reported fully active.
    root_activity_.parameters = wanted_params;
    root_activity_.variables = wanted_vars;
    live_nodes_ = nodes_.size();
    return;
  }
  // Per-node activity over the env decides liveness: a node whose value is
  // provably independent of every wanted slot needs no adjoint, and the
  // reverse sweep never pushes through it. Subtree queries share the
  // pointer memo of each AnalyzeActivity call; tapes are built once per
  // gradient evaluation (not per time step), so the nested queries are off
  // the hot path.
  struct Marker {
    const analysis::DomainEnv* env;
    std::uint64_t wanted_params;
    std::uint64_t wanted_vars;
    std::unordered_map<const expr::Expr*, analysis::Activity> memo;

    const analysis::Activity& Of(const expr::Expr& node) {
      const auto it = memo.find(&node);
      if (it != memo.end()) return it->second;
      return memo.emplace(&node, analysis::AnalyzeActivity(node, *env))
          .first->second;
    }
    bool Live(const expr::Expr& node) {
      const analysis::Activity& activity = Of(node);
      return (activity.parameters & wanted_params) != 0 ||
             (activity.variables & wanted_vars) != 0;
    }
  };
  Marker marker{prune_env, wanted_params, wanted_vars, {}};
  // Replay the builder's traversal so liveness lands on the right slots.
  for (const auto& [node, index] : builder.memo) {
    nodes_[static_cast<std::size_t>(index)].live = marker.Live(*node);
  }
  root_activity_ = marker.Of(root);
  root_activity_.parameters &= wanted_params;
  root_activity_.variables &= wanted_vars;
  live_nodes_ = 0;
  for (const TapeNode& node : nodes_) live_nodes_ += node.live ? 1 : 0;
}

double Tape::Forward(const expr::EvalContext& ctx, double* values) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TapeNode& node = nodes_[i];
    switch (node.kind) {
      case expr::NodeKind::kConstant:
        values[i] = node.constant;
        break;
      case expr::NodeKind::kParameter:
        GMR_CHECK_LT(static_cast<std::size_t>(node.slot), ctx.num_parameters);
        values[i] = ctx.parameters[node.slot];
        break;
      case expr::NodeKind::kVariable:
        GMR_CHECK_LT(static_cast<std::size_t>(node.slot), ctx.num_variables);
        values[i] = ctx.variables[node.slot];
        break;
      default:
        values[i] = node.b >= 0
                        ? expr::ApplyBinary(node.kind, values[node.a],
                                            values[node.b])
                        : expr::ApplyUnary(node.kind, values[node.a]);
        break;
    }
  }
  return root_ >= 0 ? values[root_] : 0.0;
}

void Tape::Reverse(const double* values, double seed,
                   double* parameter_adjoint, double* state_adjoint,
                   double* cotangents) const {
  std::fill(cotangents, cotangents + nodes_.size(), 0.0);
  if (root_ < 0 || !nodes_[static_cast<std::size_t>(root_)].live) return;
  if (FaultInjected(FaultPoint::kAdjointNan)) {
    seed = std::numeric_limits<double>::quiet_NaN();
  }
  cotangents[root_] = seed;
  // A push into a dead operand is dropped: the activity pass proved that
  // operand's value constant over every wanted slot, so all derivative
  // flow through it is exactly zero. A zero cotangent is also dropped —
  // this is what makes pruned parameters come back as exactly 0.0 instead
  // of a rounding residue, and keeps 0 * inf from minting NaNs on paths
  // whose true derivative is zero.
  const auto push = [this, cotangents](std::int32_t index, double dw) {
    if (nodes_[static_cast<std::size_t>(index)].live) cotangents[index] += dw;
  };
  for (std::int32_t i = root_; i >= 0; --i) {
    const TapeNode& node = nodes_[static_cast<std::size_t>(i)];
    if (!node.live) continue;
    const double w = cotangents[i];
    if (w == 0.0) continue;
    switch (node.kind) {
      case expr::NodeKind::kConstant:
        break;
      case expr::NodeKind::kParameter:
        if (node.slot < num_parameters_) parameter_adjoint[node.slot] += w;
        break;
      case expr::NodeKind::kVariable:
        if (node.slot < num_state_variables_) state_adjoint[node.slot] += w;
        break;
      case expr::NodeKind::kAdd:
        push(node.a, w);
        push(node.b, w);
        break;
      case expr::NodeKind::kSub:
        push(node.a, w);
        push(node.b, -w);
        break;
      case expr::NodeKind::kNeg:
        push(node.a, -w);
        break;
      case expr::NodeKind::kMul:
        push(node.a, w * values[node.b]);
        push(node.b, w * values[node.a]);
        break;
      case expr::NodeKind::kDiv: {
        const double b = values[node.b];
        const double m = b < 0.0 ? -b : b;
        // Inside the protection band the kernel is the constant 1.
        if (m < expr::kDivEpsilon) break;
        push(node.a, w / b);
        push(node.b, -w * values[node.a] / (b * b));
        break;
      }
      case expr::NodeKind::kMin:
        // Route to the branch the value kernel selected (`a < b ? a : b`,
        // so ties and NaN comparisons fall to the right operand).
        if (values[node.a] < values[node.b]) {
          push(node.a, w);
        } else {
          push(node.b, w);
        }
        break;
      case expr::NodeKind::kMax:
        if (values[node.a] > values[node.b]) {
          push(node.a, w);
        } else {
          push(node.b, w);
        }
        break;
      case expr::NodeKind::kLog: {
        const double a = values[node.a];
        const double m = a < 0.0 ? -a : a;
        // Inside the zero band the kernel is the constant 0; outside,
        // d log|a| / da = 1/a on both signs.
        if (m < expr::kLogEpsilon) break;
        push(node.a, w / a);
        break;
      }
      case expr::NodeKind::kExp: {
        const double a = values[node.a];
        // A clamped argument is flat; otherwise d exp(a)/da is the node's
        // own forward value.
        if (a > expr::kExpArgClamp || a < -expr::kExpArgClamp) break;
        push(node.a, w * values[i]);
        break;
      }
    }
  }
}

}  // namespace gmr::grad
