#ifndef GMR_GRAD_TAPE_H_
#define GMR_GRAD_TAPE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/activity.h"
#include "analysis/interval.h"
#include "expr/ast.h"
#include "expr/eval.h"

/// Reverse-mode autodiff over the expression AST.
///
/// A Tape linearizes one expression tree into post-order slots with
/// pointer-memoized CSE (shared subtrees — the AST shares structure across
/// individuals by construction — occupy one slot, exactly like the
/// DataflowPass memo). The forward sweep applies the *protected* scalar
/// kernels of expr/eval.h verbatim, so tape values are bit-identical
/// (0 ULP) to expr::EvalExpr. The reverse sweep propagates cotangents with
/// the derivative of whichever kernel branch the forward value actually
/// took: a protected division inside its |b| < kDivEpsilon band is the
/// constant 1 and pushes nothing; log inside its zero band pushes nothing;
/// a clamped exp argument pushes nothing; min/max route the cotangent to
/// the branch the value kernel selected (ties to the right operand, as in
/// `a < b ? a : b`). Gradients are therefore exact derivatives of the
/// protected evaluation semantics — not of the unprotected textbook
/// expression — which is what the finite-difference gradcheck oracle
/// verifies.
///
/// When a domain environment is supplied, the activity pass
/// (analysis/activity.h) prunes the tape: a node whose value is provably
/// independent of every *wanted* slot (all parameters, plus the state
/// variables below `num_state_variables`) is marked dead and never
/// receives or pushes a cotangent. Dead-node pruning plus the exact branch
/// rules above give the zero-gradient guarantee: a parameter the activity
/// pass reports inactive at the root accumulates an adjoint of exactly
/// 0.0 — never a rounding residue.
namespace gmr::grad {

/// One linearized node. `a`/`b` are tape indices of the operands (-1 when
/// absent); leaves carry their slot or literal instead.
struct TapeNode {
  expr::NodeKind kind = expr::NodeKind::kConstant;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t slot = -1;
  double constant = 0.0;
  /// False when the activity pass proved the node's value independent of
  /// every wanted slot; dead nodes are skipped by the reverse sweep.
  bool live = true;
};

class Tape {
 public:
  /// Linearizes `root`. Adjoints are accumulated for parameter slots in
  /// [0, num_parameters) and variable slots in [0, num_state_variables)
  /// (the constituent states of a rollout; driver variables are exogenous
  /// data and never differentiated). When `prune_env` is non-null the
  /// activity pass runs over it and dead subtrees are pruned — the env
  /// must soundly contain every runtime value the tape will see.
  ///
  /// Hosts the `tape_alloc` fault point: when armed, construction throws
  /// std::bad_alloc so gradient consumers exercise their derivative-free
  /// degradation path.
  Tape(const expr::Expr& root, int num_parameters, int num_state_variables,
       const analysis::DomainEnv* prune_env);

  /// Tape length in nodes (== value/cotangent buffer length).
  std::size_t size() const { return nodes_.size(); }
  /// Nodes the activity pass kept (== size() when pruning was off).
  std::size_t live_nodes() const { return live_nodes_; }
  std::size_t pruned_nodes() const { return nodes_.size() - live_nodes_; }
  int num_parameters() const { return num_parameters_; }
  int num_state_variables() const { return num_state_variables_; }

  /// Activity of the root over the construction env (everything active
  /// when no env was supplied). A parameter outside this mask is
  /// structurally zero-gradient — the lint check and the calibrators'
  /// frozen dimensions key off exactly this.
  const analysis::Activity& root_activity() const { return root_activity_; }

  const std::vector<TapeNode>& nodes() const { return nodes_; }

  /// Forward sweep: fills `values` (length size()) in tape order and
  /// returns the root value, bit-identical to expr::EvalExpr(root, ctx).
  double Forward(const expr::EvalContext& ctx, double* values) const;

  /// Reverse sweep over `values` from a Forward call on the same context.
  /// Seeds the root cotangent with `seed` and accumulates (+=) into
  /// `parameter_adjoint` (length >= num_parameters) and, when
  /// num_state_variables > 0, `state_adjoint` (length >=
  /// num_state_variables). `cotangents` is caller-provided scratch of
  /// length size() (zeroed here). Hosts the `adjoint_nan` fault point:
  /// when armed, the seed is poisoned to NaN so downstream validity checks
  /// must flag the gradient instead of trusting it.
  void Reverse(const double* values, double seed, double* parameter_adjoint,
               double* state_adjoint, double* cotangents) const;

 private:
  std::vector<TapeNode> nodes_;
  int root_ = -1;
  int num_parameters_ = 0;
  int num_state_variables_ = 0;
  std::size_t live_nodes_ = 0;
  analysis::Activity root_activity_;
};

}  // namespace gmr::grad

#endif  // GMR_GRAD_TAPE_H_
