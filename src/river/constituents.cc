#include "river/constituents.h"

#include <cmath>

#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {

const char* ConfigErrorCodeName(ConfigErrorCode code) {
  switch (code) {
    case ConfigErrorCode::kNone:
      return "none";
    case ConfigErrorCode::kEmptySet:
      return "empty_set";
    case ConfigErrorCode::kEmptyName:
      return "empty_name";
    case ConfigErrorCode::kDuplicateName:
      return "duplicate_name";
    case ConfigErrorCode::kSpeciesCountMismatch:
      return "species_count_mismatch";
    case ConfigErrorCode::kBadObservedSeries:
      return "bad_observed_series";
    case ConfigErrorCode::kBadInitialState:
      return "bad_initial_state";
    case ConfigErrorCode::kParameterLaneMismatch:
      return "parameter_lane_mismatch";
  }
  return "unknown";
}

ConfigError ConstituentSet::Add(Constituent constituent) {
  if (constituent.name.empty()) {
    return ConfigError::Error(ConfigErrorCode::kEmptyName,
                              "constituent name must be non-empty");
  }
  for (const Constituent& existing : constituents_) {
    if (existing.name == constituent.name) {
      return ConfigError::Error(
          ConfigErrorCode::kDuplicateName,
          "duplicate constituent name: " + constituent.name);
    }
  }
  if (!std::isfinite(constituent.initial_state) ||
      !std::isfinite(constituent.test_initial_state)) {
    return ConfigError::Error(
        ConfigErrorCode::kBadInitialState,
        "non-finite initial state for constituent " + constituent.name);
  }
  constituents_.push_back(std::move(constituent));
  return ConfigError::Ok();
}

std::vector<std::string> ConstituentSet::VariableNames() const {
  std::vector<std::string> names;
  names.reserve(num_variables());
  for (const Constituent& c : constituents_) names.push_back(c.name);
  for (int k = 0; k < kNumDriverVariables; ++k) {
    names.push_back(VariableName(kVlgt + k));
  }
  return names;
}

std::vector<double> ConstituentSet::InitialStates() const {
  std::vector<double> states;
  states.reserve(constituents_.size());
  for (const Constituent& c : constituents_) {
    states.push_back(c.initial_state);
  }
  return states;
}

std::vector<double> ConstituentSet::TestInitialStates() const {
  std::vector<double> states;
  states.reserve(constituents_.size());
  for (const Constituent& c : constituents_) {
    states.push_back(c.test_initial_state);
  }
  return states;
}

std::vector<int> ConstituentSet::ObservedConstituents() const {
  std::vector<int> observed;
  for (std::size_t i = 0; i < constituents_.size(); ++i) {
    if (constituents_[i].observed_series >= 0) {
      observed.push_back(static_cast<int>(i));
    }
  }
  return observed;
}

int ConstituentSet::PrimaryObserved() const {
  for (std::size_t i = 0; i < constituents_.size(); ++i) {
    if (constituents_[i].observed_series >= 0) return static_cast<int>(i);
  }
  return 0;
}

ConfigError ConstituentSet::Validate() const {
  if (constituents_.empty()) {
    return ConfigError::Error(ConfigErrorCode::kEmptySet,
                              "a constituent set needs at least one species");
  }
  for (const Constituent& c : constituents_) {
    if (!std::isfinite(c.initial_state) ||
        !std::isfinite(c.test_initial_state)) {
      return ConfigError::Error(ConfigErrorCode::kBadInitialState,
                                "non-finite initial state for " + c.name);
    }
  }
  return ConfigError::Ok();
}

ConstituentSet ConstituentSet::LegacyPlankton() {
  // The historical defaults of RiverDataset (5.0 / 1.0 for both windows).
  return LegacyPlankton(5.0, 1.0, 5.0, 1.0);
}

ConstituentSet ConstituentSet::LegacyPlankton(double initial_bphy,
                                              double initial_bzoo,
                                              double test_initial_bphy,
                                              double test_initial_bzoo) {
  ConstituentSet set;
  set.set_preset("plankton2");
  Constituent phy;
  phy.name = "B_Phy";
  phy.dimension = analysis::Dim::Concentration();
  phy.initial_state = initial_bphy;
  phy.test_initial_state = test_initial_bphy;
  phy.observed_series = 0;
  (void)set.Add(std::move(phy));
  Constituent zoo;
  zoo.name = "B_Zoo";
  zoo.dimension = analysis::Dim::Concentration();
  zoo.initial_state = initial_bzoo;
  zoo.test_initial_state = test_initial_bzoo;
  zoo.observed_series = -1;
  (void)set.Add(std::move(zoo));
  set.set_priors(RiverParameterPriors());
  const analysis::UnitsEnv legacy = RiverUnitsEnv();
  set.set_parameter_dims(legacy.parameters);
  return set;
}

ConstituentSet ConstituentSet::Transport(int num_species) {
  if (num_species < 1) num_species = 1;
  if (num_species > 5) num_species = 5;
  struct Spec {
    const char* name;
    double initial;
    int observed_series;
  };
  // Masses are carried as concentrations [mg/L]; initials are plausible
  // mid-range river values (overridden by the synthetic scenario with the
  // hidden truth's actual initial state).
  const Spec specs[5] = {
      {"M_NO3", 2.0, 0},   // Observed against the primary series.
      {"M_NH4", 0.4, -1},  //
      {"M_DPH", 0.05, -1}, //
      {"M_PPH", 0.08, -1}, //
      {"M_SED", 20.0, 1},  // Observed against extra series 1 (5-species).
  };
  ConstituentSet set;
  set.set_preset("transport" + std::to_string(num_species));
  for (int i = 0; i < num_species; ++i) {
    Constituent c;
    c.name = specs[i].name;
    c.dimension = analysis::Dim::Concentration();
    c.initial_state = specs[i].initial;
    c.test_initial_state = specs[i].initial;
    // The sediment series only exists when the generator produced the full
    // five-species scenario.
    c.observed_series = num_species == 5 ? specs[i].observed_series
                        : i == 0         ? 0
                                         : -1;
    (void)set.Add(std::move(c));
  }
  set.set_priors(TransportParameterPriors());
  std::vector<analysis::Dim> dims(kNumTransportParameters,
                                  analysis::Dim::PerTime());
  // The sediment source multiplies conductivity (M⁻¹L⁻³T³I², the proxy for
  // erosive flow), not a concentration, so its coefficient must supply
  // M²T⁻⁴I⁻² for S_SED·V_cd to come out as concentration per time.
  dims[kSSed] = analysis::Dim::Of(2, 0, -4, 0, -2);
  set.set_parameter_dims(std::move(dims));
  return set;
}

const char* TransportParameterName(int slot) {
  switch (slot) {
    case kKNit: return "K_NIT";
    case kKNo3: return "K_NO3";
    case kKNh4: return "K_NH4";
    case kKDph: return "K_DPH";
    case kKPph: return "K_PPH";
    case kKSed: return "K_SED";
    case kKDes: return "K_DES";
    case kKSor: return "K_SOR";
    case kSNo3: return "S_NO3";
    case kSNh4: return "S_NH4";
    case kSDph: return "S_DPH";
    case kSPph: return "S_PPH";
    case kSSed: return "S_SED";
    default: return "?";
  }
}

gp::ParameterPriors TransportParameterPriors() {
  gp::ParameterPriors priors;
  priors.reserve(kNumTransportParameters);
  const auto rate = [](const char* name, double mean) {
    gp::ParameterPrior prior;
    prior.name = name;
    prior.mean = mean;
    prior.lo = 0.0;
    prior.hi = 1.0;
    return prior;
  };
  const auto source = [](const char* name, double mean) {
    gp::ParameterPrior prior;
    prior.name = name;
    prior.mean = mean;
    prior.lo = 0.0;
    prior.hi = 2.0;
    return prior;
  };
  priors.push_back(rate(TransportParameterName(kKNit), 0.10));
  priors.push_back(rate(TransportParameterName(kKNo3), 0.05));
  priors.push_back(rate(TransportParameterName(kKNh4), 0.08));
  priors.push_back(rate(TransportParameterName(kKDph), 0.06));
  priors.push_back(rate(TransportParameterName(kKPph), 0.09));
  priors.push_back(rate(TransportParameterName(kKSed), 0.12));
  priors.push_back(rate(TransportParameterName(kKDes), 0.03));
  priors.push_back(rate(TransportParameterName(kKSor), 0.04));
  // Source means reflect the expert's magnitude knowledge (the driver
  // concentrations they scale differ by orders of magnitude), deliberately
  // a little off the generator's hidden truth.
  priors.push_back(source(TransportParameterName(kSNo3), 0.05));
  priors.push_back(source(TransportParameterName(kSNh4), 0.03));
  priors.push_back(source(TransportParameterName(kSDph), 0.04));
  priors.push_back(source(TransportParameterName(kSPph), 0.08));
  priors.push_back(source(TransportParameterName(kSSed), 0.01));
  return priors;
}

expr::SymbolTable SymbolsFor(const ConstituentSet& constituents) {
  expr::SymbolTable symbols;
  const std::vector<std::string> names = constituents.VariableNames();
  for (std::size_t slot = 0; slot < names.size(); ++slot) {
    symbols.variables[names[slot]] = static_cast<int>(slot);
  }
  const gp::ParameterPriors& priors = constituents.priors();
  for (std::size_t slot = 0; slot < priors.size(); ++slot) {
    symbols.parameters[priors[slot].name] = static_cast<int>(slot);
  }
  return symbols;
}

analysis::UnitsEnv UnitsEnvFor(const ConstituentSet& constituents) {
  const analysis::UnitsEnv legacy = RiverUnitsEnv();
  analysis::UnitsEnv env;
  env.variables.reserve(constituents.num_variables());
  for (const Constituent& c : constituents.constituents()) {
    env.variables.push_back(c.dimension);
  }
  for (int k = 0; k < kNumDriverVariables; ++k) {
    env.variables.push_back(
        legacy.variables[static_cast<std::size_t>(kVlgt + k)]);
  }
  env.parameters = constituents.parameter_dims();
  return env;
}

void MassBalanceStore::Fill(const std::vector<double>& initial_state) {
  for (std::size_t s = 0; s < num_species_ && s < initial_state.size();
       ++s) {
    double* lane_row = row(s);
    for (std::size_t l = 0; l < width_; ++l) lane_row[l] = initial_state[s];
  }
}

}  // namespace gmr::river
