#ifndef GMR_RIVER_VARIABLES_H_
#define GMR_RIVER_VARIABLES_H_

#include <string>
#include <vector>

#include "analysis/units.h"

namespace gmr::river {

/// Slot layout of the temporal variables seen by the biological process.
/// Slots 0-1 are the model state (phyto/zooplankton biomass); the rest are
/// the observed temporal variable parameters of paper Table IV, imported
/// from the data at each evaluation time step.
enum VariableSlot : int {
  kBPhy = 0,   ///< Phytoplankton biomass (state; chlorophyll-a proxy).
  kBZoo = 1,   ///< Zooplankton biomass (state).
  kVlgt = 2,   ///< Irradiance (light intensity).
  kVn = 3,     ///< Nitrogen concentration.
  kVp = 4,     ///< Phosphorus concentration.
  kVsi = 5,    ///< Silica concentration.
  kVtmp = 6,   ///< Water temperature.
  kVdo = 7,    ///< Dissolved oxygen.
  kVcd = 8,    ///< Electric conductivity.
  kVph = 9,    ///< pH.
  kValk = 10,  ///< Alkalinity.
  kVsd = 11,   ///< Water transparency (Secchi depth).
  kNumVariables = 12,
};

/// Display name of each slot ("B_Phy", "V_lgt", ...).
const char* VariableName(int slot);

/// All slot names in slot order.
std::vector<std::string> VariableNames();

/// Slots of the observed (non-state) temporal variables.
std::vector<int> ObservedVariableSlots();

/// The dimensional knowledge base of the river domain: SI-exponent vectors
/// for every variable slot of Table IV and every parameter slot of Table
/// III, in slot order. Unit *scale* (mg/L vs ug/L, day vs second) is
/// invisible to exponent vectors — only the physical dimension matters, so
/// concentrations are M·L⁻³ regardless of the reporting unit. This is what
/// the units pass (analysis/units.h) and the grammar-level dimension
/// pruning check candidate models against.
analysis::UnitsEnv RiverUnitsEnv();

}  // namespace gmr::river

#endif  // GMR_RIVER_VARIABLES_H_
