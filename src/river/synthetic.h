#ifndef GMR_RIVER_SYNTHETIC_H_
#define GMR_RIVER_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "river/constituents.h"
#include "river/dataset.h"
#include "river/network.h"

namespace gmr::river {

/// Configuration of the synthetic Nakdong-like dataset (see DESIGN.md §4:
/// the real 13-year monitoring dataset is not redistributable, so we
/// generate a surrogate with the same study design).
struct SyntheticConfig {
  /// Total years of daily data (paper: 13, 1996-2008).
  int years = 13;
  /// Leading years used for training (paper: 10, 1996-2005).
  int train_years = 10;
  std::uint64_t seed = 42;

  /// Plants the hidden mechanisms that the paper reports GMR discovering:
  /// a pH modulation of photosynthesis plus an alkalinity/conductivity
  /// source term (analog of paper Eq. (8)) and a temperature-dependent
  /// zooplankton mortality (analog of paper Eq. (7)). The expert MANUAL
  /// model lacks these, so structural revision has something real to find.
  bool plant_hidden_structure = true;

  /// Relative lognormal-ish measurement noise on chlorophyll-a samples.
  double observation_noise = 0.05;

  /// Scales every stochastic innovation in the driver generator (AR(1)
  /// noises and the biomass-feedback noises). 1.0 is the default weather
  /// variability; smaller values make the system more deterministically
  /// driven and raise the free-run predictability ceiling.
  double driver_noise_scale = 0.6;

  /// Sampling cadence for nutrients & chlorophyll-a: weekly at the sink
  /// (S1), bi-weekly at the other stations; daily values are linearly
  /// interpolated (paper Section IV-A).
  int sink_sample_interval_days = 7;
  int other_sample_interval_days = 14;
};

/// Days per synthetic year (no leap days).
inline constexpr int kDaysPerYear = 365;

/// Generates the full pipeline: per-station exogenous drivers ->
/// hydrological routing through the Nakdong network -> ground-truth
/// plankton integration at the sink -> noisy, sparsely-sampled,
/// interpolated observations. Deterministic in `config.seed`.
RiverDataset GenerateNakdongLike(const SyntheticConfig& config);

/// The "true" constant-parameter values used by the generator's hidden
/// process (deliberately off the prior means of Table III, so calibration
/// has work to do). Exposed for tests and experiment documentation.
std::vector<double> TrueParameters();

/// A generated multi-constituent scenario: the Nakdong-like drivers plus a
/// hidden transport truth per species, packaged with the constituent
/// registry (initial conditions filled from the truth) so it plugs straight
/// into the generic RiverFitness / RunGmr path.
struct TransportScenario {
  /// Drivers from GenerateNakdongLike; the primary observed series
  /// (ObservedSeries(0)) carries noisy weekly nitrate instead of
  /// chlorophyll-a, and the five-species scenario adds bi-weekly sediment
  /// as extra series 1.
  RiverDataset dataset;
  ConstituentSet constituents;
  /// The generator's transport constants (TrueTransportParameters()).
  std::vector<double> true_parameters;
};

/// Generates a transport scenario over the first `num_species` of
/// {M_NO3, M_NH4, M_DPH, M_PPH, M_SED}. The ground truth integrates the
/// expert linear-reservoir process of river/chemistry.h; when
/// `config.plant_hidden_structure` is set, nitrification and sediment
/// settling are temperature-modulated (K_NIT x (0.04 V_tmp + 0.35),
/// K_SED x (0.02 V_tmp + 0.6)) — hidden mechanisms reachable by the
/// transport grammar's multiplicative {V_tmp, R} extension points.
/// Deterministic in `config.seed`.
TransportScenario GenerateTransportScenario(const SyntheticConfig& config,
                                            int num_species = 5);

}  // namespace gmr::river

#endif  // GMR_RIVER_SYNTHETIC_H_
