#include "river/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "river/chemistry.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

/// First-order autoregressive noise generator.
class Ar1 {
 public:
  Ar1(double rho, double sigma) : rho_(rho), sigma_(sigma) {}
  double Next(Rng& rng) {
    state_ = rho_ * state_ + rng.Gaussian(0.0, sigma_);
    return state_;
  }

 private:
  double rho_;
  double sigma_;
  double state_ = 0.0;
};

/// Seasonal signal peaking in mid-summer (day ~196 of the year).
double Season(std::size_t day) {
  const double doy = static_cast<double>(day % kDaysPerYear);
  return std::sin(2.0 * M_PI * (doy - 105.0) / kDaysPerYear);
}

/// Per-station personality: small offsets so stations differ.
struct StationTraits {
  double nutrient_scale = 1.0;
  double pollution_scale = 1.0;  // conductivity/alkalinity baseline
  double temp_offset = 0.0;
  double base_flow = 20.0;
  double runoff_factor = 1.0;
};

/// Truth process derivatives: the MANUAL structure plus (optionally) the
/// hidden mechanisms, plus a self-shading light limitation that bounds
/// blooms (a carrying-capacity mechanism outside the revision grammar —
/// it degrades every method equally; see DESIGN.md).
struct TruthModel {
  bool hidden = true;
  std::vector<double> p = TrueParameters();

  void Derivatives(const double* v, double* d_bphy, double* d_bzoo) const {
    const double bphy = v[kBPhy];
    const double bzoo = v[kBZoo];

    const double effective_light =
        v[kVlgt] * std::exp(-p[kCSH] * bphy);  // self-shading
    const double light_ratio = effective_light / p[kCBL];
    const double f = light_ratio * std::exp(1.0 - light_ratio);
    const double gn = v[kVn] / (p[kCN] + v[kVn]);
    const double gp = v[kVp] / (p[kCP] + v[kVp]);
    const double gs = v[kVsi] / (p[kCSI] + v[kVsi]);
    const double g = std::min(gn, std::min(gp, gs));
    const double d1 = v[kVtmp] - p[kCBTP1];
    const double d2 = v[kVtmp] - p[kCBTP2];
    const double h = std::max(std::exp(-p[kCPT] * d1 * d1),
                              std::exp(-p[kCPT] * d2 * d2));

    const double mu = p[kCUA] * f * g * h;
    double gamma_phy = p[kCBRA];
    if (hidden) {
      // Hidden temperature-dependent respiration (a standard Q10-style
      // metabolic scaling the MANUAL model omits; expressible through the
      // Ext5 revisions of the grammar).
      gamma_phy *= 0.05 * v[kVtmp] + 0.4;
    }
    const double food = bphy - p[kCFmin];
    const double lambda = food / (p[kCFS] + food);
    const double phi = p[kCMFR] * lambda;

    *d_bphy = bphy * (mu - gamma_phy) - bzoo * phi;
    if (hidden) {
      // Hidden alkalinity / aquatic-carbon source term, the analog of the
      // paper's discovered revision Eq. (8).
      *d_bphy += 10.0 * v[kValk] / (v[kVph] - v[kVcd] + 848.4);
    }

    const double mu_zoo = p[kCUZ] * lambda;
    const double gamma_zoo = p[kCBRZ] + p[kCBMT] * phi;
    double delta_zoo = p[kCDZ];
    if (hidden) {
      // Hidden temperature-dependent zooplankton mortality, the analog of
      // the paper's discovered revision Eq. (7).
      delta_zoo *= 0.08 * v[kVtmp] + 0.3;
    }
    *d_bzoo = bzoo * (mu_zoo - gamma_zoo - delta_zoo);
  }
};

/// Integrates the truth model over local driver series, generating the
/// biomass-feedback drivers (pH, DO, transparency) along the way. The
/// feedback drivers at day t use the biomass at the end of day t-1.
struct TruthRun {
  std::vector<double> bphy;
  std::vector<double> bzoo;
};

TruthRun IntegrateTruth(const TruthModel& model,
                        std::vector<std::vector<double>>* drivers,
                        std::size_t num_days, double season_ph_amp,
                        double noise_scale, Rng& rng,
                        bool generate_feedback) {
  TruthRun run;
  run.bphy.resize(num_days);
  run.bzoo.resize(num_days);
  double bphy = 8.0;
  double bzoo = 1.0;
  Ar1 ph_noise(0.8, 0.03 * noise_scale);
  Ar1 do_noise(0.8, 0.25 * noise_scale);
  Ar1 sd_noise(0.8, 0.06 * noise_scale);
  double variables[kNumVariables];
  for (std::size_t t = 0; t < num_days; ++t) {
    if (generate_feedback) {
      // Photosynthesis raises pH and DO; biomass reduces transparency.
      (*drivers)[kVph][t] =
          Clamp(7.55 + 0.012 * bphy + season_ph_amp * Season(t) +
                    ph_noise.Next(rng),
                6.8, 9.4);
      (*drivers)[kVdo][t] =
          Clamp(10.0 - 0.22 * ((*drivers)[kVtmp][t] - 15.0) + 0.020 * bphy +
                    do_noise.Next(rng),
                4.0, 16.0);
      (*drivers)[kVsd][t] =
          Clamp(2.4 - 0.015 * bphy + 0.2 * Season(t) + sd_noise.Next(rng),
                0.3, 3.5);
    }
    for (int slot : ObservedVariableSlots()) {
      variables[slot] = (*drivers)[static_cast<std::size_t>(slot)][t];
    }
    const int substeps = 2;
    const double dt = 1.0 / substeps;
    for (int step = 0; step < substeps; ++step) {
      variables[kBPhy] = bphy;
      variables[kBZoo] = bzoo;
      double d_bphy = 0.0;
      double d_bzoo = 0.0;
      model.Derivatives(variables, &d_bphy, &d_bzoo);
      bphy = Clamp(bphy + dt * d_bphy, 0.05, 2000.0);
      bzoo = Clamp(bzoo + dt * d_bzoo, 0.02, 500.0);
    }
    run.bphy[t] = bphy;
    run.bzoo[t] = bzoo;
  }
  return run;
}

/// Generates the exogenous local drivers of one station.
void GenerateExogenous(const StationTraits& traits, std::size_t num_days,
                       double noise_scale, Rng& rng,
                       std::vector<std::vector<double>>* drivers,
                       std::vector<double>* rainfall) {
  drivers->assign(kNumVariables, std::vector<double>(num_days, 0.0));
  rainfall->assign(num_days, 0.0);
  Ar1 tmp_noise(0.85, 0.9 * noise_scale);
  Ar1 lgt_noise(0.6, 2.0 * noise_scale);
  Ar1 n_noise(0.9, 0.12 * noise_scale);
  Ar1 p_noise(0.9, 0.006 * noise_scale);
  Ar1 si_noise(0.9, 0.25 * noise_scale);
  Ar1 cd_noise(0.9, 7.0 * noise_scale);
  Ar1 alk_noise(0.95, 1.2 * noise_scale);
  double rain_memory = 0.0;  // recent-rain nutrient flush
  for (std::size_t t = 0; t < num_days; ++t) {
    const double season = Season(t);
    // Monsoon-flavored rainfall: more frequent and heavier in summer.
    const double p_rain = 0.12 + 0.18 * std::max(0.0, season);
    double rain = 0.0;
    if (rng.Bernoulli(p_rain)) {
      const double mean = 8.0 + 14.0 * std::max(0.0, season);
      rain = -mean * std::log(1.0 - rng.Uniform());
    }
    (*rainfall)[t] = rain * traits.runoff_factor;
    rain_memory = 0.7 * rain_memory + rain;

    auto& d = *drivers;
    d[kVtmp][t] = Clamp(
        15.0 + traits.temp_offset + 11.0 * season + tmp_noise.Next(rng), 1.0,
        32.0);
    d[kVlgt][t] =
        Clamp(14.0 + 9.0 * season + lgt_noise.Next(rng), 1.0, 30.0);
    d[kVn][t] = Clamp(traits.nutrient_scale *
                          (2.2 - 0.7 * season + 0.010 * rain_memory) +
                          n_noise.Next(rng),
                      0.4, 6.0);
    d[kVp][t] = Clamp(traits.nutrient_scale *
                          (0.060 - 0.020 * season + 0.0006 * rain_memory) +
                          p_noise.Next(rng),
                      0.005, 0.30);
    d[kVsi][t] = Clamp(traits.nutrient_scale *
                           (3.5 - 1.2 * season + 0.015 * rain_memory) +
                           si_noise.Next(rng),
                       0.5, 9.0);
    // Conductivity tracks dissolved load: correlated with nitrogen and
    // anthropogenic pollution, diluted by rain.
    d[kVcd][t] = Clamp(traits.pollution_scale *
                               (250.0 + 45.0 * (d[kVn][t] - 2.2)) -
                           25.0 * season - 1.5 * rain + cd_noise.Next(rng),
                       150.0, 600.0);
    d[kValk][t] = Clamp(traits.pollution_scale * 48.0 - 6.0 * season +
                            alk_noise.Next(rng),
                        20.0, 80.0);
    // Feedback drivers (pH/DO/SD) are filled by IntegrateTruth.
  }
}

/// Applies the sparse-sampling + linear interpolation protocol to a series.
std::vector<double> Resample(const std::vector<double>& series, int interval,
                             std::vector<std::size_t>* sample_days) {
  std::vector<std::size_t> days;
  std::vector<double> values;
  for (std::size_t t = 0; t < series.size();
       t += static_cast<std::size_t>(interval)) {
    days.push_back(t);
    values.push_back(series[t]);
  }
  if (sample_days != nullptr) *sample_days = days;
  return LinearInterpolate(days, values, series.size());
}

}  // namespace

std::vector<double> TrueParameters() {
  // The truth equals the expert priors (Table III means) except for the
  // growth scale and the self-shading strength, which model calibration
  // must correct. Keeping the remaining physiological constants at their
  // expert values decouples structure discovery from a full 17-parameter
  // calibration: once C_UA and C_SH are roughly right, the hidden terms
  // yield a clean fitness gradient (see DESIGN.md on reproduction shape).
  std::vector<double> p(kNumParameters);
  p[kCUA] = 1.0;    // expert mean 1.89
  p[kCUZ] = 0.15;
  p[kCBRA] = 0.021;
  p[kCBRZ] = 0.05;
  p[kCMFR] = 0.19;
  p[kCDZ] = 0.04;
  p[kCFS] = 5.0;
  p[kCBTP1] = 27.0;
  p[kCBTP2] = 5.0;
  p[kCFmin] = 1.0;
  p[kCBL] = 26.78;
  p[kCN] = 0.0351;
  p[kCP] = 0.00167;
  p[kCSI] = 0.00467;
  p[kCBMT] = 0.04;
  p[kCPT] = 0.005;
  p[kCSH] = 0.016;  // expert mean 0.006
  return p;
}

RiverDataset GenerateNakdongLike(const SyntheticConfig& config) {
  GMR_CHECK_GT(config.years, 0);
  GMR_CHECK_GT(config.train_years, 0);
  GMR_CHECK_LT(config.train_years, config.years);
  const std::size_t num_days =
      static_cast<std::size_t>(config.years) * kDaysPerYear;
  Rng rng(config.seed);

  const RiverNetwork network = RiverNetwork::Nakdong();
  const int sink = network.Sink();
  const std::size_t num_stations = network.num_stations();

  TruthModel truth;
  truth.hidden = config.plant_hidden_structure;

  // 1) Local drivers per real station (exogenous + truth-feedback).
  HydrologicalProcess::Input hydro_input;
  hydro_input.attributes.resize(num_stations);
  hydro_input.rainfall.resize(num_stations);
  hydro_input.base_flow.assign(num_stations, 0.0);

  const std::vector<int> observed_slots = ObservedVariableSlots();
  for (std::size_t s = 0; s < num_stations; ++s) {
    const Station& station = network.station(static_cast<int>(s));
    if (station.is_virtual) continue;  // No local measurements.

    StationTraits traits;
    const bool tributary = station.name[0] == 'T';
    traits.nutrient_scale = rng.Uniform(0.85, 1.25);
    traits.pollution_scale =
        tributary ? rng.Uniform(1.0, 1.4) : rng.Uniform(0.85, 1.1);
    traits.temp_offset = rng.Uniform(-1.0, 1.0);
    traits.base_flow = tributary ? rng.Uniform(6.0, 12.0)
                                 : rng.Uniform(18.0, 30.0);
    traits.runoff_factor = tributary ? 0.5 : 1.0;

    std::vector<std::vector<double>> local;
    std::vector<double> rainfall;
    GenerateExogenous(traits, num_days, config.driver_noise_scale, rng,
                      &local, &rainfall);
    IntegrateTruth(truth, &local, num_days, /*season_ph_amp=*/0.12,
                   config.driver_noise_scale, rng,
                   /*generate_feedback=*/true);

    // Nutrients are sampled sparsely and interpolated (weekly at the sink,
    // bi-weekly elsewhere).
    const int interval = static_cast<int>(s) == sink
                             ? config.sink_sample_interval_days
                             : config.other_sample_interval_days;
    for (int slot : {static_cast<int>(kVn), static_cast<int>(kVp),
                     static_cast<int>(kVsi)}) {
      local[static_cast<std::size_t>(slot)] = Resample(
          local[static_cast<std::size_t>(slot)], interval, nullptr);
    }

    // Pack the observed slots as hydrology attributes (slot order).
    auto& attrs = hydro_input.attributes[s];
    attrs.reserve(observed_slots.size());
    for (int slot : observed_slots) {
      attrs.push_back(local[static_cast<std::size_t>(slot)]);
    }
    hydro_input.rainfall[s] = std::move(rainfall);
    hydro_input.base_flow[s] = traits.base_flow;
  }

  // 2) Hydrological routing to the sink.
  HydrologicalProcess hydrology(&network);
  HydrologicalProcess::Output routed = hydrology.Route(hydro_input);

  RiverDataset dataset;
  dataset.num_days = num_days;
  dataset.drivers.assign(kNumVariables, {});
  const auto& sink_attrs = routed.attributes[static_cast<std::size_t>(sink)];
  for (std::size_t k = 0; k < observed_slots.size(); ++k) {
    dataset.drivers[static_cast<std::size_t>(observed_slots[k])] =
        sink_attrs[k];
  }
  // Light is local meteorology, not transported water: restore the sink's
  // own series.
  dataset.drivers[kVlgt] =
      hydro_input.attributes[static_cast<std::size_t>(sink)][0];

  // Keep the per-station routed series for the "-ALL" data-driven
  // baselines (all real stations, sink included).
  for (std::size_t s = 0; s < num_stations; ++s) {
    const Station& station = network.station(static_cast<int>(s));
    if (station.is_virtual) continue;
    dataset.station_names.push_back(station.name);
    dataset.station_drivers.push_back(routed.attributes[s]);
  }

  // 3) Ground-truth plankton at the sink, on the routed drivers (feedback
  // drivers are already fixed by routing — no regeneration).
  TruthRun sink_truth =
      IntegrateTruth(truth, &dataset.drivers, num_days,
                     /*season_ph_amp=*/0.12, config.driver_noise_scale, rng,
                     /*generate_feedback=*/false);

  // 4) Noisy weekly sampling of chlorophyll-a + interpolation.
  std::vector<double> sampled(num_days);
  for (std::size_t t = 0; t < num_days; ++t) {
    sampled[t] = std::max(
        0.05,
        sink_truth.bphy[t] *
            (1.0 + rng.Gaussian(0.0, config.observation_noise)));
  }
  dataset.observed_bphy =
      Resample(sampled, config.sink_sample_interval_days,
               &dataset.bphy_sample_days);

  dataset.train_end =
      static_cast<std::size_t>(config.train_years) * kDaysPerYear;
  dataset.initial_bphy = dataset.observed_bphy.front();
  dataset.initial_bzoo = sink_truth.bzoo.front();
  dataset.test_initial_bphy = dataset.observed_bphy[dataset.train_end];
  dataset.test_initial_bzoo = sink_truth.bzoo[dataset.train_end];
  return dataset;
}

namespace {

/// Transport truth derivatives: the expert linear-reservoir process of
/// river/chemistry.h plus (optionally) the hidden temperature modulations
/// of nitrification and sediment settling.
void TransportTruthDerivatives(const double* m, std::size_t n,
                               const std::vector<std::vector<double>>& drivers,
                               std::size_t t, const std::vector<double>& p,
                               bool hidden, double* d) {
  const double v_n = drivers[kVn][t];
  const double v_p = drivers[kVp][t];
  const double v_cd = drivers[kVcd][t];
  const double v_tmp = drivers[kVtmp][t];
  const double k_nit =
      p[kKNit] * (hidden ? 0.04 * v_tmp + 0.35 : 1.0);
  const double k_sed =
      p[kKSed] * (hidden ? 0.02 * v_tmp + 0.6 : 1.0);
  d[0] = p[kSNo3] * v_n - p[kKNo3] * m[0];
  if (n > 1) {
    d[0] += k_nit * m[1];
    d[1] = p[kSNh4] * v_n - (k_nit + p[kKNh4]) * m[1];
  }
  if (n > 2) d[2] = p[kSDph] * v_p - p[kKDph] * m[2];
  if (n > 3) {
    d[2] += p[kKDes] * m[3] - p[kKSor] * m[2];
    d[3] = p[kSPph] * v_p + p[kKSor] * m[2] -
           (p[kKPph] + p[kKDes]) * m[3];
  }
  if (n > 4) d[4] = p[kSSed] * v_cd - k_sed * m[4];
}

}  // namespace

TransportScenario GenerateTransportScenario(const SyntheticConfig& config,
                                            int num_species) {
  TransportScenario scenario;
  scenario.constituents = ConstituentSet::Transport(num_species);
  scenario.true_parameters = TrueTransportParameters();
  // Drivers (and the train/test split) come from the full Nakdong pipeline;
  // the plankton primary series is replaced below by the scenario's own.
  scenario.dataset = GenerateNakdongLike(config);
  RiverDataset& dataset = scenario.dataset;
  ConstituentSet& constituents = scenario.constituents;

  const std::size_t n = constituents.size();
  const std::size_t num_days = dataset.num_days;
  // A noise stream decoupled from the driver/plankton generator, so the
  // scenario's observations do not perturb the shared driver history.
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);

  // Integrate the hidden truth on the routed sink drivers (end-of-day
  // states, like the plankton truth run).
  std::vector<std::vector<double>> truth(n, std::vector<double>(num_days));
  std::vector<double> m = constituents.InitialStates();
  std::vector<double> d(n, 0.0);
  const int substeps = 2;
  const double dt = 1.0 / static_cast<double>(substeps);
  for (std::size_t t = 0; t < num_days; ++t) {
    for (int step = 0; step < substeps; ++step) {
      TransportTruthDerivatives(m.data(), n, dataset.drivers, t,
                                scenario.true_parameters,
                                config.plant_hidden_structure, d.data());
      for (std::size_t s = 0; s < n; ++s) {
        m[s] = Clamp(m[s] + dt * d[s], 1e-3, 1e4);
      }
    }
    for (std::size_t s = 0; s < n; ++s) truth[s][t] = m[s];
  }

  // Observations: noisy weekly nitrate becomes the primary series; the
  // five-species scenario adds bi-weekly sediment as extra series 1.
  std::vector<double> sampled(num_days);
  for (std::size_t t = 0; t < num_days; ++t) {
    sampled[t] = std::max(
        1e-3,
        truth[0][t] * (1.0 + rng.Gaussian(0.0, config.observation_noise)));
  }
  dataset.observed_bphy = Resample(sampled, config.sink_sample_interval_days,
                                   &dataset.bphy_sample_days);
  dataset.extra_observed.clear();
  dataset.extra_observed_names.clear();
  if (n == 5) {
    for (std::size_t t = 0; t < num_days; ++t) {
      sampled[t] = std::max(
          1e-3,
          truth[4][t] * (1.0 + rng.Gaussian(0.0, config.observation_noise)));
    }
    dataset.extra_observed.push_back(
        Resample(sampled, config.other_sample_interval_days, nullptr));
    dataset.extra_observed_names.push_back("M_SED");
  }

  // Initial conditions: observed constituents start from their (noisy,
  // interpolated) series, latent constituents from the truth — the same
  // convention the plankton generator uses for B_Phy/B_Zoo.
  for (std::size_t s = 0; s < n; ++s) {
    Constituent& c = constituents.mutable_at(s);
    const int series = c.observed_series;
    const std::vector<double>& source =
        series >= 0 ? dataset.ObservedSeries(series) : truth[s];
    c.initial_state = source.front();
    c.test_initial_state = source[dataset.train_end];
  }
  // The legacy initial fields track the (replaced) primary series so stale
  // plankton initials cannot leak into a transport run.
  dataset.initial_bphy = dataset.observed_bphy.front();
  dataset.test_initial_bphy = dataset.observed_bphy[dataset.train_end];
  dataset.initial_bzoo = n > 1 ? truth[1].front() : 0.0;
  dataset.test_initial_bzoo = n > 1 ? truth[1][dataset.train_end] : 0.0;
  return scenario;
}

}  // namespace gmr::river
