#ifndef GMR_RIVER_DATASET_H_
#define GMR_RIVER_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/csv.h"

namespace gmr::river {

/// The modeling dataset after preprocessing (Section IV-A): daily series of
/// every temporal variable at the forecast station (already routed through
/// the hydrological process), the observed algal biomass there, and the
/// train/test split.
struct RiverDataset {
  std::size_t num_days = 0;

  /// drivers[slot][t] for the observed variable slots of variables.h
  /// (kVlgt..kVsd); the state slots kBPhy/kBZoo have empty series.
  std::vector<std::vector<double>> drivers;

  /// Observed chlorophyll-a (phytoplankton biomass proxy) at the target
  /// station, daily after linear interpolation of the weekly samples.
  std::vector<double> observed_bphy;

  /// Days on which chlorophyll-a was actually measured (before
  /// interpolation).
  std::vector<std::size_t> bphy_sample_days;

  /// Additional observed series for multi-constituent problems, each daily
  /// over num_days. Constituent::observed_series indexes the combined space:
  /// series 0 is the primary series (observed_bphy), series k >= 1 maps to
  /// extra_observed[k - 1].
  std::vector<std::vector<double>> extra_observed;
  std::vector<std::string> extra_observed_names;

  const std::vector<double>& ObservedSeries(int index) const {
    return index <= 0 ? observed_bphy
                      : extra_observed[static_cast<std::size_t>(index) - 1];
  }
  int NumObservedSeries() const {
    return 1 + static_cast<int>(extra_observed.size());
  }

  /// Per-station routed driver series for the data-driven "-ALL" baselines
  /// (RNN-ALL / ARIMAX-ALL): station_drivers[s][k][t], where k indexes
  /// ObservedVariableSlots() order and s indexes station_names. Empty when
  /// only sink data was loaded.
  std::vector<std::string> station_names;
  std::vector<std::vector<std::vector<double>>> station_drivers;

  /// First day of the test period: [0, train_end) trains, the rest tests
  /// (paper: 1996-2005 train, 2006-2008 test).
  std::size_t train_end = 0;

  /// Initial state for simulations starting at day 0 (train) and at
  /// train_end (test).
  double initial_bphy = 5.0;
  double initial_bzoo = 1.0;
  double test_initial_bphy = 5.0;
  double test_initial_bzoo = 1.0;

  std::size_t NumTestDays() const { return num_days - train_end; }

  /// Exports the sink drivers + observation as a CSV table.
  CsvTable ToCsv() const;

  /// Rebuilds a dataset from ToCsv output (split metadata passed
  /// separately). Returns false on schema mismatch.
  static bool FromCsv(const CsvTable& table, std::size_t train_end,
                      RiverDataset* dataset);
};

}  // namespace gmr::river

#endif  // GMR_RIVER_DATASET_H_
