#include "river/dataset.h"

#include "common/check.h"
#include "river/variables.h"

namespace gmr::river {

CsvTable RiverDataset::ToCsv() const {
  CsvTable table;
  table.column_names.push_back("day");
  for (int slot : ObservedVariableSlots()) {
    table.column_names.push_back(VariableName(slot));
  }
  table.column_names.push_back("chla_observed");
  for (std::size_t t = 0; t < num_days; ++t) {
    std::vector<double> row;
    row.push_back(static_cast<double>(t));
    for (int slot : ObservedVariableSlots()) {
      row.push_back(drivers[static_cast<std::size_t>(slot)][t]);
    }
    row.push_back(observed_bphy[t]);
    table.rows.push_back(std::move(row));
  }
  return table;
}

bool RiverDataset::FromCsv(const CsvTable& table, std::size_t train_end,
                           RiverDataset* dataset) {
  dataset->num_days = table.rows.size();
  if (dataset->num_days == 0) return false;
  dataset->drivers.assign(kNumVariables, {});
  for (int slot : ObservedVariableSlots()) {
    const int col = table.ColumnIndex(VariableName(slot));
    if (col < 0) return false;
    dataset->drivers[static_cast<std::size_t>(slot)] =
        table.Column(VariableName(slot));
  }
  if (table.ColumnIndex("chla_observed") < 0) return false;
  dataset->observed_bphy = table.Column("chla_observed");
  if (train_end == 0 || train_end >= dataset->num_days) return false;
  dataset->train_end = train_end;
  dataset->initial_bphy = dataset->observed_bphy.front();
  dataset->test_initial_bphy = dataset->observed_bphy[train_end];
  dataset->initial_bzoo = 1.0;
  dataset->test_initial_bzoo = 1.0;
  return true;
}

}  // namespace gmr::river
