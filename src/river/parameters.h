#ifndef GMR_RIVER_PARAMETERS_H_
#define GMR_RIVER_PARAMETERS_H_

#include "gp/parameter_prior.h"

namespace gmr::river {

/// Slot layout of the constant parameters of the biological process
/// (paper Table III, in table order).
enum ParameterSlot : int {
  kCUA = 0,    ///< Max growth rate of phytoplankton [1/day].
  kCUZ = 1,    ///< Max growth rate of zooplankton [1/day].
  kCBRA = 2,   ///< Breath (respiration) rate of phytoplankton [1/day].
  kCBRZ = 3,   ///< Breath rate of zooplankton [1/day].
  kCMFR = 4,   ///< Maximum feeding rate [1/day].
  kCDZ = 5,    ///< Death rate of zooplankton [1/day].
  kCFS = 6,    ///< Half-saturation constant of food [ug/L].
  kCBTP1 = 7,  ///< Blue-green (cyanobacteria) optimal temperature [C].
  kCBTP2 = 8,  ///< Diatom optimal temperature [C].
  kCFmin = 9,  ///< Minimum food concentration [ug/L].
  kCBL = 10,   ///< Best light for phytoplankton [MJ/m^2/day].
  kCN = 11,    ///< Half-saturation constant of nitrogen [mg/L].
  kCP = 12,    ///< Half-saturation constant of phosphorus [mg/L].
  kCSI = 13,   ///< Half-saturation constant of silica [mg/L].
  kCBMT = 14,  ///< Breath multiplier on grazing.
  kCPT = 15,   ///< Temperature coefficient for phytoplankton growth [1/C^2].
  kCSH = 16,   ///< Self-shading light-attenuation coefficient [L/ug].
               ///< Deviation from Table III: standard limnological
               ///< self-shading added so the model class contains a
               ///< biomass-bounding mechanism (see DESIGN.md §4).
  kNumParameters = 17,
};

/// Display name of each parameter slot ("C_UA", ...).
const char* ParameterName(int slot);

/// The expert priors of Table III: mean and exploration bounds per
/// parameter, in slot order. These drive both Gaussian mutation in GMR and
/// the box bounds of every model-calibration baseline.
gp::ParameterPriors RiverParameterPriors();

}  // namespace gmr::river

#endif  // GMR_RIVER_PARAMETERS_H_
