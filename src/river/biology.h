#ifndef GMR_RIVER_BIOLOGY_H_
#define GMR_RIVER_BIOLOGY_H_

#include <vector>

#include "expr/ast.h"
#include "expr/parser.h"

namespace gmr::river {

/// Builders for the expert ("MANUAL") biological process of paper
/// Eqs. (1)-(2): the coupled phytoplankton/zooplankton dynamics designed
/// with a freshwater ecologist. Each function returns the expression over
/// the variable slots of variables.h and the parameter slots of
/// parameters.h. These sub-expressions are reused verbatim by the GMR seed
/// alpha tree (Eqs. (5)-(6)) so that knowledge enters the search exactly as
/// the paper describes.

/// Leaf helpers bound to the river slot layout.
expr::ExprPtr Var(int variable_slot);
expr::ExprPtr Param(int parameter_slot);

/// lambda_Phy = (B_Phy - C_Fmin) / (C_FS + B_Phy - C_Fmin); zooplankton food
/// saturation.
expr::ExprPtr LambdaPhy();

/// f(V_lgt) = (V_eff / C_BL) * e^(1 - V_eff / C_BL), a Steele light
/// response over the self-shaded effective light
/// V_eff = V_lgt * e^(-C_SH * B_Phy) (see parameters.h on C_SH).
expr::ExprPtr LightResponse();

/// g(V_n, V_p, V_si) = min of the three Michaelis-Menten nutrient
/// limitations (Liebig's law of the minimum).
expr::ExprPtr NutrientLimitation();

/// h(V_tmp) = max of the two Gaussian temperature responses around the
/// cyanobacteria (C_BTP1) and diatom (C_BTP2) optima.
expr::ExprPtr TemperatureResponse();

/// mu_Phy = C_UA * f * g * h; photosynthetic productivity.
expr::ExprPtr MuPhy();

/// gamma_Phy = C_BRA; metabolic degradation.
expr::ExprPtr GammaPhy();

/// phi = C_MFR * lambda_Phy; grazing pressure of zooplankton.
expr::ExprPtr Phi();

/// dB_Phy/dt = B_Phy * (mu_Phy - gamma_Phy) - B_Zoo * phi.
expr::ExprPtr PhytoplanktonDerivative();

/// mu_Zoo = C_UZ * lambda_Phy; zooplankton growth.
expr::ExprPtr MuZoo();

/// gamma_Zoo = C_BRZ + C_BMT * phi; zooplankton respiration.
expr::ExprPtr GammaZoo();

/// delta_Zoo = C_DZ; zooplankton death.
expr::ExprPtr DeltaZoo();

/// dB_Zoo/dt = B_Zoo * (mu_Zoo - gamma_Zoo - delta_Zoo).
expr::ExprPtr ZooplanktonDerivative();

/// The full MANUAL process: {dB_Phy/dt, dB_Zoo/dt}.
std::vector<expr::ExprPtr> ManualProcess();

/// Symbol table binding the river variable/parameter names for the parser
/// (used by tests and examples to write process equations as text).
expr::SymbolTable RiverSymbols();

}  // namespace gmr::river

#endif  // GMR_RIVER_BIOLOGY_H_
