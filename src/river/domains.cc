#include "river/domains.h"

#include <algorithm>

#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

analysis::DomainEnv PriorParameterDomains() {
  analysis::DomainEnv env;
  const gp::ParameterPriors priors = RiverParameterPriors();
  env.parameters.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    env.parameters.push_back(analysis::Interval::Of(prior.lo, prior.hi));
  }
  return env;
}

}  // namespace

analysis::DomainEnv LintDomains(const SimulationConfig& config) {
  analysis::DomainEnv env = PriorParameterDomains();
  env.variables.assign(kNumVariables, analysis::Interval::All());
  env.variables[kBPhy] =
      analysis::Interval::Of(config.state_min, config.state_max);
  env.variables[kBZoo] =
      analysis::Interval::Of(config.state_min, config.state_max);
  // Generous physical ranges for the observed drivers (units of Table IV);
  // every value in the Nakdong data lies comfortably inside.
  env.variables[kVlgt] = analysis::Interval::Of(0.0, 45.0);
  env.variables[kVn] = analysis::Interval::Of(0.0, 20.0);
  env.variables[kVp] = analysis::Interval::Of(0.0, 5.0);
  env.variables[kVsi] = analysis::Interval::Of(0.0, 50.0);
  env.variables[kVtmp] = analysis::Interval::Of(-5.0, 40.0);
  env.variables[kVdo] = analysis::Interval::Of(0.0, 30.0);
  env.variables[kVcd] = analysis::Interval::Of(0.0, 5000.0);
  env.variables[kVph] = analysis::Interval::Of(4.0, 12.0);
  env.variables[kValk] = analysis::Interval::Of(0.0, 1000.0);
  env.variables[kVsd] = analysis::Interval::Of(0.0, 20.0);
  return env;
}

analysis::DomainEnv GateDomains(const SimulationConfig& config,
                                const RiverDataset* dataset) {
  analysis::DomainEnv env = PriorParameterDomains();
  env.variables.assign(kNumVariables, analysis::Interval::All());
  // RK4 stage states are unclamped, so only the lower clamp is sound as a
  // bound; the upper end must stay +inf.
  const analysis::Interval state{
      config.state_min, std::numeric_limits<double>::infinity(), false};
  env.variables[kBPhy] = state;
  env.variables[kBZoo] = state;
  if (dataset != nullptr) {
    for (const int slot : ObservedVariableSlots()) {
      const auto s = static_cast<std::size_t>(slot);
      if (s >= dataset->drivers.size() || dataset->drivers[s].empty()) {
        continue;
      }
      const auto [lo, hi] = std::minmax_element(dataset->drivers[s].begin(),
                                                dataset->drivers[s].end());
      env.variables[s] = analysis::Interval::Of(*lo, *hi);
    }
  }
  return env;
}

analysis::StaticGateConfig MakeStaticGate(const SimulationConfig& config,
                                          const RiverDataset* dataset) {
  analysis::StaticGateConfig gate;
  gate.enabled = true;
  gate.domains = GateDomains(config, dataset);
  gate.saturation_rate = (config.state_max - config.state_min) *
                         std::max(config.substeps, 1);
  return gate;
}

}  // namespace gmr::river
