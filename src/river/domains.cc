#include "river/domains.h"

#include <algorithm>

#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {
namespace {

analysis::DomainEnv PriorParameterDomains() {
  analysis::DomainEnv env;
  const gp::ParameterPriors priors = RiverParameterPriors();
  env.parameters.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    env.parameters.push_back(analysis::Interval::Of(prior.lo, prior.hi));
  }
  return env;
}

/// Generous physical ranges for the ten observed drivers (units of
/// Table IV, legacy slot order kVlgt..kVsd); every value in the Nakdong
/// data lies comfortably inside.
analysis::Interval DriverRange(int k) {
  switch (kVlgt + k) {
    case kVlgt: return analysis::Interval::Of(0.0, 45.0);
    case kVn: return analysis::Interval::Of(0.0, 20.0);
    case kVp: return analysis::Interval::Of(0.0, 5.0);
    case kVsi: return analysis::Interval::Of(0.0, 50.0);
    case kVtmp: return analysis::Interval::Of(-5.0, 40.0);
    case kVdo: return analysis::Interval::Of(0.0, 30.0);
    case kVcd: return analysis::Interval::Of(0.0, 5000.0);
    case kVph: return analysis::Interval::Of(4.0, 12.0);
    case kValk: return analysis::Interval::Of(0.0, 1000.0);
    default: return analysis::Interval::Of(0.0, 20.0);  // kVsd
  }
}

}  // namespace

analysis::DomainEnv LintDomains(const SimulationConfig& config) {
  return LintDomainsFor(ConstituentSet::LegacyPlankton(), config);
}

analysis::DomainEnv LintDomainsFor(const ConstituentSet& constituents,
                                   const SimulationConfig& config) {
  analysis::DomainEnv env;
  const gp::ParameterPriors& priors = constituents.priors();
  env.parameters.reserve(priors.size());
  for (const gp::ParameterPrior& prior : priors) {
    env.parameters.push_back(analysis::Interval::Of(prior.lo, prior.hi));
  }
  env.variables.assign(constituents.num_variables(),
                       analysis::Interval::All());
  for (std::size_t s = 0; s < constituents.size(); ++s) {
    env.variables[s] =
        analysis::Interval::Of(config.state_min, config.state_max);
  }
  for (int k = 0; k < kNumDriverVariables; ++k) {
    env.variables[static_cast<std::size_t>(constituents.driver_slot(k))] =
        DriverRange(k);
  }
  return env;
}

analysis::DomainEnv GateDomains(const SimulationConfig& config,
                                const RiverDataset* dataset) {
  analysis::DomainEnv env = PriorParameterDomains();
  env.variables.assign(kNumVariables, analysis::Interval::All());
  // RK4 stage states are unclamped, so only the lower clamp is sound as a
  // bound; the upper end must stay +inf.
  const analysis::Interval state{
      config.state_min, std::numeric_limits<double>::infinity(), false};
  env.variables[kBPhy] = state;
  env.variables[kBZoo] = state;
  if (dataset != nullptr) {
    for (const int slot : ObservedVariableSlots()) {
      const auto s = static_cast<std::size_t>(slot);
      if (s >= dataset->drivers.size() || dataset->drivers[s].empty()) {
        continue;
      }
      const auto [lo, hi] = std::minmax_element(dataset->drivers[s].begin(),
                                                dataset->drivers[s].end());
      env.variables[s] = analysis::Interval::Of(*lo, *hi);
    }
  }
  return env;
}

analysis::StaticGateConfig MakeStaticGate(const SimulationConfig& config,
                                          const RiverDataset* dataset) {
  analysis::StaticGateConfig gate;
  gate.enabled = true;
  gate.domains = GateDomains(config, dataset);
  gate.saturation_rate = (config.state_max - config.state_min) *
                         std::max(config.substeps, 1);
  return gate;
}

}  // namespace gmr::river
