#include "river/variables.h"

#include "common/check.h"

namespace gmr::river {

const char* VariableName(int slot) {
  switch (slot) {
    case kBPhy: return "B_Phy";
    case kBZoo: return "B_Zoo";
    case kVlgt: return "V_lgt";
    case kVn: return "V_n";
    case kVp: return "V_p";
    case kVsi: return "V_si";
    case kVtmp: return "V_tmp";
    case kVdo: return "V_do";
    case kVcd: return "V_cd";
    case kVph: return "V_ph";
    case kValk: return "V_alk";
    case kVsd: return "V_sd";
    default:
      GMR_CHECK_MSG(false, "bad variable slot");
      return "?";
  }
}

std::vector<std::string> VariableNames() {
  std::vector<std::string> names;
  names.reserve(kNumVariables);
  for (int slot = 0; slot < kNumVariables; ++slot) {
    names.push_back(VariableName(slot));
  }
  return names;
}

std::vector<int> ObservedVariableSlots() {
  std::vector<int> slots;
  for (int slot = kVlgt; slot < kNumVariables; ++slot) slots.push_back(slot);
  return slots;
}

}  // namespace gmr::river
