#include "river/variables.h"

#include "common/check.h"
#include "river/parameters.h"

namespace gmr::river {

const char* VariableName(int slot) {
  switch (slot) {
    case kBPhy: return "B_Phy";
    case kBZoo: return "B_Zoo";
    case kVlgt: return "V_lgt";
    case kVn: return "V_n";
    case kVp: return "V_p";
    case kVsi: return "V_si";
    case kVtmp: return "V_tmp";
    case kVdo: return "V_do";
    case kVcd: return "V_cd";
    case kVph: return "V_ph";
    case kValk: return "V_alk";
    case kVsd: return "V_sd";
    default:
      GMR_CHECK_MSG(false, "bad variable slot");
      return "?";
  }
}

std::vector<std::string> VariableNames() {
  std::vector<std::string> names;
  names.reserve(kNumVariables);
  for (int slot = 0; slot < kNumVariables; ++slot) {
    names.push_back(VariableName(slot));
  }
  return names;
}

std::vector<int> ObservedVariableSlots() {
  std::vector<int> slots;
  for (int slot = kVlgt; slot < kNumVariables; ++slot) slots.push_back(slot);
  return slots;
}

analysis::UnitsEnv RiverUnitsEnv() {
  using analysis::Dim;
  analysis::UnitsEnv env;

  env.variables.assign(kNumVariables, Dim::Any());
  env.variables[kBPhy] = Dim::Concentration();  // ug/L chlorophyll-a proxy.
  env.variables[kBZoo] = Dim::Concentration();
  env.variables[kVlgt] = Dim::Irradiance();  // MJ/m^2/day.
  env.variables[kVn] = Dim::Concentration();
  env.variables[kVp] = Dim::Concentration();
  env.variables[kVsi] = Dim::Concentration();
  env.variables[kVtmp] = Dim::Of(0, 0, 0, 1);  // Celsius offset: still Θ.
  env.variables[kVdo] = Dim::Concentration();
  // Conductivity S/m = A^2·s^3/(kg·m^3): M⁻¹·L⁻³·T³·I².
  env.variables[kVcd] = Dim::Of(-1, -3, 3, 0, 2);
  env.variables[kVph] = Dim::Dimensionless();  // -log10 activity.
  env.variables[kValk] = Dim::Concentration();  // mg/L as CaCO3.
  env.variables[kVsd] = Dim::Of(0, 1, 0);  // Secchi depth [m].

  env.parameters.assign(kNumParameters, Dim::Any());
  env.parameters[kCUA] = Dim::PerTime();
  env.parameters[kCUZ] = Dim::PerTime();
  env.parameters[kCBRA] = Dim::PerTime();
  env.parameters[kCBRZ] = Dim::PerTime();
  env.parameters[kCMFR] = Dim::PerTime();
  env.parameters[kCDZ] = Dim::PerTime();
  env.parameters[kCFS] = Dim::Concentration();
  env.parameters[kCBTP1] = Dim::Of(0, 0, 0, 1);
  env.parameters[kCBTP2] = Dim::Of(0, 0, 0, 1);
  env.parameters[kCFmin] = Dim::Concentration();
  env.parameters[kCBL] = Dim::Irradiance();
  env.parameters[kCN] = Dim::Concentration();
  env.parameters[kCP] = Dim::Concentration();
  env.parameters[kCSI] = Dim::Concentration();
  env.parameters[kCBMT] = Dim::Dimensionless();
  env.parameters[kCPT] = Dim::Of(0, 0, 0, -2);  // 1/C^2.
  env.parameters[kCSH] = Dim::Of(-1, 3, 0);     // L/ug.
  return env;
}

}  // namespace gmr::river
