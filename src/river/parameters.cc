#include "river/parameters.h"

#include "common/check.h"

namespace gmr::river {

const char* ParameterName(int slot) {
  switch (slot) {
    case kCUA: return "C_UA";
    case kCUZ: return "C_UZ";
    case kCBRA: return "C_BRA";
    case kCBRZ: return "C_BRZ";
    case kCMFR: return "C_MFR";
    case kCDZ: return "C_DZ";
    case kCFS: return "C_FS";
    case kCBTP1: return "C_BTP1";
    case kCBTP2: return "C_BTP2";
    case kCFmin: return "C_Fmin";
    case kCBL: return "C_BL";
    case kCN: return "C_N";
    case kCP: return "C_P";
    case kCSI: return "C_SI";
    case kCBMT: return "C_BMT";
    case kCPT: return "C_PT";
    case kCSH: return "C_SH";
    default:
      GMR_CHECK_MSG(false, "bad parameter slot");
      return "?";
  }
}

gp::ParameterPriors RiverParameterPriors() {
  // Values transcribed from paper Table III. C_BL's listed bounds (24, 30)
  // bracket the mean 26.78.
  gp::ParameterPriors priors(kNumParameters);
  priors[kCUA] = {"C_UA", 1.89, 0.1, 4.0};
  priors[kCUZ] = {"C_UZ", 0.15, 0.0, 0.3};
  priors[kCBRA] = {"C_BRA", 0.021, 0.0, 0.17};
  priors[kCBRZ] = {"C_BRZ", 0.05, 0.0, 0.2};
  priors[kCMFR] = {"C_MFR", 0.19, 0.01, 0.8};
  priors[kCDZ] = {"C_DZ", 0.04, 0.01, 0.1};
  priors[kCFS] = {"C_FS", 5.0, 4.0, 6.0};
  priors[kCBTP1] = {"C_BTP1", 27.0, 20.0, 34.0};
  priors[kCBTP2] = {"C_BTP2", 5.0, 1.0, 20.0};
  priors[kCFmin] = {"C_Fmin", 1.0, 0.1, 1.9};
  priors[kCBL] = {"C_BL", 26.78, 24.0, 30.0};
  priors[kCN] = {"C_N", 0.0351, 0.02, 0.05};
  priors[kCP] = {"C_P", 0.00167, 0.001, 0.02};
  priors[kCSI] = {"C_SI", 0.00467, 0.001, 0.2};
  priors[kCBMT] = {"C_BMT", 0.04, 0.01, 0.07};
  priors[kCPT] = {"C_PT", 0.005, 0.003, 0.2};
  priors[kCSH] = {"C_SH", 0.006, 0.001, 0.03};
  return priors;
}

}  // namespace gmr::river
