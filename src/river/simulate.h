#ifndef GMR_RIVER_SIMULATE_H_
#define GMR_RIVER_SIMULATE_H_

#include <memory>
#include <vector>

#include "expr/ast.h"
#include "expr/compile.h"
#include "gp/fitness.h"
#include "river/dataset.h"

namespace gmr::river {

/// Time-stepping scheme for the biological process.
enum class IntegrationMethod {
  kEuler,  ///< Forward Euler (the default; cheap and robust under clamping).
  kRk4,    ///< Classic 4th-order Runge-Kutta (drivers held constant within
           ///< the day, as the data is daily).
};

/// Numerical integration settings for the biological process.
struct SimulationConfig {
  IntegrationMethod method = IntegrationMethod::kEuler;
  /// Substeps per day; >1 improves stability of fast grazing dynamics
  /// without changing the daily fitness cases.
  int substeps = 2;
  /// Biomass clamp: keeps candidate processes (which may be wildly wrong
  /// during search) from producing NaN/Inf cascades. Divergent candidates
  /// hit the clamp and collect a large but finite error.
  double state_min = 0.01;
  double state_max = 1e4;
};

/// Evaluates the two process derivatives (dB_Phy/dt, dB_Zoo/dt) through
/// either backend: interpreted tree walking or compiled bytecode
/// ("runtime compilation").
class ProcessRunner {
 public:
  ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                const std::vector<double>* parameters, bool compiled);

  /// Computes both derivatives for the given variable vector (layout of
  /// variables.h, parameters bound at construction).
  void Derivatives(const double* variables, std::size_t num_variables,
                   double* d_bphy, double* d_bzoo) const;

 private:
  std::vector<expr::ExprPtr> equations_;
  const std::vector<double>* parameters_;
  bool compiled_;
  std::vector<expr::CompiledProgram> programs_;
};

/// Simulates the biological process over dataset days [t_begin, t_end),
/// returning the predicted B_Phy series (one value per day).
std::vector<double> SimulateBPhy(const std::vector<expr::ExprPtr>& equations,
                                 const std::vector<double>& parameters,
                                 const RiverDataset& dataset,
                                 std::size_t t_begin, std::size_t t_end,
                                 double initial_bphy, double initial_bzoo,
                                 const SimulationConfig& config,
                                 bool compiled);

/// The river fitness problem: one fitness case per day; fitness is the
/// running RMSE between simulated and observed B_Phy (the paper's fitness
/// function). Supports both evaluation backends as required by
/// gp::SequentialFitness.
class RiverFitness : public gp::SequentialFitness {
 public:
  /// Evaluates days [t_begin, t_end) starting from the given initial state.
  RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
               std::size_t t_end, double initial_bphy, double initial_bzoo,
               SimulationConfig config = SimulationConfig{});

  /// Convenience: the training-period fitness of `dataset`.
  static RiverFitness ForTraining(const RiverDataset* dataset,
                                  SimulationConfig config = {});
  /// Convenience: the test-period fitness of `dataset`.
  static RiverFitness ForTest(const RiverDataset* dataset,
                              SimulationConfig config = {});

  std::size_t num_cases() const override { return t_end_ - t_begin_; }
  std::size_t num_parameters() const override;

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<expr::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override;

  const RiverDataset& dataset() const { return *dataset_; }

 private:
  const RiverDataset* dataset_;
  std::size_t t_begin_;
  std::size_t t_end_;
  double initial_bphy_;
  double initial_bzoo_;
  SimulationConfig config_;
};

}  // namespace gmr::river

#endif  // GMR_RIVER_SIMULATE_H_
