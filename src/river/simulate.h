#ifndef GMR_RIVER_SIMULATE_H_
#define GMR_RIVER_SIMULATE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "expr/ast.h"
#include "expr/batch_jit.h"
#include "expr/batch_vm.h"
#include "expr/compile.h"
#include "expr/jit.h"
#include "gp/fitness.h"
#include "river/constituents.h"
#include "river/dataset.h"

namespace gmr::river {

/// Time-stepping scheme for the constituent processes.
enum class IntegrationMethod {
  kEuler,  ///< Forward Euler (the default; cheap and robust under clamping).
  kRk4,    ///< Classic 4th-order Runge-Kutta (drivers held constant within
           ///< the day, as the data is daily).
};

/// Which "runtime compilation" backend evaluates candidate equations when
/// the RC speedup is on.
enum class CompiledBackend {
  kBytecodeVm = 0,  ///< In-process bytecode (expr/compile.h); the default.
  kNativeJit,       ///< cc + dlopen (expr/jit.h); degrades to the VM
                    ///< per-equation on compile failure, and run-wide once
                    ///< the circuit breaker opens.
  kBatchVm,         ///< Stride-N batch VM (expr/batch_vm.h) at width 1 in
                    ///< scalar rollouts; bit-identical to kBytecodeVm lane
                    ///< by lane, and the fallback for every batched path.
  kBatchJit,        ///< Generation-batched cc + dlopen (expr/batch_jit.h):
                    ///< one translation unit per compile batch, one symbol
                    ///< per unique equation, structure-hash compile cache.
                    ///< Degrades per-equation to the batch VM on compile
                    ///< failure, and run-wide once the breaker opens.
};

/// Numerical integration settings for the constituent processes.
struct SimulationConfig {
  IntegrationMethod method = IntegrationMethod::kEuler;
  /// Substeps per day; >1 improves stability of fast grazing dynamics
  /// without changing the daily fitness cases.
  int substeps = 2;
  /// State clamp: keeps candidate processes (which may be wildly wrong
  /// during search) from producing NaN/Inf cascades. Divergent candidates
  /// hit the clamp and collect a large but finite error.
  double state_min = 0.01;
  double state_max = 1e4;

  /// Number of constituent states the rollout integrates. Must match both
  /// the ConstituentSet and the equation count — validated with a typed
  /// ConfigError at construction of every runner/fitness (never silently
  /// truncated). The default matches the legacy two-species preset.
  int num_species = 2;

  /// Backend used when the evaluator requests compiled evaluation.
  CompiledBackend compiled_backend = CompiledBackend::kBytecodeVm;
  /// Circuit breaker consulted by the kNativeJit backend; null uses the
  /// process-wide expr::JitCircuitBreaker::Default().
  expr::JitCircuitBreaker* jit_breaker = nullptr;
  /// Compile cache + TU batcher consulted by the kBatchJit backend; null
  /// uses the process-wide expr::BatchJitSession::Default(). Not owned.
  expr::BatchJitSession* batch_jit_session = nullptr;

  /// Divergence watchdogs. A tripped watchdog aborts the rollout: every
  /// remaining day deterministically predicts state_max (a pure function of
  /// the candidate, so caching and short-circuiting stay exact) without
  /// further derivative evaluations. 0 disables a watchdog.
  ///
  /// Total non-finite derivative evaluations tolerated per rollout before
  /// aborting with EvalOutcome::kNonFiniteDerivative.
  int max_nonfinite_derivatives = 8;
  /// Consecutive substeps with a state pinned at state_max tolerated before
  /// aborting with EvalOutcome::kClampSaturated. (Dwelling at state_min is
  /// ordinary winter die-off, not divergence, and is never counted.)
  int max_saturated_substeps = 64;
  /// Total substeps allowed per rollout before aborting with
  /// EvalOutcome::kBudgetExceeded; 0 means unlimited. The default rollout
  /// uses num_days * substeps, so this only matters for configurations with
  /// adaptive substepping or as a hard safety net.
  std::size_t substep_budget = 0;
};

/// Validates that the config's species count agrees with the constituent
/// registry and the phenotype's equation count. Every simulation/fitness
/// entry point calls this before touching state.
ConfigError ValidateSimulation(const SimulationConfig& config,
                               const ConstituentSet& constituents,
                               std::size_t num_equations);

/// Validates that every observation mapping of the set points at a series
/// the dataset actually carries (kBadObservedSeries otherwise).
ConfigError ValidateObservations(const ConstituentSet& constituents,
                                 const RiverDataset& dataset);

/// Validates that every batch lane carries the same parameter count
/// (kParameterLaneMismatch otherwise — never silently truncated).
ConfigError ValidateBatchLanes(
    const std::vector<std::vector<double>>& parameter_lanes);

/// What happened inside one simulation rollout (all counters are totals for
/// the rollout).
struct SimulationReport {
  EvalOutcome outcome = EvalOutcome::kOk;
  /// True when a watchdog aborted the rollout early.
  bool aborted = false;
  /// True when at least one equation requested kNativeJit but ran on the
  /// bytecode VM (compile failure or open circuit breaker).
  bool jit_fallback = false;
  std::size_t substeps_used = 0;
  std::size_t days_simulated = 0;
  /// Substeps aborted after this many days (== days_simulated when the
  /// rollout ran to completion).
  std::size_t days_before_abort = 0;
  std::size_t nonfinite_derivatives = 0;
  /// Substeps that left a state pinned at state_max.
  std::size_t clamp_saturations = 0;
};

/// Evaluates the per-constituent process derivatives (one equation per
/// state slot) through the configured backend: interpreted tree walking,
/// compiled bytecode, or native JIT ("runtime compilation").
class ProcessRunner {
 public:
  ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                const std::vector<double>* parameters, bool compiled);

  /// Backend-aware constructor: when `compiled` and the config selects
  /// kNativeJit, each equation is JIT-compiled (subject to the circuit
  /// breaker); equations whose JIT compile fails fall back to bytecode,
  /// recorded in jit_fallback().
  ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                const std::vector<double>* parameters, bool compiled,
                const SimulationConfig& config);

  ~ProcessRunner();

  /// Computes every constituent derivative for the given variable vector
  /// (layout of the problem's ConstituentSet, parameters bound at
  /// construction). `derivatives` has one slot per equation.
  void Derivatives(const double* variables, std::size_t num_variables,
                   double* derivatives) const;

  /// Deprecated two-species signature; forwards to the generic overload.
  void Derivatives(const double* variables, std::size_t num_variables,
                   double* d_bphy, double* d_bzoo) const;

  std::size_t num_equations() const { return equations_.size(); }

  /// True when any equation degraded from a JIT backend to a VM.
  bool jit_fallback() const { return jit_fallback_; }

 private:
  std::vector<expr::ExprPtr> equations_;
  const std::vector<double>* parameters_;
  bool compiled_;
  std::vector<expr::CompiledProgram> programs_;
  /// Parallel to equations_ when the JIT backend is active; a null entry
  /// means that equation runs on the bytecode program instead.
  std::vector<std::unique_ptr<expr::JitProgram>> jit_programs_;
  /// Parallel to equations_ under kBatchVm (always populated) and kBatchJit
  /// (fallback for equations whose batch symbol is unavailable).
  std::vector<expr::BatchProgram> batch_programs_;
  /// Parallel to equations_ under kBatchJit; null entries degrade to
  /// batch_programs_.
  std::vector<expr::BatchJitSession::BatchFn> batch_fns_;
  bool jit_fallback_ = false;
};

/// Full multi-constituent rollout trajectory: series[species][day] is the
/// end-of-day state of that constituent (or the state_max penalty value on
/// every day after a watchdog abort).
struct SimulationTrajectory {
  std::vector<std::vector<double>> series;
};

/// Simulates the constituent processes over dataset days [t_begin, t_end)
/// from the given per-species initial state. When `report` is non-null it
/// is filled with the rollout's containment telemetry.
SimulationTrajectory Simulate(const std::vector<expr::ExprPtr>& equations,
                              const std::vector<double>& parameters,
                              const RiverDataset& dataset,
                              std::size_t t_begin, std::size_t t_end,
                              const ConstituentSet& constituents,
                              const std::vector<double>& initial_state,
                              const SimulationConfig& config, bool compiled,
                              SimulationReport* report = nullptr);

/// Result of one batched rollout: `width` independent parameter lanes
/// integrated in lockstep through the same equations.
struct BatchSimulationResult {
  std::size_t width = 0;
  /// Species count of the rollout's constituent registry (the SoA lane
  /// blocks span num_species x width).
  std::size_t num_species = 0;
  /// predicted[lane][day]: the primary observed constituent's trajectory,
  /// bit-identical to the scalar Simulate of that lane's parameter vector
  /// (under an equivalent backend).
  std::vector<std::vector<double>> predicted;
  /// Per-lane containment telemetry; a diverging lane is masked out of
  /// further derivative evaluations without perturbing its neighbors.
  std::vector<SimulationReport> reports;
};

/// Simulates the constituent processes for `parameter_lanes.size()`
/// parameter vectors at once in structure-of-arrays layout (lane blocks
/// span species x lanes): each compiled equation call advances a whole
/// lane block. Equations are evaluated through the batched VM, or through
/// generation-JIT symbols when the config selects kBatchJit (degrading
/// per-equation to the batched VM). Every lane's watchdog semantics match
/// the scalar rollout exactly: a lane that trips a watchdog is masked out
/// (its remaining days predict state_max) while the surviving lanes keep
/// integrating.
BatchSimulationResult BatchSimulate(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<std::vector<double>>& parameter_lanes,
    const RiverDataset& dataset, std::size_t t_begin, std::size_t t_end,
    const ConstituentSet& constituents,
    const std::vector<double>& initial_state,
    const SimulationConfig& config);

/// Deprecated two-species entry point: thin wrapper over Simulate with the
/// legacy plankton preset, returning the B_Phy series. New callers should
/// build a ConstituentSet and call Simulate.
std::vector<double> SimulateBPhy(const std::vector<expr::ExprPtr>& equations,
                                 const std::vector<double>& parameters,
                                 const RiverDataset& dataset,
                                 std::size_t t_begin, std::size_t t_end,
                                 double initial_bphy, double initial_bzoo,
                                 const SimulationConfig& config,
                                 bool compiled,
                                 SimulationReport* report = nullptr);

/// Deprecated two-species batch entry point: thin wrapper over
/// BatchSimulate with the legacy plankton preset.
BatchSimulationResult BatchSimulateBPhy(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<std::vector<double>>& parameter_lanes,
    const RiverDataset& dataset, std::size_t t_begin, std::size_t t_end,
    double initial_bphy, double initial_bzoo, const SimulationConfig& config);

/// The river fitness problem: one fitness case per day; fitness is the
/// running RMSE between the simulated and observed series of every
/// observed constituent (the paper's fitness function for the legacy
/// single-observation problem). Supports both evaluation backends as
/// required by gp::SequentialFitness.
class RiverFitness : public gp::SequentialFitness {
 public:
  /// Evaluates days [t_begin, t_end) of `constituents` starting from the
  /// given per-species initial state.
  RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
               std::size_t t_end, ConstituentSet constituents,
               std::vector<double> initial_state,
               SimulationConfig config = SimulationConfig{});

  /// Deprecated two-species constructor (legacy plankton preset).
  RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
               std::size_t t_end, double initial_bphy, double initial_bzoo,
               SimulationConfig config = SimulationConfig{});

  /// Convenience: the training-period fitness of `dataset` under the
  /// legacy plankton preset.
  static RiverFitness ForTraining(const RiverDataset* dataset,
                                  SimulationConfig config = {});
  /// Convenience: the test-period fitness of `dataset` under the legacy
  /// plankton preset.
  static RiverFitness ForTest(const RiverDataset* dataset,
                              SimulationConfig config = {});

  /// Training/test-window fitness of an arbitrary constituent registry
  /// (initial states from the registry's declarations).
  static RiverFitness ForTrainingWith(const RiverDataset* dataset,
                                      const ConstituentSet& constituents,
                                      SimulationConfig config = {});
  static RiverFitness ForTestWith(const RiverDataset* dataset,
                                  const ConstituentSet& constituents,
                                  SimulationConfig config = {});

  std::size_t num_cases() const override { return t_end_ - t_begin_; }
  std::size_t num_parameters() const override;
  std::size_t num_states() const override { return constituents_.size(); }

  std::unique_ptr<gp::SequentialEvaluation> Begin(
      const std::vector<expr::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const override;

  /// Under kBatchJit: compile every unique equation of the batch into one
  /// translation unit at the batch barrier, so the per-individual Begin()
  /// calls are pure cache hits (no compiler invocations on worker lanes).
  bool WantsBatchPreparation() const override;
  void PrepareBatch(const std::vector<std::vector<expr::ExprPtr>>& phenotypes)
      const override;

  const RiverDataset& dataset() const { return *dataset_; }
  const ConstituentSet& constituents() const { return constituents_; }

 private:
  const RiverDataset* dataset_;
  std::size_t t_begin_;
  std::size_t t_end_;
  ConstituentSet constituents_;
  std::vector<double> initial_state_;
  SimulationConfig config_;
};

}  // namespace gmr::river

#endif  // GMR_RIVER_SIMULATE_H_
