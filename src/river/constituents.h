#ifndef GMR_RIVER_CONSTITUENTS_H_
#define GMR_RIVER_CONSTITUENTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/units.h"
#include "expr/parser.h"
#include "gp/parameter_prior.h"

namespace gmr::river {

/// Typed validation error for constituent/simulation configuration. Every
/// entry point that used to silently assume the two-species layout now
/// validates against one of these codes instead of truncating state.
enum class ConfigErrorCode : int {
  kNone = 0,
  kEmptySet,              ///< A problem needs at least one constituent.
  kEmptyName,             ///< Constituent names key the variable registry.
  kDuplicateName,         ///< Names must be unique within a set.
  kSpeciesCountMismatch,  ///< config.num_species != constituents/equations.
  kBadObservedSeries,     ///< observed_series out of the dataset's range.
  kBadInitialState,       ///< Non-finite initial condition.
  kParameterLaneMismatch, ///< Batch lanes disagree on parameter count.
};

const char* ConfigErrorCodeName(ConfigErrorCode code);

struct ConfigError {
  ConfigErrorCode code = ConfigErrorCode::kNone;
  std::string message;

  bool ok() const { return code == ConfigErrorCode::kNone; }
  static ConfigError Ok() { return ConfigError{}; }
  static ConfigError Error(ConfigErrorCode code, std::string message) {
    return ConfigError{code, std::move(message)};
  }
};

/// One modeled constituent (species) of the river substrate: a state slot
/// of the mass-balance store with its dimensional declaration, initial
/// conditions, and (optional) mapping onto an observed dataset series.
/// The source/sink process of constituent `i` is the i-th equation of the
/// phenotype handed to the simulator — equation slots and state slots are
/// the same index space.
struct Constituent {
  std::string name;
  /// SI dimension of the state (feeds the units pass via UnitsEnvFor).
  analysis::Dim dimension = analysis::Dim::Concentration();
  /// State at day 0 (training window) and at train_end (test window).
  double initial_state = 1.0;
  double test_initial_state = 1.0;
  /// Observation mapping: index into RiverDataset::ObservedSeries (0 is the
  /// primary series, historically chlorophyll-a), or -1 when the
  /// constituent is unobserved (a latent state such as B_Zoo).
  int observed_series = -1;
};

/// Number of observed (non-state) driver variables of paper Table IV; they
/// follow the constituent states in every variable layout, in the legacy
/// slot order kVlgt..kVsd.
inline constexpr int kNumDriverVariables = 10;

/// First-class registry of the constituents a river problem simulates:
/// replaces the hard-coded B_Phy/B_Zoo pair. Declares, per species, the
/// name, SI dimension, initial conditions, equation slot, and observation
/// mapping, plus the set-level parameter priors/dimensions of the process
/// family attached to the set.
///
/// Variable layout contract: states occupy slots [0, size()), then the ten
/// Table IV drivers follow in legacy order, so num_variables() =
/// size() + kNumDriverVariables. The two-species legacy preset reproduces
/// the historical layout (B_Phy=0, B_Zoo=1, V_lgt=2, ...) exactly.
class ConstituentSet {
 public:
  ConstituentSet() = default;

  /// Appends a constituent; rejects empty/duplicate names and non-finite
  /// initial states with a typed error.
  ConfigError Add(Constituent constituent);

  std::size_t size() const { return constituents_.size(); }
  bool empty() const { return constituents_.empty(); }
  const Constituent& at(std::size_t i) const { return constituents_[i]; }
  Constituent& mutable_at(std::size_t i) { return constituents_[i]; }
  const std::vector<Constituent>& constituents() const {
    return constituents_;
  }

  /// Short tag naming the preset ("plankton2", "transport5", ...); feeds
  /// run manifests and checkpoint fingerprints so a resume against a
  /// different constituent registry is refused, not mis-decoded.
  const std::string& preset() const { return preset_; }
  void set_preset(std::string preset) { preset_ = std::move(preset); }

  /// Set-level constant-parameter priors of the attached process family
  /// (Table III for the plankton preset; linear-reservoir rate/source
  /// boxes for the transport presets).
  const gp::ParameterPriors& priors() const { return priors_; }
  void set_priors(gp::ParameterPriors priors) { priors_ = std::move(priors); }
  std::size_t num_parameters() const { return priors_.size(); }

  /// SI dimension per parameter slot, parallel to priors().
  const std::vector<analysis::Dim>& parameter_dims() const {
    return parameter_dims_;
  }
  void set_parameter_dims(std::vector<analysis::Dim> dims) {
    parameter_dims_ = std::move(dims);
  }

  /// Total variable slots: states then drivers.
  std::size_t num_variables() const {
    return constituents_.size() + kNumDriverVariables;
  }
  /// Variable slot of driver `k` in [0, kNumDriverVariables) — the slot
  /// that legacy slot kVlgt + k maps to under this set's layout.
  int driver_slot(int k) const {
    return static_cast<int>(constituents_.size()) + k;
  }

  /// Name of every variable slot in slot order (state names then drivers).
  std::vector<std::string> VariableNames() const;

  std::vector<double> InitialStates() const;
  std::vector<double> TestInitialStates() const;

  /// Indices of the constituents with an observation mapping, in state
  /// order. Fitness averages squared error over these.
  std::vector<int> ObservedConstituents() const;
  /// First observed constituent, or 0 when none is mapped (a trajectory
  /// still has to report something).
  int PrimaryObserved() const;

  /// Structural validation of the whole set (non-empty, finite initials).
  ConfigError Validate() const;

  /// The legacy two-species plankton problem (B_Phy observed against the
  /// primary series, B_Zoo latent) with the historical default initial
  /// conditions — the compatibility preset that pins every seed trajectory
  /// bit-identically.
  static ConstituentSet LegacyPlankton();
  /// Same, with the initial conditions a dataset carries.
  static ConstituentSet LegacyPlankton(double initial_bphy,
                                       double initial_bzoo,
                                       double test_initial_bphy,
                                       double test_initial_bzoo);

  /// The torrentpy-style transport registry over the first `num_species` of
  /// {M_NO3, M_NH4, M_DPH, M_PPH, M_SED} (nitrate, ammonia, dissolved and
  /// particulate phosphorus, sediment). Nitrate is observed against the
  /// primary series; the five-species set additionally observes sediment
  /// against extra series 1. The parameter layout is always the full
  /// TransportParameterSlot table regardless of num_species.
  static ConstituentSet Transport(int num_species = 5);

 private:
  std::vector<Constituent> constituents_;
  std::string preset_;
  gp::ParameterPriors priors_;
  std::vector<analysis::Dim> parameter_dims_;
};

/// Slot layout of the transport process constants (linear-reservoir rates
/// and lateral source coefficients, one family shared by every transport
/// preset; the torrentpy r_p_k_* layout).
enum TransportParameterSlot : int {
  kKNit = 0,   ///< Nitrification rate NH4 -> NO3 [1/day].
  kKNo3 = 1,   ///< Nitrate loss (denitrification + export) [1/day].
  kKNh4 = 2,   ///< Ammonia loss [1/day].
  kKDph = 3,   ///< Dissolved-phosphorus loss [1/day].
  kKPph = 4,   ///< Particulate-phosphorus loss (settling) [1/day].
  kKSed = 5,   ///< Sediment loss (settling) [1/day].
  kKDes = 6,   ///< Desorption PPH -> DPH [1/day].
  kKSor = 7,   ///< Sorption DPH -> PPH [1/day].
  kSNo3 = 8,   ///< Lateral nitrate source coefficient [1/day].
  kSNh4 = 9,   ///< Lateral ammonia source coefficient [1/day].
  kSDph = 10,  ///< Lateral dissolved-P source coefficient [1/day].
  kSPph = 11,  ///< Lateral particulate-P source coefficient [1/day].
  kSSed = 12,  ///< Lateral sediment source coefficient [1/day].
  kNumTransportParameters = 13,
};

/// Display name of each transport parameter slot ("K_NIT", ...).
const char* TransportParameterName(int slot);

/// Expert priors of the transport process family (rate boxes in [0, 1]/day,
/// source coefficients in [0, 2]/day).
gp::ParameterPriors TransportParameterPriors();

/// Parser symbol table for this set's variable names and parameter names.
expr::SymbolTable SymbolsFor(const ConstituentSet& constituents);

/// Per-constituent dimension table: state dims from the registry, driver
/// dims from the Table IV knowledge base, parameter dims from the set.
/// This is what the units pass and gmr_lint check multi-constituent models
/// against.
analysis::UnitsEnv UnitsEnvFor(const ConstituentSet& constituents);

/// Species-major structure-of-arrays state storage for `width` rollout
/// lanes: value(species, lane) at index species * width + lane. Width 1 is
/// the scalar rollout; the batch rollout spans species x lanes in one
/// contiguous block.
class MassBalanceStore {
 public:
  MassBalanceStore(std::size_t num_species, std::size_t width)
      : num_species_(num_species), width_(width),
        values_(num_species * width, 0.0) {}

  std::size_t num_species() const { return num_species_; }
  std::size_t width() const { return width_; }

  double& at(std::size_t species, std::size_t lane) {
    return values_[species * width_ + lane];
  }
  double at(std::size_t species, std::size_t lane) const {
    return values_[species * width_ + lane];
  }
  /// The lane block of one species (length width()).
  double* row(std::size_t species) { return &values_[species * width_]; }
  const double* row(std::size_t species) const {
    return &values_[species * width_];
  }

  /// Broadcasts per-species initial states across every lane.
  void Fill(const std::vector<double>& initial_state);

 private:
  std::size_t num_species_;
  std::size_t width_;
  std::vector<double> values_;
};

}  // namespace gmr::river

#endif  // GMR_RIVER_CONSTITUENTS_H_
