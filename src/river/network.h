#ifndef GMR_RIVER_NETWORK_H_
#define GMR_RIVER_NETWORK_H_

#include <string>
#include <vector>

namespace gmr::river {

/// A measuring station (paper Figure 8) or a virtual station placed at a
/// confluence (paper Figure 12 / Appendix A).
struct Station {
  std::string name;
  bool is_virtual = false;
};

/// A river segment between adjacent stations. `travel_days` is the time
/// Delta water takes from `from` to `to`; `retention` is r_B of Eq. (9),
/// the fraction of water retained at the downstream station per day (side
/// pools, non-laminar flow).
struct Reach {
  int from = 0;
  int to = 0;
  int travel_days = 1;
  double retention = 0.3;
};

/// The station graph: a DAG with a single sink (the forecast target, S1).
/// Confluences are modeled by virtual stations with in-degree two or more;
/// real stations have in-degree at most one.
class RiverNetwork {
 public:
  /// Adds a station; returns its id.
  int AddStation(const std::string& name, bool is_virtual = false);

  /// Adds a reach from `from` to `to`.
  void AddReach(int from, int to, int travel_days, double retention);

  std::size_t num_stations() const { return stations_.size(); }
  const Station& station(int id) const;
  const std::vector<Reach>& reaches() const { return reaches_; }

  /// Ids of the reaches flowing into `station_id`.
  std::vector<int> InboundReaches(int station_id) const;

  /// The unique station with no outbound reach. Aborts when the graph does
  /// not have exactly one sink.
  int Sink() const;

  /// Station ids in topological order (upstream before downstream). Aborts
  /// on cycles.
  std::vector<int> TopologicalOrder() const;

  /// Id of the station named `name`, or -1.
  int FindStation(const std::string& name) const;

  /// The Nakdong catchment of the paper's case study: six main-channel
  /// stations S1-S6, three tributary stations T1-T3, and three virtual
  /// stations at the confluences S6*T3, S4*T2, S3*T1 (Appendix A), with
  /// travel times derived from the inter-station distances of Figure 8 at
  /// a nominal celerity of roughly 30 km/day.
  static RiverNetwork Nakdong();

 private:
  std::vector<Station> stations_;
  std::vector<Reach> reaches_;
};

/// Hydrological routing (paper Appendix A, Eq. (9)). Given per-station
/// local attribute series and rainfall-runoff series, computes the flow at
/// every station via the flow mass balance
///   F_B(t+Delta) = r_B F_B(t) + (1 - r_A) F_A(t) + R_B(t+Delta)
/// and transports water-body attributes downstream, merging them at
/// confluences as flow-weighted averages.
class HydrologicalProcess {
 public:
  /// `attributes[s][k][t]`: local value of attribute k at station s and day
  /// t (virtual stations may have empty series — they have no local
  /// measurements). `rainfall[s][t]`: local rainfall-runoff inflow.
  /// `base_flow[s]`: steady daily base inflow (groundwater / unmodeled
  /// headwater; 0 for virtual stations). Both local inflows carry the
  /// station's local attribute signature.
  struct Input {
    std::vector<std::vector<std::vector<double>>> attributes;
    std::vector<std::vector<double>> rainfall;
    std::vector<double> base_flow;
  };

  /// `flow[s][t]` and `attributes[s][k][t]` after routing: what a water
  /// body passing station s at day t carries.
  struct Output {
    std::vector<std::vector<double>> flow;
    std::vector<std::vector<std::vector<double>>> attributes;
  };

  explicit HydrologicalProcess(const RiverNetwork* network);

  /// Routes `input` through the network. All series must share one length.
  Output Route(const Input& input) const;

 private:
  const RiverNetwork* network_;
};

}  // namespace gmr::river

#endif  // GMR_RIVER_NETWORK_H_
