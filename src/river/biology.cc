#include "river/biology.h"

#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {

namespace e = gmr::expr;

e::ExprPtr Var(int variable_slot) {
  return e::Variable(variable_slot, VariableName(variable_slot));
}

e::ExprPtr Param(int parameter_slot) {
  return e::Parameter(parameter_slot, ParameterName(parameter_slot));
}

e::ExprPtr LambdaPhy() {
  // (B_Phy - C_Fmin) / (C_FS + B_Phy - C_Fmin)
  e::ExprPtr food = e::Sub(Var(kBPhy), Param(kCFmin));
  return e::Div(food, e::Add(Param(kCFS), food));
}

e::ExprPtr LightResponse() {
  // (V_eff / C_BL) * exp(1 - V_eff / C_BL) with the self-shaded effective
  // light V_eff = V_lgt * exp(-C_SH * B_Phy).
  e::ExprPtr effective_light =
      e::Mul(Var(kVlgt), e::Exp(e::Neg(e::Mul(Param(kCSH), Var(kBPhy)))));
  e::ExprPtr ratio = e::Div(effective_light, Param(kCBL));
  return e::Mul(ratio, e::Exp(e::Sub(e::Constant(1.0), ratio)));
}

namespace {

e::ExprPtr MichaelisMenten(int nutrient_slot, int half_saturation_slot) {
  return e::Div(Var(nutrient_slot),
                e::Add(Param(half_saturation_slot), Var(nutrient_slot)));
}

e::ExprPtr GaussianTemperature(int optimum_slot) {
  // exp(-C_PT * (V_tmp - optimum)^2)
  e::ExprPtr delta = e::Sub(Var(kVtmp), Param(optimum_slot));
  return e::Exp(e::Neg(e::Mul(Param(kCPT), e::Mul(delta, delta))));
}

}  // namespace

e::ExprPtr NutrientLimitation() {
  return e::Min(MichaelisMenten(kVn, kCN),
                e::Min(MichaelisMenten(kVp, kCP),
                       MichaelisMenten(kVsi, kCSI)));
}

e::ExprPtr TemperatureResponse() {
  return e::Max(GaussianTemperature(kCBTP1), GaussianTemperature(kCBTP2));
}

e::ExprPtr MuPhy() {
  return e::Mul(
      Param(kCUA),
      e::Mul(LightResponse(),
             e::Mul(NutrientLimitation(), TemperatureResponse())));
}

e::ExprPtr GammaPhy() { return Param(kCBRA); }

e::ExprPtr Phi() { return e::Mul(Param(kCMFR), LambdaPhy()); }

e::ExprPtr PhytoplanktonDerivative() {
  return e::Sub(e::Mul(Var(kBPhy), e::Sub(MuPhy(), GammaPhy())),
                e::Mul(Var(kBZoo), Phi()));
}

e::ExprPtr MuZoo() { return e::Mul(Param(kCUZ), LambdaPhy()); }

e::ExprPtr GammaZoo() {
  return e::Add(Param(kCBRZ), e::Mul(Param(kCBMT), Phi()));
}

e::ExprPtr DeltaZoo() { return Param(kCDZ); }

e::ExprPtr ZooplanktonDerivative() {
  return e::Mul(Var(kBZoo),
                e::Sub(MuZoo(), e::Add(GammaZoo(), DeltaZoo())));
}

std::vector<e::ExprPtr> ManualProcess() {
  return {PhytoplanktonDerivative(), ZooplanktonDerivative()};
}

expr::SymbolTable RiverSymbols() {
  expr::SymbolTable symbols;
  for (int slot = 0; slot < kNumVariables; ++slot) {
    symbols.variables[VariableName(slot)] = slot;
  }
  for (int slot = 0; slot < kNumParameters; ++slot) {
    symbols.parameters[ParameterName(slot)] = slot;
  }
  return symbols;
}

}  // namespace gmr::river
