#ifndef GMR_RIVER_TRANSPORT_H_
#define GMR_RIVER_TRANSPORT_H_

#include <cstddef>
#include <vector>

#include "expr/ast.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"

namespace gmr::river {

/// Spatial discretization of the advective flux through a cell interface.
enum class AdvectionScheme {
  /// First-order upwind: F = u * c_upstream. Unconditionally monotone,
  /// diffusive; the robust default under candidate processes of arbitrary
  /// quality.
  kUpwind,
  /// QUICK (Leonard): quadratic upstream interpolation
  /// F = u * (6/8 c_i + 3/8 c_{i+1} - 1/8 c_{i-1}) for interior interfaces
  /// with a full stencil; boundary interfaces fall back to upwind. Third
  /// order in space, sharper fronts, mildly dispersive.
  kQuick,
};

const char* AdvectionSchemeName(AdvectionScheme scheme);

/// Geometry and numerics of a 1D reach: `num_cells` well-mixed cells of
/// length `dx` in series, advected at `velocity` with dispersion
/// `dispersion`, Dirichlet inflow at the upstream face and free outflow at
/// the downstream face. Stations become cells: every cell sees the same
/// daily drivers (a uniform reach) and the same candidate processes; the
/// spatial axis is what the discretization adds.
struct ChannelConfig {
  int num_cells = 8;
  /// Cell length [m].
  double dx = 500.0;
  /// Advection velocity [m/day]; must be >= 0 (flow is downstream).
  double velocity = 200.0;
  /// Longitudinal dispersion coefficient [m^2/day].
  double dispersion = 50.0;
  AdvectionScheme scheme = AdvectionScheme::kUpwind;
  /// Upstream boundary concentration per species; empty uses the
  /// simulation's initial state as a steady inflow.
  std::vector<double> inflow;

  /// Courant number u * dt / dx at the given substep count — the explicit
  /// step is stable when this is < 1 (and the diffusion number
  /// D * dt / dx^2 < 0.5).
  double Courant(int substeps) const {
    return velocity * (1.0 / static_cast<double>(substeps)) / dx;
  }
};

/// Per-species mass accounting of one channel rollout, in units of
/// concentration x length (mass per unit cross-section). The discrete
/// update telescopes exactly, so
///   final == initial + inflow - outflow + reaction + clamp_correction
/// holds to floating-point rounding for every scheme — the conservation
/// property the `prop` tests pin. clamp_correction is the mass the state
/// clamp added/removed; it is 0 for well-behaved processes.
struct ChannelMassBudget {
  double initial = 0.0;
  double final_mass = 0.0;
  double inflow = 0.0;
  double outflow = 0.0;
  double reaction = 0.0;
  double clamp_correction = 0.0;

  double Residual() const {
    return final_mass - initial - inflow + outflow - reaction -
           clamp_correction;
  }
};

/// Result of one channel rollout.
struct ChannelResult {
  /// outlet[species][day]: end-of-day concentration in the most downstream
  /// cell (the forecast station), or the penalty value after a watchdog
  /// abort.
  std::vector<std::vector<double>> outlet;
  /// Final cell states, species x cells.
  MassBalanceStore final_state{0, 0};
  /// Per-species conservation accounting, accumulated per committed
  /// substep — state and budget move in lockstep, so the identity stays
  /// exact even when a watchdog aborts the reach mid-day.
  std::vector<ChannelMassBudget> budgets;
  /// Whole-channel containment telemetry (the reach aborts as a unit).
  SimulationReport report;
};

/// Integrates the reach over dataset days [t_begin, t_end): per substep an
/// explicit flux-form advection-diffusion update plus the candidate
/// source/sink processes evaluated in every cell (cells are lanes of the
/// batched expression backends — the SoA blocks span species x cells).
/// Divergence containment matches the station rollouts: the existing
/// watchdogs (non-finite derivatives, clamp saturation, substep budget)
/// abort the reach and every remaining outlet sample predicts
/// config.state_max.
ChannelResult SimulateChannel(const std::vector<expr::ExprPtr>& equations,
                              const std::vector<double>& parameters,
                              const RiverDataset& dataset,
                              std::size_t t_begin, std::size_t t_end,
                              const ConstituentSet& constituents,
                              const SimulationConfig& config,
                              const ChannelConfig& channel);

/// Validates the channel geometry (cell count, non-negative velocity,
/// inflow vector length) against the constituent registry.
ConfigError ValidateChannel(const ChannelConfig& channel,
                            const ConstituentSet& constituents);

}  // namespace gmr::river

#endif  // GMR_RIVER_TRANSPORT_H_
