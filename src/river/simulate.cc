#include "river/simulate.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/fault_injection.h"
#include "expr/eval.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {

ProcessRunner::ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                             const std::vector<double>* parameters,
                             bool compiled)
    : ProcessRunner(equations, parameters, compiled, SimulationConfig{}) {}

ProcessRunner::ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                             const std::vector<double>* parameters,
                             bool compiled, const SimulationConfig& config)
    : equations_(equations), parameters_(parameters), compiled_(compiled) {
  GMR_CHECK_EQ(equations_.size(), 2u);
  GMR_CHECK(parameters_ != nullptr);
  if (!compiled_) return;
  // The bytecode programs are always built: they are the fallback for any
  // equation whose JIT compile fails.
  programs_.reserve(equations_.size());
  for (const auto& eq : equations_) programs_.push_back(expr::Compile(*eq));
  switch (config.compiled_backend) {
    case CompiledBackend::kBytecodeVm:
      return;
    case CompiledBackend::kBatchVm:
    case CompiledBackend::kBatchJit: {
      // Scalar rollouts run the batched backends at width 1 (SoA == AoS at
      // stride 1), so scalar and batched evaluation share one code path.
      batch_programs_.reserve(equations_.size());
      for (const auto& eq : equations_) {
        batch_programs_.push_back(expr::CompileBatch(*eq));
      }
      if (config.compiled_backend != CompiledBackend::kBatchJit) return;
      expr::BatchJitSession* session =
          config.batch_jit_session != nullptr
              ? config.batch_jit_session
              : expr::BatchJitSession::Default();
      std::vector<const expr::Expr*> roots;
      roots.reserve(equations_.size());
      for (const auto& eq : equations_) roots.push_back(eq.get());
      // Pure cache hits when the evaluator's PrepareBatch already compiled
      // this generation; a miss compiles a (small) TU for this individual.
      batch_fns_ = session->CompileBatch(roots);
      for (const auto fn : batch_fns_) {
        if (fn == nullptr) jit_fallback_ = true;
      }
      return;
    }
    case CompiledBackend::kNativeJit:
      break;
  }
  expr::JitCircuitBreaker* breaker = config.jit_breaker != nullptr
                                         ? config.jit_breaker
                                         : expr::JitCircuitBreaker::Default();
  jit_programs_.resize(equations_.size());
  for (std::size_t i = 0; i < equations_.size(); ++i) {
    if (!breaker->allowed()) {
      jit_fallback_ = true;
      continue;
    }
    std::string error;
    jit_programs_[i] = expr::JitProgram::Compile(*equations_[i], &error);
    if (jit_programs_[i] != nullptr) {
      breaker->RecordSuccess();
    } else {
      breaker->RecordFailure(error);
      jit_fallback_ = true;
    }
  }
}

ProcessRunner::~ProcessRunner() = default;

void ProcessRunner::Derivatives(const double* variables,
                                std::size_t num_variables, double* d_bphy,
                                double* d_bzoo) const {
  if (FaultInjected(FaultPoint::kDerivativeNan)) {
    *d_bphy = std::numeric_limits<double>::quiet_NaN();
    *d_bzoo = std::numeric_limits<double>::quiet_NaN();
    return;
  }
  if (compiled_ && !batch_programs_.empty()) {
    // Batched backends at stride 1: lane 0 of the SoA layout is exactly the
    // scalar layout, so this is bit-identical to the bytecode VM (batch VM)
    // or within the JIT ULP budget (batch JIT symbols).
    expr::BatchEvalContext bctx;
    bctx.variables = variables;
    bctx.num_variables = num_variables;
    bctx.parameters = parameters_->data();
    bctx.num_parameters = parameters_->size();
    bctx.width = 1;
    if (!batch_fns_.empty() && batch_fns_[0] != nullptr) {
      batch_fns_[0](variables, parameters_->data(), d_bphy, 1);
    } else {
      batch_programs_[0].RunLanes(bctx, d_bphy);
    }
    if (!batch_fns_.empty() && batch_fns_[1] != nullptr) {
      batch_fns_[1](variables, parameters_->data(), d_bzoo, 1);
    } else {
      batch_programs_[1].RunLanes(bctx, d_bzoo);
    }
    return;
  }
  expr::EvalContext ctx;
  ctx.variables = variables;
  ctx.num_variables = num_variables;
  ctx.parameters = parameters_->data();
  ctx.num_parameters = parameters_->size();
  if (compiled_) {
    *d_bphy = !jit_programs_.empty() && jit_programs_[0] != nullptr
                  ? jit_programs_[0]->Run(ctx)
                  : programs_[0].Run(ctx);
    *d_bzoo = !jit_programs_.empty() && jit_programs_[1] != nullptr
                  ? jit_programs_[1]->Run(ctx)
                  : programs_[1].Run(ctx);
  } else {
    *d_bphy = expr::EvalExpr(*equations_[0], ctx);
    *d_bzoo = expr::EvalExpr(*equations_[1], ctx);
  }
}

namespace {

/// Sign-aware clamp: -Inf (and NaN with the sign bit set) pins to the
/// biological floor, +Inf/NaN to the ceiling — a huge negative update means
/// the population crashed, not exploded. Pinning at the ceiling sets
/// *saturated_high (when non-null); the floor is ordinary die-off and is
/// never reported.
double ClampState(double value, const SimulationConfig& config,
                  bool* saturated_high = nullptr) {
  if (!std::isfinite(value)) {
    if (std::signbit(value)) return config.state_min;
    if (saturated_high != nullptr) *saturated_high = true;
    return config.state_max;
  }
  if (value < config.state_min) return config.state_min;
  if (value > config.state_max) {
    if (saturated_high != nullptr) *saturated_high = true;
    return config.state_max;
  }
  return value;
}

/// Shared integration state for SimulateBPhy and RiverEvaluation, including
/// the divergence watchdogs. Once a watchdog aborts the rollout, every
/// remaining day predicts config.state_max in O(1) — a deterministic
/// penalty that keeps the full-horizon RMSE comparable across candidates
/// (and bit-identical regardless of thread count) while skipping all
/// further derivative evaluations.
class Integrator {
 public:
  Integrator(const std::vector<expr::ExprPtr>& equations,
             const std::vector<double>* parameters, bool compiled,
             const RiverDataset* dataset, double initial_bphy,
             double initial_bzoo, const SimulationConfig& config)
      : runner_(equations, parameters, compiled, config),
        dataset_(dataset),
        config_(config),
        bphy_(ClampState(initial_bphy, config)),
        bzoo_(ClampState(initial_bzoo, config)) {}

  /// Integrates one day using the drivers of day `t` and returns the
  /// end-of-day B_Phy (or the penalty value after a watchdog abort).
  double AdvanceDay(std::size_t t) {
    ++days_simulated_;
    if (aborted_) return config_.state_max;
    double variables[kNumVariables];
    for (int slot = kVlgt; slot < kNumVariables; ++slot) {
      variables[slot] = dataset_->drivers[static_cast<std::size_t>(slot)][t];
    }
    const double dt = 1.0 / static_cast<double>(config_.substeps);
    for (int step = 0; step < config_.substeps && !aborted_; ++step) {
      if (config_.substep_budget > 0 &&
          substeps_used_ >= config_.substep_budget) {
        Abort(EvalOutcome::kBudgetExceeded);
        break;
      }
      ++substeps_used_;
      if (config_.method == IntegrationMethod::kRk4) {
        Rk4Step(variables, dt);
      } else {
        EulerStep(variables, dt);
      }
    }
    if (aborted_) return config_.state_max;
    return bphy_;
  }

  EvalOutcome outcome() const {
    if (aborted_) return abort_outcome_;
    if (runner_.jit_fallback()) return EvalOutcome::kJitCompileFailed;
    return EvalOutcome::kOk;
  }

  bool aborted() const { return aborted_; }

  void FillReport(SimulationReport* report) const {
    report->outcome = outcome();
    report->aborted = aborted_;
    report->jit_fallback = runner_.jit_fallback();
    report->substeps_used = substeps_used_;
    report->days_simulated = days_simulated_;
    report->days_before_abort = aborted_ ? days_before_abort_ : days_simulated_;
    report->nonfinite_derivatives = nonfinite_derivatives_;
    report->clamp_saturations = clamp_saturations_;
  }

 private:
  void Abort(EvalOutcome outcome) {
    aborted_ = true;
    abort_outcome_ = outcome;
    // The current day did not complete; it and all later days predict the
    // penalty value.
    days_before_abort_ = days_simulated_ - 1;
  }

  /// Watchdog bookkeeping for one Derivatives call. Returns false (and
  /// possibly aborts) when any derivative is non-finite.
  bool NoteDerivatives(double d_bphy, double d_bzoo) {
    if (std::isfinite(d_bphy) && std::isfinite(d_bzoo)) return true;
    ++nonfinite_derivatives_;
    if (config_.max_nonfinite_derivatives > 0 &&
        nonfinite_derivatives_ >=
            static_cast<std::size_t>(config_.max_nonfinite_derivatives)) {
      Abort(EvalOutcome::kNonFiniteDerivative);
    }
    return false;
  }

  /// Clamps and commits the end-of-substep state, tracking consecutive
  /// ceiling saturations for the divergence watchdog.
  void CommitState(double raw_bphy, double raw_bzoo) {
    bool saturated = false;
    bphy_ = ClampState(raw_bphy, config_, &saturated);
    bzoo_ = ClampState(raw_bzoo, config_, &saturated);
    if (!saturated) {
      consecutive_saturated_ = 0;
      return;
    }
    ++clamp_saturations_;
    ++consecutive_saturated_;
    if (config_.max_saturated_substeps > 0 &&
        consecutive_saturated_ >=
            static_cast<std::size_t>(config_.max_saturated_substeps)) {
      Abort(EvalOutcome::kClampSaturated);
    }
  }

  void EulerStep(double* variables, double dt) {
    variables[kBPhy] = bphy_;
    variables[kBZoo] = bzoo_;
    double d_bphy = 0.0;
    double d_bzoo = 0.0;
    runner_.Derivatives(variables, kNumVariables, &d_bphy, &d_bzoo);
    NoteDerivatives(d_bphy, d_bzoo);
    if (aborted_) return;
    CommitState(bphy_ + dt * d_bphy, bzoo_ + dt * d_bzoo);
  }

  void Rk4Step(double* variables, double dt) {
    double k_bphy[4];
    double k_bzoo[4];
    const double offsets[4] = {0.0, 0.5, 0.5, 1.0};
    for (int stage = 0; stage < 4; ++stage) {
      const double o = offsets[stage];
      variables[kBPhy] =
          o == 0.0 ? bphy_ : bphy_ + o * dt * k_bphy[stage - 1];
      variables[kBZoo] =
          o == 0.0 ? bzoo_ : bzoo_ + o * dt * k_bzoo[stage - 1];
      runner_.Derivatives(variables, kNumVariables, &k_bphy[stage],
                          &k_bzoo[stage]);
      NoteDerivatives(k_bphy[stage], k_bzoo[stage]);
      if (aborted_) return;
    }
    CommitState(
        bphy_ + dt / 6.0 *
                    (k_bphy[0] + 2.0 * k_bphy[1] + 2.0 * k_bphy[2] +
                     k_bphy[3]),
        bzoo_ + dt / 6.0 *
                    (k_bzoo[0] + 2.0 * k_bzoo[1] + 2.0 * k_bzoo[2] +
                     k_bzoo[3]));
  }

  ProcessRunner runner_;
  const RiverDataset* dataset_;
  SimulationConfig config_;
  double bphy_;
  double bzoo_;

  bool aborted_ = false;
  EvalOutcome abort_outcome_ = EvalOutcome::kOk;
  std::size_t substeps_used_ = 0;
  std::size_t days_simulated_ = 0;
  std::size_t days_before_abort_ = 0;
  std::size_t nonfinite_derivatives_ = 0;
  std::size_t clamp_saturations_ = 0;
  std::size_t consecutive_saturated_ = 0;
};

/// Evaluates both derivative equations for a whole lane block per call
/// (one lane per parameter vector, SoA layout of batch_vm.h).
class BatchRunner {
 public:
  BatchRunner(const std::vector<expr::ExprPtr>& equations,
              const SimulationConfig& config) {
    GMR_CHECK_EQ(equations.size(), 2u);
    programs_.reserve(equations.size());
    for (const auto& eq : equations) {
      programs_.push_back(expr::CompileBatch(*eq));
    }
    if (config.compiled_backend != CompiledBackend::kBatchJit) return;
    expr::BatchJitSession* session =
        config.batch_jit_session != nullptr
            ? config.batch_jit_session
            : expr::BatchJitSession::Default();
    std::vector<const expr::Expr*> roots;
    roots.reserve(equations.size());
    for (const auto& eq : equations) roots.push_back(eq.get());
    fns_ = session->CompileBatch(roots);
    for (const auto fn : fns_) {
      if (fn == nullptr) jit_fallback_ = true;
    }
  }

  void Derivatives(const double* variables, std::size_t num_variables,
                   const double* parameters, std::size_t num_parameters,
                   std::size_t width, double* d_bphy, double* d_bzoo) const {
    if (FaultInjected(FaultPoint::kDerivativeNan)) {
      for (std::size_t l = 0; l < width; ++l) {
        d_bphy[l] = std::numeric_limits<double>::quiet_NaN();
        d_bzoo[l] = std::numeric_limits<double>::quiet_NaN();
      }
      return;
    }
    expr::BatchEvalContext ctx;
    ctx.variables = variables;
    ctx.num_variables = num_variables;
    ctx.parameters = parameters;
    ctx.num_parameters = num_parameters;
    ctx.width = width;
    if (!fns_.empty() && fns_[0] != nullptr) {
      fns_[0](variables, parameters, d_bphy, static_cast<long>(width));
    } else {
      programs_[0].RunLanes(ctx, d_bphy);
    }
    if (!fns_.empty() && fns_[1] != nullptr) {
      fns_[1](variables, parameters, d_bzoo, static_cast<long>(width));
    } else {
      programs_[1].RunLanes(ctx, d_bzoo);
    }
  }

  bool jit_fallback() const { return jit_fallback_; }

 private:
  std::vector<expr::BatchProgram> programs_;
  std::vector<expr::BatchJitSession::BatchFn> fns_;
  bool jit_fallback_ = false;
};

/// Lane-parallel mirror of Integrator: the same watchdog state machine,
/// replicated per lane over SoA buffers. Every lane's trajectory, counters,
/// and abort behavior are bit-identical to running the scalar Integrator on
/// that lane's parameter vector alone (under an equivalent backend): a lane
/// that trips a watchdog is masked out of commits and bookkeeping — its
/// remaining days predict state_max — while its neighbors keep integrating.
/// Masked lanes still flow through the (branch-free) derivative kernels;
/// their outputs are simply ignored.
class BatchIntegrator {
 public:
  BatchIntegrator(const std::vector<expr::ExprPtr>& equations,
                  const std::vector<std::vector<double>>& parameter_lanes,
                  const RiverDataset* dataset, double initial_bphy,
                  double initial_bzoo, const SimulationConfig& config)
      : runner_(equations, config),
        dataset_(dataset),
        config_(config),
        width_(parameter_lanes.size()) {
    GMR_CHECK_GT(width_, 0u);
    num_parameters_ = parameter_lanes[0].size();
    params_.resize(num_parameters_ * width_);
    for (std::size_t l = 0; l < width_; ++l) {
      GMR_CHECK_EQ(parameter_lanes[l].size(), num_parameters_);
      for (std::size_t s = 0; s < num_parameters_; ++s) {
        params_[s * width_ + l] = parameter_lanes[l][s];
      }
    }
    Lane initial;
    initial.bphy = ClampState(initial_bphy, config_);
    initial.bzoo = ClampState(initial_bzoo, config_);
    lanes_.assign(width_, initial);
    vars_.resize(static_cast<std::size_t>(kNumVariables) * width_);
    k_bphy_.resize(4 * width_);
    k_bzoo_.resize(4 * width_);
    stage_live_.resize(width_);
  }

  /// Integrates one day for every lane; out[lane] is that lane's end-of-day
  /// B_Phy (or the penalty value once the lane has aborted).
  void AdvanceDay(std::size_t t, double* out) {
    bool all_aborted = true;
    for (Lane& lane : lanes_) {
      ++lane.days_simulated;
      all_aborted = all_aborted && lane.aborted;
    }
    if (!all_aborted) {
      for (int slot = kVlgt; slot < kNumVariables; ++slot) {
        const double v =
            dataset_->drivers[static_cast<std::size_t>(slot)][t];
        double* row = &vars_[static_cast<std::size_t>(slot) * width_];
        for (std::size_t l = 0; l < width_; ++l) row[l] = v;
      }
      const double dt = 1.0 / static_cast<double>(config_.substeps);
      for (int step = 0; step < config_.substeps; ++step) {
        bool any_active = false;
        for (Lane& lane : lanes_) {
          if (lane.aborted) continue;
          if (config_.substep_budget > 0 &&
              lane.substeps_used >= config_.substep_budget) {
            AbortLane(lane, EvalOutcome::kBudgetExceeded);
            continue;
          }
          ++lane.substeps_used;
          any_active = true;
        }
        if (!any_active) break;
        if (config_.method == IntegrationMethod::kRk4) {
          Rk4Step(dt);
        } else {
          EulerStep(dt);
        }
      }
    }
    for (std::size_t l = 0; l < width_; ++l) {
      out[l] = lanes_[l].aborted ? config_.state_max : lanes_[l].bphy;
    }
  }

  void FillReport(std::size_t lane_index, SimulationReport* report) const {
    const Lane& lane = lanes_[lane_index];
    report->outcome = lane.aborted ? lane.abort_outcome
                      : runner_.jit_fallback()
                          ? EvalOutcome::kJitCompileFailed
                          : EvalOutcome::kOk;
    report->aborted = lane.aborted;
    report->jit_fallback = runner_.jit_fallback();
    report->substeps_used = lane.substeps_used;
    report->days_simulated = lane.days_simulated;
    report->days_before_abort =
        lane.aborted ? lane.days_before_abort : lane.days_simulated;
    report->nonfinite_derivatives = lane.nonfinite_derivatives;
    report->clamp_saturations = lane.clamp_saturations;
  }

 private:
  /// One lane's copy of the scalar Integrator's state machine.
  struct Lane {
    double bphy = 0.0;
    double bzoo = 0.0;
    bool aborted = false;
    EvalOutcome abort_outcome = EvalOutcome::kOk;
    std::size_t substeps_used = 0;
    std::size_t days_simulated = 0;
    std::size_t days_before_abort = 0;
    std::size_t nonfinite_derivatives = 0;
    std::size_t clamp_saturations = 0;
    std::size_t consecutive_saturated = 0;
  };

  void AbortLane(Lane& lane, EvalOutcome outcome) {
    lane.aborted = true;
    lane.abort_outcome = outcome;
    lane.days_before_abort = lane.days_simulated - 1;
  }

  void NoteDerivatives(Lane& lane, double d_bphy, double d_bzoo) {
    if (std::isfinite(d_bphy) && std::isfinite(d_bzoo)) return;
    ++lane.nonfinite_derivatives;
    if (config_.max_nonfinite_derivatives > 0 &&
        lane.nonfinite_derivatives >=
            static_cast<std::size_t>(config_.max_nonfinite_derivatives)) {
      AbortLane(lane, EvalOutcome::kNonFiniteDerivative);
    }
  }

  void CommitState(Lane& lane, double raw_bphy, double raw_bzoo) {
    bool saturated = false;
    lane.bphy = ClampState(raw_bphy, config_, &saturated);
    lane.bzoo = ClampState(raw_bzoo, config_, &saturated);
    if (!saturated) {
      lane.consecutive_saturated = 0;
      return;
    }
    ++lane.clamp_saturations;
    ++lane.consecutive_saturated;
    if (config_.max_saturated_substeps > 0 &&
        lane.consecutive_saturated >=
            static_cast<std::size_t>(config_.max_saturated_substeps)) {
      AbortLane(lane, EvalOutcome::kClampSaturated);
    }
  }

  void EulerStep(double dt) {
    double* bphy_row = &vars_[static_cast<std::size_t>(kBPhy) * width_];
    double* bzoo_row = &vars_[static_cast<std::size_t>(kBZoo) * width_];
    for (std::size_t l = 0; l < width_; ++l) {
      bphy_row[l] = lanes_[l].bphy;
      bzoo_row[l] = lanes_[l].bzoo;
    }
    runner_.Derivatives(vars_.data(), kNumVariables, params_.data(),
                        num_parameters_, width_, k_bphy_.data(),
                        k_bzoo_.data());
    for (std::size_t l = 0; l < width_; ++l) {
      Lane& lane = lanes_[l];
      if (lane.aborted) continue;
      NoteDerivatives(lane, k_bphy_[l], k_bzoo_[l]);
      if (lane.aborted) continue;
      CommitState(lane, lane.bphy + dt * k_bphy_[l],
                  lane.bzoo + dt * k_bzoo_[l]);
    }
  }

  void Rk4Step(double dt) {
    const double offsets[4] = {0.0, 0.5, 0.5, 1.0};
    // A lane that aborts at stage k skips the later stages' bookkeeping and
    // the final commit — the batched image of the scalar early return.
    for (std::size_t l = 0; l < width_; ++l) {
      stage_live_[l] = lanes_[l].aborted ? 0 : 1;
    }
    double* bphy_row = &vars_[static_cast<std::size_t>(kBPhy) * width_];
    double* bzoo_row = &vars_[static_cast<std::size_t>(kBZoo) * width_];
    for (int stage = 0; stage < 4; ++stage) {
      const double o = offsets[stage];
      double* k_bphy = &k_bphy_[static_cast<std::size_t>(stage) * width_];
      double* k_bzoo = &k_bzoo_[static_cast<std::size_t>(stage) * width_];
      const double* k_bphy_prev =
          stage == 0 ? nullptr
                     : &k_bphy_[static_cast<std::size_t>(stage - 1) * width_];
      const double* k_bzoo_prev =
          stage == 0 ? nullptr
                     : &k_bzoo_[static_cast<std::size_t>(stage - 1) * width_];
      for (std::size_t l = 0; l < width_; ++l) {
        bphy_row[l] = o == 0.0 ? lanes_[l].bphy
                               : lanes_[l].bphy + o * dt * k_bphy_prev[l];
        bzoo_row[l] = o == 0.0 ? lanes_[l].bzoo
                               : lanes_[l].bzoo + o * dt * k_bzoo_prev[l];
      }
      runner_.Derivatives(vars_.data(), kNumVariables, params_.data(),
                          num_parameters_, width_, k_bphy, k_bzoo);
      for (std::size_t l = 0; l < width_; ++l) {
        if (stage_live_[l] == 0) continue;
        NoteDerivatives(lanes_[l], k_bphy[l], k_bzoo[l]);
        if (lanes_[l].aborted) stage_live_[l] = 0;
      }
    }
    for (std::size_t l = 0; l < width_; ++l) {
      if (stage_live_[l] == 0) continue;
      Lane& lane = lanes_[l];
      CommitState(
          lane,
          lane.bphy + dt / 6.0 *
                          (k_bphy_[0 * width_ + l] +
                           2.0 * k_bphy_[1 * width_ + l] +
                           2.0 * k_bphy_[2 * width_ + l] +
                           k_bphy_[3 * width_ + l]),
          lane.bzoo + dt / 6.0 *
                          (k_bzoo_[0 * width_ + l] +
                           2.0 * k_bzoo_[1 * width_ + l] +
                           2.0 * k_bzoo_[2 * width_ + l] +
                           k_bzoo_[3 * width_ + l]));
    }
  }

  BatchRunner runner_;
  const RiverDataset* dataset_;
  SimulationConfig config_;
  std::size_t width_;
  std::size_t num_parameters_ = 0;
  std::vector<Lane> lanes_;
  /// SoA blocks: index [slot * width_ + lane].
  std::vector<double> params_;
  std::vector<double> vars_;
  /// RK stage slopes, [stage * width_ + lane]; Euler uses stage 0 only.
  std::vector<double> k_bphy_;
  std::vector<double> k_bzoo_;
  std::vector<char> stage_live_;
};

class RiverEvaluation : public gp::SequentialEvaluation {
 public:
  RiverEvaluation(const std::vector<expr::ExprPtr>& equations,
                  const std::vector<double>& parameters, bool compiled,
                  const RiverDataset* dataset, std::size_t t_begin,
                  std::size_t t_end, double initial_bphy,
                  double initial_bzoo, const SimulationConfig& config)
      : parameters_(parameters),
        integrator_(equations, &parameters_, compiled, dataset, initial_bphy,
                    initial_bzoo, config),
        dataset_(dataset),
        t_(t_begin),
        t_end_(t_end) {}

  bool Step() override {
    GMR_CHECK_LT(t_, t_end_);
    const double predicted = integrator_.AdvanceDay(t_);
    const double observed = dataset_->observed_bphy[t_];
    const double error = predicted - observed;
    sse_ += error * error;
    ++steps_;
    ++t_;
    return t_ < t_end_;
  }

  double CurrentFitness() const override {
    if (steps_ == 0) return 0.0;
    return std::sqrt(sse_ / static_cast<double>(steps_));
  }

  std::size_t steps_taken() const override { return steps_; }

  EvalOutcome outcome() const override { return integrator_.outcome(); }

 private:
  // Owns a copy so the integrator's pointer stays valid for the lifetime of
  // the evaluation regardless of caller storage.
  std::vector<double> parameters_;
  Integrator integrator_;
  const RiverDataset* dataset_;
  std::size_t t_;
  std::size_t t_end_;
  double sse_ = 0.0;
  std::size_t steps_ = 0;
};

}  // namespace

std::vector<double> SimulateBPhy(const std::vector<expr::ExprPtr>& equations,
                                 const std::vector<double>& parameters,
                                 const RiverDataset& dataset,
                                 std::size_t t_begin, std::size_t t_end,
                                 double initial_bphy, double initial_bzoo,
                                 const SimulationConfig& config,
                                 bool compiled, SimulationReport* report) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  Integrator integrator(equations, &parameters, compiled, &dataset,
                        initial_bphy, initial_bzoo, config);
  std::vector<double> predicted;
  predicted.reserve(t_end - t_begin);
  for (std::size_t t = t_begin; t < t_end; ++t) {
    predicted.push_back(integrator.AdvanceDay(t));
  }
  if (report != nullptr) integrator.FillReport(report);
  return predicted;
}

BatchSimulationResult BatchSimulateBPhy(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<std::vector<double>>& parameter_lanes,
    const RiverDataset& dataset, std::size_t t_begin, std::size_t t_end,
    double initial_bphy, double initial_bzoo,
    const SimulationConfig& config) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  BatchSimulationResult result;
  result.width = parameter_lanes.size();
  result.predicted.resize(result.width);
  result.reports.resize(result.width);
  if (result.width == 0) return result;
  BatchIntegrator integrator(equations, parameter_lanes, &dataset,
                             initial_bphy, initial_bzoo, config);
  std::vector<double> day(result.width, 0.0);
  for (auto& lane : result.predicted) lane.reserve(t_end - t_begin);
  for (std::size_t t = t_begin; t < t_end; ++t) {
    integrator.AdvanceDay(t, day.data());
    for (std::size_t l = 0; l < result.width; ++l) {
      result.predicted[l].push_back(day[l]);
    }
  }
  for (std::size_t l = 0; l < result.width; ++l) {
    integrator.FillReport(l, &result.reports[l]);
  }
  return result;
}

RiverFitness::RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
                           std::size_t t_end, double initial_bphy,
                           double initial_bzoo, SimulationConfig config)
    : dataset_(dataset),
      t_begin_(t_begin),
      t_end_(t_end),
      initial_bphy_(initial_bphy),
      initial_bzoo_(initial_bzoo),
      config_(config) {
  GMR_CHECK(dataset_ != nullptr);
  GMR_CHECK_LT(t_begin_, t_end_);
  GMR_CHECK_LE(t_end_, dataset_->num_days);
}

RiverFitness RiverFitness::ForTraining(const RiverDataset* dataset,
                                       SimulationConfig config) {
  return RiverFitness(dataset, 0, dataset->train_end, dataset->initial_bphy,
                      dataset->initial_bzoo, config);
}

RiverFitness RiverFitness::ForTest(const RiverDataset* dataset,
                                   SimulationConfig config) {
  return RiverFitness(dataset, dataset->train_end, dataset->num_days,
                      dataset->test_initial_bphy, dataset->test_initial_bzoo,
                      config);
}

std::size_t RiverFitness::num_parameters() const { return kNumParameters; }

bool RiverFitness::WantsBatchPreparation() const {
  return config_.compiled_backend == CompiledBackend::kBatchJit;
}

void RiverFitness::PrepareBatch(
    const std::vector<std::vector<expr::ExprPtr>>& phenotypes) const {
  expr::BatchJitSession* session =
      config_.batch_jit_session != nullptr ? config_.batch_jit_session
                                           : expr::BatchJitSession::Default();
  std::vector<const expr::Expr*> roots;
  roots.reserve(2 * phenotypes.size());
  for (const auto& equations : phenotypes) {
    for (const auto& eq : equations) roots.push_back(eq.get());
  }
  if (!roots.empty()) session->CompileBatch(roots);
}

std::unique_ptr<gp::SequentialEvaluation> RiverFitness::Begin(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters,
    bool use_compiled_backend) const {
  return std::make_unique<RiverEvaluation>(
      equations, parameters, use_compiled_backend, dataset_, t_begin_,
      t_end_, initial_bphy_, initial_bzoo_, config_);
}

}  // namespace gmr::river
