#include "river/simulate.h"

#include <cmath>

#include "common/check.h"
#include "expr/eval.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {

ProcessRunner::ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                             const std::vector<double>* parameters,
                             bool compiled)
    : equations_(equations), parameters_(parameters), compiled_(compiled) {
  GMR_CHECK_EQ(equations_.size(), 2u);
  GMR_CHECK(parameters_ != nullptr);
  if (compiled_) {
    programs_.reserve(equations_.size());
    for (const auto& eq : equations_) programs_.push_back(expr::Compile(*eq));
  }
}

void ProcessRunner::Derivatives(const double* variables,
                                std::size_t num_variables, double* d_bphy,
                                double* d_bzoo) const {
  expr::EvalContext ctx;
  ctx.variables = variables;
  ctx.num_variables = num_variables;
  ctx.parameters = parameters_->data();
  ctx.num_parameters = parameters_->size();
  if (compiled_) {
    *d_bphy = programs_[0].Run(ctx);
    *d_bzoo = programs_[1].Run(ctx);
  } else {
    *d_bphy = expr::EvalExpr(*equations_[0], ctx);
    *d_bzoo = expr::EvalExpr(*equations_[1], ctx);
  }
}

namespace {

double ClampState(double value, const SimulationConfig& config) {
  if (!std::isfinite(value)) return config.state_max;
  if (value < config.state_min) return config.state_min;
  if (value > config.state_max) return config.state_max;
  return value;
}

/// Shared integration state for SimulateBPhy and RiverEvaluation.
class Integrator {
 public:
  Integrator(const std::vector<expr::ExprPtr>& equations,
             const std::vector<double>* parameters, bool compiled,
             const RiverDataset* dataset, double initial_bphy,
             double initial_bzoo, const SimulationConfig& config)
      : runner_(equations, parameters, compiled),
        dataset_(dataset),
        config_(config),
        bphy_(ClampState(initial_bphy, config)),
        bzoo_(ClampState(initial_bzoo, config)) {}

  /// Integrates one day using the drivers of day `t` and returns the
  /// end-of-day B_Phy.
  double AdvanceDay(std::size_t t) {
    double variables[kNumVariables];
    for (int slot = kVlgt; slot < kNumVariables; ++slot) {
      variables[slot] = dataset_->drivers[static_cast<std::size_t>(slot)][t];
    }
    const double dt = 1.0 / static_cast<double>(config_.substeps);
    for (int step = 0; step < config_.substeps; ++step) {
      if (config_.method == IntegrationMethod::kRk4) {
        Rk4Step(variables, dt);
      } else {
        EulerStep(variables, dt);
      }
    }
    return bphy_;
  }

 private:
  void EulerStep(double* variables, double dt) {
    variables[kBPhy] = bphy_;
    variables[kBZoo] = bzoo_;
    double d_bphy = 0.0;
    double d_bzoo = 0.0;
    runner_.Derivatives(variables, kNumVariables, &d_bphy, &d_bzoo);
    bphy_ = ClampState(bphy_ + dt * d_bphy, config_);
    bzoo_ = ClampState(bzoo_ + dt * d_bzoo, config_);
  }

  void Rk4Step(double* variables, double dt) {
    double k_bphy[4];
    double k_bzoo[4];
    const double offsets[4] = {0.0, 0.5, 0.5, 1.0};
    for (int stage = 0; stage < 4; ++stage) {
      const double o = offsets[stage];
      variables[kBPhy] =
          o == 0.0 ? bphy_ : bphy_ + o * dt * k_bphy[stage - 1];
      variables[kBZoo] =
          o == 0.0 ? bzoo_ : bzoo_ + o * dt * k_bzoo[stage - 1];
      runner_.Derivatives(variables, kNumVariables, &k_bphy[stage],
                          &k_bzoo[stage]);
    }
    bphy_ = ClampState(
        bphy_ + dt / 6.0 *
                    (k_bphy[0] + 2.0 * k_bphy[1] + 2.0 * k_bphy[2] +
                     k_bphy[3]),
        config_);
    bzoo_ = ClampState(
        bzoo_ + dt / 6.0 *
                    (k_bzoo[0] + 2.0 * k_bzoo[1] + 2.0 * k_bzoo[2] +
                     k_bzoo[3]),
        config_);
  }

  ProcessRunner runner_;
  const RiverDataset* dataset_;
  SimulationConfig config_;
  double bphy_;
  double bzoo_;
};

class RiverEvaluation : public gp::SequentialEvaluation {
 public:
  RiverEvaluation(const std::vector<expr::ExprPtr>& equations,
                  const std::vector<double>& parameters, bool compiled,
                  const RiverDataset* dataset, std::size_t t_begin,
                  std::size_t t_end, double initial_bphy,
                  double initial_bzoo, const SimulationConfig& config)
      : parameters_(parameters),
        integrator_(equations, &parameters_, compiled, dataset, initial_bphy,
                    initial_bzoo, config),
        dataset_(dataset),
        t_(t_begin),
        t_end_(t_end) {}

  bool Step() override {
    GMR_CHECK_LT(t_, t_end_);
    const double predicted = integrator_.AdvanceDay(t_);
    const double observed = dataset_->observed_bphy[t_];
    const double error = predicted - observed;
    sse_ += error * error;
    ++steps_;
    ++t_;
    return t_ < t_end_;
  }

  double CurrentFitness() const override {
    if (steps_ == 0) return 0.0;
    return std::sqrt(sse_ / static_cast<double>(steps_));
  }

  std::size_t steps_taken() const override { return steps_; }

 private:
  // Owns a copy so the integrator's pointer stays valid for the lifetime of
  // the evaluation regardless of caller storage.
  std::vector<double> parameters_;
  Integrator integrator_;
  const RiverDataset* dataset_;
  std::size_t t_;
  std::size_t t_end_;
  double sse_ = 0.0;
  std::size_t steps_ = 0;
};

}  // namespace

std::vector<double> SimulateBPhy(const std::vector<expr::ExprPtr>& equations,
                                 const std::vector<double>& parameters,
                                 const RiverDataset& dataset,
                                 std::size_t t_begin, std::size_t t_end,
                                 double initial_bphy, double initial_bzoo,
                                 const SimulationConfig& config,
                                 bool compiled) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  Integrator integrator(equations, &parameters, compiled, &dataset,
                        initial_bphy, initial_bzoo, config);
  std::vector<double> predicted;
  predicted.reserve(t_end - t_begin);
  for (std::size_t t = t_begin; t < t_end; ++t) {
    predicted.push_back(integrator.AdvanceDay(t));
  }
  return predicted;
}

RiverFitness::RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
                           std::size_t t_end, double initial_bphy,
                           double initial_bzoo, SimulationConfig config)
    : dataset_(dataset),
      t_begin_(t_begin),
      t_end_(t_end),
      initial_bphy_(initial_bphy),
      initial_bzoo_(initial_bzoo),
      config_(config) {
  GMR_CHECK(dataset_ != nullptr);
  GMR_CHECK_LT(t_begin_, t_end_);
  GMR_CHECK_LE(t_end_, dataset_->num_days);
}

RiverFitness RiverFitness::ForTraining(const RiverDataset* dataset,
                                       SimulationConfig config) {
  return RiverFitness(dataset, 0, dataset->train_end, dataset->initial_bphy,
                      dataset->initial_bzoo, config);
}

RiverFitness RiverFitness::ForTest(const RiverDataset* dataset,
                                   SimulationConfig config) {
  return RiverFitness(dataset, dataset->train_end, dataset->num_days,
                      dataset->test_initial_bphy, dataset->test_initial_bzoo,
                      config);
}

std::size_t RiverFitness::num_parameters() const { return kNumParameters; }

std::unique_ptr<gp::SequentialEvaluation> RiverFitness::Begin(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters,
    bool use_compiled_backend) const {
  return std::make_unique<RiverEvaluation>(
      equations, parameters, use_compiled_backend, dataset_, t_begin_,
      t_end_, initial_bphy_, initial_bzoo_, config_);
}

}  // namespace gmr::river
