#include "river/simulate.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "expr/eval.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::river {

ProcessRunner::ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                             const std::vector<double>* parameters,
                             bool compiled)
    : ProcessRunner(equations, parameters, compiled, SimulationConfig{}) {}

ProcessRunner::ProcessRunner(const std::vector<expr::ExprPtr>& equations,
                             const std::vector<double>* parameters,
                             bool compiled, const SimulationConfig& config)
    : equations_(equations), parameters_(parameters), compiled_(compiled) {
  GMR_CHECK(!equations_.empty());
  GMR_CHECK(parameters_ != nullptr);
  if (!compiled_) return;
  // The bytecode programs are always built: they are the fallback for any
  // equation whose JIT compile fails.
  programs_.reserve(equations_.size());
  for (const auto& eq : equations_) programs_.push_back(expr::Compile(*eq));
  switch (config.compiled_backend) {
    case CompiledBackend::kBytecodeVm:
      return;
    case CompiledBackend::kBatchVm:
    case CompiledBackend::kBatchJit: {
      // Scalar rollouts run the batched backends at width 1 (SoA == AoS at
      // stride 1), so scalar and batched evaluation share one code path.
      batch_programs_.reserve(equations_.size());
      for (const auto& eq : equations_) {
        batch_programs_.push_back(expr::CompileBatch(*eq));
      }
      if (config.compiled_backend != CompiledBackend::kBatchJit) return;
      expr::BatchJitSession* session =
          config.batch_jit_session != nullptr
              ? config.batch_jit_session
              : expr::BatchJitSession::Default();
      std::vector<const expr::Expr*> roots;
      roots.reserve(equations_.size());
      for (const auto& eq : equations_) roots.push_back(eq.get());
      // Pure cache hits when the evaluator's PrepareBatch already compiled
      // this generation; a miss compiles a (small) TU for this individual.
      batch_fns_ = session->CompileBatch(roots);
      for (const auto fn : batch_fns_) {
        if (fn == nullptr) jit_fallback_ = true;
      }
      return;
    }
    case CompiledBackend::kNativeJit:
      break;
  }
  expr::JitCircuitBreaker* breaker = config.jit_breaker != nullptr
                                         ? config.jit_breaker
                                         : expr::JitCircuitBreaker::Default();
  jit_programs_.resize(equations_.size());
  for (std::size_t i = 0; i < equations_.size(); ++i) {
    if (!breaker->allowed()) {
      jit_fallback_ = true;
      continue;
    }
    std::string error;
    jit_programs_[i] = expr::JitProgram::Compile(*equations_[i], &error);
    if (jit_programs_[i] != nullptr) {
      breaker->RecordSuccess();
    } else {
      breaker->RecordFailure(error);
      jit_fallback_ = true;
    }
  }
}

ProcessRunner::~ProcessRunner() = default;

void ProcessRunner::Derivatives(const double* variables,
                                std::size_t num_variables,
                                double* derivatives) const {
  const std::size_t n = equations_.size();
  if (FaultInjected(FaultPoint::kDerivativeNan)) {
    for (std::size_t e = 0; e < n; ++e) {
      derivatives[e] = std::numeric_limits<double>::quiet_NaN();
    }
    return;
  }
  if (compiled_ && !batch_programs_.empty()) {
    // Batched backends at stride 1: lane 0 of the SoA layout is exactly the
    // scalar layout, so this is bit-identical to the bytecode VM (batch VM)
    // or within the JIT ULP budget (batch JIT symbols).
    expr::BatchEvalContext bctx;
    bctx.variables = variables;
    bctx.num_variables = num_variables;
    bctx.parameters = parameters_->data();
    bctx.num_parameters = parameters_->size();
    bctx.width = 1;
    for (std::size_t e = 0; e < n; ++e) {
      if (!batch_fns_.empty() && batch_fns_[e] != nullptr) {
        batch_fns_[e](variables, parameters_->data(), &derivatives[e], 1);
      } else {
        batch_programs_[e].RunLanes(bctx, &derivatives[e]);
      }
    }
    return;
  }
  expr::EvalContext ctx;
  ctx.variables = variables;
  ctx.num_variables = num_variables;
  ctx.parameters = parameters_->data();
  ctx.num_parameters = parameters_->size();
  if (compiled_) {
    for (std::size_t e = 0; e < n; ++e) {
      derivatives[e] = !jit_programs_.empty() && jit_programs_[e] != nullptr
                           ? jit_programs_[e]->Run(ctx)
                           : programs_[e].Run(ctx);
    }
  } else {
    for (std::size_t e = 0; e < n; ++e) {
      derivatives[e] = expr::EvalExpr(*equations_[e], ctx);
    }
  }
}

void ProcessRunner::Derivatives(const double* variables,
                                std::size_t num_variables, double* d_bphy,
                                double* d_bzoo) const {
  GMR_CHECK_EQ(equations_.size(), 2u);
  double out[2];
  Derivatives(variables, num_variables, out);
  *d_bphy = out[0];
  *d_bzoo = out[1];
}

ConfigError ValidateSimulation(const SimulationConfig& config,
                               const ConstituentSet& constituents,
                               std::size_t num_equations) {
  ConfigError err = constituents.Validate();
  if (!err.ok()) return err;
  if (config.num_species < 1 ||
      static_cast<std::size_t>(config.num_species) != constituents.size()) {
    return ConfigError::Error(
        ConfigErrorCode::kSpeciesCountMismatch,
        "config.num_species=" + std::to_string(config.num_species) +
            " but constituent set '" + constituents.preset() + "' declares " +
            std::to_string(constituents.size()) + " species");
  }
  if (num_equations != constituents.size()) {
    return ConfigError::Error(
        ConfigErrorCode::kSpeciesCountMismatch,
        "phenotype has " + std::to_string(num_equations) +
            " process equations for " + std::to_string(constituents.size()) +
            " constituents");
  }
  return ConfigError::Ok();
}

ConfigError ValidateObservations(const ConstituentSet& constituents,
                                 const RiverDataset& dataset) {
  for (const Constituent& c : constituents.constituents()) {
    if (c.observed_series >= dataset.NumObservedSeries()) {
      return ConfigError::Error(
          ConfigErrorCode::kBadObservedSeries,
          "constituent " + c.name + " observes series " +
              std::to_string(c.observed_series) + " but the dataset has " +
              std::to_string(dataset.NumObservedSeries()));
    }
  }
  return ConfigError::Ok();
}

ConfigError ValidateBatchLanes(
    const std::vector<std::vector<double>>& parameter_lanes) {
  if (parameter_lanes.empty()) return ConfigError::Ok();
  const std::size_t n = parameter_lanes[0].size();
  for (std::size_t l = 1; l < parameter_lanes.size(); ++l) {
    if (parameter_lanes[l].size() != n) {
      return ConfigError::Error(
          ConfigErrorCode::kParameterLaneMismatch,
          "batch lane " + std::to_string(l) + " carries " +
              std::to_string(parameter_lanes[l].size()) +
              " parameters but lane 0 carries " + std::to_string(n));
    }
  }
  return ConfigError::Ok();
}

namespace {

/// Sign-aware clamp: -Inf (and NaN with the sign bit set) pins to the
/// biological floor, +Inf/NaN to the ceiling — a huge negative update means
/// the population crashed, not exploded. Pinning at the ceiling sets
/// *saturated_high (when non-null); the floor is ordinary die-off and is
/// never reported.
double ClampState(double value, const SimulationConfig& config,
                  bool* saturated_high = nullptr) {
  if (!std::isfinite(value)) {
    if (std::signbit(value)) return config.state_min;
    if (saturated_high != nullptr) *saturated_high = true;
    return config.state_max;
  }
  if (value < config.state_min) return config.state_min;
  if (value > config.state_max) {
    if (saturated_high != nullptr) *saturated_high = true;
    return config.state_max;
  }
  return value;
}

/// Shared integration state for Simulate and RiverEvaluation over an
/// arbitrary constituent registry, including the divergence watchdogs.
/// Once a watchdog aborts the rollout, every remaining day predicts
/// config.state_max in O(1) — a deterministic penalty that keeps the
/// full-horizon RMSE comparable across candidates (and bit-identical
/// regardless of thread count) while skipping all further derivative
/// evaluations.
///
/// Variable layout: constituent states at slots [0, N), then the ten
/// Table IV drivers — so at N == 2 every index, every arithmetic operation,
/// and every watchdog decision is exactly the historical two-species
/// integrator (the bit-identity contract of the legacy preset).
class Integrator {
 public:
  Integrator(const std::vector<expr::ExprPtr>& equations,
             const std::vector<double>* parameters, bool compiled,
             const RiverDataset* dataset,
             const std::vector<double>& initial_state,
             const SimulationConfig& config)
      : runner_(equations, parameters, compiled, config),
        dataset_(dataset),
        config_(config),
        num_species_(initial_state.size()),
        num_variables_(initial_state.size() +
                       static_cast<std::size_t>(kNumDriverVariables)),
        vars_(num_variables_, 0.0),
        d_(num_species_, 0.0),
        raw_(num_species_, 0.0),
        k_(4 * num_species_, 0.0) {
    GMR_CHECK_EQ(equations.size(), num_species_);
    state_.reserve(num_species_);
    for (std::size_t s = 0; s < num_species_; ++s) {
      state_.push_back(ClampState(initial_state[s], config));
    }
  }

  /// Integrates one day using the drivers of day `t`; read the end-of-day
  /// states through StateOrPenalty.
  void AdvanceDay(std::size_t t) {
    ++days_simulated_;
    if (aborted_) return;
    double* variables = vars_.data();
    for (int k = 0; k < kNumDriverVariables; ++k) {
      variables[num_species_ + static_cast<std::size_t>(k)] =
          dataset_->drivers[static_cast<std::size_t>(kVlgt + k)][t];
    }
    const double dt = 1.0 / static_cast<double>(config_.substeps);
    for (int step = 0; step < config_.substeps && !aborted_; ++step) {
      if (config_.substep_budget > 0 &&
          substeps_used_ >= config_.substep_budget) {
        Abort(EvalOutcome::kBudgetExceeded);
        break;
      }
      ++substeps_used_;
      if (config_.method == IntegrationMethod::kRk4) {
        Rk4Step(variables, dt);
      } else {
        EulerStep(variables, dt);
      }
    }
  }

  /// End-of-day state of one constituent, or the penalty value after a
  /// watchdog abort.
  double StateOrPenalty(std::size_t species) const {
    return aborted_ ? config_.state_max : state_[species];
  }

  EvalOutcome outcome() const {
    if (aborted_) return abort_outcome_;
    if (runner_.jit_fallback()) return EvalOutcome::kJitCompileFailed;
    return EvalOutcome::kOk;
  }

  bool aborted() const { return aborted_; }

  void FillReport(SimulationReport* report) const {
    report->outcome = outcome();
    report->aborted = aborted_;
    report->jit_fallback = runner_.jit_fallback();
    report->substeps_used = substeps_used_;
    report->days_simulated = days_simulated_;
    report->days_before_abort = aborted_ ? days_before_abort_ : days_simulated_;
    report->nonfinite_derivatives = nonfinite_derivatives_;
    report->clamp_saturations = clamp_saturations_;
  }

 private:
  void Abort(EvalOutcome outcome) {
    aborted_ = true;
    abort_outcome_ = outcome;
    // The current day did not complete; it and all later days predict the
    // penalty value.
    days_before_abort_ = days_simulated_ - 1;
  }

  /// Watchdog bookkeeping for one Derivatives call: ONE increment per call
  /// when any output is non-finite (not one per species — the historical
  /// counting contract).
  void NoteDerivatives(const double* derivatives) {
    bool all_finite = true;
    for (std::size_t s = 0; s < num_species_; ++s) {
      all_finite = all_finite && std::isfinite(derivatives[s]);
    }
    if (all_finite) return;
    ++nonfinite_derivatives_;
    if (config_.max_nonfinite_derivatives > 0 &&
        nonfinite_derivatives_ >=
            static_cast<std::size_t>(config_.max_nonfinite_derivatives)) {
      Abort(EvalOutcome::kNonFiniteDerivative);
    }
  }

  /// Clamps and commits the end-of-substep state, tracking consecutive
  /// ceiling saturations (ORed across species) for the divergence watchdog.
  void CommitState(const double* raw) {
    bool saturated = false;
    for (std::size_t s = 0; s < num_species_; ++s) {
      state_[s] = ClampState(raw[s], config_, &saturated);
    }
    if (!saturated) {
      consecutive_saturated_ = 0;
      return;
    }
    ++clamp_saturations_;
    ++consecutive_saturated_;
    if (config_.max_saturated_substeps > 0 &&
        consecutive_saturated_ >=
            static_cast<std::size_t>(config_.max_saturated_substeps)) {
      Abort(EvalOutcome::kClampSaturated);
    }
  }

  void EulerStep(double* variables, double dt) {
    for (std::size_t s = 0; s < num_species_; ++s) variables[s] = state_[s];
    runner_.Derivatives(variables, num_variables_, d_.data());
    NoteDerivatives(d_.data());
    if (aborted_) return;
    for (std::size_t s = 0; s < num_species_; ++s) {
      raw_[s] = state_[s] + dt * d_[s];
    }
    CommitState(raw_.data());
  }

  void Rk4Step(double* variables, double dt) {
    const double offsets[4] = {0.0, 0.5, 0.5, 1.0};
    for (int stage = 0; stage < 4; ++stage) {
      const double o = offsets[stage];
      double* k = &k_[static_cast<std::size_t>(stage) * num_species_];
      const double* k_prev =
          stage == 0
              ? nullptr
              : &k_[static_cast<std::size_t>(stage - 1) * num_species_];
      for (std::size_t s = 0; s < num_species_; ++s) {
        variables[s] =
            o == 0.0 ? state_[s] : state_[s] + o * dt * k_prev[s];
      }
      runner_.Derivatives(variables, num_variables_, k);
      NoteDerivatives(k);
      if (aborted_) return;
    }
    for (std::size_t s = 0; s < num_species_; ++s) {
      raw_[s] = state_[s] +
                dt / 6.0 *
                    (k_[0 * num_species_ + s] + 2.0 * k_[1 * num_species_ + s] +
                     2.0 * k_[2 * num_species_ + s] + k_[3 * num_species_ + s]);
    }
    CommitState(raw_.data());
  }

  ProcessRunner runner_;
  const RiverDataset* dataset_;
  SimulationConfig config_;
  std::size_t num_species_;
  std::size_t num_variables_;
  std::vector<double> state_;
  std::vector<double> vars_;
  /// Scratch: one derivative per species (Euler), committed raw states, and
  /// the four RK stage slopes [stage * num_species + species].
  std::vector<double> d_;
  std::vector<double> raw_;
  std::vector<double> k_;

  bool aborted_ = false;
  EvalOutcome abort_outcome_ = EvalOutcome::kOk;
  std::size_t substeps_used_ = 0;
  std::size_t days_simulated_ = 0;
  std::size_t days_before_abort_ = 0;
  std::size_t nonfinite_derivatives_ = 0;
  std::size_t clamp_saturations_ = 0;
  std::size_t consecutive_saturated_ = 0;
};

/// Evaluates every derivative equation for a whole lane block per call
/// (one lane per parameter vector, SoA layout of batch_vm.h). Equation
/// `e`'s outputs land at derivatives[e * width + lane].
class BatchRunner {
 public:
  BatchRunner(const std::vector<expr::ExprPtr>& equations,
              const SimulationConfig& config)
      : num_equations_(equations.size()) {
    GMR_CHECK(!equations.empty());
    programs_.reserve(equations.size());
    for (const auto& eq : equations) {
      programs_.push_back(expr::CompileBatch(*eq));
    }
    if (config.compiled_backend != CompiledBackend::kBatchJit) return;
    expr::BatchJitSession* session =
        config.batch_jit_session != nullptr
            ? config.batch_jit_session
            : expr::BatchJitSession::Default();
    std::vector<const expr::Expr*> roots;
    roots.reserve(equations.size());
    for (const auto& eq : equations) roots.push_back(eq.get());
    fns_ = session->CompileBatch(roots);
    for (const auto fn : fns_) {
      if (fn == nullptr) jit_fallback_ = true;
    }
  }

  void Derivatives(const double* variables, std::size_t num_variables,
                   const double* parameters, std::size_t num_parameters,
                   std::size_t width, double* derivatives) const {
    if (FaultInjected(FaultPoint::kDerivativeNan)) {
      for (std::size_t i = 0; i < num_equations_ * width; ++i) {
        derivatives[i] = std::numeric_limits<double>::quiet_NaN();
      }
      return;
    }
    expr::BatchEvalContext ctx;
    ctx.variables = variables;
    ctx.num_variables = num_variables;
    ctx.parameters = parameters;
    ctx.num_parameters = num_parameters;
    ctx.width = width;
    for (std::size_t e = 0; e < num_equations_; ++e) {
      double* out = derivatives + e * width;
      if (!fns_.empty() && fns_[e] != nullptr) {
        fns_[e](variables, parameters, out, static_cast<long>(width));
      } else {
        programs_[e].RunLanes(ctx, out);
      }
    }
  }

  bool jit_fallback() const { return jit_fallback_; }

 private:
  std::size_t num_equations_;
  std::vector<expr::BatchProgram> programs_;
  std::vector<expr::BatchJitSession::BatchFn> fns_;
  bool jit_fallback_ = false;
};

/// Lane-parallel mirror of Integrator: the same watchdog state machine,
/// replicated per lane over SoA buffers whose lane blocks span
/// species x lanes (the MassBalanceStore layout). Every lane's trajectory,
/// counters, and abort behavior are bit-identical to running the scalar
/// Integrator on that lane's parameter vector alone (under an equivalent
/// backend): a lane that trips a watchdog is masked out of commits and
/// bookkeeping — its remaining days predict state_max — while its neighbors
/// keep integrating. Masked lanes still flow through the (branch-free)
/// derivative kernels; their outputs are simply ignored.
class BatchIntegrator {
 public:
  BatchIntegrator(const std::vector<expr::ExprPtr>& equations,
                  const std::vector<std::vector<double>>& parameter_lanes,
                  const RiverDataset* dataset,
                  const std::vector<double>& initial_state, int primary,
                  const SimulationConfig& config)
      : runner_(equations, config),
        dataset_(dataset),
        config_(config),
        width_(parameter_lanes.size()),
        num_species_(initial_state.size()),
        num_variables_(initial_state.size() +
                       static_cast<std::size_t>(kNumDriverVariables)),
        primary_(static_cast<std::size_t>(primary)),
        states_(initial_state.size(), parameter_lanes.size()) {
    GMR_CHECK_GT(width_, 0u);
    GMR_CHECK_EQ(equations.size(), num_species_);
    GMR_CHECK_LT(primary_, num_species_);
    num_parameters_ = parameter_lanes[0].size();
    params_.resize(num_parameters_ * width_);
    for (std::size_t l = 0; l < width_; ++l) {
      GMR_CHECK_EQ(parameter_lanes[l].size(), num_parameters_);
      for (std::size_t s = 0; s < num_parameters_; ++s) {
        params_[s * width_ + l] = parameter_lanes[l][s];
      }
    }
    for (std::size_t s = 0; s < num_species_; ++s) {
      const double v = ClampState(initial_state[s], config_);
      double* row = states_.row(s);
      for (std::size_t l = 0; l < width_; ++l) row[l] = v;
    }
    lanes_.assign(width_, Lane{});
    vars_.resize(num_variables_ * width_);
    k_.resize(4 * num_species_ * width_);
    raw_lane_.resize(num_species_);
    stage_live_.resize(width_);
  }

  /// Integrates one day for every lane; out[lane] is that lane's end-of-day
  /// primary observed constituent (or the penalty value once the lane has
  /// aborted).
  void AdvanceDay(std::size_t t, double* out) {
    bool all_aborted = true;
    for (Lane& lane : lanes_) {
      ++lane.days_simulated;
      all_aborted = all_aborted && lane.aborted;
    }
    if (!all_aborted) {
      for (int k = 0; k < kNumDriverVariables; ++k) {
        const double v =
            dataset_->drivers[static_cast<std::size_t>(kVlgt + k)][t];
        double* row =
            &vars_[(num_species_ + static_cast<std::size_t>(k)) * width_];
        for (std::size_t l = 0; l < width_; ++l) row[l] = v;
      }
      const double dt = 1.0 / static_cast<double>(config_.substeps);
      for (int step = 0; step < config_.substeps; ++step) {
        bool any_active = false;
        for (Lane& lane : lanes_) {
          if (lane.aborted) continue;
          if (config_.substep_budget > 0 &&
              lane.substeps_used >= config_.substep_budget) {
            AbortLane(lane, EvalOutcome::kBudgetExceeded);
            continue;
          }
          ++lane.substeps_used;
          any_active = true;
        }
        if (!any_active) break;
        if (config_.method == IntegrationMethod::kRk4) {
          Rk4Step(dt);
        } else {
          EulerStep(dt);
        }
      }
    }
    for (std::size_t l = 0; l < width_; ++l) {
      out[l] =
          lanes_[l].aborted ? config_.state_max : states_.at(primary_, l);
    }
  }

  /// End-of-day state of one constituent in one lane, or the penalty value
  /// after that lane's watchdog abort.
  double StateOrPenalty(std::size_t species, std::size_t lane) const {
    return lanes_[lane].aborted ? config_.state_max
                                : states_.at(species, lane);
  }

  void FillReport(std::size_t lane_index, SimulationReport* report) const {
    const Lane& lane = lanes_[lane_index];
    report->outcome = lane.aborted ? lane.abort_outcome
                      : runner_.jit_fallback()
                          ? EvalOutcome::kJitCompileFailed
                          : EvalOutcome::kOk;
    report->aborted = lane.aborted;
    report->jit_fallback = runner_.jit_fallback();
    report->substeps_used = lane.substeps_used;
    report->days_simulated = lane.days_simulated;
    report->days_before_abort =
        lane.aborted ? lane.days_before_abort : lane.days_simulated;
    report->nonfinite_derivatives = lane.nonfinite_derivatives;
    report->clamp_saturations = lane.clamp_saturations;
  }

 private:
  /// One lane's copy of the scalar Integrator's watchdog state machine
  /// (the states themselves live in the SoA MassBalanceStore).
  struct Lane {
    bool aborted = false;
    EvalOutcome abort_outcome = EvalOutcome::kOk;
    std::size_t substeps_used = 0;
    std::size_t days_simulated = 0;
    std::size_t days_before_abort = 0;
    std::size_t nonfinite_derivatives = 0;
    std::size_t clamp_saturations = 0;
    std::size_t consecutive_saturated = 0;
  };

  double* StageBlock(int stage) {
    return &k_[static_cast<std::size_t>(stage) * num_species_ * width_];
  }

  void AbortLane(Lane& lane, EvalOutcome outcome) {
    lane.aborted = true;
    lane.abort_outcome = outcome;
    lane.days_before_abort = lane.days_simulated - 1;
  }

  /// One increment per Derivatives call when any species' output for this
  /// lane is non-finite (the scalar counting contract).
  void NoteDerivatives(Lane& lane, std::size_t l, const double* k_block) {
    bool all_finite = true;
    for (std::size_t s = 0; s < num_species_; ++s) {
      all_finite = all_finite && std::isfinite(k_block[s * width_ + l]);
    }
    if (all_finite) return;
    ++lane.nonfinite_derivatives;
    if (config_.max_nonfinite_derivatives > 0 &&
        lane.nonfinite_derivatives >=
            static_cast<std::size_t>(config_.max_nonfinite_derivatives)) {
      AbortLane(lane, EvalOutcome::kNonFiniteDerivative);
    }
  }

  void CommitState(Lane& lane, std::size_t l, const double* raw) {
    bool saturated = false;
    for (std::size_t s = 0; s < num_species_; ++s) {
      states_.at(s, l) = ClampState(raw[s], config_, &saturated);
    }
    if (!saturated) {
      lane.consecutive_saturated = 0;
      return;
    }
    ++lane.clamp_saturations;
    ++lane.consecutive_saturated;
    if (config_.max_saturated_substeps > 0 &&
        lane.consecutive_saturated >=
            static_cast<std::size_t>(config_.max_saturated_substeps)) {
      AbortLane(lane, EvalOutcome::kClampSaturated);
    }
  }

  void EulerStep(double dt) {
    for (std::size_t s = 0; s < num_species_; ++s) {
      double* row = &vars_[s * width_];
      const double* state_row = states_.row(s);
      for (std::size_t l = 0; l < width_; ++l) row[l] = state_row[l];
    }
    double* k = StageBlock(0);
    runner_.Derivatives(vars_.data(), num_variables_, params_.data(),
                        num_parameters_, width_, k);
    for (std::size_t l = 0; l < width_; ++l) {
      Lane& lane = lanes_[l];
      if (lane.aborted) continue;
      NoteDerivatives(lane, l, k);
      if (lane.aborted) continue;
      for (std::size_t s = 0; s < num_species_; ++s) {
        raw_lane_[s] = states_.at(s, l) + dt * k[s * width_ + l];
      }
      CommitState(lane, l, raw_lane_.data());
    }
  }

  void Rk4Step(double dt) {
    const double offsets[4] = {0.0, 0.5, 0.5, 1.0};
    // A lane that aborts at stage k skips the later stages' bookkeeping and
    // the final commit — the batched image of the scalar early return.
    for (std::size_t l = 0; l < width_; ++l) {
      stage_live_[l] = lanes_[l].aborted ? 0 : 1;
    }
    for (int stage = 0; stage < 4; ++stage) {
      const double o = offsets[stage];
      double* k = StageBlock(stage);
      const double* k_prev = stage == 0 ? nullptr : StageBlock(stage - 1);
      for (std::size_t s = 0; s < num_species_; ++s) {
        double* var_row = &vars_[s * width_];
        const double* state_row = states_.row(s);
        const double* k_prev_row =
            k_prev == nullptr ? nullptr : k_prev + s * width_;
        for (std::size_t l = 0; l < width_; ++l) {
          var_row[l] = o == 0.0 ? state_row[l]
                                : state_row[l] + o * dt * k_prev_row[l];
        }
      }
      runner_.Derivatives(vars_.data(), num_variables_, params_.data(),
                          num_parameters_, width_, k);
      for (std::size_t l = 0; l < width_; ++l) {
        if (stage_live_[l] == 0) continue;
        NoteDerivatives(lanes_[l], l, k);
        if (lanes_[l].aborted) stage_live_[l] = 0;
      }
    }
    const double* k0 = StageBlock(0);
    const double* k1 = StageBlock(1);
    const double* k2 = StageBlock(2);
    const double* k3 = StageBlock(3);
    for (std::size_t l = 0; l < width_; ++l) {
      if (stage_live_[l] == 0) continue;
      Lane& lane = lanes_[l];
      for (std::size_t s = 0; s < num_species_; ++s) {
        raw_lane_[s] =
            states_.at(s, l) +
            dt / 6.0 *
                (k0[s * width_ + l] + 2.0 * k1[s * width_ + l] +
                 2.0 * k2[s * width_ + l] + k3[s * width_ + l]);
      }
      CommitState(lane, l, raw_lane_.data());
    }
  }

  BatchRunner runner_;
  const RiverDataset* dataset_;
  SimulationConfig config_;
  std::size_t width_;
  std::size_t num_species_;
  std::size_t num_variables_;
  std::size_t primary_;
  std::size_t num_parameters_ = 0;
  std::vector<Lane> lanes_;
  /// Species x lanes SoA state blocks.
  MassBalanceStore states_;
  /// SoA blocks: index [slot * width_ + lane].
  std::vector<double> params_;
  std::vector<double> vars_;
  /// RK stage slopes, [(stage * num_species + species) * width_ + lane];
  /// Euler uses stage 0 only.
  std::vector<double> k_;
  /// Per-lane raw-state scratch for CommitState.
  std::vector<double> raw_lane_;
  std::vector<char> stage_live_;
};

/// One observation binding of a fitness problem: constituent state index ->
/// dataset observed-series index.
struct ObservationBinding {
  std::size_t species = 0;
  int series = 0;
};

class RiverEvaluation : public gp::SequentialEvaluation {
 public:
  RiverEvaluation(const std::vector<expr::ExprPtr>& equations,
                  const std::vector<double>& parameters, bool compiled,
                  const RiverDataset* dataset, std::size_t t_begin,
                  std::size_t t_end,
                  const std::vector<double>& initial_state,
                  std::vector<ObservationBinding> observations,
                  const SimulationConfig& config)
      : parameters_(parameters),
        integrator_(equations, &parameters_, compiled, dataset,
                    initial_state, config),
        dataset_(dataset),
        observations_(std::move(observations)),
        t_(t_begin),
        t_end_(t_end) {}

  bool Step() override {
    GMR_CHECK_LT(t_, t_end_);
    integrator_.AdvanceDay(t_);
    for (const ObservationBinding& binding : observations_) {
      const double predicted = integrator_.StateOrPenalty(binding.species);
      const double observed = dataset_->ObservedSeries(binding.series)[t_];
      const double error = predicted - observed;
      sse_ += error * error;
    }
    ++steps_;
    ++t_;
    return t_ < t_end_;
  }

  double CurrentFitness() const override {
    if (steps_ == 0) return 0.0;
    // RMSE over days x observed constituents; with a single observed
    // series this is exactly the historical sqrt(sse / steps).
    return std::sqrt(
        sse_ / static_cast<double>(steps_ * observations_.size()));
  }

  std::size_t steps_taken() const override { return steps_; }

  EvalOutcome outcome() const override { return integrator_.outcome(); }

 private:
  // Owns a copy so the integrator's pointer stays valid for the lifetime of
  // the evaluation regardless of caller storage.
  std::vector<double> parameters_;
  Integrator integrator_;
  const RiverDataset* dataset_;
  std::vector<ObservationBinding> observations_;
  std::size_t t_;
  std::size_t t_end_;
  double sse_ = 0.0;
  std::size_t steps_ = 0;
};

std::vector<ObservationBinding> BindObservations(
    const ConstituentSet& constituents) {
  std::vector<ObservationBinding> observations;
  for (std::size_t i = 0; i < constituents.size(); ++i) {
    const Constituent& c = constituents.at(i);
    if (c.observed_series >= 0) {
      observations.push_back(ObservationBinding{i, c.observed_series});
    }
  }
  // A problem with no mapped observation still needs a defined fitness;
  // fall back to the primary state against the primary series.
  if (observations.empty()) {
    observations.push_back(ObservationBinding{
        static_cast<std::size_t>(constituents.PrimaryObserved()), 0});
  }
  return observations;
}

}  // namespace

SimulationTrajectory Simulate(const std::vector<expr::ExprPtr>& equations,
                              const std::vector<double>& parameters,
                              const RiverDataset& dataset,
                              std::size_t t_begin, std::size_t t_end,
                              const ConstituentSet& constituents,
                              const std::vector<double>& initial_state,
                              const SimulationConfig& config, bool compiled,
                              SimulationReport* report) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  const ConfigError err =
      ValidateSimulation(config, constituents, equations.size());
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  GMR_CHECK_EQ(initial_state.size(), constituents.size());
  Integrator integrator(equations, &parameters, compiled, &dataset,
                        initial_state, config);
  SimulationTrajectory trajectory;
  trajectory.series.resize(constituents.size());
  for (auto& series : trajectory.series) series.reserve(t_end - t_begin);
  for (std::size_t t = t_begin; t < t_end; ++t) {
    integrator.AdvanceDay(t);
    for (std::size_t s = 0; s < constituents.size(); ++s) {
      trajectory.series[s].push_back(integrator.StateOrPenalty(s));
    }
  }
  if (report != nullptr) integrator.FillReport(report);
  return trajectory;
}

BatchSimulationResult BatchSimulate(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<std::vector<double>>& parameter_lanes,
    const RiverDataset& dataset, std::size_t t_begin, std::size_t t_end,
    const ConstituentSet& constituents,
    const std::vector<double>& initial_state,
    const SimulationConfig& config) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  ConfigError err = ValidateSimulation(config, constituents, equations.size());
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  err = ValidateBatchLanes(parameter_lanes);
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  GMR_CHECK_EQ(initial_state.size(), constituents.size());
  BatchSimulationResult result;
  result.width = parameter_lanes.size();
  result.num_species = constituents.size();
  result.predicted.resize(result.width);
  result.reports.resize(result.width);
  if (result.width == 0) return result;
  BatchIntegrator integrator(equations, parameter_lanes, &dataset,
                             initial_state, constituents.PrimaryObserved(),
                             config);
  std::vector<double> day(result.width, 0.0);
  for (auto& lane : result.predicted) lane.reserve(t_end - t_begin);
  for (std::size_t t = t_begin; t < t_end; ++t) {
    integrator.AdvanceDay(t, day.data());
    for (std::size_t l = 0; l < result.width; ++l) {
      result.predicted[l].push_back(day[l]);
    }
  }
  for (std::size_t l = 0; l < result.width; ++l) {
    integrator.FillReport(l, &result.reports[l]);
  }
  return result;
}

std::vector<double> SimulateBPhy(const std::vector<expr::ExprPtr>& equations,
                                 const std::vector<double>& parameters,
                                 const RiverDataset& dataset,
                                 std::size_t t_begin, std::size_t t_end,
                                 double initial_bphy, double initial_bzoo,
                                 const SimulationConfig& config,
                                 bool compiled, SimulationReport* report) {
  const ConstituentSet constituents = ConstituentSet::LegacyPlankton(
      initial_bphy, initial_bzoo, initial_bphy, initial_bzoo);
  SimulationConfig cfg = config;
  cfg.num_species = 2;
  SimulationTrajectory trajectory =
      Simulate(equations, parameters, dataset, t_begin, t_end, constituents,
               {initial_bphy, initial_bzoo}, cfg, compiled, report);
  return std::move(trajectory.series[0]);
}

BatchSimulationResult BatchSimulateBPhy(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<std::vector<double>>& parameter_lanes,
    const RiverDataset& dataset, std::size_t t_begin, std::size_t t_end,
    double initial_bphy, double initial_bzoo,
    const SimulationConfig& config) {
  const ConstituentSet constituents = ConstituentSet::LegacyPlankton(
      initial_bphy, initial_bzoo, initial_bphy, initial_bzoo);
  SimulationConfig cfg = config;
  cfg.num_species = 2;
  return BatchSimulate(equations, parameter_lanes, dataset, t_begin, t_end,
                       constituents, {initial_bphy, initial_bzoo}, cfg);
}

RiverFitness::RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
                           std::size_t t_end, ConstituentSet constituents,
                           std::vector<double> initial_state,
                           SimulationConfig config)
    : dataset_(dataset),
      t_begin_(t_begin),
      t_end_(t_end),
      constituents_(std::move(constituents)),
      initial_state_(std::move(initial_state)),
      config_(config) {
  GMR_CHECK(dataset_ != nullptr);
  GMR_CHECK_LT(t_begin_, t_end_);
  GMR_CHECK_LE(t_end_, dataset_->num_days);
  ConfigError err =
      ValidateSimulation(config_, constituents_, constituents_.size());
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  err = ValidateObservations(constituents_, *dataset_);
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  GMR_CHECK_EQ(initial_state_.size(), constituents_.size());
}

RiverFitness::RiverFitness(const RiverDataset* dataset, std::size_t t_begin,
                           std::size_t t_end, double initial_bphy,
                           double initial_bzoo, SimulationConfig config)
    : RiverFitness(dataset, t_begin, t_end,
                   ConstituentSet::LegacyPlankton(initial_bphy, initial_bzoo,
                                                  initial_bphy, initial_bzoo),
                   {initial_bphy, initial_bzoo},
                   [&config] {
                     config.num_species = 2;
                     return config;
                   }()) {}

RiverFitness RiverFitness::ForTraining(const RiverDataset* dataset,
                                       SimulationConfig config) {
  return RiverFitness(dataset, 0, dataset->train_end, dataset->initial_bphy,
                      dataset->initial_bzoo, config);
}

RiverFitness RiverFitness::ForTest(const RiverDataset* dataset,
                                   SimulationConfig config) {
  return RiverFitness(dataset, dataset->train_end, dataset->num_days,
                      dataset->test_initial_bphy, dataset->test_initial_bzoo,
                      config);
}

RiverFitness RiverFitness::ForTrainingWith(const RiverDataset* dataset,
                                           const ConstituentSet& constituents,
                                           SimulationConfig config) {
  config.num_species = static_cast<int>(constituents.size());
  return RiverFitness(dataset, 0, dataset->train_end, constituents,
                      constituents.InitialStates(), config);
}

RiverFitness RiverFitness::ForTestWith(const RiverDataset* dataset,
                                       const ConstituentSet& constituents,
                                       SimulationConfig config) {
  config.num_species = static_cast<int>(constituents.size());
  return RiverFitness(dataset, dataset->train_end, dataset->num_days,
                      constituents, constituents.TestInitialStates(), config);
}

std::size_t RiverFitness::num_parameters() const {
  return constituents_.num_parameters();
}

bool RiverFitness::WantsBatchPreparation() const {
  return config_.compiled_backend == CompiledBackend::kBatchJit;
}

void RiverFitness::PrepareBatch(
    const std::vector<std::vector<expr::ExprPtr>>& phenotypes) const {
  expr::BatchJitSession* session =
      config_.batch_jit_session != nullptr ? config_.batch_jit_session
                                           : expr::BatchJitSession::Default();
  std::vector<const expr::Expr*> roots;
  roots.reserve(constituents_.size() * phenotypes.size());
  for (const auto& equations : phenotypes) {
    for (const auto& eq : equations) roots.push_back(eq.get());
  }
  if (!roots.empty()) session->CompileBatch(roots);
}

std::unique_ptr<gp::SequentialEvaluation> RiverFitness::Begin(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters,
    bool use_compiled_backend) const {
  const ConfigError err =
      ValidateSimulation(config_, constituents_, equations.size());
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  return std::make_unique<RiverEvaluation>(
      equations, parameters, use_compiled_backend, dataset_, t_begin_,
      t_end_, initial_state_, BindObservations(constituents_), config_);
}

}  // namespace gmr::river
