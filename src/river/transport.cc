#include "river/transport.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/fault_injection.h"
#include "expr/batch_vm.h"
#include "river/variables.h"

namespace gmr::river {

const char* AdvectionSchemeName(AdvectionScheme scheme) {
  switch (scheme) {
    case AdvectionScheme::kUpwind:
      return "upwind";
    case AdvectionScheme::kQuick:
      return "quick";
  }
  return "unknown";
}

ConfigError ValidateChannel(const ChannelConfig& channel,
                            const ConstituentSet& constituents) {
  if (channel.num_cells < 1) {
    return ConfigError::Error(ConfigErrorCode::kSpeciesCountMismatch,
                              "channel needs at least one cell");
  }
  if (!(channel.dx > 0.0) || !(channel.velocity >= 0.0) ||
      !(channel.dispersion >= 0.0)) {
    return ConfigError::Error(
        ConfigErrorCode::kBadInitialState,
        "channel geometry must satisfy dx > 0, velocity >= 0, "
        "dispersion >= 0");
  }
  if (!channel.inflow.empty() &&
      channel.inflow.size() != constituents.size()) {
    return ConfigError::Error(
        ConfigErrorCode::kSpeciesCountMismatch,
        "channel inflow declares " + std::to_string(channel.inflow.size()) +
            " species but constituent set '" + constituents.preset() +
            "' declares " + std::to_string(constituents.size()));
  }
  return ConfigError::Ok();
}

namespace {

double ClampCell(double value, const SimulationConfig& config,
                 bool* saturated_high) {
  if (!std::isfinite(value)) {
    if (std::signbit(value)) return config.state_min;
    *saturated_high = true;
    return config.state_max;
  }
  if (value < config.state_min) return config.state_min;
  if (value > config.state_max) {
    *saturated_high = true;
    return config.state_max;
  }
  return value;
}

/// Advective flux through interface `i` (between cell i-1 and cell i;
/// i == 0 is the inlet face, i == n is the outlet face) for a non-negative
/// velocity. `c_in` is the upstream Dirichlet concentration.
double AdvectiveFlux(const double* c, int n, int i, double u, double c_in,
                     AdvectionScheme scheme) {
  if (u == 0.0) return 0.0;
  if (i == 0) return u * c_in;       // Inlet: upstream value is the boundary.
  if (i == n) return u * c[n - 1];   // Outlet: pure upwind outflow.
  if (scheme == AdvectionScheme::kQuick && i >= 2) {
    // Full quadratic upstream stencil {i-2, i-1, i}: 6/8 of the upwind
    // cell, 3/8 of the downwind cell, minus 1/8 of the far-upwind cell.
    return u * (0.75 * c[i - 1] + 0.375 * c[i] - 0.125 * c[i - 2]);
  }
  return u * c[i - 1];  // Upwind (and the QUICK boundary fallback).
}

}  // namespace

ChannelResult SimulateChannel(const std::vector<expr::ExprPtr>& equations,
                              const std::vector<double>& parameters,
                              const RiverDataset& dataset,
                              std::size_t t_begin, std::size_t t_end,
                              const ConstituentSet& constituents,
                              const SimulationConfig& config,
                              const ChannelConfig& channel) {
  GMR_CHECK_LE(t_end, dataset.num_days);
  GMR_CHECK_LE(t_begin, t_end);
  ConfigError err = ValidateSimulation(config, constituents, equations.size());
  GMR_CHECK_MSG(err.ok(), err.message.c_str());
  err = ValidateChannel(channel, constituents);
  GMR_CHECK_MSG(err.ok(), err.message.c_str());

  const std::size_t num_species = constituents.size();
  const std::size_t width = static_cast<std::size_t>(channel.num_cells);
  const int n = channel.num_cells;
  const std::size_t num_variables =
      num_species + static_cast<std::size_t>(kNumDriverVariables);

  ChannelResult result;
  result.final_state = MassBalanceStore(num_species, width);
  result.budgets.assign(num_species, ChannelMassBudget{});
  result.outlet.assign(num_species, {});
  for (auto& series : result.outlet) series.reserve(t_end - t_begin);

  // Every cell starts at the registry's initial state (a spun-up uniform
  // reach); the inflow holds it at the upstream face unless overridden.
  const std::vector<double> initial = constituents.InitialStates();
  std::vector<double> inflow =
      channel.inflow.empty() ? initial : channel.inflow;
  MassBalanceStore& cells = result.final_state;
  cells.Fill(initial);
  for (std::size_t s = 0; s < num_species; ++s) {
    result.budgets[s].initial =
        static_cast<double>(width) * initial[s] * channel.dx;
  }

  // Candidate processes run in every cell at once: cells are the lanes of
  // the batched expression backend, vars_[slot * width + cell].
  std::vector<expr::BatchProgram> programs;
  programs.reserve(equations.size());
  for (const auto& eq : equations) programs.push_back(expr::CompileBatch(*eq));
  std::vector<double> params(parameters.size() * width);
  for (std::size_t s = 0; s < parameters.size(); ++s) {
    for (std::size_t l = 0; l < width; ++l) {
      params[s * width + l] = parameters[s];
    }
  }
  std::vector<double> vars(num_variables * width, 0.0);
  std::vector<double> reaction(num_species * width, 0.0);
  std::vector<double> flux(static_cast<std::size_t>(n) + 1, 0.0);

  SimulationReport& report = result.report;
  bool aborted = false;
  std::size_t consecutive_saturated = 0;
  const double dt = 1.0 / static_cast<double>(config.substeps);
  const double u = channel.velocity;
  const double diff = channel.dispersion;

  auto abort_with = [&](EvalOutcome outcome) {
    aborted = true;
    report.aborted = true;
    report.outcome = outcome;
    report.days_before_abort = report.days_simulated - 1;
  };

  for (std::size_t t = t_begin; t < t_end && !aborted; ++t) {
    ++report.days_simulated;
    for (int k = 0; k < kNumDriverVariables; ++k) {
      const double v = dataset.drivers[static_cast<std::size_t>(kVlgt + k)][t];
      double* row = &vars[(num_species + static_cast<std::size_t>(k)) * width];
      for (std::size_t l = 0; l < width; ++l) row[l] = v;
    }
    for (int step = 0; step < config.substeps && !aborted; ++step) {
      if (config.substep_budget > 0 &&
          report.substeps_used >= config.substep_budget) {
        abort_with(EvalOutcome::kBudgetExceeded);
        break;
      }
      ++report.substeps_used;
      // Reaction: evaluate every process in every cell.
      for (std::size_t s = 0; s < num_species; ++s) {
        double* row = &vars[s * width];
        const double* state = cells.row(s);
        for (std::size_t l = 0; l < width; ++l) row[l] = state[l];
      }
      if (FaultInjected(FaultPoint::kDerivativeNan)) {
        for (double& r : reaction) r = std::numeric_limits<double>::quiet_NaN();
      } else {
        expr::BatchEvalContext ctx;
        ctx.variables = vars.data();
        ctx.num_variables = num_variables;
        ctx.parameters = params.data();
        ctx.num_parameters = parameters.size();
        ctx.width = width;
        for (std::size_t e = 0; e < programs.size(); ++e) {
          programs[e].RunLanes(ctx, &reaction[e * width]);
        }
      }
      bool all_finite = true;
      for (const double r : reaction) {
        all_finite = all_finite && std::isfinite(r);
      }
      if (!all_finite) {
        ++report.nonfinite_derivatives;
        if (config.max_nonfinite_derivatives > 0 &&
            report.nonfinite_derivatives >=
                static_cast<std::size_t>(config.max_nonfinite_derivatives)) {
          abort_with(EvalOutcome::kNonFiniteDerivative);
          break;
        }
        continue;  // Skip the commit, like the station integrator.
      }
      bool saturated = false;
      for (std::size_t s = 0; s < num_species; ++s) {
        double* c = cells.row(s);
        // Total flux through the n+1 interfaces, from pre-update states:
        // advection everywhere plus Fickian exchange across the n-1
        // interior interfaces (the boundaries are closed to diffusion, so
        // the budget only sees advective boundary mass). Strict flux form
        // makes the interior terms antisymmetric and the conservation
        // identity telescope exactly for every scheme.
        for (int i = 0; i <= n; ++i) {
          double f = AdvectiveFlux(c, n, i, u, inflow[s], channel.scheme);
          if (i > 0 && i < n) f -= diff * (c[i] - c[i - 1]) / channel.dx;
          flux[static_cast<std::size_t>(i)] = f;
        }
        // Budgets accumulate per committed substep, so state and accounting
        // stay in lockstep and the conservation identity holds exactly even
        // when a watchdog aborts the reach mid-day.
        result.budgets[s].inflow += dt * flux[0];
        result.budgets[s].outflow += dt * flux[static_cast<std::size_t>(n)];
        const double* k_row = &reaction[s * width];
        for (int i = 0; i < n; ++i) {
          const double dc = (flux[static_cast<std::size_t>(i)] -
                             flux[static_cast<std::size_t>(i) + 1]) /
                                channel.dx +
                            k_row[i];
          result.budgets[s].reaction += dt * k_row[i] * channel.dx;
          const double raw = c[i] + dt * dc;
          const double clamped = ClampCell(raw, config, &saturated);
          result.budgets[s].clamp_correction += (clamped - raw) * channel.dx;
          c[i] = clamped;
        }
      }
      if (saturated) {
        ++report.clamp_saturations;
        ++consecutive_saturated;
        if (config.max_saturated_substeps > 0 &&
            consecutive_saturated >=
                static_cast<std::size_t>(config.max_saturated_substeps)) {
          abort_with(EvalOutcome::kClampSaturated);
        }
      } else {
        consecutive_saturated = 0;
      }
    }
    if (aborted) break;
    for (std::size_t s = 0; s < num_species; ++s) {
      result.outlet[s].push_back(cells.at(s, width - 1));
    }
  }
  if (!aborted) report.days_before_abort = report.days_simulated;
  // Remaining outlet samples after an abort predict the penalty value, the
  // same containment contract as the station rollouts.
  for (std::size_t s = 0; s < num_species; ++s) {
    while (result.outlet[s].size() < t_end - t_begin) {
      result.outlet[s].push_back(config.state_max);
    }
    double total = 0.0;
    const double* c = cells.row(s);
    for (std::size_t l = 0; l < width; ++l) total += c[l] * channel.dx;
    result.budgets[s].final_mass = total;
  }
  return result;
}

}  // namespace gmr::river
