#ifndef GMR_RIVER_CHEMISTRY_H_
#define GMR_RIVER_CHEMISTRY_H_

#include <vector>

#include "expr/ast.h"
#include "river/constituents.h"

namespace gmr::river {

/// Builders for the expert transport process over the
/// ConstituentSet::Transport registries: per-species linear-reservoir mass
/// balances (the torrentpy INCA-style layout) with nitrification and
/// sorption/desorption coupling. Each equation `i` is the source/sink
/// process of constituent `i`, written over the set's variable layout
/// (states at [0, n), Table IV drivers after) and the
/// TransportParameterSlot table:
///
///   dM_NO3/dt = S_NO3 V_n + K_NIT M_NH4          - K_NO3 M_NO3
///   dM_NH4/dt = S_NH4 V_n                        - (K_NIT + K_NH4) M_NH4
///   dM_DPH/dt = S_DPH V_p + K_DES M_PPH          - (K_DPH + K_SOR) M_DPH
///   dM_PPH/dt = S_PPH V_p + K_SOR M_DPH          - (K_PPH + K_DES) M_PPH
///   dM_SED/dt = S_SED V_cd                       - K_SED M_SED
///
/// (conductivity standing in for the dissolved/suspended load source).
/// Sets with fewer species drop the coupling terms whose partner state is
/// absent. These expressions are reused verbatim by the transport seed
/// alpha tree, so expert knowledge enters the grammar exactly as the
/// plankton MANUAL process does.
std::vector<expr::ExprPtr> TransportProcess(const ConstituentSet& constituents);

/// The gain (sources + coupling inflows) and first-order loss factors of
/// one species' equation, split so the seed alpha tree can attach its
/// multiplicative extension point to the loss term alone:
/// equation = gain - loss.
expr::ExprPtr TransportGain(const ConstituentSet& constituents, int species);
expr::ExprPtr TransportLoss(const ConstituentSet& constituents, int species);

/// The "true" transport constants of the synthetic scenario generator
/// (deliberately off the prior means, so calibration has work to do).
std::vector<double> TrueTransportParameters();

}  // namespace gmr::river

#endif  // GMR_RIVER_CHEMISTRY_H_
