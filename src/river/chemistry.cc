#include "river/chemistry.h"

#include <string>

#include "common/check.h"
#include "river/variables.h"

namespace gmr::river {

namespace e = gmr::expr;

namespace {

/// Species slots of the transport registries (fixed truncation order of
/// ConstituentSet::Transport).
enum TransportSpecies : int {
  kNo3 = 0,
  kNh4 = 1,
  kDph = 2,
  kPph = 3,
  kSed = 4,
};

e::ExprPtr State(const ConstituentSet& constituents, int species) {
  return e::Variable(species, constituents.at(species).name);
}

e::ExprPtr Driver(const ConstituentSet& constituents, int legacy_slot) {
  const int slot = constituents.driver_slot(legacy_slot - kVlgt);
  return e::Variable(slot, VariableName(legacy_slot));
}

e::ExprPtr Rate(int parameter_slot) {
  return e::Parameter(parameter_slot, TransportParameterName(parameter_slot));
}

}  // namespace

e::ExprPtr TransportGain(const ConstituentSet& constituents, int species) {
  const int n = static_cast<int>(constituents.size());
  GMR_CHECK_LT(species, n);
  switch (species) {
    case kNo3: {
      e::ExprPtr gain = e::Mul(Rate(kSNo3), Driver(constituents, kVn));
      if (n > kNh4) {
        gain = e::Add(gain, e::Mul(Rate(kKNit), State(constituents, kNh4)));
      }
      return gain;
    }
    case kNh4:
      return e::Mul(Rate(kSNh4), Driver(constituents, kVn));
    case kDph: {
      e::ExprPtr gain = e::Mul(Rate(kSDph), Driver(constituents, kVp));
      if (n > kPph) {
        gain = e::Add(gain, e::Mul(Rate(kKDes), State(constituents, kPph)));
      }
      return gain;
    }
    case kPph:
      return e::Add(e::Mul(Rate(kSPph), Driver(constituents, kVp)),
                    e::Mul(Rate(kKSor), State(constituents, kDph)));
    case kSed:
      return e::Mul(Rate(kSSed), Driver(constituents, kVcd));
    default:
      break;
  }
  GMR_CHECK_MSG(false, "transport registries hold at most five species");
  return nullptr;
}

e::ExprPtr TransportLoss(const ConstituentSet& constituents, int species) {
  const int n = static_cast<int>(constituents.size());
  GMR_CHECK_LT(species, n);
  switch (species) {
    case kNo3:
      return e::Mul(Rate(kKNo3), State(constituents, kNo3));
    case kNh4:
      return e::Mul(e::Add(Rate(kKNit), Rate(kKNh4)),
                    State(constituents, kNh4));
    case kDph: {
      e::ExprPtr rate = Rate(kKDph);
      if (n > kPph) rate = e::Add(rate, Rate(kKSor));
      return e::Mul(rate, State(constituents, kDph));
    }
    case kPph:
      return e::Mul(e::Add(Rate(kKPph), Rate(kKDes)),
                    State(constituents, kPph));
    case kSed:
      return e::Mul(Rate(kKSed), State(constituents, kSed));
    default:
      break;
  }
  GMR_CHECK_MSG(false, "transport registries hold at most five species");
  return nullptr;
}

std::vector<e::ExprPtr> TransportProcess(const ConstituentSet& constituents) {
  std::vector<e::ExprPtr> equations;
  equations.reserve(constituents.size());
  for (int s = 0; s < static_cast<int>(constituents.size()); ++s) {
    equations.push_back(e::Sub(TransportGain(constituents, s),
                               TransportLoss(constituents, s)));
  }
  return equations;
}

std::vector<double> TrueTransportParameters() {
  std::vector<double> p(static_cast<std::size_t>(kNumTransportParameters));
  // Rates sit off the expert means of TransportParameterPriors() so
  // calibration has real work (the plankton generator's C_UA/C_SH idiom);
  // sources are tuned so the hidden truth orbits the registry's initial
  // states under Nakdong-like drivers.
  p[kKNit] = 0.08;
  p[kKNo3] = 0.06;
  p[kKNh4] = 0.05;
  p[kKDph] = 0.04;
  p[kKPph] = 0.07;
  p[kKSed] = 0.10;
  p[kKDes] = 0.02;
  p[kKSor] = 0.03;
  p[kSNo3] = 0.04;
  p[kSNh4] = 0.024;
  p[kSDph] = 0.035;
  p[kSPph] = 0.09;
  p[kSSed] = 0.008;
  return p;
}

}  // namespace gmr::river
