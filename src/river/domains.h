#ifndef GMR_RIVER_DOMAINS_H_
#define GMR_RIVER_DOMAINS_H_

#include "analysis/static_gate.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"

namespace gmr::river {

/// Bounded per-slot value ranges for *offline linting* of river models:
/// states span the simulation clamp [state_min, state_max] and each
/// observed driver spans a generous physical range (irradiance, nutrient
/// concentrations, temperature, ...). Parameters span the Table III prior
/// boxes. Tight enough to prove the expert model clean, wide enough that a
/// clean lint means something.
analysis::DomainEnv LintDomains(const SimulationConfig& config = {});

/// Same, for an arbitrary constituent registry: every state slot spans the
/// clamp, the ten drivers keep their physical ranges at the set's layout,
/// and parameters span the set's prior boxes. Equals LintDomains() under
/// the legacy plankton preset.
analysis::DomainEnv LintDomainsFor(const ConstituentSet& constituents,
                                   const SimulationConfig& config = {});

/// Sound over-approximation of everything the *integrator* can feed an
/// equation, for the pre-evaluation reject gate: state slots are
/// [state_min, +inf) because RK4 stage evaluations are unclamped and
/// intermediate states can genuinely overflow; driver slots take the hull
/// of the dataset series when `dataset` is non-null (Interval::All
/// otherwise); parameters span the prior boxes.
analysis::DomainEnv GateDomains(const SimulationConfig& config,
                                const RiverDataset* dataset);

/// Ready-to-use gate config for FitnessEvaluator: GateDomains plus a
/// saturation rate of (state_max - state_min) * substeps state-units/day —
/// a derivative provably at or above it pins a state at state_max on every
/// substep for both Euler and RK4, guaranteeing the kClampSaturated
/// watchdog, so rejecting without integrating changes no final fitness.
analysis::StaticGateConfig MakeStaticGate(const SimulationConfig& config,
                                          const RiverDataset* dataset);

}  // namespace gmr::river

#endif  // GMR_RIVER_DOMAINS_H_
