#include "river/network.h"

#include <algorithm>

#include "common/check.h"

namespace gmr::river {

int RiverNetwork::AddStation(const std::string& name, bool is_virtual) {
  stations_.push_back(Station{name, is_virtual});
  return static_cast<int>(stations_.size()) - 1;
}

void RiverNetwork::AddReach(int from, int to, int travel_days,
                            double retention) {
  GMR_CHECK_GE(from, 0);
  GMR_CHECK_LT(static_cast<std::size_t>(from), stations_.size());
  GMR_CHECK_GE(to, 0);
  GMR_CHECK_LT(static_cast<std::size_t>(to), stations_.size());
  GMR_CHECK_NE(from, to);
  GMR_CHECK_GE(travel_days, 0);
  GMR_CHECK_GE(retention, 0.0);
  GMR_CHECK_LT(retention, 1.0);
  reaches_.push_back(Reach{from, to, travel_days, retention});
}

const Station& RiverNetwork::station(int id) const {
  GMR_CHECK_GE(id, 0);
  GMR_CHECK_LT(static_cast<std::size_t>(id), stations_.size());
  return stations_[static_cast<std::size_t>(id)];
}

std::vector<int> RiverNetwork::InboundReaches(int station_id) const {
  std::vector<int> inbound;
  for (std::size_t i = 0; i < reaches_.size(); ++i) {
    if (reaches_[i].to == station_id) inbound.push_back(static_cast<int>(i));
  }
  return inbound;
}

int RiverNetwork::Sink() const {
  int sink = -1;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    bool has_outbound = false;
    for (const Reach& reach : reaches_) {
      if (reach.from == static_cast<int>(s)) {
        has_outbound = true;
        break;
      }
    }
    if (!has_outbound) {
      GMR_CHECK_MSG(sink == -1, "network has multiple sinks");
      sink = static_cast<int>(s);
    }
  }
  GMR_CHECK_MSG(sink != -1, "network has no sink");
  return sink;
}

std::vector<int> RiverNetwork::TopologicalOrder() const {
  std::vector<int> in_degree(stations_.size(), 0);
  for (const Reach& reach : reaches_) ++in_degree[static_cast<size_t>(reach.to)];
  std::vector<int> frontier;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (in_degree[s] == 0) frontier.push_back(static_cast<int>(s));
  }
  std::vector<int> order;
  while (!frontier.empty()) {
    const int station = frontier.back();
    frontier.pop_back();
    order.push_back(station);
    for (const Reach& reach : reaches_) {
      if (reach.from != station) continue;
      if (--in_degree[static_cast<std::size_t>(reach.to)] == 0) {
        frontier.push_back(reach.to);
      }
    }
  }
  GMR_CHECK_MSG(order.size() == stations_.size(), "network has a cycle");
  return order;
}

int RiverNetwork::FindStation(const std::string& name) const {
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (stations_[s].name == name) return static_cast<int>(s);
  }
  return -1;
}

RiverNetwork RiverNetwork::Nakdong() {
  RiverNetwork network;
  const int s1 = network.AddStation("S1");
  const int s2 = network.AddStation("S2");
  const int s3 = network.AddStation("S3");
  const int s4 = network.AddStation("S4");
  const int s5 = network.AddStation("S5");
  const int s6 = network.AddStation("S6");
  const int t1 = network.AddStation("T1");
  const int t2 = network.AddStation("T2");
  const int t3 = network.AddStation("T3");
  const int vs_s6_t3 = network.AddStation("VS(S6*T3)", /*is_virtual=*/true);
  const int vs_s4_t2 = network.AddStation("VS(S4*T2)", /*is_virtual=*/true);
  const int vs_s3_t1 = network.AddStation("VS(S3*T1)", /*is_virtual=*/true);

  // Travel times: inter-station distances of Figure 8 at ~30 km/day,
  // rounded up to whole days; tributary joints are short (<= 7.1 km).
  network.AddReach(s6, vs_s6_t3, /*travel_days=*/1, /*retention=*/0.3);
  network.AddReach(t3, vs_s6_t3, 1, 0.3);
  network.AddReach(vs_s6_t3, s5, 1, 0.2);    // remainder of S6-S5: 27.5 km
  network.AddReach(s5, s4, 2, 0.3);          // S5-S4: 42 km
  network.AddReach(s4, vs_s4_t2, 1, 0.3);
  network.AddReach(t2, vs_s4_t2, 1, 0.3);    // T2 joint: 7.1 km
  network.AddReach(vs_s4_t2, s3, 1, 0.2);    // remainder of S4-S3: 28.5 km
  network.AddReach(s3, vs_s3_t1, 1, 0.3);
  network.AddReach(t1, vs_s3_t1, 1, 0.3);    // T1 joint: 5.5 km
  network.AddReach(vs_s3_t1, s2, 1, 0.2);    // remainder of S3-S2: 22.3 km
  network.AddReach(s2, s1, 1, 0.3);          // S2-S1: 32.8 km
  return network;
}

HydrologicalProcess::HydrologicalProcess(const RiverNetwork* network)
    : network_(network) {
  GMR_CHECK(network_ != nullptr);
}

HydrologicalProcess::Output HydrologicalProcess::Route(
    const Input& input) const {
  const std::size_t num_stations = network_->num_stations();
  GMR_CHECK_EQ(input.rainfall.size(), num_stations);
  GMR_CHECK_EQ(input.attributes.size(), num_stations);
  GMR_CHECK_EQ(input.base_flow.size(), num_stations);

  // All non-empty series must agree on length; attribute counts must agree
  // across stations that have local measurements.
  std::size_t num_days = 0;
  std::size_t num_attributes = 0;
  for (std::size_t s = 0; s < num_stations; ++s) {
    if (!input.rainfall[s].empty()) num_days = input.rainfall[s].size();
    if (!input.attributes[s].empty()) {
      num_attributes = input.attributes[s].size();
    }
  }
  GMR_CHECK_GT(num_days, 0u);
  GMR_CHECK_GT(num_attributes, 0u);

  // Routing state lives in flat SoA buffers — flow[s * num_days + t] and
  // attrs[(s * num_attributes + k) * num_days + t] — so the hot per-day
  // loops index contiguous memory instead of chasing nested vectors; the
  // nested Output shape is materialized once at the end. Arithmetic order
  // is unchanged, so results are bit-identical to the nested version.
  std::vector<double> flow_soa(num_stations * num_days, 0.0);
  std::vector<double> attr_soa(num_stations * num_attributes * num_days, 0.0);
  const auto flow_row = [&](std::size_t s) -> double* {
    return &flow_soa[s * num_days];
  };
  const auto attr_row = [&](std::size_t s, std::size_t k) -> double* {
    return &attr_soa[(s * num_attributes + k) * num_days];
  };

  const std::vector<int> order = network_->TopologicalOrder();

  // Per-station retention: r_B is taken from the station's inbound... the
  // retained fraction belongs to the downstream station of each reach; for
  // stations with no inbound reach use a default.
  std::vector<double> retention(num_stations, 0.3);
  for (const Reach& reach : network_->reaches()) {
    retention[static_cast<std::size_t>(reach.to)] = reach.retention;
  }

  // Scratch for the mass-weighted attribute accumulation, hoisted out of
  // the day loop (the nested version allocated it once per day).
  std::vector<double> mass(num_attributes, 0.0);

  for (int station : order) {
    const auto s = static_cast<std::size_t>(station);
    const std::vector<int> inbound = network_->InboundReaches(station);
    const bool has_local = !input.attributes[s].empty();
    const double r_b = retention[s];
    const double* rain_series =
        input.rainfall[s].empty() ? nullptr : input.rainfall[s].data();
    double* flow_s = flow_row(s);

    for (std::size_t t = 0; t < num_days; ++t) {
      // R_B of Eq. (9): local inflow = rainfall runoff plus a steady base
      // inflow (groundwater and unmodeled headwater), both carrying the
      // local catchment's attribute signature.
      const double rain = rain_series == nullptr ? 0.0 : rain_series[t];
      const double local_inflow = rain + input.base_flow[s];
      double flow = local_inflow;
      if (t > 0) flow += r_b * flow_s[t - 1];

      // Mass-weighted attribute accumulation.
      if (t > 0) {
        for (std::size_t k = 0; k < num_attributes; ++k) {
          mass[k] = r_b * flow_s[t - 1] * attr_row(s, k)[t - 1];
        }
      } else {
        std::fill(mass.begin(), mass.end(), 0.0);
      }
      if (has_local && local_inflow > 0.0) {
        for (std::size_t k = 0; k < num_attributes; ++k) {
          mass[k] += local_inflow * input.attributes[s][k][t];
        }
      }
      for (int reach_id : inbound) {
        const Reach& reach =
            network_->reaches()[static_cast<std::size_t>(reach_id)];
        const auto a = static_cast<std::size_t>(reach.from);
        const std::size_t lag = static_cast<std::size_t>(reach.travel_days);
        const std::size_t tau = t >= lag ? t - lag : 0;
        const double r_a = retention[a];
        const double inflow = (1.0 - r_a) * flow_row(a)[tau];
        flow += inflow;
        for (std::size_t k = 0; k < num_attributes; ++k) {
          mass[k] += inflow * attr_row(a, k)[tau];
        }
      }

      flow_s[t] = flow;
      if (flow > 1e-12) {
        for (std::size_t k = 0; k < num_attributes; ++k) {
          attr_row(s, k)[t] = mass[k] / flow;
        }
      } else if (has_local) {
        for (std::size_t k = 0; k < num_attributes; ++k) {
          attr_row(s, k)[t] = input.attributes[s][k][t];
        }
      }
    }
  }

  Output out;
  out.flow.resize(num_stations);
  out.attributes.resize(num_stations);
  for (std::size_t s = 0; s < num_stations; ++s) {
    const double* flow_s = flow_row(s);
    out.flow[s].assign(flow_s, flow_s + num_days);
    out.attributes[s].resize(num_attributes);
    for (std::size_t k = 0; k < num_attributes; ++k) {
      const double* attr_sk = attr_row(s, k);
      out.attributes[s][k].assign(attr_sk, attr_sk + num_days);
    }
  }
  return out;
}

}  // namespace gmr::river
