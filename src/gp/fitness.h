#ifndef GMR_GP_FITNESS_H_
#define GMR_GP_FITNESS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "analysis/static_gate.h"
#include "common/status.h"
#include "expr/ast.h"

namespace gmr::gp {

using ::gmr::EvalOutcome;

/// One in-progress evaluation of a candidate model over a sequence of
/// fitness cases (time steps of the simulated dynamic system). The running
/// fitness must be comparable to the final fitness at every prefix (e.g.
/// running RMSE), which is what makes the paper's evaluation
/// short-circuiting (Algorithm 1) sound.
class SequentialEvaluation {
 public:
  virtual ~SequentialEvaluation() = default;

  /// Consumes the next fitness case. Must only be called while
  /// steps_taken() < num_cases(). Returns true when more cases remain
  /// after this one.
  virtual bool Step() = 0;

  /// Running fitness over the cases consumed so far (lower = better).
  virtual double CurrentFitness() const = 0;

  /// Number of cases consumed so far.
  virtual std::size_t steps_taken() const = 0;

  /// Why the running fitness is what it is (containment telemetry).
  /// Implementations that host divergence watchdogs or backend fallbacks
  /// override this; the default reports a normal evaluation.
  virtual EvalOutcome outcome() const { return EvalOutcome::kOk; }
};

/// A fitness problem whose evaluation proceeds case by case. Implementations
/// must honor `use_compiled_backend`: when true, candidate equations are
/// compiled once per evaluation (runtime compilation); when false they are
/// re-walked as trees at every time step (the paper's baseline).
class SequentialFitness {
 public:
  virtual ~SequentialFitness() = default;

  /// Total number of fitness cases.
  virtual std::size_t num_cases() const = 0;

  /// Dimension of the constant-parameter vector the problem expects.
  virtual std::size_t num_parameters() const = 0;

  /// Number of constituent states the problem's phenotypes integrate (the
  /// species count of a river problem); 0 when the problem has no notion of
  /// state. Observability plumbing: threaded into eval_batch trace events
  /// and checkpoint fingerprints so multi-constituent runs are
  /// distinguishable from the legacy two-species problem.
  virtual std::size_t num_states() const { return 0; }

  /// Starts an evaluation of the given phenotype.
  virtual std::unique_ptr<SequentialEvaluation> Begin(
      const std::vector<expr::ExprPtr>& equations,
      const std::vector<double>& parameters,
      bool use_compiled_backend) const = 0;

  /// True when the problem wants one generation-level compile pass before a
  /// batch of evaluations fans out (e.g. the batched JIT backend, which
  /// compiles every unique equation of the batch into a single translation
  /// unit). Consulted by FitnessEvaluator::EvaluateBatch; the serial
  /// Evaluate path never calls PrepareBatch, so implementations must stay
  /// correct (if slower) without it.
  virtual bool WantsBatchPreparation() const { return false; }

  /// Called once per evaluation batch, on the coordinator, before worker
  /// fan-out, with every phenotype of the batch. Must be safe to skip and
  /// must not change any evaluation result — it is a warm-up hook, not a
  /// correctness hook.
  virtual void PrepareBatch(
      const std::vector<std::vector<expr::ExprPtr>>& phenotypes) const {
    (void)phenotypes;
  }
};

/// Optional gradient side-channel of a fitness problem: exact derivatives
/// of the problem's fitness with respect to the constant-parameter vector
/// for a fixed phenotype. Implemented by the reverse-mode discrete adjoint
/// (grad::RiverGradientFitness); declared here so the gp layer can consume
/// gradients — elite constant polish in TAG3P — without depending on the
/// grad library.
class GradientFitness {
 public:
  /// Gradient-evaluation telemetry folded into EvalStats.
  struct GradientStats {
    std::size_t tape_nodes = 0;
    std::size_t pruned_nodes = 0;
  };

  virtual ~GradientFitness() = default;

  /// Evaluates fitness and its exact parameter gradient at `parameters`.
  /// Returns false when no trustworthy gradient exists (tape construction
  /// failed, adjoints came back non-finite); `*value` still carries the
  /// fitness. Aborted rollouts are NOT failures: the deterministic penalty
  /// tail contributes exactly zero gradient, never NaN. Must be safe to
  /// call concurrently.
  virtual bool EvaluateGradient(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                double* value, std::vector<double>* gradient,
                                GradientStats* stats) const = 0;
};

/// Extrapolates an intermediate fitness observed after `steps` of
/// `total_steps` cases to an estimate of the final fitness (the EXTRAPOLATE
/// hook of Algorithm 1).
using ExtrapolateFn = double (*)(double fitness, std::size_t steps,
                                 std::size_t total_steps);

/// Identity extrapolation: a running RMSE is already on the same scale as
/// the final RMSE. Note that under identity extrapolation, thresholds below
/// 1.0 behave exactly like 1.0 (Algorithm 1's inner `est > bestPrevFull`
/// guard dominates), so the Figure 11 sweep needs a forward-projecting
/// extrapolation.
double ExtrapolateIdentity(double fitness, std::size_t steps,
                           std::size_t total_steps);

/// Divergence-aware extrapolation (the default): candidates whose running
/// RMSE already exceeds the incumbent typically keep deteriorating in
/// dynamic-systems simulation (clamped divergence, drift), so the running
/// RMSE is projected forward by a sublinear growth factor
/// (total/steps)^0.25. This makes eager thresholds (< 1) genuinely eager —
/// they cut earlier at the risk of misjudging a candidate — and
/// conservative thresholds (> 1) genuinely conservative, reproducing the
/// Figure 11 trade-off.
double ExtrapolateGrowth(double fitness, std::size_t steps,
                         std::size_t total_steps);

/// How the short-circuiting frontier (bestPrevFull) behaves under parallel
/// evaluation. Irrelevant when num_threads <= 1 and ES is off.
enum class FrontierMode {
  /// The frontier is a shared atomic updated the moment any thread finishes
  /// a full evaluation. Maximally aggressive short-circuiting — later
  /// evaluations in the same batch cut against the freshest bound — but
  /// results depend on thread interleaving, so runs are NOT reproducible
  /// across thread counts (or even across same-config runs).
  kShared,
  /// The frontier is snapshotted at the start of each evaluation batch;
  /// every evaluation in the batch short-circuits against the snapshot, and
  /// the batch's full-evaluation minima fold into the frontier only at the
  /// barrier. Fitness values become a pure function of (phenotype,
  /// parameters, snapshot), so results are bit-identical for any thread
  /// count. Slightly weaker cutting within a batch; the default.
  kFrozenFrontier,
};

/// Configuration of the three orthogonal speedup techniques
/// (paper Section III-D) plus the short-circuiting knobs and the parallel
/// evaluation (PE) extension — a fourth, hardware axis that composes
/// multiplicatively with TC/ES/RC (see DESIGN.md §speedups).
struct SpeedupConfig {
  /// TC: memoize fitness keyed on (simplified equations, parameters).
  bool tree_caching = false;
  /// ES: Algorithm 1 evaluation short-circuiting.
  bool short_circuiting = false;
  /// ES threshold: <1 is more eager, >1 more conservative (Figure 11).
  double es_threshold = 1.0;
  ExtrapolateFn extrapolate = &ExtrapolateGrowth;
  /// RC: evaluate compiled programs instead of walking trees.
  bool runtime_compilation = false;
  /// Simplify equations before hashing/evaluating (improves cache hit rate;
  /// an ablation knob — the paper folds this into TC).
  bool simplify_before_eval = true;
  /// PE: evaluation threads per population batch (<= 1 disables).
  int num_threads = 1;
  /// PE: frontier discipline under parallel evaluation.
  FrontierMode frontier_mode = FrontierMode::kFrozenFrontier;
  /// PE: lock stripes of the shared tree cache.
  int cache_stripes = 16;
  /// Static reject gate: when enabled, provably-doomed phenotypes are
  /// penalized with EvalOutcome::kStaticReject before any integration (see
  /// analysis/static_gate.h and river/domains.h MakeStaticGate). Rejects
  /// never enter the tree cache or the ES frontier, so gate-on is
  /// bit-identical to gate-off on populations the gate passes.
  analysis::StaticGateConfig static_gate;
};

}  // namespace gmr::gp

#endif  // GMR_GP_FITNESS_H_
