#ifndef GMR_GP_TAG3P_H_
#define GMR_GP_TAG3P_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/evaluator.h"
#include "gp/fitness.h"
#include "gp/individual.h"
#include "gp/operators.h"
#include "gp/parameter_prior.h"
#include "obs/run_context.h"
#include "tag/grammar.h"

namespace gmr::ckpt {
struct Snapshot;
}  // namespace gmr::ckpt

namespace gmr::gp {

/// Configuration of the TAG3P search (paper Appendix B defaults).
struct Tag3pConfig {
  int population_size = 200;
  int max_generations = 100;
  int elite_size = 2;
  int tournament_size = 5;
  SizeBounds bounds{2, 50};

  /// Operator probabilities; replication takes the remainder.
  double p_crossover = 0.3;
  double p_subtree_mutation = 0.3;
  double p_gaussian_mutation = 0.3;

  int crossover_retries = 5;

  /// Stochastic hill-climbing local search steps applied to each offspring
  /// produced by crossover/mutation (0 disables local search).
  int local_search_steps = 5;

  /// Includes the single-parameter and single-lexeme tweak moves in local
  /// search alongside insertion/deletion (see ParameterTweak/LexemeTweak in
  /// operators.h — extensions over the paper's local search).
  bool local_search_parameter_tweak = true;

  /// Memetic elite polish (extension, see DESIGN.md): hill-climbing steps
  /// of parameter/lexeme tweaks applied to the generation's best individual
  /// after reproduction. This gives a lineage that discovered the right
  /// structure a fast lane for tuning its constants instead of waiting for
  /// Gaussian drift. 0 disables.
  int elite_polish_steps = 25;

  /// Gradient-informed elite constant polish (extension, DESIGN.md §4l):
  /// projected steepest-descent steps (with step halving) on the elite's
  /// parameter vector, driven by the problem's exact reverse-mode gradient
  /// (Tag3pProblem::gradient). RNG-free — candidate construction and
  /// acceptance draw no random numbers — so runs stay deterministic under
  /// kFrozenFrontier; watchdog-aborted rollouts carry the deterministic
  /// penalty gradient (never NaN) and simply fail to improve. 0 (the
  /// default) disables, leaving legacy runs bit-identical. Ignored when
  /// the problem has no gradient side-channel.
  int elite_gradient_steps = 0;

  /// Gaussian-mutation sigma "ramped down linearly in the final k
  /// generations".
  int sigma_rampdown_generations = 20;
  double sigma_final_scale = 0.1;

  /// Index of the seed alpha tree the population is grown from.
  int seed_alpha_index = 0;

  SpeedupConfig speedups;
  std::uint64_t seed = 1;
};

/// What the TAG3P search runs against — the domain side of the unified
/// `Run(config, problem, context)` driver API. The grammar and fitness are
/// borrowed (must outlive the run); the priors are owned by the problem.
struct Tag3pProblem {
  const tag::Grammar* grammar = nullptr;
  const SequentialFitness* fitness = nullptr;
  ParameterPriors priors;
  /// Optional gradient side-channel of `fitness` (borrowed; e.g.
  /// grad::RiverGradientFitness over the same window). Enables
  /// Tag3pConfig::elite_gradient_steps; null keeps the search purely
  /// derivative-free.
  const GradientFitness* gradient = nullptr;
};

/// Per-generation search telemetry.
struct GenerationStats {
  int generation = 0;
  double best_fitness = 0.0;
  double mean_fitness = 0.0;
  double best_size = 0.0;
  double seconds = 0.0;
};

/// Search outcome.
struct Tag3pResult {
  Individual best;
  std::vector<GenerationStats> history;
  EvalStats eval_stats;
};

/// The TAG3P engine (Figure 5): evolves a population of derivation trees
/// with tournament selection, elitism, the four genetic operators, and
/// optional hill-climbing local search, under the four speedup techniques
/// (TC, ES, RC, and PE — parallel evaluation across a fixed thread pool).
/// The engine is domain-agnostic — the problem enters via the grammar
/// (plausible processes & revisions), the parameter priors, and the
/// sequential fitness.
///
/// Parallel structure per generation: breeding (all RNG draws) stays
/// sequential on the coordinator, then offspring fitness evaluation fans
/// out as one batch, then local search fans out with one deterministically
/// pre-seeded RNG stream per offspring. In kFrozenFrontier mode the whole
/// trajectory is bit-identical for any `speedups.num_threads`.
class Tag3pEngine {
 public:
  /// Unified-API constructor: resources (pool, telemetry sink, RNG) come
  /// from the context; null entries fall back to config-derived defaults
  /// (see obs::RunContext). The context's pointees must outlive the engine.
  Tag3pEngine(const Tag3pProblem& problem, Tag3pConfig config,
              const obs::RunContext& context);

  /// Standalone constructor: default context (owned pool/RNG, tracing off).
  Tag3pEngine(const tag::Grammar* grammar, const SequentialFitness* fitness,
              ParameterPriors priors, Tag3pConfig config);

  /// Runs the full loop and returns the best individual found.
  Tag3pResult Run();

  /// Optional per-generation observer (e.g. for progress printing).
  using GenerationCallback = std::function<void(const GenerationStats&)>;
  void set_generation_callback(GenerationCallback callback) {
    generation_callback_ = std::move(callback);
  }

  /// The evaluator, exposing cache/short-circuit statistics.
  const FitnessEvaluator& evaluator() const { return evaluator_; }

 private:
  std::vector<Individual> InitializePopulation();
  const Individual& TournamentSelect(const std::vector<Individual>& population);
  /// One individual's stochastic hill climb, evaluating through `context`
  /// (worker-safe) and drawing from `rng` (the individual's own stream).
  void LocalSearch(Individual* individual, Rng& rng,
                   FitnessEvaluator::BatchContext* context);
  /// Fans the local searches of `population[indices]` out across the pool.
  void LocalSearchBatch(std::vector<Individual>* population,
                        const std::vector<std::size_t>& indices);
  double SigmaScale(int generation) const;

  /// Config identity lines a snapshot must match to be resumable.
  std::vector<std::string> CheckpointFingerprint() const;
  /// Snapshots the full engine state at the end of `generation`.
  void SaveCheckpoint(int generation,
                      const std::vector<Individual>& population,
                      const Tag3pResult& result);
  /// Restores state from a snapshot; false on any parse/validation failure
  /// (the caller then starts fresh — a bad snapshot never aborts a run).
  bool RestoreCheckpoint(const ckpt::Snapshot& snapshot,
                         std::vector<Individual>* population,
                         Tag3pResult* result, int* start_generation);

  const tag::Grammar* grammar_;
  ParameterPriors priors_;
  const GradientFitness* gradient_;  ///< Borrowed; null = no polish.
  Tag3pConfig config_;
  FitnessEvaluator evaluator_;
  Rng own_rng_;  ///< Used unless the context supplies an external stream.
  Rng& rng_;
  /// Shared pool from the context, or an owned one derived from
  /// `speedups.num_threads` (null pool() means serial).
  obs::PoolLease pool_lease_;
  obs::TelemetrySink* sink_;
  ckpt::Checkpointer* checkpointer_;  ///< Null = checkpointing off.
  GenerationCallback generation_callback_;
};

/// Unified driver entry point: one TAG3P search over `problem` under
/// `config`, drawing shared resources from `context`.
Tag3pResult RunTag3p(const Tag3pConfig& config, const Tag3pProblem& problem,
                     const obs::RunContext& context = {});

}  // namespace gmr::gp

#endif  // GMR_GP_TAG3P_H_
