#ifndef GMR_GP_INDIVIDUAL_H_
#define GMR_GP_INDIVIDUAL_H_

#include <limits>
#include <vector>

#include "common/status.h"
#include "tag/derivation.h"

namespace gmr::gp {

/// A GP individual: the TAG derivation tree (genotype encoding the revised
/// process structure) plus its own copy of the constant-parameter vector
/// (Table III values, optimized by Gaussian mutation).
struct Individual {
  tag::DerivationPtr genotype;
  std::vector<double> parameters;

  /// Minimization fitness (RMSE in the river task). Infinity = unevaluated.
  double fitness = std::numeric_limits<double>::infinity();

  /// True when `fitness` came from a full (non-short-circuited) evaluation.
  bool fully_evaluated = false;

  /// Why the last evaluation produced this fitness (kOk for normal
  /// evaluations; see common/status.h for the containment taxonomy).
  EvalOutcome outcome = EvalOutcome::kOk;

  bool IsEvaluated() const {
    return fitness != std::numeric_limits<double>::infinity();
  }

  Individual Clone() const {
    Individual copy;
    copy.genotype = genotype->Clone();
    copy.parameters = parameters;
    copy.fitness = fitness;
    copy.fully_evaluated = fully_evaluated;
    copy.outcome = outcome;
    return copy;
  }

  std::size_t Size() const { return genotype->NodeCount(); }
};

}  // namespace gmr::gp

#endif  // GMR_GP_INDIVIDUAL_H_
