#include "gp/operators.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace gmr::gp {
namespace {

void MarkUnevaluated(Individual* individual) {
  individual->fitness = std::numeric_limits<double>::infinity();
  individual->fully_evaluated = false;
}

/// Root label of the beta tree referenced by the non-root node behind `ref`.
const tag::Symbol& BetaRootLabel(const tag::Grammar& grammar,
                                 const tag::NodeRef& ref) {
  return grammar.beta(ref.node()->tree_index).root_label();
}

void MutateLexemes(tag::DerivationNode* node, double sigma_scale, Rng& rng) {
  for (double& lexeme : node->lexemes) {
    // Relative sigma keeps the step size proportional to the value while the
    // floor lets near-zero lexemes escape zero.
    const double sigma =
        std::max(std::fabs(lexeme) / 4.0, 0.05) * sigma_scale;
    lexeme = rng.Gaussian(lexeme, sigma);
  }
  for (auto& child : node->children) {
    MutateLexemes(child.node.get(), sigma_scale, rng);
  }
}

}  // namespace

std::vector<double> PriorMeans(const ParameterPriors& priors) {
  std::vector<double> means;
  means.reserve(priors.size());
  for (const ParameterPrior& prior : priors) means.push_back(prior.mean);
  return means;
}

bool Crossover(const tag::Grammar& grammar, const SizeBounds& bounds,
               int max_retries, Individual* a, Individual* b, Rng& rng) {
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    std::vector<tag::NodeRef> refs_a = tag::CollectNodeRefs(a->genotype.get());
    std::vector<tag::NodeRef> refs_b = tag::CollectNodeRefs(b->genotype.get());
    if (refs_a.empty() || refs_b.empty()) return false;

    const tag::NodeRef& ra = refs_a[rng.PickIndex(refs_a)];
    const tag::NodeRef& rb = refs_b[rng.PickIndex(refs_b)];

    // Compatibility: each subtree must be adjoinable where the other is
    // attached, i.e. the two beta root labels must agree.
    if (BetaRootLabel(grammar, ra) != BetaRootLabel(grammar, rb)) continue;

    const std::size_t size_a = a->Size();
    const std::size_t size_b = b->Size();
    const std::size_t sub_a = ra.node()->NodeCount();
    const std::size_t sub_b = rb.node()->NodeCount();
    const std::size_t new_a = size_a - sub_a + sub_b;
    const std::size_t new_b = size_b - sub_b + sub_a;
    if (new_a < bounds.min_size || new_a > bounds.max_size ||
        new_b < bounds.min_size || new_b > bounds.max_size) {
      continue;
    }

    std::swap(ra.parent->children[ra.child_index].node,
              rb.parent->children[rb.child_index].node);
    MarkUnevaluated(a);
    MarkUnevaluated(b);
    return true;
  }
  return false;
}

bool SubtreeMutation(const tag::Grammar& grammar, const SizeBounds& bounds,
                     Individual* individual, Rng& rng) {
  std::vector<tag::NodeRef> refs =
      tag::CollectNodeRefs(individual->genotype.get());
  if (refs.empty()) {
    // Degenerate tree (root only): fall back to an insertion so mutation
    // still explores.
    return PointInsertion(grammar, bounds, individual, rng);
  }
  const tag::NodeRef& ref = refs[rng.PickIndex(refs)];
  const tag::Symbol label = BetaRootLabel(grammar, ref);
  const std::size_t old_size = ref.node()->NodeCount();

  // "Replaced with a new subtree, which is of similar size ... and
  // compatible" — grow a replacement rooted at a beta with the same label.
  tag::DerivationPtr replacement =
      tag::GrowRandomSubtree(grammar, label, old_size, rng);
  if (replacement == nullptr) return false;

  const std::size_t total = individual->Size();
  const std::size_t new_total =
      total - old_size + replacement->NodeCount();
  if (new_total < bounds.min_size || new_total > bounds.max_size) {
    return false;
  }
  ref.parent->children[ref.child_index].node = std::move(replacement);
  MarkUnevaluated(individual);
  return true;
}

void GaussianMutation(const ParameterPriors& priors, double sigma_scale,
                      Individual* individual, Rng& rng) {
  GMR_CHECK_EQ(priors.size(), individual->parameters.size());
  for (std::size_t i = 0; i < priors.size(); ++i) {
    const ParameterPrior& prior = priors[i];
    const double sigma = prior.InitialSigma() * sigma_scale;
    // The current value is the mean; the sample is clamped to the expert
    // exploration bounds.
    individual->parameters[i] = rng.TruncatedGaussian(
        individual->parameters[i], sigma, prior.lo, prior.hi);
  }
  MutateLexemes(individual->genotype.get(), sigma_scale, rng);
  MarkUnevaluated(individual);
}

bool PointInsertion(const tag::Grammar& grammar, const SizeBounds& bounds,
                    Individual* individual, Rng& rng) {
  if (individual->Size() + 1 > bounds.max_size) return false;
  if (!tag::InsertRandomBeta(grammar, individual->genotype.get(), rng)) {
    return false;
  }
  MarkUnevaluated(individual);
  return true;
}

bool PointDeletion(const SizeBounds& bounds, Individual* individual,
                   Rng& rng) {
  if (individual->Size() <= bounds.min_size) return false;
  if (!tag::DeleteRandomLeaf(individual->genotype.get(), rng)) return false;
  MarkUnevaluated(individual);
  return true;
}

namespace {

void CollectLexemeSlots(tag::DerivationNode* node,
                        std::vector<double*>* slots) {
  for (double& lexeme : node->lexemes) slots->push_back(&lexeme);
  for (auto& child : node->children) {
    CollectLexemeSlots(child.node.get(), slots);
  }
}

}  // namespace

bool LexemeTweak(Individual* individual, Rng& rng) {
  std::vector<double*> slots;
  CollectLexemeSlots(individual->genotype.get(), &slots);
  if (slots.empty()) return false;
  double& lexeme = *slots[rng.PickIndex(slots)];
  if (std::fabs(lexeme) < 1e-12) {
    lexeme = rng.Gaussian(0.0, 0.1);  // Restart a dead (zero) lexeme.
  } else if (rng.Bernoulli(0.05)) {
    lexeme = -lexeme;  // Occasional sign flip escapes the wrong half-line.
  } else {
    // Log-normal multiplicative step: scale-free tuning that can travel
    // orders of magnitude in a few accepted steps.
    lexeme *= std::exp(rng.Gaussian(0.0, 0.4));
  }
  MarkUnevaluated(individual);
  return true;
}

bool ParameterTweak(const ParameterPriors& priors, Individual* individual,
                    Rng& rng) {
  if (priors.empty()) return false;
  GMR_CHECK_EQ(priors.size(), individual->parameters.size());
  const std::size_t i =
      static_cast<std::size_t>(rng.UniformInt(priors.size()));
  const ParameterPrior& prior = priors[i];
  individual->parameters[i] = rng.TruncatedGaussian(
      individual->parameters[i], 0.5 * prior.InitialSigma(), prior.lo,
      prior.hi);
  MarkUnevaluated(individual);
  return true;
}

}  // namespace gmr::gp
