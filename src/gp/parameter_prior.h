#ifndef GMR_GP_PARAMETER_PRIOR_H_
#define GMR_GP_PARAMETER_PRIOR_H_

#include <string>
#include <vector>

namespace gmr::gp {

/// Prior knowledge about one constant model parameter (paper Table III):
/// the expected value and the exploration bounds. Parameter values are
/// assumed to follow a truncated Gaussian centered on the expected value;
/// Gaussian mutation samples from it and clamps to [lo, hi].
struct ParameterPrior {
  std::string name;
  double mean = 0.0;
  double lo = 0.0;
  double hi = 1.0;

  /// Initial mutation standard deviation: 1/4 of the parameter mean
  /// ("as that covers the range of most observable parameter values"),
  /// falling back to 1/8 of the exploration range for zero means.
  double InitialSigma() const {
    const double from_mean = mean < 0 ? -mean / 4.0 : mean / 4.0;
    const double from_range = (hi - lo) / 8.0;
    return from_mean > 0.0 ? from_mean : from_range;
  }
};

using ParameterPriors = std::vector<ParameterPrior>;

/// The vector of prior means — the initial parameter values of every
/// individual ("in the beginning, parameters are set to the expected
/// value").
std::vector<double> PriorMeans(const ParameterPriors& priors);

}  // namespace gmr::gp

#endif  // GMR_GP_PARAMETER_PRIOR_H_
