#ifndef GMR_GP_EVALUATOR_H_
#define GMR_GP_EVALUATOR_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "gp/fitness.h"
#include "gp/individual.h"
#include "tag/grammar.h"

namespace gmr::gp {

/// Aggregate evaluation statistics, the measurements behind Figures 10
/// and 11.
struct EvalStats {
  std::size_t individuals_evaluated = 0;  ///< Calls that ran the simulation.
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t full_evaluations = 0;
  std::size_t short_circuited = 0;
  std::size_t time_steps_evaluated = 0;
  double eval_seconds = 0.0;

  double CacheHitRate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Evaluates individuals against a SequentialFitness, applying the enabled
/// speedup techniques: tree caching (with algebraic simplification),
/// evaluation short-circuiting (Algorithm 1), and runtime compilation.
/// Tracks bestPrevFull — the best fitness seen from *full* evaluations —
/// which gates the short-circuit test.
class FitnessEvaluator {
 public:
  FitnessEvaluator(const tag::Grammar* grammar,
                   const SequentialFitness* fitness, SpeedupConfig config);

  /// Evaluates `individual` in place: sets fitness and fully_evaluated.
  void Evaluate(Individual* individual);

  /// Evaluates without consulting or polluting the cache and without
  /// short-circuiting; used for final reporting of best models.
  double EvaluateFull(const Individual& individual) const;

  /// Expands and (optionally) simplifies the individual's equations — its
  /// phenotype.
  std::vector<expr::ExprPtr> Phenotype(const Individual& individual) const;

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

  const SpeedupConfig& config() const { return config_; }

  /// Resets bestPrevFull (e.g. between independent runs).
  void ResetBestPrevFull() {
    best_prev_full_ = std::numeric_limits<double>::infinity();
  }

 private:
  /// 64-bit key combining the structural hashes of the (simplified)
  /// equations with the parameter bits. Collisions are possible in
  /// principle but negligible in practice (documented trade-off; the
  /// paper's cache has the same property).
  std::uint64_t CacheKey(const std::vector<expr::ExprPtr>& equations,
                         const std::vector<double>& parameters) const;

  /// Runs Algorithm 1 (or a plain full pass when ES is off).
  double RunEvaluation(const std::vector<expr::ExprPtr>& equations,
                       const std::vector<double>& parameters,
                       bool* fully_evaluated);

  const tag::Grammar* grammar_;
  const SequentialFitness* fitness_;
  SpeedupConfig config_;
  EvalStats stats_;
  double best_prev_full_ = std::numeric_limits<double>::infinity();
  std::unordered_map<std::uint64_t, double> cache_;
};

}  // namespace gmr::gp

#endif  // GMR_GP_EVALUATOR_H_
