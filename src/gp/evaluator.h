#ifndef GMR_GP_EVALUATOR_H_
#define GMR_GP_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/striped_map.h"
#include "common/thread_pool.h"
#include "gp/fitness.h"
#include "gp/individual.h"
#include "obs/telemetry.h"
#include "tag/grammar.h"

namespace gmr::gp {

/// Aggregate evaluation statistics, the measurements behind Figures 10
/// and 11. Plain counters: worker threads accumulate into per-lane local
/// instances that are Merge()d into the evaluator's totals at each batch
/// barrier, so the hot path never touches shared cache lines.
struct EvalStats {
  std::size_t individuals_evaluated = 0;  ///< Calls that ran the simulation.
  std::size_t cache_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t full_evaluations = 0;
  std::size_t short_circuited = 0;
  /// Candidates the static gate rejected before any integration (also
  /// counted in outcomes[kStaticReject]; surfaced separately so harness
  /// JSON can report a reject rate without decoding the outcome array).
  std::size_t static_rejects = 0;
  std::size_t time_steps_evaluated = 0;
  /// Elapsed coordinator time: the wall clock is sampled once per batch (a
  /// cache hit never pays a clock read), so this is what a user waits for.
  double wall_seconds = 0.0;
  /// Summed per-lane busy time across all worker lanes; exceeds
  /// wall_seconds under parallel evaluation (the old `eval_seconds`
  /// conflated the two).
  double cpu_seconds = 0.0;
  /// Time spent preparing candidates for evaluation rather than evaluating
  /// them: SequentialFitness::Begin (which hosts the per-candidate compile
  /// under the RC backends) and the generation-level PrepareBatch compile
  /// pass. Previously folded silently into cpu_seconds; kept as a separate
  /// bucket so compile cost is attributable. Lane-side Begin time is also
  /// part of cpu_seconds; the coordinator-side PrepareBatch pass is also
  /// part of wall_seconds.
  double compile_seconds = 0.0;
  /// Containment telemetry: computed evaluations by EvalOutcome (cache hits
  /// are not re-counted; index with static_cast<std::size_t>(outcome)).
  std::size_t outcomes[kNumEvalOutcomes] = {};
  /// Static-gate verdict-cache traffic. Separate from the tree-cache
  /// counters above: verdict keys are structure-only, so one verdict
  /// serves every in-domain parameter vector of the same phenotype.
  std::size_t verdict_cache_lookups = 0;
  std::size_t verdict_cache_hits = 0;
  /// Static-gate rejections by analysis rule (index with
  /// static_cast<std::size_t>(analysis::GateRule); slot 0 = kNone stays
  /// zero). Sums to static_rejects.
  std::size_t gate_rule_rejects[analysis::kNumGateRules] = {};
  /// Gradient side-channel telemetry (elite constant polish): adjoint
  /// gradient evaluations, total reverse-mode tape nodes linearized for
  /// them, and line-search (descent candidate) evaluations spent polishing.
  std::size_t gradient_evaluations = 0;
  std::size_t tape_nodes = 0;
  std::size_t linesearch_steps = 0;

  /// Adds every counter of `other` into this (associative and commutative,
  /// so per-thread partial stats can fold in any order).
  void Merge(const EvalStats& other);

  double CacheHitRate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
};

/// Evaluates individuals against a SequentialFitness, applying the enabled
/// speedup techniques: tree caching (with algebraic simplification),
/// evaluation short-circuiting (Algorithm 1), runtime compilation, and
/// parallel evaluation. Tracks bestPrevFull — the best fitness seen from
/// *full* evaluations — which gates the short-circuit test.
///
/// Thread model: `Evaluate`, `EvaluateBatch`, `RunBatch`, and the
/// Start/FinishBatch pair are coordinator-only; worker threads evaluate
/// exclusively through a per-lane `BatchContext`. The tree cache is a
/// striped hash map shared by all lanes, and the frontier follows
/// `SpeedupConfig::frontier_mode` (see FrontierMode for the
/// determinism trade-off).
class FitnessEvaluator {
 public:
  FitnessEvaluator(const tag::Grammar* grammar,
                   const SequentialFitness* fitness, SpeedupConfig config);

  /// Per-lane evaluation handle within one batch. Holds the frozen
  /// frontier snapshot, the lane's partial statistics, and the lane's best
  /// full-evaluation fitness; created by StartBatch on the coordinator and
  /// used by exactly one thread until FinishBatch absorbs it.
  class BatchContext {
   public:
    BatchContext() = default;

    /// Evaluates `individual` in place: sets fitness and fully_evaluated.
    /// Safe to call concurrently with other lanes' contexts.
    void Evaluate(Individual* individual);

    const EvalStats& local_stats() const { return stats_; }

   private:
    friend class FitnessEvaluator;
    FitnessEvaluator* owner_ = nullptr;
    double frozen_frontier_ = std::numeric_limits<double>::infinity();
    double local_min_full_ = std::numeric_limits<double>::infinity();
    EvalStats stats_;
  };

  /// Evaluates `individual` in place (serial path): one-element batch, so
  /// the frontier advances immediately afterwards, exactly like the
  /// pre-parallel evaluator.
  void Evaluate(Individual* individual);

  /// Evaluates the batch, fanning out across `pool` (inline when null or
  /// single-threaded — the same code path, so results match). Under
  /// kFrozenFrontier the assigned fitness values are bit-identical for any
  /// thread count. The wall clock is sampled once for the whole batch.
  ///
  /// Fault containment: an evaluation task that throws poisons only its own
  /// individual — at the batch barrier it is assigned kPenaltyFitness with
  /// outcome kTaskFailed; every other individual is unaffected.
  void EvaluateBatch(const std::vector<Individual*>& batch, ThreadPool* pool);

  /// Generalized batch runner for callers that evaluate several candidates
  /// per item (e.g. local search): body(item, ctx) runs for every item in
  /// [0, n) with a per-lane context; frontier and statistics fold at the
  /// barrier. Returns the items whose body threw (contained, sorted by
  /// index; the caller decides how to penalize them). Coordinator-only.
  std::vector<TaskFailure> RunBatch(
      ThreadPool* pool, std::size_t n,
      const std::function<void(std::size_t, BatchContext*)>& body);

  /// Snapshots the frontier into a fresh context. Coordinator-only.
  BatchContext StartBatch();

  /// Folds a context's statistics and full-evaluation minimum back into
  /// the evaluator. Coordinator-only (the batch barrier).
  void FinishBatch(BatchContext* context);

  /// Evaluates without consulting or polluting the cache and without
  /// short-circuiting; used for final reporting of best models.
  double EvaluateFull(const Individual& individual) const;

  /// Expands and (optionally) simplifies the individual's equations — its
  /// phenotype.
  std::vector<expr::ExprPtr> Phenotype(const Individual& individual) const;

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

  /// Folds gradient side-channel telemetry (elite constant polish) into the
  /// aggregate statistics. Coordinator-only: the gradient polish runs
  /// between evaluation batches, never inside one.
  void NoteGradientWork(std::size_t gradient_evals, std::size_t tape_nodes,
                        std::size_t linesearch_steps) {
    stats_.gradient_evaluations += gradient_evals;
    stats_.tape_nodes += tape_nodes;
    stats_.linesearch_steps += linesearch_steps;
  }

  /// Attaches a telemetry sink: every RunBatch barrier then emits one
  /// "eval_batch" event from the coordinator (workers never emit, so event
  /// order is deterministic regardless of thread count). Null restores the
  /// NullSink; the evaluator does not own the sink.
  void set_telemetry_sink(obs::TelemetrySink* sink) {
    sink_ = obs::ResolveSink(sink);
  }

  const SpeedupConfig& config() const { return config_; }

  /// The problem this evaluator scores against (borrowed).
  const SequentialFitness* fitness() const { return fitness_; }

  /// Resets bestPrevFull (e.g. between independent runs).
  void ResetBestPrevFull() {
    best_prev_full_.store(std::numeric_limits<double>::infinity(),
                          std::memory_order_relaxed);
  }

  /// Current short-circuiting frontier (exposed for tests and benches).
  double best_prev_full() const {
    return best_prev_full_.load(std::memory_order_relaxed);
  }

  /// One exported tree-cache entry (checkpoint serialization). The cache
  /// is part of the determinism contract: eval_batch trace events report
  /// cache_hits as a deterministic field, so a resumed run must see the
  /// exact cache contents the interrupted run had at the checkpoint.
  struct CacheExport {
    std::uint64_t key = 0;
    double fitness = 0.0;
    bool fully_evaluated = false;
    EvalOutcome outcome = EvalOutcome::kOk;
  };

  /// Exports the tree cache sorted by key (stable bytes for snapshots).
  /// Coordinator-only, between batches.
  std::vector<CacheExport> ExportCache() const;

  /// Replaces the tree cache with `entries` (resume). Coordinator-only.
  void ImportCache(const std::vector<CacheExport>& entries);

  /// Restores checkpointed aggregate statistics (resume): totals then
  /// continue accumulating across segments instead of restarting at zero.
  void RestoreStats(const EvalStats& stats) { stats_ = stats; }

  /// Restores the checkpointed short-circuiting frontier (resume).
  void RestoreBestPrevFull(double frontier) {
    best_prev_full_.store(frontier, std::memory_order_relaxed);
  }

  /// Entries in the shared tree cache.
  std::size_t cache_size() const { return cache_.size(); }

  /// Entries in the static-verdict cache (0 unless the gate is enabled).
  std::size_t verdict_cache_size() const { return verdict_cache_.size(); }

 private:
  /// A memoized evaluation outcome. The fully_evaluated bit is stored, not
  /// inferred from the frontier: a cached value may both originate from a
  /// short-circuited run and sit below a later (reset) frontier, so any
  /// frontier-based inference misclassifies.
  struct CacheEntry {
    double fitness = 0.0;
    bool fully_evaluated = false;
    /// Cached alongside the fitness so a hit reproduces the containment
    /// telemetry of the original evaluation.
    EvalOutcome outcome = EvalOutcome::kOk;
  };

  /// 64-bit key combining the structural hashes of the (simplified)
  /// equations with the parameter bits. Collisions are possible in
  /// principle but negligible in practice (documented trade-off; the
  /// paper's cache has the same property).
  std::uint64_t CacheKey(const std::vector<expr::ExprPtr>& equations,
                         const std::vector<double>& parameters) const;

  /// Runs Algorithm 1 (or a plain full pass when ES is off) against the
  /// given frontier, charging `stats`. Pure with respect to shared state.
  double RunEvaluation(const std::vector<expr::ExprPtr>& equations,
                       const std::vector<double>& parameters,
                       double best_prev_full, EvalStats* stats,
                       bool* fully_evaluated, EvalOutcome* outcome) const;

  /// The per-individual evaluation body shared by all paths.
  void EvaluateWith(BatchContext* context, Individual* individual);

  /// O(tree) static gate check, memoized by structure-only hash in
  /// verdict_cache_ (the cached byte is the rejecting analysis rule, kNone
  /// for accepted structures). Sound only when the candidate's parameters
  /// lie inside the gate's domain boxes (the caller pre-checks
  /// ParametersInDomain). Charges verdict-cache traffic to `stats`.
  analysis::GateRule StaticallyRejected(
      const std::vector<expr::ExprPtr>& equations, EvalStats* stats);

  /// Assigns the kTaskFailed penalty to an individual whose evaluation
  /// threw, charging `stats`.
  static void SetTaskFailed(Individual* individual, EvalStats* stats);

  /// Records a full evaluation's fitness into the frontier according to
  /// the configured FrontierMode.
  void NoteFullEvaluation(BatchContext* context, double fitness);

  /// Emits the per-batch "eval_batch" event (coordinator-only).
  void EmitBatchEvent(std::size_t n, const EvalStats& batch_stats,
                      std::size_t task_failures) const;

  const tag::Grammar* grammar_;
  const SequentialFitness* fitness_;
  SpeedupConfig config_;
  EvalStats stats_;
  obs::TelemetrySink* sink_ = obs::NullTelemetrySink();
  std::atomic<double> best_prev_full_{
      std::numeric_limits<double>::infinity()};
  StripedMap<std::uint64_t, CacheEntry> cache_;
  /// Structure-hash -> rejecting rule byte (analysis::GateRule) for the
  /// static gate. Separate from cache_: verdicts are parameter-independent
  /// (valid for every in-domain parameter vector), so they survive
  /// parameter mutation.
  StripedMap<std::uint64_t, std::uint8_t> verdict_cache_;
};

}  // namespace gmr::gp

#endif  // GMR_GP_EVALUATOR_H_
