#include "gp/evaluator.h"


#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/timer.h"
#include "expr/simplify.h"

namespace gmr::gp {
namespace {

std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Lock-free monotone minimum on an atomic double.
void AtomicFetchMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

double ExtrapolateIdentity(double fitness, std::size_t /*steps*/,
                           std::size_t /*total_steps*/) {
  return fitness;
}

double ExtrapolateGrowth(double fitness, std::size_t steps,
                         std::size_t total_steps) {
  if (steps == 0) return fitness;
  const double ratio = static_cast<double>(total_steps) /
                       static_cast<double>(steps);
  return fitness * std::pow(ratio, 0.25);
}

void EvalStats::Merge(const EvalStats& other) {
  individuals_evaluated += other.individuals_evaluated;
  cache_hits += other.cache_hits;
  cache_lookups += other.cache_lookups;
  full_evaluations += other.full_evaluations;
  short_circuited += other.short_circuited;
  static_rejects += other.static_rejects;
  time_steps_evaluated += other.time_steps_evaluated;
  wall_seconds += other.wall_seconds;
  cpu_seconds += other.cpu_seconds;
  compile_seconds += other.compile_seconds;
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    outcomes[i] += other.outcomes[i];
  }
  verdict_cache_lookups += other.verdict_cache_lookups;
  verdict_cache_hits += other.verdict_cache_hits;
  for (std::size_t i = 0; i < analysis::kNumGateRules; ++i) {
    gate_rule_rejects[i] += other.gate_rule_rejects[i];
  }
  gradient_evaluations += other.gradient_evaluations;
  tape_nodes += other.tape_nodes;
  linesearch_steps += other.linesearch_steps;
}

FitnessEvaluator::FitnessEvaluator(const tag::Grammar* grammar,
                                   const SequentialFitness* fitness,
                                   SpeedupConfig config)
    : grammar_(grammar),
      fitness_(fitness),
      config_(config),
      cache_(static_cast<std::size_t>(
          config.cache_stripes > 0 ? config.cache_stripes : 1)),
      verdict_cache_(static_cast<std::size_t>(
          config.cache_stripes > 0 ? config.cache_stripes : 1)) {
  GMR_CHECK(grammar_ != nullptr);
  GMR_CHECK(fitness_ != nullptr);
}

std::vector<expr::ExprPtr> FitnessEvaluator::Phenotype(
    const Individual& individual) const {
  std::vector<expr::ExprPtr> equations =
      tag::ExpandToExpressions(*grammar_, *individual.genotype);
  if (config_.simplify_before_eval) {
    for (auto& eq : equations) eq = expr::Simplify(eq);
  }
  return equations;
}

std::uint64_t FitnessEvaluator::CacheKey(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters) const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const auto& eq : equations) h = MixHash(h, eq->StructuralHash());
  for (double p : parameters) h = MixHash(h, DoubleBits(p));
  return h;
}

double FitnessEvaluator::RunEvaluation(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters, double best_prev_full,
    EvalStats* stats, bool* fully_evaluated, EvalOutcome* outcome) const {
  const std::size_t num_cases = fitness_->num_cases();
  // Begin() hosts the per-candidate compile work under the RC backends
  // (bytecode flattening, JIT invocation or compile-cache probe); charge it
  // to the compile bucket so evaluation time stays pure stepping.
  Timer begin_timer;
  std::unique_ptr<SequentialEvaluation> eval =
      fitness_->Begin(equations, parameters, config_.runtime_compilation);
  stats->compile_seconds += begin_timer.ElapsedSeconds();

  // Algorithm 1: Evaluation Short-Circuiting. With ES disabled the loop
  // degenerates to a plain full pass.
  *fully_evaluated = true;
  double fitness = 0.0;
  std::size_t i = 0;
  while (i < num_cases) {
    const bool more = eval->Step();
    fitness = eval->CurrentFitness();
    ++i;
    if (config_.short_circuiting && std::isfinite(best_prev_full) &&
        i < num_cases) {
      if (fitness > best_prev_full * config_.es_threshold) {
        const double est_fitness =
            config_.extrapolate(fitness, i, num_cases);
        if (est_fitness > best_prev_full) {
          stats->time_steps_evaluated += i;
          ++stats->short_circuited;
          *fully_evaluated = false;
          *outcome = eval->outcome();
          return est_fitness;  // Short circuiting.
        }
      }
    }
    if (!more) break;
  }
  stats->time_steps_evaluated += i;
  ++stats->full_evaluations;
  *outcome = eval->outcome();
  return fitness;  // Full evaluation.
}

void FitnessEvaluator::NoteFullEvaluation(BatchContext* context,
                                          double fitness) {
  if (config_.frontier_mode == FrontierMode::kShared) {
    // Publish immediately: evaluations still in flight anywhere may cut
    // against this bound. Aggressive but interleaving-dependent.
    AtomicFetchMin(&best_prev_full_, fitness);
  } else {
    // Hold the improvement in the lane until the batch barrier.
    if (fitness < context->local_min_full_) {
      context->local_min_full_ = fitness;
    }
  }
}

void FitnessEvaluator::EvaluateWith(BatchContext* context,
                                    Individual* individual) {
  EvalStats& stats = context->stats_;
  // Domain pre-check: a non-finite parameter vector cannot produce a
  // meaningful simulation, so it is penalized before any expansion work.
  // The penalty is a pure function of the candidate and never enters the
  // frontier, so caching/short-circuiting stay exact.
  for (double p : individual->parameters) {
    if (!std::isfinite(p)) {
      individual->fitness = kPenaltyFitness;
      individual->fully_evaluated = true;
      individual->outcome = EvalOutcome::kDomainViolation;
      ++stats.outcomes[static_cast<std::size_t>(
          EvalOutcome::kDomainViolation)];
      ++stats.individuals_evaluated;
      return;
    }
  }
  std::vector<expr::ExprPtr> equations = Phenotype(*individual);

  // Static reject gate: an O(tree) interval check that turns a provably
  // divergent rollout into an immediate deterministic penalty. The
  // structure-keyed verdict is only sound for parameters inside the gate's
  // domain boxes, hence the ParametersInDomain guard (Gaussian mutation
  // clamps parameters to the prior boxes, so the guard normally holds).
  // Rejects bypass the tree cache and never touch the ES frontier, so
  // gate-on is bit-identical to gate-off on populations the gate passes.
  if (config_.static_gate.enabled &&
      analysis::ParametersInDomain(individual->parameters,
                                   config_.static_gate.domains)) {
    const analysis::GateRule rule = StaticallyRejected(equations, &stats);
    if (rule != analysis::GateRule::kNone) {
      individual->fitness = kPenaltyFitness;
      individual->fully_evaluated = true;
      individual->outcome = EvalOutcome::kStaticReject;
      ++stats.static_rejects;
      ++stats.gate_rule_rejects[static_cast<std::size_t>(rule)];
      ++stats.individuals_evaluated;
      ++stats.outcomes[static_cast<std::size_t>(EvalOutcome::kStaticReject)];
      return;
    }
  }

  const double frontier =
      config_.frontier_mode == FrontierMode::kShared
          ? best_prev_full_.load(std::memory_order_relaxed)
          : context->frozen_frontier_;

  if (config_.tree_caching) {
    ++stats.cache_lookups;
    const std::uint64_t key = CacheKey(equations, individual->parameters);
    CacheEntry entry;
    if (cache_.Lookup(key, &entry)) {
      ++stats.cache_hits;
      individual->fitness = entry.fitness;
      individual->fully_evaluated = entry.fully_evaluated;
      individual->outcome = entry.outcome;
      return;
    }
    bool fully = false;
    EvalOutcome outcome = EvalOutcome::kOk;
    const double fitness = RunEvaluation(equations, individual->parameters,
                                         frontier, &stats, &fully, &outcome);
    if (fully) NoteFullEvaluation(context, fitness);
    cache_.Insert(key, CacheEntry{fitness, fully, outcome});
    individual->fitness = fitness;
    individual->fully_evaluated = fully;
    individual->outcome = outcome;
    ++stats.individuals_evaluated;
    ++stats.outcomes[static_cast<std::size_t>(outcome)];
    return;
  }

  bool fully = false;
  EvalOutcome outcome = EvalOutcome::kOk;
  individual->fitness = RunEvaluation(equations, individual->parameters,
                                      frontier, &stats, &fully, &outcome);
  if (fully) NoteFullEvaluation(context, individual->fitness);
  individual->fully_evaluated = fully;
  individual->outcome = outcome;
  ++stats.individuals_evaluated;
  ++stats.outcomes[static_cast<std::size_t>(outcome)];
}

analysis::GateRule FitnessEvaluator::StaticallyRejected(
    const std::vector<expr::ExprPtr>& equations, EvalStats* stats) {
  // Structure-only key (no parameter bits): the verdict holds for every
  // in-domain parameter vector. Distinct seed from CacheKey so the two
  // cache key spaces cannot collide systematically.
  std::uint64_t key = 0x452821e638d01377ULL;
  for (const auto& eq : equations) key = MixHash(key, eq->StructuralHash());
  ++stats->verdict_cache_lookups;
  std::uint8_t rule_byte = 0;
  if (verdict_cache_.Lookup(key, &rule_byte)) {
    ++stats->verdict_cache_hits;
    return static_cast<analysis::GateRule>(rule_byte);
  }
  const analysis::GateRule rule =
      analysis::AnalyzeCandidate(equations, config_.static_gate).rule;
  verdict_cache_.Insert(key, static_cast<std::uint8_t>(rule));
  return rule;
}

void FitnessEvaluator::BatchContext::Evaluate(Individual* individual) {
  GMR_CHECK(owner_ != nullptr);
  owner_->EvaluateWith(this, individual);
}

FitnessEvaluator::BatchContext FitnessEvaluator::StartBatch() {
  BatchContext context;
  context.owner_ = this;
  context.frozen_frontier_ = best_prev_full_.load(std::memory_order_relaxed);
  return context;
}

void FitnessEvaluator::FinishBatch(BatchContext* context) {
  stats_.Merge(context->stats_);
  context->stats_ = EvalStats{};
  AtomicFetchMin(&best_prev_full_, context->local_min_full_);
  context->local_min_full_ = std::numeric_limits<double>::infinity();
}

void FitnessEvaluator::Evaluate(Individual* individual) {
  Timer timer;
  BatchContext context = StartBatch();
  try {
    EvaluateWith(&context, individual);
  } catch (const std::exception&) {
    SetTaskFailed(individual, &context.stats_);
  } catch (...) {
    SetTaskFailed(individual, &context.stats_);
  }
  FinishBatch(&context);
  // Serial path: one lane, so the coordinator's wall time is the busy time.
  const double elapsed = timer.ElapsedSeconds();
  stats_.wall_seconds += elapsed;
  stats_.cpu_seconds += elapsed;
}

std::vector<TaskFailure> FitnessEvaluator::RunBatch(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t, BatchContext*)>& body) {
  if (n == 0) return {};
  // One wall-clock sample per batch: cache hits inside the batch no longer
  // pay a clock read each (they dominated wall_seconds noise at high hit
  // rates).
  Timer timer;
  const int lanes =
      pool != nullptr && pool->num_threads() > 1 ? pool->num_threads() : 1;
  std::vector<BatchContext> contexts(static_cast<std::size_t>(lanes));
  for (BatchContext& context : contexts) context = StartBatch();
  // Each lane charges its own busy time to its local stats (cpu_seconds);
  // the wall clock stays a single coordinator sample per batch.
  const auto timed_body = [&body, &contexts](std::size_t i, int lane) {
    BatchContext* context = &contexts[static_cast<std::size_t>(lane)];
    Timer lane_timer;
    body(i, context);
    context->stats_.cpu_seconds += lane_timer.ElapsedSeconds();
  };
  std::vector<TaskFailure> failures;
  if (lanes == 1) {
    // The free ParallelFor runs inline in index order with the same
    // exception containment (and fault-injection point) as the pool path.
    failures = gmr::ParallelFor(
        nullptr, n, [&timed_body](std::size_t i) { timed_body(i, 0); });
  } else {
    failures = pool->ParallelFor(n, timed_body);
  }
  // Merge the lane stats into a batch-local view first so the barrier can
  // report this batch's delta, then fold them into the run totals.
  EvalStats batch_stats;
  for (const BatchContext& context : contexts) {
    batch_stats.Merge(context.stats_);
  }
  for (BatchContext& context : contexts) FinishBatch(&context);
  batch_stats.wall_seconds = timer.ElapsedSeconds();
  stats_.wall_seconds += batch_stats.wall_seconds;
  if (sink_->enabled()) EmitBatchEvent(n, batch_stats, failures.size());
  return failures;
}

void FitnessEvaluator::EmitBatchEvent(std::size_t n,
                                      const EvalStats& batch_stats,
                                      std::size_t task_failures) const {
  obs::TraceEvent event("eval_batch");
  event.Field("n", static_cast<double>(n))
      .Field("num_species", static_cast<double>(fitness_->num_states()))
      .Field("individuals",
             static_cast<double>(batch_stats.individuals_evaluated))
      .Field("cache_lookups", static_cast<double>(batch_stats.cache_lookups))
      .Field("cache_hits", static_cast<double>(batch_stats.cache_hits))
      .Field("full_evaluations",
             static_cast<double>(batch_stats.full_evaluations))
      .Field("short_circuited",
             static_cast<double>(batch_stats.short_circuited))
      .Field("static_rejects",
             static_cast<double>(batch_stats.static_rejects))
      .Field("time_steps",
             static_cast<double>(batch_stats.time_steps_evaluated))
      .Field("task_failures", static_cast<double>(task_failures))
      .Field("frontier", best_prev_full());
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    event.Field(std::string("outcomes.") +
                    EvalOutcomeName(static_cast<EvalOutcome>(i)),
                static_cast<double>(batch_stats.outcomes[i]));
  }
  event.Field("verdict_cache_lookups",
              static_cast<double>(batch_stats.verdict_cache_lookups))
      .Field("verdict_cache_hits",
             static_cast<double>(batch_stats.verdict_cache_hits));
  for (std::size_t i = 1; i < analysis::kNumGateRules; ++i) {
    event.Field(std::string("gate_rule.") +
                    analysis::GateRuleName(static_cast<analysis::GateRule>(i)),
                static_cast<double>(batch_stats.gate_rule_rejects[i]));
  }
  event
      .Field("gradient_evaluations",
             static_cast<double>(batch_stats.gradient_evaluations))
      .Field("tape_nodes", static_cast<double>(batch_stats.tape_nodes))
      .Field("linesearch_steps",
             static_cast<double>(batch_stats.linesearch_steps));
  event.Timing("wall_s", batch_stats.wall_seconds)
      .Timing("cpu_s", batch_stats.cpu_seconds)
      .Timing("compile_s", batch_stats.compile_seconds);
  sink_->Emit(std::move(event));
}

void FitnessEvaluator::SetTaskFailed(Individual* individual,
                                     EvalStats* stats) {
  individual->fitness = kPenaltyFitness;
  individual->fully_evaluated = true;
  individual->outcome = EvalOutcome::kTaskFailed;
  ++stats->outcomes[static_cast<std::size_t>(EvalOutcome::kTaskFailed)];
}

void FitnessEvaluator::EvaluateBatch(const std::vector<Individual*>& batch,
                                     ThreadPool* pool) {
  // Generation-level compile pass (e.g. the batched JIT backend): one
  // translation unit for every unique equation of the batch, compiled on
  // the coordinator before fan-out so worker lanes only probe the compile
  // cache. Pure warm-up — skipping it cannot change any fitness value.
  if (config_.runtime_compilation && !batch.empty() &&
      fitness_->WantsBatchPreparation()) {
    Timer prepare_timer;
    std::vector<std::vector<expr::ExprPtr>> phenotypes;
    phenotypes.reserve(batch.size());
    for (const Individual* individual : batch) {
      phenotypes.push_back(Phenotype(*individual));
    }
    fitness_->PrepareBatch(phenotypes);
    const double elapsed = prepare_timer.ElapsedSeconds();
    stats_.compile_seconds += elapsed;
    // The pass runs outside RunBatch's wall sample; count it as user-visible
    // coordinator time too.
    stats_.wall_seconds += elapsed;
  }
  const std::vector<TaskFailure> failures =
      RunBatch(pool, batch.size(),
               [this, &batch](std::size_t i, BatchContext* context) {
                 EvaluateWith(context, batch[i]);
               });
  // Barrier conversion: each failed task poisons only its own individual.
  // The penalty never enters the frontier or the cache.
  for (const TaskFailure& failure : failures) {
    SetTaskFailed(batch[failure.index], &stats_);
  }
}

double FitnessEvaluator::EvaluateFull(const Individual& individual) const {
  std::vector<expr::ExprPtr> equations = Phenotype(individual);
  std::unique_ptr<SequentialEvaluation> eval = fitness_->Begin(
      equations, individual.parameters, config_.runtime_compilation);
  while (eval->Step()) {
  }
  return eval->CurrentFitness();
}

std::vector<FitnessEvaluator::CacheExport> FitnessEvaluator::ExportCache()
    const {
  std::vector<CacheExport> entries;
  entries.reserve(cache_.size());
  cache_.ForEach([&entries](const std::uint64_t& key,
                            const CacheEntry& entry) {
    entries.push_back(
        CacheExport{key, entry.fitness, entry.fully_evaluated, entry.outcome});
  });
  std::sort(entries.begin(), entries.end(),
            [](const CacheExport& a, const CacheExport& b) {
              return a.key < b.key;
            });
  return entries;
}

void FitnessEvaluator::ImportCache(const std::vector<CacheExport>& entries) {
  cache_.Clear();
  for (const CacheExport& entry : entries) {
    cache_.Insert(entry.key, CacheEntry{entry.fitness, entry.fully_evaluated,
                                        entry.outcome});
  }
}

}  // namespace gmr::gp
