#include "gp/evaluator.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/timer.h"
#include "expr/simplify.h"

namespace gmr::gp {
namespace {

std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

double ExtrapolateIdentity(double fitness, std::size_t /*steps*/,
                           std::size_t /*total_steps*/) {
  return fitness;
}

double ExtrapolateGrowth(double fitness, std::size_t steps,
                         std::size_t total_steps) {
  if (steps == 0) return fitness;
  const double ratio = static_cast<double>(total_steps) /
                       static_cast<double>(steps);
  return fitness * std::pow(ratio, 0.25);
}

FitnessEvaluator::FitnessEvaluator(const tag::Grammar* grammar,
                                   const SequentialFitness* fitness,
                                   SpeedupConfig config)
    : grammar_(grammar), fitness_(fitness), config_(config) {
  GMR_CHECK(grammar_ != nullptr);
  GMR_CHECK(fitness_ != nullptr);
}

std::vector<expr::ExprPtr> FitnessEvaluator::Phenotype(
    const Individual& individual) const {
  std::vector<expr::ExprPtr> equations =
      tag::ExpandToExpressions(*grammar_, *individual.genotype);
  if (config_.simplify_before_eval) {
    for (auto& eq : equations) eq = expr::Simplify(eq);
  }
  return equations;
}

std::uint64_t FitnessEvaluator::CacheKey(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters) const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const auto& eq : equations) h = MixHash(h, eq->StructuralHash());
  for (double p : parameters) h = MixHash(h, DoubleBits(p));
  return h;
}

double FitnessEvaluator::RunEvaluation(
    const std::vector<expr::ExprPtr>& equations,
    const std::vector<double>& parameters, bool* fully_evaluated) {
  const std::size_t num_cases = fitness_->num_cases();
  std::unique_ptr<SequentialEvaluation> eval =
      fitness_->Begin(equations, parameters, config_.runtime_compilation);

  // Algorithm 1: Evaluation Short-Circuiting. With ES disabled the loop
  // degenerates to a plain full pass.
  *fully_evaluated = true;
  double fitness = 0.0;
  std::size_t i = 0;
  while (i < num_cases) {
    const bool more = eval->Step();
    fitness = eval->CurrentFitness();
    ++i;
    if (config_.short_circuiting && std::isfinite(best_prev_full_) &&
        i < num_cases) {
      if (fitness > best_prev_full_ * config_.es_threshold) {
        const double est_fitness =
            config_.extrapolate(fitness, i, num_cases);
        if (est_fitness > best_prev_full_) {
          stats_.time_steps_evaluated += i;
          ++stats_.short_circuited;
          *fully_evaluated = false;
          return est_fitness;  // Short circuiting.
        }
      }
    }
    if (!more) break;
  }
  stats_.time_steps_evaluated += i;
  ++stats_.full_evaluations;
  if (fitness < best_prev_full_) best_prev_full_ = fitness;
  return fitness;  // Full evaluation.
}

void FitnessEvaluator::Evaluate(Individual* individual) {
  Timer timer;
  std::vector<expr::ExprPtr> equations = Phenotype(*individual);

  if (config_.tree_caching) {
    ++stats_.cache_lookups;
    const std::uint64_t key = CacheKey(equations, individual->parameters);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      individual->fitness = it->second;
      // A cached value may originate from a short-circuited evaluation;
      // conservatively report it as not-fully-evaluated only when ES is on
      // and the value is worse than the current full-evaluation frontier.
      individual->fully_evaluated =
          !config_.short_circuiting || it->second <= best_prev_full_;
      stats_.eval_seconds += timer.ElapsedSeconds();
      return;
    }
    bool fully = false;
    const double fitness =
        RunEvaluation(equations, individual->parameters, &fully);
    cache_.emplace(key, fitness);
    individual->fitness = fitness;
    individual->fully_evaluated = fully;
    ++stats_.individuals_evaluated;
    stats_.eval_seconds += timer.ElapsedSeconds();
    return;
  }

  bool fully = false;
  individual->fitness =
      RunEvaluation(equations, individual->parameters, &fully);
  individual->fully_evaluated = fully;
  ++stats_.individuals_evaluated;
  stats_.eval_seconds += timer.ElapsedSeconds();
}

double FitnessEvaluator::EvaluateFull(const Individual& individual) const {
  std::vector<expr::ExprPtr> equations = Phenotype(individual);
  std::unique_ptr<SequentialEvaluation> eval = fitness_->Begin(
      equations, individual.parameters, config_.runtime_compilation);
  while (eval->Step()) {
  }
  return eval->CurrentFitness();
}

}  // namespace gmr::gp
