#include "gp/tag3p.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "obs/manifest.h"

namespace gmr::gp {

Tag3pEngine::Tag3pEngine(const Tag3pProblem& problem, Tag3pConfig config,
                         const obs::RunContext& context)
    : grammar_(problem.grammar),
      priors_(problem.priors),
      config_(config),
      evaluator_(problem.grammar, problem.fitness, config.speedups),
      own_rng_(config.seed),
      rng_(context.rng != nullptr ? *context.rng : own_rng_),
      pool_lease_(obs::LeasePool(context, config.speedups.num_threads)),
      sink_(obs::ResolveSink(context.sink)) {
  GMR_CHECK(grammar_ != nullptr);
  GMR_CHECK_GT(config_.population_size, 0);
  GMR_CHECK_GE(config_.elite_size, 0);
  GMR_CHECK_LE(config_.elite_size, config_.population_size);
  GMR_CHECK_GT(config_.tournament_size, 0);
  GMR_CHECK_EQ(priors_.size(), problem.fitness->num_parameters());
  evaluator_.set_telemetry_sink(sink_);
}

Tag3pEngine::Tag3pEngine(const tag::Grammar* grammar,
                         const SequentialFitness* fitness,
                         ParameterPriors priors, Tag3pConfig config)
    : Tag3pEngine(Tag3pProblem{grammar, fitness, std::move(priors)}, config,
                  obs::RunContext{}) {}

std::vector<Individual> Tag3pEngine::InitializePopulation() {
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(config_.population_size));
  const std::vector<double> means = PriorMeans(priors_);
  while (population.size() <
         static_cast<std::size_t>(config_.population_size)) {
    // "TAG3P selects an individual size between MINSIZE and MAXSIZE ...
    // picks up beta-trees and their adjoining addresses at random, and
    // performs adjoining."
    const std::size_t target = static_cast<std::size_t>(rng_.UniformInt(
        static_cast<int>(config_.bounds.min_size),
        static_cast<int>(config_.bounds.max_size)));
    Individual individual;
    individual.genotype = tag::GrowRandom(
        *grammar_, config_.seed_alpha_index, target, rng_);
    // "In the beginning, parameters are set to the expected value."
    individual.parameters = means;
    population.push_back(std::move(individual));
  }
  return population;
}

const Individual& Tag3pEngine::TournamentSelect(
    const std::vector<Individual>& population) {
  const Individual* best = nullptr;
  for (int i = 0; i < config_.tournament_size; ++i) {
    const Individual& candidate =
        population[rng_.PickIndex(population)];
    if (best == nullptr || candidate.fitness < best->fitness) {
      best = &candidate;
    }
  }
  return *best;
}

double Tag3pEngine::SigmaScale(int generation) const {
  const int k = config_.sigma_rampdown_generations;
  const int start = config_.max_generations - k;
  if (k <= 0 || generation < start) return 1.0;
  const double progress = static_cast<double>(generation - start) /
                          static_cast<double>(std::max(k, 1));
  return 1.0 + (config_.sigma_final_scale - 1.0) * progress;
}

void Tag3pEngine::LocalSearch(Individual* individual, Rng& rng,
                              FitnessEvaluator::BatchContext* context) {
  // Stochastic hill climbing: insertion/deletion (and optionally a
  // single-parameter tweak) with equal probability, "adopting the change if
  // it improves the fitness" (Section III-D). Runs on a worker thread with
  // the offspring's own RNG stream, so searches of different offspring are
  // independent and the outcome does not depend on the thread count.
  const int num_moves = config_.local_search_parameter_tweak ? 4 : 2;
  for (int step = 0; step < config_.local_search_steps; ++step) {
    Individual candidate = individual->Clone();
    bool applied = false;
    switch (rng.UniformInt(0, num_moves - 1)) {
      case 0:
        applied =
            PointInsertion(*grammar_, config_.bounds, &candidate, rng);
        break;
      case 1:
        applied = PointDeletion(config_.bounds, &candidate, rng);
        break;
      case 2:
        applied = LexemeTweak(&candidate, rng);
        break;
      default:
        applied = priors_.empty() ? LexemeTweak(&candidate, rng)
                                  : ParameterTweak(priors_, &candidate, rng);
        break;
    }
    if (!applied) continue;
    context->Evaluate(&candidate);
    if (candidate.fitness < individual->fitness) {
      *individual = std::move(candidate);
    }
  }
}

void Tag3pEngine::LocalSearchBatch(std::vector<Individual>* population,
                                   const std::vector<std::size_t>& indices) {
  if (config_.local_search_steps <= 0 || indices.empty()) return;
  // Seeds are drawn sequentially from the engine RNG before the fan-out so
  // the streams — and therefore the search trajectories — are identical
  // for any thread count.
  std::vector<std::uint64_t> seeds(indices.size());
  for (std::uint64_t& seed : seeds) seed = rng_.NextUint64();
  const std::vector<TaskFailure> failures = evaluator_.RunBatch(
      pool_lease_.pool(), indices.size(),
      [this, population, &indices, &seeds](
          std::size_t k, FitnessEvaluator::BatchContext* context) {
        Rng local_rng(seeds[k]);
        LocalSearch(&(*population)[indices[k]], local_rng, context);
      });
  // A local-search task that threw is contained: the individual keeps the
  // fitness it already earned in the evaluation batch and only misses this
  // generation's hill climbing. Any individual the failure left unevaluated
  // (it never had a fitness) is penalized so sorting stays well-defined.
  for (const TaskFailure& failure : failures) {
    Individual& individual = (*population)[indices[failure.index]];
    if (!individual.IsEvaluated()) {
      individual.fitness = kPenaltyFitness;
      individual.fully_evaluated = true;
      individual.outcome = EvalOutcome::kTaskFailed;
    }
  }
}

Tag3pResult Tag3pEngine::Run() {
  if (sink_->enabled()) {
    obs::RunManifest manifest = obs::MakeRunManifest("tag3p", config_.seed);
    manifest.config_fields = {
        {"population_size", static_cast<double>(config_.population_size)},
        {"max_generations", static_cast<double>(config_.max_generations)},
        {"elite_size", static_cast<double>(config_.elite_size)},
        {"tournament_size", static_cast<double>(config_.tournament_size)},
        {"p_crossover", config_.p_crossover},
        {"p_subtree_mutation", config_.p_subtree_mutation},
        {"p_gaussian_mutation", config_.p_gaussian_mutation},
        {"local_search_steps",
         static_cast<double>(config_.local_search_steps)},
        {"elite_polish_steps",
         static_cast<double>(config_.elite_polish_steps)},
        {"tree_caching", config_.speedups.tree_caching ? 1.0 : 0.0},
        {"short_circuiting", config_.speedups.short_circuiting ? 1.0 : 0.0},
        {"runtime_compilation",
         config_.speedups.runtime_compilation ? 1.0 : 0.0},
    };
    manifest.config_labels = {
        {"frontier_mode",
         config_.speedups.frontier_mode == FrontierMode::kFrozenFrontier
             ? "frozen"
             : "shared"},
    };
    // Thread count is environment, not config: under kFrozenFrontier the
    // trajectory (and the deterministic trace classes) must not depend on
    // it, so it must not break byte-comparability.
    manifest.num_threads = pool_lease_.pool() != nullptr
                               ? pool_lease_.pool()->num_threads()
                               : 1;
    obs::EmitManifest(sink_, manifest);
  }

  Tag3pResult result;
  std::vector<Individual> population = InitializePopulation();
  {
    std::vector<Individual*> batch;
    batch.reserve(population.size());
    for (Individual& individual : population) batch.push_back(&individual);
    evaluator_.EvaluateBatch(batch, pool_lease_.pool());
  }

  for (int generation = 0; generation < config_.max_generations;
       ++generation) {
    Timer gen_timer;
    const double sigma_scale = SigmaScale(generation);

    // Sort ascending by fitness so elites are at the front.
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });

    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < config_.elite_size; ++e) {
      next.push_back(population[static_cast<std::size_t>(e)].Clone());
    }

    // Breeding stays sequential (it owns the engine RNG); the offspring of
    // successful operator applications are evaluated and locally searched
    // afterwards as batches. Selection reads only the previous generation,
    // so deferring evaluation does not change what breeding sees.
    std::vector<std::size_t> bred;  // indices into `next` needing eval + LS
    while (next.size() < population.size()) {
      const double dice = rng_.Uniform();
      if (dice < config_.p_crossover && population.size() >= 2) {
        Individual a = TournamentSelect(population).Clone();
        Individual b = TournamentSelect(population).Clone();
        const bool crossed =
            Crossover(*grammar_, config_.bounds, config_.crossover_retries,
                      &a, &b, rng_);
        if (crossed) bred.push_back(next.size());
        next.push_back(std::move(a));
        if (next.size() < population.size()) {
          if (crossed) bred.push_back(next.size());
          next.push_back(std::move(b));
        }
      } else if (dice < config_.p_crossover + config_.p_subtree_mutation) {
        Individual child = TournamentSelect(population).Clone();
        if (SubtreeMutation(*grammar_, config_.bounds, &child, rng_)) {
          bred.push_back(next.size());
        }
        next.push_back(std::move(child));
      } else if (dice < config_.p_crossover + config_.p_subtree_mutation +
                            config_.p_gaussian_mutation) {
        Individual child = TournamentSelect(population).Clone();
        GaussianMutation(priors_, sigma_scale, &child, rng_);
        bred.push_back(next.size());
        next.push_back(std::move(child));
      } else {
        // Replication.
        next.push_back(TournamentSelect(population).Clone());
      }
    }
    population = std::move(next);

    {
      // Fresh offspring (whose copied parent fitness is stale) plus any
      // individual left unevaluated defensively — one batch.
      std::vector<Individual*> batch;
      batch.reserve(bred.size());
      for (std::size_t index : bred) batch.push_back(&population[index]);
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (!population[i].IsEvaluated() &&
            std::find(bred.begin(), bred.end(), i) == bred.end()) {
          batch.push_back(&population[i]);
        }
      }
      evaluator_.EvaluateBatch(batch, pool_lease_.pool());
    }

    LocalSearchBatch(&population, bred);

    // Memetic elite polish: fine-tune the constants of the generation's
    // best individual by hill climbing (see Tag3pConfig::elite_polish_steps).
    if (config_.elite_polish_steps > 0) {
      Individual* incumbent = &population.front();
      for (Individual& individual : population) {
        if (individual.fitness < incumbent->fitness) incumbent = &individual;
      }
      for (int step = 0; step < config_.elite_polish_steps; ++step) {
        Individual candidate = incumbent->Clone();
        const bool tweak_lexeme = priors_.empty() || rng_.Bernoulli(0.5);
        const bool applied = tweak_lexeme
                                 ? LexemeTweak(&candidate, rng_)
                                 : ParameterTweak(priors_, &candidate, rng_);
        if (!applied) continue;
        evaluator_.Evaluate(&candidate);
        if (candidate.fitness < incumbent->fitness) {
          *incumbent = std::move(candidate);
        }
      }
    }

    GenerationStats stats;
    stats.generation = generation;
    const Individual* best = &population.front();
    double sum = 0.0;
    for (const Individual& individual : population) {
      sum += individual.fitness;
      if (individual.fitness < best->fitness) best = &individual;
    }
    stats.best_fitness = best->fitness;
    stats.mean_fitness = sum / static_cast<double>(population.size());
    stats.best_size = static_cast<double>(best->Size());
    stats.seconds = gen_timer.ElapsedSeconds();
    result.history.push_back(stats);
    if (sink_->enabled()) {
      obs::TraceEvent event("generation");
      event.Field("gen", static_cast<double>(stats.generation))
          .Field("best_fitness", stats.best_fitness)
          .Field("mean_fitness", stats.mean_fitness)
          .Field("best_size", stats.best_size)
          .Timing("seconds", stats.seconds);
      sink_->Emit(std::move(event));
    }
    if (generation_callback_) generation_callback_(stats);
  }

  std::sort(population.begin(), population.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness < b.fitness;
            });
  result.best = population.front().Clone();
  result.eval_stats = evaluator_.stats();
  return result;
}

Tag3pResult RunTag3p(const Tag3pConfig& config, const Tag3pProblem& problem,
                     const obs::RunContext& context) {
  Tag3pEngine engine(problem, config, context);
  return engine.Run();
}

}  // namespace gmr::gp
