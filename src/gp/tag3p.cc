#include "gp/tag3p.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/manifest.h"

namespace gmr::gp {
namespace {

/// EvalStats as one line: decimal counters, bit-exact hex seconds, then the
/// outcome histogram. Order matches the struct declaration.
std::string EncodeEvalStats(const EvalStats& stats) {
  std::string out = std::to_string(stats.individuals_evaluated);
  out += " " + std::to_string(stats.cache_hits);
  out += " " + std::to_string(stats.cache_lookups);
  out += " " + std::to_string(stats.full_evaluations);
  out += " " + std::to_string(stats.short_circuited);
  out += " " + std::to_string(stats.static_rejects);
  out += " " + std::to_string(stats.time_steps_evaluated);
  out += " " + ckpt::HexDouble(stats.wall_seconds);
  out += " " + ckpt::HexDouble(stats.cpu_seconds);
  out += " " + ckpt::HexDouble(stats.compile_seconds);
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    out += " " + std::to_string(stats.outcomes[i]);
  }
  out += " " + std::to_string(stats.verdict_cache_lookups);
  out += " " + std::to_string(stats.verdict_cache_hits);
  for (std::size_t i = 0; i < analysis::kNumGateRules; ++i) {
    out += " " + std::to_string(stats.gate_rule_rejects[i]);
  }
  out += " " + std::to_string(stats.gradient_evaluations);
  out += " " + std::to_string(stats.tape_nodes);
  out += " " + std::to_string(stats.linesearch_steps);
  return out;
}

bool ParseCount(const std::string& token, std::size_t* value) {
  if (token.empty()) return false;
  char* end = nullptr;
  *value = static_cast<std::size_t>(std::strtoull(token.c_str(), &end, 10));
  return end == token.c_str() + token.size();
}

bool DecodeEvalStats(const std::string& line, EvalStats* stats) {
  const std::vector<std::string> t = ckpt::TokenizeSExpr(line);
  if (t.size() != 10 + kNumEvalOutcomes + 2 + analysis::kNumGateRules + 3) {
    return false;
  }
  EvalStats s;
  if (!ParseCount(t[0], &s.individuals_evaluated) ||
      !ParseCount(t[1], &s.cache_hits) || !ParseCount(t[2], &s.cache_lookups) ||
      !ParseCount(t[3], &s.full_evaluations) ||
      !ParseCount(t[4], &s.short_circuited) ||
      !ParseCount(t[5], &s.static_rejects) ||
      !ParseCount(t[6], &s.time_steps_evaluated) ||
      !ckpt::ParseHexDouble(t[7], &s.wall_seconds) ||
      !ckpt::ParseHexDouble(t[8], &s.cpu_seconds) ||
      !ckpt::ParseHexDouble(t[9], &s.compile_seconds)) {
    return false;
  }
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    if (!ParseCount(t[10 + i], &s.outcomes[i])) return false;
  }
  std::size_t at = 10 + kNumEvalOutcomes;
  if (!ParseCount(t[at++], &s.verdict_cache_lookups) ||
      !ParseCount(t[at++], &s.verdict_cache_hits)) {
    return false;
  }
  for (std::size_t i = 0; i < analysis::kNumGateRules; ++i) {
    if (!ParseCount(t[at++], &s.gate_rule_rejects[i])) return false;
  }
  if (!ParseCount(t[at++], &s.gradient_evaluations) ||
      !ParseCount(t[at++], &s.tape_nodes) ||
      !ParseCount(t[at++], &s.linesearch_steps)) {
    return false;
  }
  *stats = s;
  return true;
}

std::string EncodeGenStats(const GenerationStats& stats) {
  return std::to_string(stats.generation) + " " +
         ckpt::HexDouble(stats.best_fitness) + " " +
         ckpt::HexDouble(stats.mean_fitness) + " " +
         ckpt::HexDouble(stats.best_size) + " " +
         ckpt::HexDouble(stats.seconds);
}

bool DecodeGenStats(const std::string& line, GenerationStats* stats) {
  const std::vector<std::string> t = ckpt::TokenizeSExpr(line);
  std::size_t generation;
  GenerationStats g;
  if (t.size() != 5 || !ParseCount(t[0], &generation) ||
      !ckpt::ParseHexDouble(t[1], &g.best_fitness) ||
      !ckpt::ParseHexDouble(t[2], &g.mean_fitness) ||
      !ckpt::ParseHexDouble(t[3], &g.best_size) ||
      !ckpt::ParseHexDouble(t[4], &g.seconds)) {
    return false;
  }
  g.generation = static_cast<int>(generation);
  *stats = g;
  return true;
}

bool ParseOutcome(const std::string& token, EvalOutcome* outcome) {
  std::size_t value;
  if (!ParseCount(token, &value) || value >= kNumEvalOutcomes) return false;
  *outcome = static_cast<EvalOutcome>(value);
  return true;
}

}  // namespace

Tag3pEngine::Tag3pEngine(const Tag3pProblem& problem, Tag3pConfig config,
                         const obs::RunContext& context)
    : grammar_(problem.grammar),
      priors_(problem.priors),
      gradient_(problem.gradient),
      config_(config),
      evaluator_(problem.grammar, problem.fitness, config.speedups),
      own_rng_(config.seed),
      rng_(context.rng != nullptr ? *context.rng : own_rng_),
      pool_lease_(obs::LeasePool(context, config.speedups.num_threads)),
      sink_(obs::ResolveSink(context.sink)),
      checkpointer_(context.checkpointer) {
  GMR_CHECK(grammar_ != nullptr);
  GMR_CHECK_GT(config_.population_size, 0);
  GMR_CHECK_GE(config_.elite_size, 0);
  GMR_CHECK_LE(config_.elite_size, config_.population_size);
  GMR_CHECK_GT(config_.tournament_size, 0);
  GMR_CHECK_EQ(priors_.size(), problem.fitness->num_parameters());
  evaluator_.set_telemetry_sink(sink_);
}

Tag3pEngine::Tag3pEngine(const tag::Grammar* grammar,
                         const SequentialFitness* fitness,
                         ParameterPriors priors, Tag3pConfig config)
    : Tag3pEngine(Tag3pProblem{grammar, fitness, std::move(priors)}, config,
                  obs::RunContext{}) {}

std::vector<Individual> Tag3pEngine::InitializePopulation() {
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(config_.population_size));
  const std::vector<double> means = PriorMeans(priors_);
  while (population.size() <
         static_cast<std::size_t>(config_.population_size)) {
    // "TAG3P selects an individual size between MINSIZE and MAXSIZE ...
    // picks up beta-trees and their adjoining addresses at random, and
    // performs adjoining."
    const std::size_t target = static_cast<std::size_t>(rng_.UniformInt(
        static_cast<int>(config_.bounds.min_size),
        static_cast<int>(config_.bounds.max_size)));
    Individual individual;
    individual.genotype = tag::GrowRandom(
        *grammar_, config_.seed_alpha_index, target, rng_);
    // "In the beginning, parameters are set to the expected value."
    individual.parameters = means;
    population.push_back(std::move(individual));
  }
  return population;
}

const Individual& Tag3pEngine::TournamentSelect(
    const std::vector<Individual>& population) {
  const Individual* best = nullptr;
  for (int i = 0; i < config_.tournament_size; ++i) {
    const Individual& candidate =
        population[rng_.PickIndex(population)];
    if (best == nullptr || candidate.fitness < best->fitness) {
      best = &candidate;
    }
  }
  return *best;
}

double Tag3pEngine::SigmaScale(int generation) const {
  const int k = config_.sigma_rampdown_generations;
  const int start = config_.max_generations - k;
  if (k <= 0 || generation < start) return 1.0;
  const double progress = static_cast<double>(generation - start) /
                          static_cast<double>(std::max(k, 1));
  return 1.0 + (config_.sigma_final_scale - 1.0) * progress;
}

void Tag3pEngine::LocalSearch(Individual* individual, Rng& rng,
                              FitnessEvaluator::BatchContext* context) {
  // Stochastic hill climbing: insertion/deletion (and optionally a
  // single-parameter tweak) with equal probability, "adopting the change if
  // it improves the fitness" (Section III-D). Runs on a worker thread with
  // the offspring's own RNG stream, so searches of different offspring are
  // independent and the outcome does not depend on the thread count.
  const int num_moves = config_.local_search_parameter_tweak ? 4 : 2;
  for (int step = 0; step < config_.local_search_steps; ++step) {
    Individual candidate = individual->Clone();
    bool applied = false;
    switch (rng.UniformInt(0, num_moves - 1)) {
      case 0:
        applied =
            PointInsertion(*grammar_, config_.bounds, &candidate, rng);
        break;
      case 1:
        applied = PointDeletion(config_.bounds, &candidate, rng);
        break;
      case 2:
        applied = LexemeTweak(&candidate, rng);
        break;
      default:
        applied = priors_.empty() ? LexemeTweak(&candidate, rng)
                                  : ParameterTweak(priors_, &candidate, rng);
        break;
    }
    if (!applied) continue;
    context->Evaluate(&candidate);
    if (candidate.fitness < individual->fitness) {
      *individual = std::move(candidate);
    }
  }
}

void Tag3pEngine::LocalSearchBatch(std::vector<Individual>* population,
                                   const std::vector<std::size_t>& indices) {
  if (config_.local_search_steps <= 0 || indices.empty()) return;
  // Seeds are drawn sequentially from the engine RNG before the fan-out so
  // the streams — and therefore the search trajectories — are identical
  // for any thread count.
  std::vector<std::uint64_t> seeds(indices.size());
  for (std::uint64_t& seed : seeds) seed = rng_.NextUint64();
  const std::vector<TaskFailure> failures = evaluator_.RunBatch(
      pool_lease_.pool(), indices.size(),
      [this, population, &indices, &seeds](
          std::size_t k, FitnessEvaluator::BatchContext* context) {
        Rng local_rng(seeds[k]);
        LocalSearch(&(*population)[indices[k]], local_rng, context);
      });
  // A local-search task that threw is contained: the individual keeps the
  // fitness it already earned in the evaluation batch and only misses this
  // generation's hill climbing. Any individual the failure left unevaluated
  // (it never had a fitness) is penalized so sorting stays well-defined.
  for (const TaskFailure& failure : failures) {
    Individual& individual = (*population)[indices[failure.index]];
    if (!individual.IsEvaluated()) {
      individual.fitness = kPenaltyFitness;
      individual.fully_evaluated = true;
      individual.outcome = EvalOutcome::kTaskFailed;
    }
  }
}

Tag3pResult Tag3pEngine::Run() {
  Tag3pResult result;
  std::vector<Individual> population;
  int start_generation = 0;
  bool resumed = false;
  if (checkpointer_ != nullptr) {
    const ckpt::Snapshot* snapshot =
        checkpointer_->ResumeFor("tag3p", CheckpointFingerprint());
    if (snapshot != nullptr &&
        RestoreCheckpoint(*snapshot, &population, &result,
                          &start_generation)) {
      resumed = true;
    }
  }

  // The manifest was already written (and made durable) by the first
  // segment of a resumed run; re-emitting it would duplicate it in the
  // continued trace.
  if (!resumed && sink_->enabled()) {
    obs::RunManifest manifest = obs::MakeRunManifest("tag3p", config_.seed);
    manifest.config_fields = {
        {"population_size", static_cast<double>(config_.population_size)},
        {"max_generations", static_cast<double>(config_.max_generations)},
        {"elite_size", static_cast<double>(config_.elite_size)},
        {"tournament_size", static_cast<double>(config_.tournament_size)},
        {"p_crossover", config_.p_crossover},
        {"p_subtree_mutation", config_.p_subtree_mutation},
        {"p_gaussian_mutation", config_.p_gaussian_mutation},
        {"local_search_steps",
         static_cast<double>(config_.local_search_steps)},
        {"elite_polish_steps",
         static_cast<double>(config_.elite_polish_steps)},
        {"tree_caching", config_.speedups.tree_caching ? 1.0 : 0.0},
        {"short_circuiting", config_.speedups.short_circuiting ? 1.0 : 0.0},
        {"runtime_compilation",
         config_.speedups.runtime_compilation ? 1.0 : 0.0},
    };
    manifest.config_labels = {
        {"frontier_mode",
         config_.speedups.frontier_mode == FrontierMode::kFrozenFrontier
             ? "frozen"
             : "shared"},
    };
    // Thread count is environment, not config: under kFrozenFrontier the
    // trajectory (and the deterministic trace classes) must not depend on
    // it, so it must not break byte-comparability.
    manifest.num_threads = pool_lease_.pool() != nullptr
                               ? pool_lease_.pool()->num_threads()
                               : 1;
    obs::EmitManifest(sink_, manifest);
  }

  if (!resumed) {
    population = InitializePopulation();
    std::vector<Individual*> batch;
    batch.reserve(population.size());
    for (Individual& individual : population) batch.push_back(&individual);
    evaluator_.EvaluateBatch(batch, pool_lease_.pool());
  }

  for (int generation = start_generation;
       generation < config_.max_generations; ++generation) {
    Timer gen_timer;
    const double sigma_scale = SigmaScale(generation);

    // Sort ascending by fitness so elites are at the front.
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });

    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < config_.elite_size; ++e) {
      next.push_back(population[static_cast<std::size_t>(e)].Clone());
    }

    // Breeding stays sequential (it owns the engine RNG); the offspring of
    // successful operator applications are evaluated and locally searched
    // afterwards as batches. Selection reads only the previous generation,
    // so deferring evaluation does not change what breeding sees.
    std::vector<std::size_t> bred;  // indices into `next` needing eval + LS
    while (next.size() < population.size()) {
      const double dice = rng_.Uniform();
      if (dice < config_.p_crossover && population.size() >= 2) {
        Individual a = TournamentSelect(population).Clone();
        Individual b = TournamentSelect(population).Clone();
        const bool crossed =
            Crossover(*grammar_, config_.bounds, config_.crossover_retries,
                      &a, &b, rng_);
        if (crossed) bred.push_back(next.size());
        next.push_back(std::move(a));
        if (next.size() < population.size()) {
          if (crossed) bred.push_back(next.size());
          next.push_back(std::move(b));
        }
      } else if (dice < config_.p_crossover + config_.p_subtree_mutation) {
        Individual child = TournamentSelect(population).Clone();
        if (SubtreeMutation(*grammar_, config_.bounds, &child, rng_)) {
          bred.push_back(next.size());
        }
        next.push_back(std::move(child));
      } else if (dice < config_.p_crossover + config_.p_subtree_mutation +
                            config_.p_gaussian_mutation) {
        Individual child = TournamentSelect(population).Clone();
        GaussianMutation(priors_, sigma_scale, &child, rng_);
        bred.push_back(next.size());
        next.push_back(std::move(child));
      } else {
        // Replication.
        next.push_back(TournamentSelect(population).Clone());
      }
    }
    population = std::move(next);

    {
      // Fresh offspring (whose copied parent fitness is stale) plus any
      // individual left unevaluated defensively — one batch.
      std::vector<Individual*> batch;
      batch.reserve(bred.size());
      for (std::size_t index : bred) batch.push_back(&population[index]);
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (!population[i].IsEvaluated() &&
            std::find(bred.begin(), bred.end(), i) == bred.end()) {
          batch.push_back(&population[i]);
        }
      }
      evaluator_.EvaluateBatch(batch, pool_lease_.pool());
    }

    LocalSearchBatch(&population, bred);

    // Memetic elite polish: fine-tune the constants of the generation's
    // best individual by hill climbing (see Tag3pConfig::elite_polish_steps).
    if (config_.elite_polish_steps > 0) {
      Individual* incumbent = &population.front();
      for (Individual& individual : population) {
        if (individual.fitness < incumbent->fitness) incumbent = &individual;
      }
      for (int step = 0; step < config_.elite_polish_steps; ++step) {
        Individual candidate = incumbent->Clone();
        const bool tweak_lexeme = priors_.empty() || rng_.Bernoulli(0.5);
        const bool applied = tweak_lexeme
                                 ? LexemeTweak(&candidate, rng_)
                                 : ParameterTweak(priors_, &candidate, rng_);
        if (!applied) continue;
        evaluator_.Evaluate(&candidate);
        if (candidate.fitness < incumbent->fitness) {
          *incumbent = std::move(candidate);
        }
      }
    }

    // Gradient-informed constant polish (see
    // Tag3pConfig::elite_gradient_steps): projected steepest descent with
    // step halving on the elite's parameters, driven by the exact
    // reverse-mode rollout gradient. RNG-free; acceptance only on strict
    // improvement, evaluated through the evaluator so cache/frontier
    // discipline is preserved.
    if (config_.elite_gradient_steps > 0 && gradient_ != nullptr &&
        !priors_.empty()) {
      Individual* incumbent = &population.front();
      for (Individual& individual : population) {
        if (individual.fitness < incumbent->fitness) incumbent = &individual;
      }
      // The polish only moves parameters, never the genotype, so the
      // phenotype is fixed for the whole descent.
      const std::vector<expr::ExprPtr> equations =
          evaluator_.Phenotype(*incumbent);
      double trust = 1.0;
      for (int step = 0; step < config_.elite_gradient_steps; ++step) {
        double value = 0.0;
        std::vector<double> grad;
        GradientFitness::GradientStats grad_stats;
        const bool trustworthy = gradient_->EvaluateGradient(
            equations, incumbent->parameters, &value, &grad, &grad_stats);
        evaluator_.NoteGradientWork(1, grad_stats.tape_nodes, 0);
        if (!trustworthy || grad.size() != incumbent->parameters.size()) {
          break;  // no usable descent direction (tape fault, NaN adjoint)
        }
        double grad_max = 0.0;
        for (const double g : grad) grad_max = std::max(grad_max, std::abs(g));
        if (grad_max == 0.0) break;  // flat (e.g. fully aborted rollout)
        bool accepted = false;
        for (int halve = 0; halve < 6 && !accepted; ++halve) {
          Individual candidate = incumbent->Clone();
          bool moved = false;
          for (std::size_t i = 0; i < candidate.parameters.size(); ++i) {
            const double span = priors_[i].hi - priors_[i].lo;
            double p = candidate.parameters[i] -
                       trust * 0.1 * span * (grad[i] / grad_max);
            p = std::min(std::max(p, priors_[i].lo), priors_[i].hi);
            moved = moved || p != candidate.parameters[i];
            candidate.parameters[i] = p;
          }
          if (moved) {
            evaluator_.Evaluate(&candidate);
            evaluator_.NoteGradientWork(0, 0, 1);
            if (candidate.fitness < incumbent->fitness) {
              *incumbent = std::move(candidate);
              accepted = true;
              break;
            }
          }
          trust *= 0.5;
        }
        if (!accepted) break;
        trust = std::min(1.0, trust * 2.0);
      }
    }

    GenerationStats stats;
    stats.generation = generation;
    const Individual* best = &population.front();
    double sum = 0.0;
    for (const Individual& individual : population) {
      sum += individual.fitness;
      if (individual.fitness < best->fitness) best = &individual;
    }
    stats.best_fitness = best->fitness;
    stats.mean_fitness = sum / static_cast<double>(population.size());
    stats.best_size = static_cast<double>(best->Size());
    stats.seconds = gen_timer.ElapsedSeconds();
    result.history.push_back(stats);
    if (sink_->enabled()) {
      obs::TraceEvent event("generation");
      event.Field("gen", static_cast<double>(stats.generation))
          .Field("best_fitness", stats.best_fitness)
          .Field("mean_fitness", stats.mean_fitness)
          .Field("best_size", stats.best_size)
          .Timing("seconds", stats.seconds);
      sink_->Emit(std::move(event));
    }
    if (generation_callback_) generation_callback_(stats);

    // Generation end is the batch barrier: drain the trace sink's buffered
    // tail (an abnormal termination then loses at most the current
    // generation's events, which the resume re-emits) and checkpoint on
    // the configured cadence.
    sink_->Flush();
    if (checkpointer_ != nullptr &&
        checkpointer_->ShouldSnapshot(
            static_cast<std::uint64_t>(generation))) {
      SaveCheckpoint(generation, population, result);
    }
  }

  std::sort(population.begin(), population.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness < b.fitness;
            });
  result.best = population.front().Clone();
  result.eval_stats = evaluator_.stats();
  return result;
}

std::vector<std::string> Tag3pEngine::CheckpointFingerprint() const {
  return ckpt::MakeFingerprint({
      {"seed", std::to_string(config_.seed)},
      {"population_size", std::to_string(config_.population_size)},
      {"max_generations", std::to_string(config_.max_generations)},
      {"elite_size", std::to_string(config_.elite_size)},
      {"local_search_steps", std::to_string(config_.local_search_steps)},
      {"elite_polish_steps", std::to_string(config_.elite_polish_steps)},
      {"elite_gradient_steps",
       std::to_string(config_.elite_gradient_steps)},
      // State-vector width of the problem: a resume against a checkpoint
      // written for a different constituent registry is refused.
      {"num_species", std::to_string(evaluator_.fitness()->num_states())},
  });
}

void Tag3pEngine::SaveCheckpoint(int generation,
                                 const std::vector<Individual>& population,
                                 const Tag3pResult& result) {
  ckpt::Snapshot snapshot;
  snapshot.driver = "tag3p";
  snapshot.step = static_cast<std::uint64_t>(generation);
  snapshot.AddSection("fingerprint")->lines = CheckpointFingerprint();
  snapshot.AddSection("rng")->lines = {
      ckpt::SerializeRngState(rng_.SaveState())};

  ckpt::Section* pop = snapshot.AddSection("population");
  pop->lines.reserve(population.size() * 3);
  for (const Individual& individual : population) {
    pop->lines.push_back(
        "i " + ckpt::HexDouble(individual.fitness) +
        (individual.fully_evaluated ? " 1 " : " 0 ") +
        std::to_string(static_cast<int>(individual.outcome)));
    pop->lines.push_back(ckpt::SerializeDerivation(*individual.genotype));
    pop->lines.push_back(ckpt::SerializeDoubles(individual.parameters));
  }

  ckpt::Section* ev = snapshot.AddSection("evaluator");
  ev->lines.push_back("frontier " +
                      ckpt::HexDouble(evaluator_.best_prev_full()));
  ev->lines.push_back("stats " + EncodeEvalStats(evaluator_.stats()));

  // The tree cache is part of the deterministic trajectory (cache_hits is
  // a deterministic eval_batch field), so it ships with every snapshot.
  ckpt::Section* cache = snapshot.AddSection("cache");
  for (const FitnessEvaluator::CacheExport& entry : evaluator_.ExportCache()) {
    cache->lines.push_back(ckpt::HexUint64(entry.key) + " " +
                           ckpt::HexDouble(entry.fitness) +
                           (entry.fully_evaluated ? " 1 " : " 0 ") +
                           std::to_string(static_cast<int>(entry.outcome)));
  }

  ckpt::Section* history = snapshot.AddSection("history");
  for (const GenerationStats& stats : result.history) {
    history->lines.push_back(EncodeGenStats(stats));
  }

  checkpointer_->Save(std::move(snapshot));
}

bool Tag3pEngine::RestoreCheckpoint(const ckpt::Snapshot& snapshot,
                                    std::vector<Individual>* population,
                                    Tag3pResult* result,
                                    int* start_generation) {
  // Parse everything into locals first: a torn/garbled section must leave
  // the engine untouched so the caller can fall back to a fresh start.
  const ckpt::Section* rng_section = snapshot.FindSection("rng");
  RngState rng_state;
  if (rng_section == nullptr || rng_section->lines.size() != 1 ||
      !ckpt::ParseRngState(rng_section->lines[0], &rng_state)) {
    return false;
  }

  const ckpt::Section* pop_section = snapshot.FindSection("population");
  if (pop_section == nullptr || pop_section->lines.size() % 3 != 0 ||
      pop_section->lines.size() / 3 !=
          static_cast<std::size_t>(config_.population_size)) {
    return false;
  }
  std::vector<Individual> restored;
  restored.reserve(pop_section->lines.size() / 3);
  for (std::size_t i = 0; i < pop_section->lines.size(); i += 3) {
    const std::vector<std::string> head =
        ckpt::TokenizeSExpr(pop_section->lines[i]);
    Individual individual;
    if (head.size() != 4 || head[0] != "i" ||
        !ckpt::ParseHexDouble(head[1], &individual.fitness) ||
        (head[2] != "0" && head[2] != "1") ||
        !ParseOutcome(head[3], &individual.outcome)) {
      return false;
    }
    individual.fully_evaluated = head[2] == "1";
    std::string error;
    individual.genotype =
        ckpt::ParseDerivationLine(pop_section->lines[i + 1], &error);
    if (individual.genotype == nullptr ||
        !tag::Validate(*grammar_, *individual.genotype, &error)) {
      return false;
    }
    if (!ckpt::ParseDoubles(pop_section->lines[i + 2],
                            &individual.parameters)) {
      return false;
    }
    restored.push_back(std::move(individual));
  }

  const ckpt::Section* ev_section = snapshot.FindSection("evaluator");
  double frontier;
  EvalStats stats;
  if (ev_section == nullptr || ev_section->lines.size() != 2 ||
      ev_section->lines[0].compare(0, 9, "frontier ") != 0 ||
      !ckpt::ParseHexDouble(ev_section->lines[0].substr(9), &frontier) ||
      ev_section->lines[1].compare(0, 6, "stats ") != 0 ||
      !DecodeEvalStats(ev_section->lines[1].substr(6), &stats)) {
    return false;
  }

  const ckpt::Section* cache_section = snapshot.FindSection("cache");
  if (cache_section == nullptr) return false;
  std::vector<FitnessEvaluator::CacheExport> cache_entries;
  cache_entries.reserve(cache_section->lines.size());
  for (const std::string& line : cache_section->lines) {
    const std::vector<std::string> fields = ckpt::TokenizeSExpr(line);
    FitnessEvaluator::CacheExport entry;
    if (fields.size() != 4 || !ckpt::ParseHexUint64(fields[0], &entry.key) ||
        !ckpt::ParseHexDouble(fields[1], &entry.fitness) ||
        (fields[2] != "0" && fields[2] != "1") ||
        !ParseOutcome(fields[3], &entry.outcome)) {
      return false;
    }
    entry.fully_evaluated = fields[2] == "1";
    cache_entries.push_back(entry);
  }

  const ckpt::Section* history_section = snapshot.FindSection("history");
  if (history_section == nullptr) return false;
  std::vector<GenerationStats> history;
  history.reserve(history_section->lines.size());
  for (const std::string& line : history_section->lines) {
    GenerationStats gen_stats;
    if (!DecodeGenStats(line, &gen_stats)) return false;
    history.push_back(gen_stats);
  }

  rng_.RestoreState(rng_state);
  evaluator_.RestoreStats(stats);
  evaluator_.RestoreBestPrevFull(frontier);
  evaluator_.ImportCache(cache_entries);
  *population = std::move(restored);
  result->history = std::move(history);
  *start_generation = static_cast<int>(snapshot.step) + 1;
  return true;
}

Tag3pResult RunTag3p(const Tag3pConfig& config, const Tag3pProblem& problem,
                     const obs::RunContext& context) {
  Tag3pEngine engine(problem, config, context);
  return engine.Run();
}

}  // namespace gmr::gp
