#ifndef GMR_GP_OPERATORS_H_
#define GMR_GP_OPERATORS_H_

#include "common/rng.h"
#include "gp/individual.h"
#include "gp/parameter_prior.h"
#include "tag/generate.h"
#include "tag/grammar.h"

namespace gmr::gp {

/// Size bounds on individuals (derivation-tree node counts). Operators must
/// keep individuals within [min_size, max_size].
struct SizeBounds {
  std::size_t min_size = 2;
  std::size_t max_size = 50;
};

/// Crossover (Figure 6(a)-(b)): selects random derivation subtrees of the
/// two parents, checks compatibility (each subtree's beta root label must
/// match the label at the other's adjunction site — in this encoding both
/// attachment sites carry the beta root label, so compatibility reduces to
/// equal root labels), and swaps them. "Otherwise, the previous process is
/// retried unless the retry count has reached some predefined limit."
/// Returns true when a swap was performed; parents are modified in place.
bool Crossover(const tag::Grammar& grammar, const SizeBounds& bounds,
               int max_retries, Individual* a, Individual* b, Rng& rng);

/// Subtree mutation (Figure 6(c)-(d)): replaces a random derivation subtree
/// with a freshly grown one of similar size, compatible with the removed
/// subtree. Returns true on success (a tree with only a root is left
/// unchanged unless a site exists for insertion-style growth).
bool SubtreeMutation(const tag::Grammar& grammar, const SizeBounds& bounds,
                     Individual* individual, Rng& rng);

/// Gaussian mutation of constants (Section III-B3): every entry of the
/// parameter vector is redrawn from a Gaussian centered on its *current*
/// value ("it becomes the new mean of the Gaussian distribution") with
/// sigma = prior.InitialSigma() * sigma_scale, clamped to the prior bounds.
/// Lexeme constants in the derivation tree mutate the same way with a
/// relative sigma (they have no expert bounds — revised models may contain
/// constants far outside the initialization range, cf. paper Eq. (7)).
void GaussianMutation(const ParameterPriors& priors, double sigma_scale,
                      Individual* individual, Rng& rng);

/// Local-search point insertion: one random compatible adjunction
/// (Figure 6(e)-(f)). Respects bounds. Returns true if applied.
bool PointInsertion(const tag::Grammar& grammar, const SizeBounds& bounds,
                    Individual* individual, Rng& rng);

/// Local-search point deletion: removes one random leaf derivation node
/// (Figure 6(g)-(h)). Respects bounds. Returns true if applied.
bool PointDeletion(const SizeBounds& bounds, Individual* individual,
                   Rng& rng);

/// Local-search parameter tweak (an extension over the paper's
/// insertion/deletion pair, see DESIGN.md): redraws ONE random constant
/// parameter from its truncated prior around the current value with half
/// the usual sigma — fine-grained hill climbing on parameters that the
/// all-at-once Gaussian mutation cannot provide. Returns false when the
/// individual has no parameters.
bool ParameterTweak(const ParameterPriors& priors, Individual* individual,
                    Rng& rng);

/// Local-search lexeme tweak (extension, companion to ParameterTweak):
/// multiplies ONE random lexeme constant of the derivation tree by a
/// log-normal step (and flips its sign occasionally), the fine-grained
/// counterpart of the all-lexeme jitter inside Gaussian mutation. Returns
/// false when the derivation has no lexemes.
bool LexemeTweak(Individual* individual, Rng& rng);

}  // namespace gmr::gp

#endif  // GMR_GP_OPERATORS_H_
