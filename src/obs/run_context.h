#ifndef GMR_OBS_RUN_CONTEXT_H_
#define GMR_OBS_RUN_CONTEXT_H_

#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/telemetry.h"

namespace gmr::ckpt {
class Checkpointer;
}  // namespace gmr::ckpt

namespace gmr::obs {

/// The shared parameter object of the unified driver API: every search
/// driver runs as `Run(config, problem, RunContext) -> Result`. The context
/// carries the cross-cutting run resources — none owned:
///   - pool: evaluation thread pool, shared across drivers so nested runs
///     (e.g. RunGmr -> Tag3p) and back-to-back calibrations reuse one set
///     of workers instead of constructing private pools with divergent
///     lifetimes. Null means "derive from the driver's config" (LeasePool).
///   - sink: telemetry consumer; null means the NullSink (tracing off).
///   - rng: externally owned random stream; null means the driver seeds its
///     own from its config (the reproducible default).
///   - checkpointer: durable snapshot/resume service (src/ckpt/); null
///     means checkpointing off. Forward-declared so obs does not depend on
///     ckpt — only drivers that checkpoint include checkpoint.h.
/// A default-constructed RunContext reproduces the pre-context behavior
/// exactly, so `Run(config, problem, {})` is always valid.
struct RunContext {
  ThreadPool* pool = nullptr;
  TelemetrySink* sink = nullptr;
  Rng* rng = nullptr;
  ckpt::Checkpointer* checkpointer = nullptr;

  /// Never-null sink accessor for emission sites.
  TelemetrySink& telemetry() const { return *ResolveSink(sink); }
};

/// Builds the pool implied by a thread count: null when `num_threads <= 1`
/// (serial paths take a null pool). The single pool-construction point —
/// drivers must not call `new ThreadPool` themselves.
std::unique_ptr<ThreadPool> MakeThreadPool(int num_threads);

/// A resolved pool for one run: either the context's shared pool (borrowed)
/// or one owned by the lease, derived from the driver's configured thread
/// count. Drivers hold the lease for the duration of the run, which pins
/// the pool lifetime to the run instead of to the driver object.
class PoolLease {
 public:
  PoolLease() = default;
  PoolLease(PoolLease&&) = default;
  PoolLease& operator=(PoolLease&&) = default;

  /// The pool to fan out over; null means run serially.
  ThreadPool* pool() const { return pool_; }

 private:
  friend PoolLease LeasePool(const RunContext& context, int num_threads);
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

/// Resolves the pool for a run: the context's pool when set (the shared
/// path), otherwise a pool owned by the returned lease sized from the
/// driver's `num_threads` config (the standalone path).
PoolLease LeasePool(const RunContext& context, int num_threads);

}  // namespace gmr::obs

#endif  // GMR_OBS_RUN_CONTEXT_H_
