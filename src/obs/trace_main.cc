// gmr_trace: summarize a JSONL run trace written by JsonlTraceSink.
//
//   gmr_trace trace.jsonl                 # text summary
//   gmr_trace --csv curve trace.jsonl     # fitness curve as CSV
//   gmr_trace --csv batches trace.jsonl   # cumulative cache-hit series
//   gmr_trace --csv outcomes trace.jsonl  # EvalOutcome mix

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace_reader.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--csv curve|batches|outcomes] trace.jsonl\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_mode;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      csv_mode = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::vector<gmr::obs::TraceRecord> records;
  const gmr::Status status = gmr::obs::ReadTrace(path, &records);
  if (!status.ok()) {
    std::fprintf(stderr, "gmr_trace: %s\n", status.message.c_str());
    return 1;
  }
  const gmr::obs::TraceSummary summary =
      gmr::obs::SummarizeTrace(records);

  std::string out;
  if (csv_mode.empty()) {
    out = gmr::obs::RenderSummaryText(summary);
  } else if (csv_mode == "curve") {
    out = gmr::obs::RenderCurveCsv(summary);
  } else if (csv_mode == "batches") {
    out = gmr::obs::RenderBatchesCsv(summary);
  } else if (csv_mode == "outcomes") {
    out = gmr::obs::RenderOutcomesCsv(summary);
  } else {
    return Usage(argv[0]);
  }
  std::fputs(out.c_str(), stdout);
  return 0;
}
