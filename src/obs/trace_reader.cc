#include "obs/trace_reader.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace gmr::obs {
namespace {

/// Cursor over one line of flat JSON.
struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return AtEnd() ? '\0' : text[pos]; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

bool ParseString(Cursor* cursor, std::string* out) {
  if (!cursor->Consume('"')) return false;
  out->clear();
  while (!cursor->AtEnd()) {
    char c = cursor->text[cursor->pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cursor->AtEnd()) return false;
      char escape = cursor->text[cursor->pos++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (cursor->pos + 4 > cursor->text.size()) return false;
          const std::string hex = cursor->text.substr(cursor->pos, 4);
          cursor->pos += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // The writer only emits \u00xx for control characters.
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    } else {
      out->push_back(c);
    }
  }
  return false;  // unterminated string
}

bool ParseNumber(Cursor* cursor, double* out) {
  const char* start = cursor->text.c_str() + cursor->pos;
  char* end = nullptr;
  *out = std::strtod(start, &end);
  if (end == start) return false;
  cursor->pos += static_cast<std::size_t>(end - start);
  return true;
}

}  // namespace

double TraceRecord::FindNumber(const std::string& key, double fallback) const {
  for (const auto& [k, v] : numbers) {
    if (k == key) return v;
  }
  return fallback;
}

std::string TraceRecord::FindString(const std::string& key,
                                    const std::string& fallback) const {
  for (const auto& [k, v] : strings) {
    if (k == key) return v;
  }
  return fallback;
}

bool TraceRecord::HasNumber(const std::string& key) const {
  for (const auto& [k, v] : numbers) {
    if (k == key) return true;
  }
  return false;
}

bool ParseTraceLine(const std::string& line, TraceRecord* record) {
  *record = TraceRecord{};
  Cursor cursor{line};
  cursor.SkipSpace();
  if (!cursor.Consume('{')) return false;
  bool first = true;
  for (;;) {
    cursor.SkipSpace();
    if (cursor.Consume('}')) break;
    if (!first && !cursor.Consume(',')) return false;
    first = false;
    cursor.SkipSpace();
    std::string key;
    if (!ParseString(&cursor, &key)) return false;
    cursor.SkipSpace();
    if (!cursor.Consume(':')) return false;
    cursor.SkipSpace();
    if (cursor.Peek() == '"') {
      std::string value;
      if (!ParseString(&cursor, &value)) return false;
      if (key == "type") {
        record->type = value;
      } else {
        record->strings.emplace_back(key, value);
      }
    } else if (cursor.text.compare(cursor.pos, 4, "null") == 0) {
      cursor.pos += 4;  // NaN serializes as null; surface it as such
      record->numbers.emplace_back(key, std::nan(""));
    } else {
      double value = 0;
      if (!ParseNumber(&cursor, &value)) return false;
      if (key == "seq") {
        record->seq = static_cast<std::uint64_t>(value);
      } else {
        record->numbers.emplace_back(key, value);
      }
    }
  }
  // Every event the writer emits leads with its type; a record without one
  // is not a trace line.
  return !record->type.empty();
}

Status ReadTrace(const std::string& path, std::vector<TraceRecord>* records) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open trace file: " + path);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    TraceRecord record;
    if (!ParseTraceLine(line, &record)) {
      return Status::Error(path + ":" + std::to_string(line_number) +
                           ": malformed trace line");
    }
    records->push_back(std::move(record));
  }
  return Status::Ok();
}

TraceSummary SummarizeTrace(const std::vector<TraceRecord>& records) {
  TraceSummary summary;
  summary.num_events = records.size();
  double cum_lookups = 0;
  double cum_hits = 0;
  double cum_evaluated = 0;
  double cum_static_rejects = 0;
  for (const TraceRecord& record : records) {
    if (record.type == "manifest") {
      if (summary.driver.empty()) {
        summary.driver = record.FindString("driver");
        summary.seed =
            static_cast<std::uint64_t>(record.FindNumber("seed"));
        summary.git_describe = record.FindString("git_describe");
        summary.started_at_utc = record.FindString("started_at_utc");
      }
    } else if (record.type == "generation") {
      GenerationPoint point;
      point.generation = record.FindNumber("gen");
      point.best_fitness = record.FindNumber("best_fitness");
      point.mean_fitness = record.FindNumber("mean_fitness");
      point.seconds = record.FindNumber("seconds");
      summary.curve.push_back(point);
      summary.final_best_fitness = point.best_fitness;
      summary.has_final_best = true;
    } else if (record.type == "eval_batch") {
      BatchPoint point;
      point.seq = record.seq;
      point.individuals = record.FindNumber("individuals");
      cum_lookups += record.FindNumber("cache_lookups");
      cum_hits += record.FindNumber("cache_hits");
      cum_evaluated += point.individuals;
      cum_static_rejects += record.FindNumber("static_rejects");
      point.cum_lookups = cum_lookups;
      point.cum_hits = cum_hits;
      point.cum_evaluated = cum_evaluated;
      point.cum_static_rejects = cum_static_rejects;
      point.cum_hit_rate = cum_lookups > 0 ? cum_hits / cum_lookups : 0;
      summary.batches.push_back(point);
      summary.gradient_evaluations +=
          record.FindNumber("gradient_evaluations");
      summary.tape_nodes += record.FindNumber("tape_nodes");
      summary.linesearch_steps += record.FindNumber("linesearch_steps");
      for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
        const std::string key =
            std::string("outcomes.") +
            EvalOutcomeName(static_cast<EvalOutcome>(i));
        summary.outcomes[i] +=
            static_cast<std::uint64_t>(record.FindNumber(key));
      }
    }
  }
  summary.total_individuals = static_cast<std::uint64_t>(cum_evaluated);
  summary.cache_hit_rate = cum_lookups > 0 ? cum_hits / cum_lookups : 0;
  summary.static_reject_rate =
      cum_evaluated > 0 ? cum_static_rejects / cum_evaluated : 0;
  return summary;
}

namespace {

void AppendLine(std::string* out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
  out->push_back('\n');
}

}  // namespace

std::string RenderSummaryText(const TraceSummary& summary) {
  std::string out;
  AppendLine(&out, "trace summary");
  AppendLine(&out, "  driver:          %s",
             summary.driver.empty() ? "(no manifest)" : summary.driver.c_str());
  if (!summary.driver.empty()) {
    AppendLine(&out, "  seed:            %llu",
               static_cast<unsigned long long>(summary.seed));
  }
  if (!summary.git_describe.empty()) {
    AppendLine(&out, "  build:           %s", summary.git_describe.c_str());
  }
  if (!summary.started_at_utc.empty()) {
    AppendLine(&out, "  started:         %s", summary.started_at_utc.c_str());
  }
  AppendLine(&out, "  events:          %zu", summary.num_events);
  AppendLine(&out, "  generations:     %zu", summary.curve.size());
  AppendLine(&out, "  eval batches:    %zu", summary.batches.size());
  AppendLine(&out, "  individuals:     %llu",
             static_cast<unsigned long long>(summary.total_individuals));
  if (summary.has_final_best) {
    AppendLine(&out, "  final best:      %.6g", summary.final_best_fitness);
  }
  AppendLine(&out, "  cache hit rate:  %.1f%%",
             100.0 * summary.cache_hit_rate);
  AppendLine(&out, "  static rejects:  %.1f%%",
             100.0 * summary.static_reject_rate);

  if (!summary.curve.empty()) {
    AppendLine(&out, "fitness curve (generation, best, mean):");
    // At most 12 rows: first, last, and evenly spaced interior points.
    const std::size_t n = summary.curve.size();
    const std::size_t stride = n <= 12 ? 1 : (n + 11) / 12;
    for (std::size_t i = 0; i < n; i += stride) {
      const GenerationPoint& p = summary.curve[i];
      AppendLine(&out, "  %4.0f  %12.6g  %12.6g", p.generation,
                 p.best_fitness, p.mean_fitness);
    }
    if (stride > 1 && (n - 1) % stride != 0) {
      const GenerationPoint& p = summary.curve.back();
      AppendLine(&out, "  %4.0f  %12.6g  %12.6g", p.generation,
                 p.best_fitness, p.mean_fitness);
    }
  }

  std::uint64_t total_outcomes = 0;
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    total_outcomes += summary.outcomes[i];
  }
  if (total_outcomes > 0) {
    AppendLine(&out, "eval outcome mix:");
    for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
      if (summary.outcomes[i] == 0) continue;
      AppendLine(&out, "  %-22s %8llu  (%.1f%%)",
                 EvalOutcomeName(static_cast<EvalOutcome>(i)),
                 static_cast<unsigned long long>(summary.outcomes[i]),
                 100.0 * static_cast<double>(summary.outcomes[i]) /
                     static_cast<double>(total_outcomes));
    }
  }
  return out;
}

std::string RenderCurveCsv(const TraceSummary& summary) {
  std::string out = "generation,best_fitness,mean_fitness,seconds\n";
  for (const GenerationPoint& p : summary.curve) {
    AppendLine(&out, "%.0f,%.17g,%.17g,%.17g", p.generation, p.best_fitness,
               p.mean_fitness, p.seconds);
  }
  return out;
}

std::string RenderBatchesCsv(const TraceSummary& summary) {
  std::string out =
      "seq,individuals,cum_lookups,cum_hits,cum_hit_rate,"
      "cum_static_rejects\n";
  for (const BatchPoint& p : summary.batches) {
    AppendLine(&out, "%llu,%.0f,%.0f,%.0f,%.17g,%.0f",
               static_cast<unsigned long long>(p.seq), p.individuals,
               p.cum_lookups, p.cum_hits, p.cum_hit_rate,
               p.cum_static_rejects);
  }
  return out;
}

std::string RenderOutcomesCsv(const TraceSummary& summary) {
  std::string out = "outcome,count\n";
  for (std::size_t i = 0; i < kNumEvalOutcomes; ++i) {
    AppendLine(&out, "%s,%llu",
               EvalOutcomeName(static_cast<EvalOutcome>(i)),
               static_cast<unsigned long long>(summary.outcomes[i]));
  }
  return out;
}

}  // namespace gmr::obs
