#ifndef GMR_OBS_TELEMETRY_H_
#define GMR_OBS_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

/// Run telemetry (DESIGN.md §4f): structured trace events emitted by the
/// search drivers at deterministic coordinator points (generation ends,
/// batch barriers, calibrator iterations) into a TelemetrySink. The default
/// NullSink makes instrumentation free-when-off: every emission site guards
/// with `sink->enabled()`, a non-virtual-call-free false for the null sink.

namespace gmr::obs {

/// One trace event. Payload entries are split by determinism class:
///   - fields/labels   deterministic under kFrozenFrontier — a pure function
///                     of (config, seed), independent of thread count;
///   - timings         wall/cpu measurements, never reproducible;
///   - env_fields/env_labels
///                     machine environment (hostname, git, thread count).
/// JsonlTraceSink can suppress the last two classes so traces byte-compare
/// across machines and thread counts (the determinism contract).
struct TraceEvent {
  explicit TraceEvent(std::string event_type) : type(std::move(event_type)) {}

  std::string type;
  std::vector<std::pair<std::string, double>> fields;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> timings;
  std::vector<std::pair<std::string, double>> env_fields;
  std::vector<std::pair<std::string, std::string>> env_labels;

  TraceEvent& Field(std::string key, double value) {
    fields.emplace_back(std::move(key), value);
    return *this;
  }
  TraceEvent& Label(std::string key, std::string value) {
    labels.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  TraceEvent& Timing(std::string key, double seconds) {
    timings.emplace_back(std::move(key), seconds);
    return *this;
  }
  TraceEvent& Env(std::string key, double value) {
    env_fields.emplace_back(std::move(key), value);
    return *this;
  }
  TraceEvent& EnvLabel(std::string key, std::string value) {
    env_labels.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Consumer of trace events. Emit order defines the trace order: callers
/// emit only from the run coordinator (never from worker lanes), which is
/// what makes traces deterministic regardless of thread count.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  /// Hot-path guard: when false, callers skip building the event entirely.
  virtual bool enabled() const = 0;

  virtual void Emit(TraceEvent event) = 0;

  /// Blocks until buffered events are durably written (no-op for sinks
  /// without a buffer).
  virtual void Flush() {}
};

/// The default sink: drops everything. `enabled()` is false so emission
/// sites never even construct their events — the hot path stays lock-free
/// and allocation-free.
class NullSink final : public TelemetrySink {
 public:
  bool enabled() const override { return false; }
  void Emit(TraceEvent /*event*/) override {}
};

/// Process-wide NullSink, so contexts can always carry a non-null sink.
TelemetrySink* NullTelemetrySink();

/// `sink` when non-null, the shared NullSink otherwise.
inline TelemetrySink* ResolveSink(TelemetrySink* sink) {
  return sink != nullptr ? sink : NullTelemetrySink();
}

/// In-memory sink for tests and programmatic consumers.
class VectorSink final : public TelemetrySink {
 public:
  bool enabled() const override { return true; }
  void Emit(TraceEvent event) override {
    events_.push_back(std::move(event));
  }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

struct JsonlTraceOptions {
  /// Include wall/cpu timing entries (never byte-reproducible).
  bool include_timings = true;
  /// Include hostname / git / wall clock / thread-count entries.
  bool include_environment = true;
  /// Buffered lines before the writer thread is woken early; the writer
  /// also drains on Flush() and at destruction.
  std::size_t flush_threshold = 64;

  /// Preset for byte-comparable traces: timings and environment suppressed.
  static JsonlTraceOptions Deterministic() {
    JsonlTraceOptions options;
    options.include_timings = false;
    options.include_environment = false;
    return options;
  }

  /// Resume mode: instead of truncating the trace file, reopen it, discard
  /// everything past `resume_bytes` (events emitted after the checkpoint
  /// that is being resumed from — they will be re-emitted by the resumed
  /// run), and continue sequence numbering at `resume_sequence`. With both
  /// at their defaults and resume=true, an empty/new file behaves like a
  /// fresh sink.
  bool resume = false;
  std::uint64_t resume_bytes = 0;
  std::uint64_t resume_sequence = 0;
};

/// Buffered JSONL sink: one JSON object per line, in emit order. Emit()
/// serializes on the calling (coordinator) thread and enqueues the line; a
/// background writer thread owns the file so the coordinator never blocks
/// on disk. Sequence numbers are assigned at Emit, so the written order is
/// exactly the emit order.
class JsonlTraceSink final : public TelemetrySink {
 public:
  explicit JsonlTraceSink(std::string path, JsonlTraceOptions options = {});
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool enabled() const override { return true; }
  void Emit(TraceEvent event) override;
  void Flush() override;

  /// Flush() plus fsync: on return every emitted event is durably on disk
  /// (survives SIGKILL / power loss). Returns the durable byte offset of
  /// the file end — the value a checkpoint records so a resumed sink can
  /// truncate back to exactly this point.
  std::uint64_t DurableFlush();

  /// False when the trace file could not be opened (events are dropped).
  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  std::uint64_t events_emitted() const { return sequence_; }

 private:
  void WriterLoop();

  const std::string path_;
  const JsonlTraceOptions options_;
  std::FILE* file_ = nullptr;
  std::uint64_t sequence_ = 0;  // emits are coordinator-only

  std::mutex mu_;
  std::condition_variable work_cv_;   // lines pending or stop
  std::condition_variable drain_cv_;  // queue fully written
  std::deque<std::string> pending_;
  bool stop_ = false;
  bool writing_ = false;
  std::thread writer_;
};

/// Serializes an event to one JSON line (no trailing newline). Field order
/// is fixed (type, seq, fields, labels, timings, environment) and doubles
/// are formatted reproducibly, so identical event streams serialize to
/// identical bytes.
std::string SerializeEvent(const TraceEvent& event, std::uint64_t sequence,
                           const JsonlTraceOptions& options);

/// Reproducible JSON number formatting: integers print without a decimal
/// point, everything else as shortest-round-trip-ish %.17g.
std::string FormatJsonNumber(double value);

/// Appends `value` JSON-escaped (quotes included) to `out`.
void AppendJsonString(std::string* out, const std::string& value);

}  // namespace gmr::obs

#endif  // GMR_OBS_TELEMETRY_H_
