#include "obs/registry.h"

#include <limits>

namespace gmr::obs {
namespace {

void AtomicAdd(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void TimerStat::Record(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&total_, seconds);
  AtomicMax(&max_, seconds);
}

Histogram::Histogram(double first_bound, double growth,
                     std::size_t num_buckets) {
  bounds_.reserve(num_buckets);
  double bound = first_bound;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) buckets_[i] = 0;
}

void Histogram::Record(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::bucket_bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_buckets(); ++i) total += bucket_count(i);
  return total;
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    seen += bucket_count(i);
    if (static_cast<double>(seen) >= rank) return bucket_bound(i);
  }
  return bucket_bound(num_buckets() - 1);
}

Counter* MetricRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

TimerStat* MetricRegistry::timer(const std::string& name) {
  auto& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<TimerStat>();
  return slot.get();
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     double first_bound, double growth,
                                     std::size_t num_buckets) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(first_bound, growth, num_buckets);
  }
  return slot.get();
}

void MetricRegistry::EmitTo(TelemetrySink* sink,
                            const std::string& event_type) const {
  TelemetrySink* resolved = ResolveSink(sink);
  if (!resolved->enabled()) return;
  TraceEvent event(event_type);
  for (const auto& [name, counter] : counters_) {
    event.Field("counter." + name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, timer] : timers_) {
    event.Field("timer." + name + ".count",
                static_cast<double>(timer->count()));
    event.Timing("timer." + name + ".total_s", timer->total_seconds());
    event.Timing("timer." + name + ".mean_s", timer->mean_seconds());
    event.Timing("timer." + name + ".max_s", timer->max_seconds());
  }
  for (const auto& [name, hist] : histograms_) {
    event.Field("hist." + name + ".count",
                static_cast<double>(hist->total_count()));
    event.Field("hist." + name + ".p50", hist->Quantile(0.5));
    event.Field("hist." + name + ".p90", hist->Quantile(0.9));
    event.Field("hist." + name + ".p99", hist->Quantile(0.99));
  }
  resolved->Emit(std::move(event));
}

}  // namespace gmr::obs
