#ifndef GMR_OBS_TRACE_READER_H_
#define GMR_OBS_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// Reader side of the JSONL trace format. The writer (telemetry.cc)
/// serializes every payload entry as a flat `"key": number-or-string` pair
/// on one line, so the parser here is a deliberately small flat-object
/// scanner, not a general JSON parser.

namespace gmr::obs {

/// One parsed trace line.
struct TraceRecord {
  std::string type;
  std::uint64_t seq = 0;
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> strings;

  /// Value lookup; returns `fallback` when the key is absent.
  double FindNumber(const std::string& key, double fallback = 0.0) const;
  std::string FindString(const std::string& key,
                         const std::string& fallback = "") const;
  bool HasNumber(const std::string& key) const;
};

/// Parses one serialized event line. Returns false on malformed input.
bool ParseTraceLine(const std::string& line, TraceRecord* record);

/// Reads a whole trace file; blank lines are skipped, a malformed line is
/// an error naming its line number.
Status ReadTrace(const std::string& path, std::vector<TraceRecord>* records);

/// One generation point of the fitness curve.
struct GenerationPoint {
  double generation = 0;
  double best_fitness = 0;
  double mean_fitness = 0;
  double seconds = 0;  // 0 when the trace was written without timings
};

/// One eval batch, with counters cumulative over the run so far.
struct BatchPoint {
  std::uint64_t seq = 0;
  double individuals = 0;
  double cum_lookups = 0;
  double cum_hits = 0;
  double cum_evaluated = 0;
  double cum_static_rejects = 0;
  /// Cache-hit rate over the run up to and including this batch.
  double cum_hit_rate = 0;
};

/// Aggregate view of one trace file, built by SummarizeTrace.
struct TraceSummary {
  // From the manifest (empty/zero when the trace has none).
  std::string driver;
  std::uint64_t seed = 0;
  std::string git_describe;
  std::string started_at_utc;

  std::size_t num_events = 0;
  std::vector<GenerationPoint> curve;
  std::vector<BatchPoint> batches;

  // EvalOutcome mix summed over all eval batches, indexed like EvalOutcome.
  std::uint64_t outcomes[kNumEvalOutcomes] = {};
  std::uint64_t total_individuals = 0;
  double static_reject_rate = 0;  // static rejects / individuals
  double cache_hit_rate = 0;      // hits / lookups over the whole run

  // Gradient side-channel totals summed over all eval batches (0 in traces
  // written before the adjoint counters existed, or when elite gradient
  // polish is off).
  double gradient_evaluations = 0;
  double tape_nodes = 0;
  double linesearch_steps = 0;

  double final_best_fitness = 0;
  bool has_final_best = false;
};

/// Folds a parsed trace into a summary.
TraceSummary SummarizeTrace(const std::vector<TraceRecord>& records);

/// Human-readable multi-line report.
std::string RenderSummaryText(const TraceSummary& summary);

/// CSV renderers for the two time series (header row included).
std::string RenderCurveCsv(const TraceSummary& summary);
std::string RenderBatchesCsv(const TraceSummary& summary);
std::string RenderOutcomesCsv(const TraceSummary& summary);

}  // namespace gmr::obs

#endif  // GMR_OBS_TRACE_READER_H_
