#include "obs/run_context.h"

namespace gmr::obs {

std::unique_ptr<ThreadPool> MakeThreadPool(int num_threads) {
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

PoolLease LeasePool(const RunContext& context, int num_threads) {
  PoolLease lease;
  if (context.pool != nullptr) {
    lease.pool_ = context.pool;
    return lease;
  }
  lease.owned_ = MakeThreadPool(num_threads);
  lease.pool_ = lease.owned_.get();
  return lease;
}

}  // namespace gmr::obs
