#ifndef GMR_OBS_MANIFEST_H_
#define GMR_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.h"

namespace gmr::obs {

/// Identity card of one search run, emitted as the first trace event so a
/// trace file is self-describing: which driver produced it, with which seed
/// and config, on which build and machine. Config entries live in the
/// deterministic field classes; build/machine/clock entries are environment
/// (suppressed under JsonlTraceOptions::Deterministic()).
struct RunManifest {
  std::string driver;  // "tag3p", "gggp", "gmr", "calibrate"
  std::uint64_t seed = 0;
  /// Config snapshot as key -> value pairs, in emission order.
  std::vector<std::pair<std::string, double>> config_fields;
  std::vector<std::pair<std::string, std::string>> config_labels;
  // Environment (non-deterministic across machines/builds/runs).
  std::string git_describe;
  std::string hostname;
  std::string started_at_utc;  // ISO-8601, e.g. "2026-08-05T12:34:56Z"
  int num_threads = 1;
};

/// Builds a manifest with the environment entries (git describe from the
/// build, hostname, current UTC time) filled in.
RunManifest MakeRunManifest(std::string driver, std::uint64_t seed);

/// Emits the manifest as a "manifest" event on `sink` (no-op when the sink
/// is disabled).
void EmitManifest(TelemetrySink* sink, const RunManifest& manifest);

}  // namespace gmr::obs

#endif  // GMR_OBS_MANIFEST_H_
