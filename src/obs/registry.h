#ifndef GMR_OBS_REGISTRY_H_
#define GMR_OBS_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.h"

/// Typed metric registries (DESIGN.md §4f). Counters, timers, and
/// histograms are updated lock-free (relaxed atomics) so worker lanes can
/// record without contending; registration and snapshotting are
/// coordinator-only. Snapshots emit in name order, so a registry dump is
/// deterministic given deterministic recorded values.

namespace gmr::obs {

/// Monotone event counter.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulates durations: count, total, and max seconds.
class TimerStat {
 public:
  void Record(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return total_.load(std::memory_order_relaxed);
  }
  double max_seconds() const { return max_.load(std::memory_order_relaxed); }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> total_{0.0};
  std::atomic<double> max_{0.0};
};

/// Fixed exponential-bucket histogram: bucket i holds values in
/// (bound(i-1), bound(i)] with bound(i) = first_bound * growth^i, plus an
/// overflow bucket. Records are lock-free.
class Histogram {
 public:
  Histogram(double first_bound, double growth, std::size_t num_buckets);

  void Record(double value);

  std::size_t num_buckets() const { return bounds_.size() + 1; }
  /// Upper bound of bucket i (+inf for the overflow bucket).
  double bucket_bound(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const;

  /// Approximate quantile (upper bound of the bucket holding rank q*n).
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

/// Named metric registry. `counter`/`timer`/`histogram` create on first use
/// and return stable pointers (registration is coordinator-only; recording
/// through the returned pointers is thread-safe).
class MetricRegistry {
 public:
  Counter* counter(const std::string& name);
  TimerStat* timer(const std::string& name);
  Histogram* histogram(const std::string& name, double first_bound,
                       double growth, std::size_t num_buckets);

  /// Emits one snapshot event (type `event_type`) with every metric, in
  /// name order: counters as `counter.<name>`, timers as
  /// `timer.<name>.{count,total_s,mean_s,max_s}` (timing class), histograms
  /// as `hist.<name>.{count,p50,p90,p99}`.
  void EmitTo(TelemetrySink* sink, const std::string& event_type) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gmr::obs

#endif  // GMR_OBS_REGISTRY_H_
