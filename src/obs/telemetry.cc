#include "obs/telemetry.h"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>

namespace gmr::obs {

TelemetrySink* NullTelemetrySink() {
  static NullSink* const sink = new NullSink;
  return sink;
}

std::string FormatJsonNumber(double value) {
  char buffer[40];
  if (std::isnan(value)) return "null";  // JSON has no NaN
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendPair(std::string* out, const std::string& key, double value) {
  out->push_back(',');
  AppendJsonString(out, key);
  out->push_back(':');
  *out += FormatJsonNumber(value);
}

void AppendPair(std::string* out, const std::string& key,
                const std::string& value) {
  out->push_back(',');
  AppendJsonString(out, key);
  out->push_back(':');
  AppendJsonString(out, value);
}

}  // namespace

std::string SerializeEvent(const TraceEvent& event, std::uint64_t sequence,
                           const JsonlTraceOptions& options) {
  std::string line = "{\"type\":";
  AppendJsonString(&line, event.type);
  line += ",\"seq\":";
  line += FormatJsonNumber(static_cast<double>(sequence));
  for (const auto& [key, value] : event.fields) AppendPair(&line, key, value);
  for (const auto& [key, value] : event.labels) AppendPair(&line, key, value);
  if (options.include_timings) {
    for (const auto& [key, value] : event.timings) {
      AppendPair(&line, key, value);
    }
  }
  if (options.include_environment) {
    for (const auto& [key, value] : event.env_fields) {
      AppendPair(&line, key, value);
    }
    for (const auto& [key, value] : event.env_labels) {
      AppendPair(&line, key, value);
    }
  }
  line.push_back('}');
  return line;
}

JsonlTraceSink::JsonlTraceSink(std::string path, JsonlTraceOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.resume) {
    // Reopen without truncating; discard any bytes written after the
    // checkpoint being resumed from (those events get re-emitted by the
    // resumed segment, which keeps final trace bytes identical to an
    // uninterrupted run).
    file_ = std::fopen(path_.c_str(), "r+");
    if (file_ == nullptr) file_ = std::fopen(path_.c_str(), "w");
    if (file_ != nullptr) {
      const int fd = fileno(file_);
      if (ftruncate(fd, static_cast<off_t>(options_.resume_bytes)) != 0) {
        std::fprintf(stderr, "telemetry: cannot truncate trace file %s\n",
                     path_.c_str());
      }
      std::fseek(file_, 0, SEEK_END);
      sequence_ = options_.resume_sequence;
    }
  } else {
    file_ = std::fopen(path_.c_str(), "w");
  }
  if (file_ == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open trace file %s\n",
                 path_.c_str());
    return;
  }
  writer_ = std::thread([this] { WriterLoop(); });
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  std::fclose(file_);
}

void JsonlTraceSink::Emit(TraceEvent event) {
  if (file_ == nullptr) return;
  // Serialization happens here (emit order defines seq and line order);
  // only the write syscalls are deferred to the writer thread.
  std::string line = SerializeEvent(event, sequence_++, options_);
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(line));
    wake = pending_.size() >= options_.flush_threshold;
  }
  if (wake) work_cv_.notify_one();
}

void JsonlTraceSink::Flush() {
  if (file_ == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this] { return pending_.empty() && !writing_; });
  std::fflush(file_);
}

std::uint64_t JsonlTraceSink::DurableFlush() {
  if (file_ == nullptr) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this] { return pending_.empty() && !writing_; });
  std::fflush(file_);
  fsync(fileno(file_));
  const long offset = std::ftell(file_);
  return offset > 0 ? static_cast<std::uint64_t>(offset) : 0;
}

void JsonlTraceSink::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stop_ || !pending_.empty();
    });
    while (!pending_.empty()) {
      std::string line = std::move(pending_.front());
      pending_.pop_front();
      writing_ = true;
      lock.unlock();
      std::fwrite(line.data(), 1, line.size(), file_);
      std::fputc('\n', file_);
      lock.lock();
      writing_ = false;
    }
    drain_cv_.notify_all();
    if (stop_) return;
  }
}

}  // namespace gmr::obs
