#include "obs/manifest.h"

#include <cstdio>
#include <ctime>

#if defined(_WIN32)
#include <winsock2.h>
#else
#include <unistd.h>
#endif

namespace gmr::obs {
namespace {

std::string CurrentUtcTime() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buffer;
}

std::string Hostname() {
  char buffer[256];
  if (gethostname(buffer, sizeof(buffer)) != 0) return "unknown";
  buffer[sizeof(buffer) - 1] = '\0';
  return buffer;
}

}  // namespace

RunManifest MakeRunManifest(std::string driver, std::uint64_t seed) {
  RunManifest manifest;
  manifest.driver = std::move(driver);
  manifest.seed = seed;
#ifdef GMR_GIT_DESCRIBE
  manifest.git_describe = GMR_GIT_DESCRIBE;
#else
  manifest.git_describe = "unknown";
#endif
  manifest.hostname = Hostname();
  manifest.started_at_utc = CurrentUtcTime();
  return manifest;
}

void EmitManifest(TelemetrySink* sink, const RunManifest& manifest) {
  TelemetrySink* resolved = ResolveSink(sink);
  if (!resolved->enabled()) return;
  TraceEvent event("manifest");
  event.Label("driver", manifest.driver)
      .Field("seed", static_cast<double>(manifest.seed));
  for (const auto& [key, value] : manifest.config_fields) {
    event.Field("config." + key, value);
  }
  for (const auto& [key, value] : manifest.config_labels) {
    event.Label("config." + key, value);
  }
  event.Env("num_threads", manifest.num_threads)
      .EnvLabel("git_describe", manifest.git_describe)
      .EnvLabel("hostname", manifest.hostname)
      .EnvLabel("started_at_utc", manifest.started_at_utc);
  resolved->Emit(std::move(event));
}

}  // namespace gmr::obs
