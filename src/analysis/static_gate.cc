#include "analysis/static_gate.h"

#include "common/check.h"

namespace gmr::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

StaticVerdict AnalyzeCandidate(const std::vector<expr::ExprPtr>& equations,
                               const StaticGateConfig& config) {
  StaticVerdict verdict;
  for (std::size_t i = 0; i < equations.size(); ++i) {
    GMR_CHECK(equations[i] != nullptr);
    const Interval iv = EvaluateInterval(*equations[i], config.domains);
    // hi == -inf: the derivative is -inf everywhere -> the very first
    // evaluation is non-finite. lo >= saturation_rate: every reachable
    // derivative saturates the per-substep clamp (lo == +inf is subsumed,
    // saturation_rate being finite or +inf). Note maybe_nan alone does NOT
    // reject: it only says NaN is reachable somewhere in the box.
    if (iv.hi == -kInf) {
      verdict.reject = true;
      verdict.equation = static_cast<int>(i);
      verdict.reason = "equation " + std::to_string(i) +
                       " is provably -inf everywhere: " + FormatInterval(iv);
      return verdict;
    }
    if (iv.lo >= config.saturation_rate) {
      verdict.reject = true;
      verdict.equation = static_cast<int>(i);
      verdict.reason =
          "equation " + std::to_string(i) + " provably saturates the clamp (" +
          FormatInterval(iv) + " vs rate " +
          std::to_string(config.saturation_rate) + ")";
      return verdict;
    }
  }
  return verdict;
}

}  // namespace gmr::analysis
