#include "analysis/static_gate.h"

#include "analysis/sign.h"
#include "common/check.h"

namespace gmr::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* GateRuleName(GateRule rule) {
  switch (rule) {
    case GateRule::kNone: return "none";
    case GateRule::kIntervalNegInf: return "interval_neg_inf";
    case GateRule::kIntervalSaturation: return "interval_saturation";
    case GateRule::kUnitsMismatch: return "units_mismatch";
    case GateRule::kSignViolation: return "sign_violation";
  }
  GMR_CHECK_MSG(false, "bad gate rule");
  return "?";
}

StaticVerdict AnalyzeCandidate(const std::vector<expr::ExprPtr>& equations,
                               const StaticGateConfig& config) {
  StaticVerdict verdict;
  for (std::size_t i = 0; i < equations.size(); ++i) {
    GMR_CHECK(equations[i] != nullptr);
    const Interval iv = EvaluateInterval(*equations[i], config.domains);
    // hi == -inf: the derivative is -inf everywhere -> the very first
    // evaluation is non-finite. lo >= saturation_rate: every reachable
    // derivative saturates the per-substep clamp (lo == +inf is subsumed,
    // saturation_rate being finite or +inf). Note maybe_nan alone does NOT
    // reject: it only says NaN is reachable somewhere in the box.
    if (iv.hi == -kInf) {
      verdict.reject = true;
      verdict.rule = GateRule::kIntervalNegInf;
      verdict.equation = static_cast<int>(i);
      verdict.reason = "equation " + std::to_string(i) +
                       " is provably -inf everywhere: " + FormatInterval(iv);
      return verdict;
    }
    if (iv.lo >= config.saturation_rate) {
      verdict.reject = true;
      verdict.rule = GateRule::kIntervalSaturation;
      verdict.equation = static_cast<int>(i);
      verdict.reason =
          "equation " + std::to_string(i) + " provably saturates the clamp (" +
          FormatInterval(iv) + " vs rate " +
          std::to_string(config.saturation_rate) + ")";
      return verdict;
    }
    if (config.check_units) {
      const UnitsResult units = AnalyzeUnits(*equations[i], config.units);
      if (!units.Consistent()) {
        verdict.reject = true;
        verdict.rule = GateRule::kUnitsMismatch;
        verdict.equation = static_cast<int>(i);
        verdict.reason = "equation " + std::to_string(i) + ": " +
                         units.findings.front().message;
        return verdict;
      }
    }
    if (config.check_sign) {
      const MassBalanceResult balance =
          CheckMassBalance(*equations[i], config.domains);
      if (!balance.Consistent()) {
        verdict.reject = true;
        verdict.rule = GateRule::kSignViolation;
        verdict.equation = static_cast<int>(i);
        verdict.reason = "equation " + std::to_string(i) + ": " +
                         balance.findings.front().message;
        return verdict;
      }
    }
  }
  return verdict;
}

}  // namespace gmr::analysis
