#ifndef GMR_ANALYSIS_GRAMMAR_LINT_H_
#define GMR_ANALYSIS_GRAMMAR_LINT_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/units.h"
#include "tag/grammar.h"

namespace gmr::analysis {

/// Static diagnostics over the TAG quintuple: which beta trees can ever be
/// adjoined starting from the alpha trees, which slot labels have degenerate
/// lexeme specs, and how many adjunctions it takes to expose each label.
struct GrammarLintResult {
  std::vector<Diagnostic> diagnostics;
  /// Beta-tree indices no derivation starting from any alpha can reach.
  std::vector<int> unreachable_betas;
  /// Slot labels whose SlotSpec is degenerate (non-finite bound), making
  /// uniform lexeme drawing undefined — the TAG analogue of a
  /// non-productive non-terminal: derivations that touch the label cannot
  /// terminate in a usable lexeme.
  std::vector<tag::Symbol> nonproductive_labels;
  /// Minimum number of adjunctions before a node with this label exists in
  /// some derived tree (alpha-resident labels are depth 0). Labels absent
  /// from the map are unreachable.
  std::map<tag::Symbol, int> label_depth;

  bool HasErrors() const;
  bool HasWarnings() const;
};

/// Lints `grammar`. Severities: unreachable beta trees and degenerate slot
/// specs are warnings/errors (a grammar author mistake); reachable labels
/// with no compatible beta are notes (the river grammar intentionally has
/// interior "Exp" labels with no Exp-rooted betas). Deterministic; pure.
GrammarLintResult LintGrammar(const tag::Grammar& grammar);

/// Dimension inference lifted to the TAG elementary trees: which beta
/// trees are provably dimension-inconsistent before any derivation runs,
/// so the search can prune them from the adjunction candidate lists.
struct GrammarDimensionResult {
  /// Context dimension of each label: the dimension of the value produced
  /// at nodes so labeled across all alpha trees, when it is uniquely Known
  /// there; Any when the label never appears in an alpha, appears with
  /// several dimensions, or appears with an unknowable one. A beta's foot
  /// is bound to its root label's context dimension during inference.
  std::map<tag::Symbol, Dim> label_context;
  /// Beta indices with a provable internal dimension mismatch.
  std::vector<int> inconsistent_betas;
  /// One "dimension-inconsistent-beta" warning per entry above.
  std::vector<Diagnostic> diagnostics;
};

/// Infers dimensions over every elementary tree of `grammar` against the
/// declared `env` (slot lexemes are Any, like numeric constants). A beta
/// is flagged only when the mismatch is provable from its own structure
/// plus the foot binding — the verdict is relative to alpha-resident
/// contexts, so it is surfaced as a warning, not an error: a beta that
/// *changes* a label's dimension can make later adjunctions at that label
/// see a different foot dimension. The builtin river grammar's extender
/// betas all bind Any contexts and are never flagged.
GrammarDimensionResult AnalyzeGrammarDimensions(const tag::Grammar& grammar,
                                                const UnitsEnv& env);

/// Runs AnalyzeGrammarDimensions and disables adjunction of every flagged
/// beta (tag::Grammar::DisableAdjunction — indices stay valid, existing
/// derivations still expand). Returns the pruned beta indices. Intended to
/// run once before search starts; on the builtin river grammar it prunes
/// nothing, so search trajectories are unchanged.
std::vector<int> PruneDimensionInconsistentBetas(tag::Grammar* grammar,
                                                 const UnitsEnv& env);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_GRAMMAR_LINT_H_
