#ifndef GMR_ANALYSIS_GRAMMAR_LINT_H_
#define GMR_ANALYSIS_GRAMMAR_LINT_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "tag/grammar.h"

namespace gmr::analysis {

/// Static diagnostics over the TAG quintuple: which beta trees can ever be
/// adjoined starting from the alpha trees, which slot labels have degenerate
/// lexeme specs, and how many adjunctions it takes to expose each label.
struct GrammarLintResult {
  std::vector<Diagnostic> diagnostics;
  /// Beta-tree indices no derivation starting from any alpha can reach.
  std::vector<int> unreachable_betas;
  /// Slot labels whose SlotSpec is degenerate (non-finite bound), making
  /// uniform lexeme drawing undefined — the TAG analogue of a
  /// non-productive non-terminal: derivations that touch the label cannot
  /// terminate in a usable lexeme.
  std::vector<tag::Symbol> nonproductive_labels;
  /// Minimum number of adjunctions before a node with this label exists in
  /// some derived tree (alpha-resident labels are depth 0). Labels absent
  /// from the map are unreachable.
  std::map<tag::Symbol, int> label_depth;

  bool HasErrors() const;
  bool HasWarnings() const;
};

/// Lints `grammar`. Severities: unreachable beta trees and degenerate slot
/// specs are warnings/errors (a grammar author mistake); reachable labels
/// with no compatible beta are notes (the river grammar intentionally has
/// interior "Exp" labels with no Exp-rooted betas). Deterministic; pure.
GrammarLintResult LintGrammar(const tag::Grammar& grammar);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_GRAMMAR_LINT_H_
