#ifndef GMR_ANALYSIS_ACTIVITY_H_
#define GMR_ANALYSIS_ACTIVITY_H_

#include <cstdint>
#include <vector>

#include "analysis/interval.h"
#include "expr/ast.h"

namespace gmr::analysis {

/// One element of the activity lattice: the set of input slots that *may*
/// influence a subexpression's value, as bitmasks over variable and
/// parameter slots. The lattice order is subset inclusion; join is
/// bitwise-or. The complement is the guarantee: a slot outside the mask
/// provably cannot change the value for any admissible input, so
/// calibrators can freeze that dimension and perturbing it must leave
/// rollouts bit-identical (the `activity` fuzz oracle enforces exactly
/// this).
///
/// Slots 0..62 are tracked exactly; any slot >= 63 maps onto the shared
/// sticky bit 63 (conservative: such slots are never reported inactive).
struct Activity {
  std::uint64_t variables = 0;
  std::uint64_t parameters = 0;

  friend bool operator==(const Activity& a, const Activity& b) {
    return a.variables == b.variables && a.parameters == b.parameters;
  }

  Activity& operator|=(const Activity& other) {
    variables |= other.variables;
    parameters |= other.parameters;
    return *this;
  }
};

/// The bit representing `slot` (bit 63 for slot >= 63).
std::uint64_t ActivityBit(int slot);

/// Which slots may influence `root` over `env`. Dependence is pruned only
/// where the protected runtime value is *exactly* independent of a subtree
/// — mirroring the liveness rules of the expression linter: x - x and
/// x / x over finite ranges, 0 times a finite factor, a division whose
/// denominator range lies entirely inside the protection band, dominated
/// min/max branches, log over a range fully inside its zero band, exp
/// with a fully clamped argument. Interval facts come from a nested
/// interval pass over the same `env`.
Activity AnalyzeActivity(const expr::Expr& root, const DomainEnv& env);

/// Transitive activity of `output_state` under the equation system: the
/// union of per-equation activities over the least set of state equations
/// reachable from the output through state-variable references (slots
/// < equations.size() are states, in slot order). Parameters of equations
/// outside the closure provably cannot affect the output trajectory.
Activity OutputClosureActivity(const std::vector<expr::ExprPtr>& equations,
                               int output_state, const DomainEnv& env);

/// Parameter slots in [0, num_parameters) provably inactive under
/// `activity` (slots >= 63 are never reported).
std::vector<int> InactiveParameters(const Activity& activity,
                                    int num_parameters);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_ACTIVITY_H_
