#include "analysis/units.h"

#include <algorithm>

#include "analysis/dataflow.h"
#include "common/check.h"
#include "expr/print.h"

namespace gmr::analysis {
namespace {

const char* const kAxisNames[Dim::kNumAxes] = {"M", "L", "T", "K", "I"};

std::int8_t ClampExponent(int e) {
  return static_cast<std::int8_t>(std::clamp(e, -120, 120));
}

/// Truncated printed form of a subexpression for messages (mirrors the
/// lint.cc snippet policy).
std::string Snippet(const expr::Expr& node) {
  std::string text = expr::ToString(node);
  constexpr std::size_t kMaxLength = 48;
  if (text.size() > kMaxLength) {
    text.resize(kMaxLength - 3);
    text += "...";
  }
  return text;
}

/// The units instance of the dataflow framework. Findings are collected on
/// the domain (keyed by node pointer); after a mismatch the result degrades
/// to Any so one bad addition does not cascade into findings at every
/// ancestor.
struct UnitsDomain {
  using Value = Dim;

  const UnitsEnv* env;
  std::vector<UnitsFinding>* findings;

  Dim Constant(const expr::Expr&) const { return Dim::Any(); }

  Dim Variable(const expr::Expr& node) const {
    const auto slot = static_cast<std::size_t>(node.slot());
    return slot < env->variables.size() ? env->variables[slot] : Dim::Any();
  }

  Dim Parameter(const expr::Expr& node) const {
    const auto slot = static_cast<std::size_t>(node.slot());
    return slot < env->parameters.size() ? env->parameters[slot] : Dim::Any();
  }

  Dim Unary(const expr::Expr& node, const Dim& a) const {
    bool mismatch = false;
    const Dim result = ApplyUnaryDim(node.kind(), a, &mismatch);
    if (mismatch) {
      findings->push_back(UnitsFinding{
          &node, "units-transcendental",
          std::string(expr::KindName(node.kind())) + " argument '" +
              Snippet(*node.children()[0]) + "' has dimension " +
              FormatDim(a) +
              "; transcendental arguments must be dimensionless"});
    }
    return result;
  }

  Dim Binary(const expr::Expr& node, const Dim& a, const Dim& b) const {
    bool mismatch = false;
    const Dim result = ApplyBinaryDim(node.kind(), a, b, &mismatch);
    if (mismatch) {
      findings->push_back(UnitsFinding{
          &node, "units-mismatch",
          std::string(expr::KindName(node.kind())) + " combines '" +
              Snippet(*node.children()[0]) + "' of dimension " +
              FormatDim(a) + " with '" + Snippet(*node.children()[1]) +
              "' of dimension " + FormatDim(b) +
              "; operands of a sum/difference/comparison must agree"});
      return Dim::Any();
    }
    return result;
  }
};

}  // namespace

std::string FormatDim(const Dim& dim) {
  if (!dim.known) return "?";
  if (dim.IsDimensionless()) return "1";
  std::string out;
  for (int axis = 0; axis < Dim::kNumAxes; ++axis) {
    const int e = dim.exponents[static_cast<std::size_t>(axis)];
    if (e == 0) continue;
    if (!out.empty()) out += "*";
    out += kAxisNames[axis];
    if (e != 1) out += "^" + std::to_string(e);
  }
  return out;
}

Dim JoinDim(const Dim& a, const Dim& b, bool* mismatch) {
  if (!a.known) return b;
  if (!b.known) return a;
  if (a == b) return a;
  if (mismatch != nullptr) *mismatch = true;
  return Dim::Any();
}

Dim MulDim(const Dim& a, const Dim& b) {
  if (!a.known || !b.known) return Dim::Any();
  Dim d = Dim::Dimensionless();
  for (std::size_t axis = 0; axis < Dim::kNumAxes; ++axis) {
    d.exponents[axis] = ClampExponent(a.exponents[axis] + b.exponents[axis]);
  }
  return d;
}

Dim DivDim(const Dim& a, const Dim& b) {
  if (!a.known || !b.known) return Dim::Any();
  Dim d = Dim::Dimensionless();
  for (std::size_t axis = 0; axis < Dim::kNumAxes; ++axis) {
    d.exponents[axis] = ClampExponent(a.exponents[axis] - b.exponents[axis]);
  }
  return d;
}

Dim ApplyUnaryDim(expr::NodeKind kind, const Dim& a, bool* mismatch) {
  switch (kind) {
    case expr::NodeKind::kNeg:
      return a;
    case expr::NodeKind::kLog:
    case expr::NodeKind::kExp:
      // Transcendental arguments must be pure numbers; the result is one
      // too. An Any argument is fine — a lexeme-scaled term can absorb
      // the normalization (exp(-C_PT * dT^2) style).
      if (a.known && !a.IsDimensionless() && mismatch != nullptr) {
        *mismatch = true;
      }
      return Dim::Dimensionless();
    default:
      GMR_CHECK_MSG(false, "not a unary operator");
      return Dim::Any();
  }
}

Dim ApplyBinaryDim(expr::NodeKind kind, const Dim& a, const Dim& b,
                   bool* mismatch) {
  switch (kind) {
    case expr::NodeKind::kAdd:
    case expr::NodeKind::kSub:
    case expr::NodeKind::kMin:
    case expr::NodeKind::kMax:
      return JoinDim(a, b, mismatch);
    case expr::NodeKind::kMul:
      return MulDim(a, b);
    case expr::NodeKind::kDiv:
      return DivDim(a, b);
    default:
      GMR_CHECK_MSG(false, "not a binary operator");
      return Dim::Any();
  }
}

UnitsResult AnalyzeUnits(const expr::Expr& root, const UnitsEnv& env) {
  UnitsResult result;
  DataflowPass<UnitsDomain> pass(UnitsDomain{&env, &result.findings});
  result.dim = pass.Evaluate(root);
  return result;
}

SystemUnitsResult AnalyzeSystemUnits(
    const std::vector<expr::ExprPtr>& equations, const UnitsEnv& env) {
  SystemUnitsResult result;
  for (std::size_t i = 0; i < equations.size(); ++i) {
    GMR_CHECK(equations[i] != nullptr);
    result.equations.push_back(AnalyzeUnits(*equations[i], env));
    if (result.first_inconsistent < 0 &&
        !result.equations.back().Consistent()) {
      result.first_inconsistent = static_cast<int>(i);
    }
  }
  return result;
}

}  // namespace gmr::analysis
