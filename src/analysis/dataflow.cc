#include "analysis/dataflow.h"

namespace gmr::analysis {
namespace {

void WalkAddressesImpl(
    const expr::Expr& node, std::vector<int>* address,
    const std::function<void(const expr::Expr&, const std::vector<int>&)>&
        visit) {
  visit(node, *address);
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    address->push_back(static_cast<int>(i));
    WalkAddressesImpl(*node.children()[i], address, visit);
    address->pop_back();
  }
}

}  // namespace

void WalkAddresses(
    const expr::Expr& root,
    const std::function<void(const expr::Expr&, const std::vector<int>&)>&
        visit) {
  std::vector<int> address;
  WalkAddressesImpl(root, &address, visit);
}

}  // namespace gmr::analysis
