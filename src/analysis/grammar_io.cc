#include "analysis/grammar_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace gmr::analysis {
namespace {

/// Marker variable slots injected into the parser's symbol table for the
/// grammar pseudo-identifiers. expr::Variable requires slot >= 0, so the
/// markers sit far above any real variable slot (river uses 12).
constexpr int kFootMarkerSlot = 1 << 20;
constexpr int kFirstSlotMarker = kFootMarkerSlot + 1;

bool Fail(std::string* error, int line_number, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_number) + ": " + message;
  }
  return false;
}

/// Converts a parsed expression into a TAG tree labeled `label`, turning
/// marker leaves into foot/slot nodes and counting the feet encountered.
tag::TagNodePtr ToTagNode(const expr::ExprPtr& e, const tag::Symbol& label,
                          const std::map<int, tag::Symbol>& slot_markers,
                          int* foot_count) {
  if (e->kind() == expr::NodeKind::kVariable) {
    if (e->slot() == kFootMarkerSlot) {
      ++*foot_count;
      return tag::FootNode(label);
    }
    const auto it = slot_markers.find(e->slot());
    if (it != slot_markers.end()) return tag::SlotNode(it->second);
  }
  if (e->children().empty()) return tag::LeafNode(e);
  std::vector<tag::TagNodePtr> children;
  children.reserve(e->children().size());
  for (const expr::ExprPtr& child : e->children()) {
    children.push_back(ToTagNode(child, label, slot_markers, foot_count));
  }
  return tag::OperatorNode(label, e->kind(), std::move(children));
}

}  // namespace

bool ParseGrammarSpec(std::istream& in, const expr::SymbolTable& symbols,
                      tag::Grammar* grammar, std::string* error) {
  expr::SymbolTable augmented = symbols;
  augmented.variables["FOOT"] = kFootMarkerSlot;
  std::map<int, tag::Symbol> slot_markers;
  std::map<tag::Symbol, tag::SlotSpec> slot_specs;
  int next_marker = kFirstSlotMarker;

  std::string line;
  int line_number = 0;
  bool header_seen = false;
  std::size_t trees = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("gmr-grammar") != std::string::npos) header_seen = true;
      continue;
    }
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "slot") {
      std::string label;
      std::string lo_text;
      std::string hi_text;
      ss >> label >> lo_text >> hi_text;
      if (label.empty() || lo_text.empty() || hi_text.empty()) {
        return Fail(error, line_number, "bad slot line: " + line);
      }
      tag::SlotSpec spec;
      spec.lo = std::strtod(lo_text.c_str(), nullptr);
      spec.hi = std::strtod(hi_text.c_str(), nullptr);
      // Grammar::SetSlotSpec aborts on lo > hi or NaN; turn that into a
      // load error here. Non-finite bounds pass through for LintGrammar.
      if (!(spec.lo <= spec.hi)) {
        return Fail(error, line_number,
                    "slot " + label + " has lo > hi (or NaN bounds)");
      }
      if (augmented.variables.count(label) != 0 ||
          augmented.parameters.count(label) != 0) {
        return Fail(error, line_number,
                    "slot label " + label + " shadows an existing symbol");
      }
      augmented.variables[label] = next_marker;
      slot_markers[next_marker] = label;
      ++next_marker;
      slot_specs[label] = spec;
    } else if (keyword == "alpha" || keyword == "beta") {
      std::string name;
      std::string label;
      std::string colon;
      ss >> name >> label >> colon;
      if (name.empty() || label.empty() || colon != ":") {
        return Fail(error, line_number, "bad " + keyword + " line: " + line);
      }
      std::string text;
      std::getline(ss, text);
      const expr::ParseResult parsed = expr::Parse(text, augmented);
      if (!parsed.ok()) {
        return Fail(error, line_number, "bad expression: " + parsed.error);
      }
      int foot_count = 0;
      tag::TagNodePtr root =
          ToTagNode(parsed.expr, label, slot_markers, &foot_count);
      if (keyword == "alpha") {
        if (foot_count != 0) {
          return Fail(error, line_number,
                      "alpha tree " + name + " must not contain FOOT");
        }
        grammar->AddAlphaTree(tag::ElementaryTree(name, std::move(root)));
      } else {
        if (foot_count != 1) {
          return Fail(error, line_number,
                      "beta tree " + name + " must contain exactly one FOOT"
                      " (found " + std::to_string(foot_count) + ")");
        }
        grammar->AddBetaTree(tag::ElementaryTree(name, std::move(root)));
      }
      ++trees;
    } else {
      return Fail(error, line_number, "unknown keyword: " + keyword);
    }
  }
  if (!header_seen) {
    if (error != nullptr) *error = "missing gmr-grammar header";
    return false;
  }
  if (trees == 0) {
    if (error != nullptr) *error = "no trees in grammar spec";
    return false;
  }
  for (const auto& [label, spec] : slot_specs) {
    grammar->SetSlotSpec(label, spec);
  }
  return true;
}

bool LoadGrammarSpec(const std::string& path,
                     const expr::SymbolTable& symbols, tag::Grammar* grammar,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return ParseGrammarSpec(in, symbols, grammar, error);
}

}  // namespace gmr::analysis
