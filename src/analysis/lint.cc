#include "analysis/lint.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/check.h"
#include "expr/print.h"

namespace gmr::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Printed form of a subexpression for messages, truncated so diagnostics
/// stay one-line readable.
std::string Snippet(const expr::Expr& node) {
  std::string text = expr::ToString(node);
  constexpr std::size_t kMaxLength = 48;
  if (text.size() > kMaxLength) {
    text.resize(kMaxLength - 3);
    text += "...";
  }
  return text;
}

class Linter {
 public:
  Linter(const DomainEnv& env, const LintOptions& options, LintResult* result)
      : env_(env), options_(options), result_(result) {}

  void LintEquation(int equation, const expr::Expr& root) {
    equation_ = equation;
    address_.clear();
    const Interval iv = IntervalOf(root);
    if (iv.lo == kInf || iv.hi == -kInf) {
      Emit(Severity::kError, "non-finite-output",
           "equation provably evaluates to " +
               std::string(iv.lo == kInf ? "+inf" : "-inf") +
               " everywhere: " + FormatInterval(iv));
    } else if (iv.maybe_nan) {
      Emit(Severity::kWarning, "may-be-nan",
           "equation can evaluate to NaN (an inf - inf, 0 * inf, or "
           "inf / inf combination is reachable)");
    }
    Walk(root, /*live=*/true, /*under_foldable=*/false);
  }

  void FinishDeadInputs() {
    for (std::size_t slot = 0; slot < options_.parameter_names.size();
         ++slot) {
      const std::string& name = options_.parameter_names[slot];
      if (name.empty()) continue;
      if (live_parameters_.count(static_cast<int>(slot)) != 0) continue;
      const bool referenced =
          referenced_parameters_.count(static_cast<int>(slot)) != 0;
      equation_ = -1;
      address_.clear();
      Emit(Severity::kWarning, "dead-parameter",
           "parameter " + name +
               (referenced
                    ? " is referenced only in subtrees that cannot affect "
                      "any equation output"
                    : " has no data-flow path to any equation output "
                      "(never referenced)"));
    }
    for (int slot = 0; slot < options_.num_states; ++slot) {
      if (live_variables_.count(slot) != 0) continue;
      const std::string name =
          static_cast<std::size_t>(slot) < options_.variable_names.size()
              ? options_.variable_names[static_cast<std::size_t>(slot)]
              : "slot " + std::to_string(slot);
      equation_ = -1;
      address_.clear();
      Emit(Severity::kWarning, "dead-state-variable",
           "state variable " + name +
               " has no data-flow path to any equation output; its "
               "dynamics are vacuous");
    }
    result_->live_variables.assign(live_variables_.begin(),
                                   live_variables_.end());
    result_->live_parameters.assign(live_parameters_.begin(),
                                    live_parameters_.end());
    result_->referenced_variables.assign(referenced_variables_.begin(),
                                         referenced_variables_.end());
    result_->referenced_parameters.assign(referenced_parameters_.begin(),
                                          referenced_parameters_.end());
  }

 private:
  Interval IntervalOf(const expr::Expr& node) {
    const auto it = memo_.find(&node);
    if (it != memo_.end()) return it->second;
    const Interval iv = EvaluateInterval(node, env_);
    memo_.emplace(&node, iv);
    return iv;
  }

  void Emit(Severity severity, const char* code, std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.code = code;
    d.equation = equation_;
    d.address = address_;
    d.message = std::move(message);
    result_->diagnostics.push_back(std::move(d));
  }

  /// Emits the node-local interval diagnostics. Returns true when an error
  /// was emitted (suppresses the redundant constant-foldable note).
  bool NodeDiagnostics(const expr::Expr& node) {
    switch (node.kind()) {
      case expr::NodeKind::kDiv: {
        const expr::Expr& denom = *node.children()[1];
        if (expr::StructurallyEqual(*node.children()[0], denom)) break;
        const Interval b = IntervalOf(denom);
        if (!b.maybe_nan && b.lo > -expr::kDivEpsilon &&
            b.hi < expr::kDivEpsilon) {
          Emit(Severity::kError, "div-by-zero",
               "denominator '" + Snippet(denom) + "' " + FormatInterval(b) +
                   " always lies in the protection band (|d| < 1e-09); "
                   "the division constantly evaluates to 1");
          return true;
        }
        if (b.lo < expr::kDivEpsilon && b.hi > -expr::kDivEpsilon) {
          Emit(Severity::kWarning, "div-may-vanish",
               "denominator '" + Snippet(denom) + "' " + FormatInterval(b) +
                   " can enter the protection band; the division silently "
                   "becomes 1 there");
        }
        break;
      }
      case expr::NodeKind::kLog: {
        const Interval a = IntervalOf(*node.children()[0]);
        const double mhi = std::max(std::fabs(a.lo), std::fabs(a.hi));
        if (!a.maybe_nan && mhi < expr::kLogEpsilon) {
          Emit(Severity::kError, "log-of-zero",
               "argument '" + Snippet(*node.children()[0]) + "' " +
                   FormatInterval(a) +
                   " always lies in the log protection band; log "
                   "constantly evaluates to 0");
          return true;
        }
        if (a.lo < expr::kLogEpsilon) {
          Emit(Severity::kWarning, "log-nonpositive",
               "argument '" + Snippet(*node.children()[0]) + "' " +
                   FormatInterval(a) +
                   " can be non-positive; protected log silently evaluates "
                   "log(|x|), 0 inside the band");
        }
        break;
      }
      case expr::NodeKind::kExp: {
        const Interval a = IntervalOf(*node.children()[0]);
        if (a.lo >= expr::kExpArgClamp) {
          Emit(Severity::kError, "exp-overflow",
               "argument '" + Snippet(*node.children()[0]) + "' " +
                   FormatInterval(a) +
                   " is always >= the clamp 80; exp constantly saturates "
                   "at e^80");
          return true;
        }
        if (a.hi > expr::kExpArgClamp) {
          Emit(Severity::kWarning, "exp-may-overflow",
               "argument '" + Snippet(*node.children()[0]) + "' " +
                   FormatInterval(a) +
                   " can exceed the clamp 80; exp silently saturates");
        }
        break;
      }
      default:
        break;
    }
    return false;
  }

  /// Per-child liveness for a live parent: default live, minus dominated
  /// min/max branches, multiplications by a provable zero, always-protected
  /// divisions, and self-cancelling x-x / x/x pairs.
  void ChildLiveness(const expr::Expr& node, bool live, bool child_live[2]) {
    child_live[0] = live;
    child_live[1] = live;
    if (!live || node.children().size() != 2) return;
    const expr::Expr& left = *node.children()[0];
    const expr::Expr& right = *node.children()[1];
    if ((node.kind() == expr::NodeKind::kSub ||
         node.kind() == expr::NodeKind::kDiv) &&
        expr::StructurallyEqual(left, right)) {
      // x - x and protected x / x are constant for finite x; the operands
      // no longer influence the output.
      if (IntervalOf(left).IsFinite()) {
        child_live[0] = false;
        child_live[1] = false;
      }
      return;
    }
    const Interval a = IntervalOf(left);
    const Interval b = IntervalOf(right);
    switch (node.kind()) {
      case expr::NodeKind::kMul:
        // 0 * x == 0 for finite x, so the other factor is irrelevant.
        if (a.IsPoint() && a.lo == 0.0 && b.IsFinite()) {
          child_live[1] = false;
        }
        if (b.IsPoint() && b.lo == 0.0 && a.IsFinite()) {
          child_live[0] = false;
        }
        break;
      case expr::NodeKind::kDiv:
        if (!b.maybe_nan && b.lo > -expr::kDivEpsilon &&
            b.hi < expr::kDivEpsilon) {
          // Always protected: the result is the constant 1.
          child_live[0] = false;
          child_live[1] = false;
        }
        break;
      case expr::NodeKind::kMin:
        if (a.maybe_nan || b.maybe_nan) break;
        if (a.hi <= b.lo) {
          child_live[1] = false;
          NoteDominated(node, 1, "minimum");
        } else if (b.hi <= a.lo) {
          child_live[0] = false;
          NoteDominated(node, 0, "minimum");
        }
        break;
      case expr::NodeKind::kMax:
        if (a.maybe_nan || b.maybe_nan) break;
        if (a.lo >= b.hi) {
          child_live[1] = false;
          NoteDominated(node, 1, "maximum");
        } else if (b.lo >= a.hi) {
          child_live[0] = false;
          NoteDominated(node, 0, "maximum");
        }
        break;
      default:
        break;
    }
  }

  void NoteDominated(const expr::Expr& node, int child, const char* which) {
    if (!options_.note_dominated_branches) return;
    const expr::Expr& branch = *node.children()[child];
    address_.push_back(child);
    Emit(Severity::kNote, "dominated-branch",
         "branch '" + Snippet(branch) + "' " +
             FormatInterval(IntervalOf(branch)) + " can never be the " +
             which + "; the other operand always wins");
    address_.pop_back();
  }

  void Walk(const expr::Expr& node, bool live, bool under_foldable) {
    switch (node.kind()) {
      case expr::NodeKind::kVariable:
        referenced_variables_.insert(node.slot());
        if (live) live_variables_.insert(node.slot());
        return;
      case expr::NodeKind::kParameter:
        referenced_parameters_.insert(node.slot());
        if (live) live_parameters_.insert(node.slot());
        return;
      case expr::NodeKind::kConstant:
        return;
      default:
        break;
    }
    const bool had_error = NodeDiagnostics(node);
    const Interval iv = IntervalOf(node);
    const bool foldable = iv.IsPoint();
    if (foldable && !under_foldable && !had_error &&
        options_.note_constant_foldable) {
      Emit(Severity::kNote, "constant-foldable",
           "subtree '" + Snippet(node) + "' provably evaluates to " +
               FormatInterval(iv) +
               " everywhere but was not folded syntactically");
    }
    bool child_live[2];
    ChildLiveness(node, live, child_live);
    for (std::size_t i = 0; i < node.children().size(); ++i) {
      address_.push_back(static_cast<int>(i));
      Walk(*node.children()[i], child_live[i], under_foldable || foldable);
      address_.pop_back();
    }
  }

  const DomainEnv& env_;
  const LintOptions& options_;
  LintResult* result_;
  int equation_ = -1;
  std::vector<int> address_;
  std::unordered_map<const expr::Expr*, Interval> memo_;
  std::set<int> live_variables_;
  std::set<int> live_parameters_;
  std::set<int> referenced_variables_;
  std::set<int> referenced_parameters_;
};

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string FormatAddress(const Diagnostic& diagnostic) {
  if (diagnostic.equation < 0) return "-";
  std::string out = "eq" + std::to_string(diagnostic.equation);
  for (std::size_t i = 0; i < diagnostic.address.size(); ++i) {
    out += i == 0 ? ":" : ".";
    out += std::to_string(diagnostic.address[i]);
  }
  return out;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  return FormatAddress(diagnostic) + ": " +
         SeverityName(diagnostic.severity) + " [" + diagnostic.code + "] " +
         diagnostic.message;
}

bool LintResult::HasErrors() const { return CountAtLeast(Severity::kError) > 0; }

bool LintResult::HasWarnings() const {
  return CountAtLeast(Severity::kWarning) > 0;
}

std::size_t LintResult::CountAtLeast(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (static_cast<int>(d.severity) >= static_cast<int>(severity)) ++n;
  }
  return n;
}

LintResult LintEquations(const std::vector<expr::ExprPtr>& equations,
                         const DomainEnv& env, const LintOptions& options) {
  LintResult result;
  Linter linter(env, options, &result);
  for (std::size_t i = 0; i < equations.size(); ++i) {
    GMR_CHECK(equations[i] != nullptr);
    linter.LintEquation(static_cast<int>(i), *equations[i]);
  }
  linter.FinishDeadInputs();
  return result;
}

}  // namespace gmr::analysis
