// gmr_lint: static analysis of saved model files (# gmr-model v1) and TAG
// grammar specs (# gmr-grammar v1).
//
//   gmr_lint [options] <file>...
//
//   --strict            exit non-zero on warnings, not just errors
//   --require-findings  exit 0 iff EVERY file produced at least one
//                       warning or error (for lint-corpus regression tests);
//                       exit 2 when some file came back clean
//   --builtin-grammar   additionally lint the built-in river TAG grammar
//   --no-notes          suppress note-level diagnostics
//
// Model files are linted over the bounded river domains (simulation clamp,
// physical driver ranges, Table III parameter boxes); findings are
// node-addressed as <file>:eqN:<child-path>. Exit codes: 0 clean (under the
// active policy), 1 findings, 2 file/usage errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/grammar_io.h"
#include "analysis/grammar_lint.h"
#include "analysis/lint.h"
#include "core/model_io.h"
#include "core/river_grammar.h"
#include "river/biology.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace {

struct Options {
  bool strict = false;
  bool require_findings = false;
  bool builtin_grammar = false;
  bool notes = true;
  std::vector<std::string> files;
};

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--strict") == 0) {
      options->strict = true;
    } else if (std::strcmp(arg, "--require-findings") == 0) {
      options->require_findings = true;
    } else if (std::strcmp(arg, "--builtin-grammar") == 0) {
      options->builtin_grammar = true;
    } else if (std::strcmp(arg, "--no-notes") == 0) {
      options->notes = false;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "gmr_lint: unknown option %s\n", arg);
      return false;
    } else {
      options->files.emplace_back(arg);
    }
  }
  return !options->files.empty() || options->builtin_grammar;
}

/// First non-empty line decides the file kind.
enum class FileKind { kModel, kGrammar, kUnknown };

FileKind SniffKind(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("gmr-model") != std::string::npos) return FileKind::kModel;
    if (line.find("gmr-grammar") != std::string::npos) {
      return FileKind::kGrammar;
    }
    break;
  }
  return FileKind::kUnknown;
}

void Print(const std::string& path, const gmr::analysis::Diagnostic& d) {
  std::printf("%s:%s\n", path.c_str(),
              gmr::analysis::FormatDiagnostic(d).c_str());
}

struct FileOutcome {
  bool load_failed = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool HasFindings() const { return load_failed || errors + warnings > 0; }
};

/// Prints a diagnostic list and folds its counts into `outcome`.
void Report(const std::string& path, const Options& options,
            const std::vector<gmr::analysis::Diagnostic>& diagnostics,
            FileOutcome* outcome) {
  for (const gmr::analysis::Diagnostic& d : diagnostics) {
    if (d.severity == gmr::analysis::Severity::kNote && !options.notes) {
      continue;
    }
    Print(path, d);
    if (d.severity == gmr::analysis::Severity::kError) ++outcome->errors;
    if (d.severity == gmr::analysis::Severity::kWarning) ++outcome->warnings;
  }
}

FileOutcome LintModelFile(const std::string& path, const Options& options) {
  FileOutcome outcome;
  gmr::core::SavedModel model;
  std::string error;
  if (!gmr::core::LoadModel(path, gmr::river::RiverSymbols(), &model,
                            &error)) {
    std::printf("%s:-: error [load-failed] %s\n", path.c_str(),
                error.c_str());
    outcome.load_failed = true;
    return outcome;
  }
  gmr::analysis::LintOptions lint_options;
  lint_options.num_states = 2;  // B_Phy, B_Zoo.
  lint_options.variable_names = gmr::river::VariableNames();
  // Dead-parameter reporting covers exactly the parameters the file
  // declares; slots the file never mentions are not its business.
  lint_options.parameter_names.assign(model.parameters.size(), "");
  for (const std::string& name : model.declared_parameters) {
    const auto& table = gmr::river::RiverSymbols().parameters;
    const auto it = table.find(name);
    if (it != table.end() &&
        static_cast<std::size_t>(it->second) <
            lint_options.parameter_names.size()) {
      lint_options.parameter_names[static_cast<std::size_t>(it->second)] =
          name;
    }
  }
  lint_options.note_constant_foldable = options.notes;
  lint_options.note_dominated_branches = options.notes;
  const gmr::analysis::LintResult result = gmr::analysis::LintEquations(
      model.equations, gmr::river::LintDomains(), lint_options);
  Report(path, options, result.diagnostics, &outcome);
  return outcome;
}

FileOutcome LintGrammarFile(const std::string& path, const Options& options) {
  FileOutcome outcome;
  gmr::tag::Grammar grammar;
  std::string error;
  if (!gmr::analysis::LoadGrammarSpec(path, gmr::river::RiverSymbols(),
                                      &grammar, &error)) {
    std::printf("%s:-: error [load-failed] %s\n", path.c_str(),
                error.c_str());
    outcome.load_failed = true;
    return outcome;
  }
  const gmr::analysis::GrammarLintResult result =
      gmr::analysis::LintGrammar(grammar);
  Report(path, options, result.diagnostics, &outcome);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: gmr_lint [--strict] [--require-findings] "
                 "[--builtin-grammar] [--no-notes] <file>...\n");
    return 2;
  }

  bool any_usage_error = false;
  bool any_findings = false;
  bool all_files_have_findings = true;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  auto fold = [&](const FileOutcome& outcome) {
    if (outcome.HasFindings()) {
      any_findings = true;
    } else {
      all_files_have_findings = false;
    }
    errors += outcome.errors + (outcome.load_failed ? 1 : 0);
    warnings += outcome.warnings;
  };

  for (const std::string& path : options.files) {
    switch (SniffKind(path)) {
      case FileKind::kModel:
        fold(LintModelFile(path, options));
        break;
      case FileKind::kGrammar:
        fold(LintGrammarFile(path, options));
        break;
      case FileKind::kUnknown:
        std::fprintf(stderr,
                     "gmr_lint: %s: not a gmr-model or gmr-grammar file\n",
                     path.c_str());
        any_usage_error = true;
        break;
    }
  }

  if (options.builtin_grammar) {
    FileOutcome outcome;
    const gmr::core::RiverPriorKnowledge knowledge =
        gmr::core::BuildRiverPriorKnowledge();
    Report("<builtin-river-grammar>", options,
           gmr::analysis::LintGrammar(knowledge.grammar).diagnostics,
           &outcome);
    fold(outcome);
  }

  std::printf("gmr_lint: %zu error(s), %zu warning(s)\n", errors, warnings);
  if (any_usage_error) return 2;
  if (options.require_findings) return all_files_have_findings ? 0 : 2;
  if (errors > 0) return 1;
  if (options.strict && warnings > 0) return 1;
  return 0;
}
