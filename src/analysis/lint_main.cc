// gmr_lint: static analysis of saved model files (# gmr-model v1) and TAG
// grammar specs (# gmr-grammar v1).
//
//   gmr_lint [options] <file>...
//
//   --strict            exit non-zero on warnings, not just errors
//   --require-findings  exit 0 iff EVERY file produced at least one
//                       warning or error (for lint-corpus regression tests);
//                       exit 2 when some file came back clean
//   --builtin-grammar   additionally lint the built-in river TAG grammar
//   --no-notes          suppress note-level diagnostics
//   --preset=<name>     constituent registry model files are linted
//                       against: plankton2 (default, the legacy two-species
//                       problem) or transport1..transport5. The preset
//                       decides the variable layout, the per-constituent
//                       dimension table, the parameter boxes, and which
//                       output closure the inactive-parameter check uses.
//   --severity=<t>      reporting threshold: note | warn | error.
//                       Diagnostics below the threshold are suppressed and
//                       the exit code becomes severity-graded: 0 clean,
//                       1 warnings only, 2 errors (or load/usage errors).
//                       Without this flag the legacy scheme applies (0/1
//                       with --strict, 2 reserved for usage/load errors).
//
// Model files are linted over the bounded river domains (simulation clamp,
// physical driver ranges, Table III parameter boxes) and against the river
// dimension knowledge base: interval findings, units-mismatch findings,
// mass-balance direction findings, and inactive-parameter findings (live
// parameters provably outside the B_Phy output closure). Grammar files
// additionally get dimension-inconsistent-beta findings. Findings are
// node-addressed as <file>:eqN:<child-path>.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/activity.h"
#include "analysis/dataflow.h"
#include "analysis/grammar_io.h"
#include "analysis/grammar_lint.h"
#include "analysis/lint.h"
#include "analysis/sign.h"
#include "analysis/units.h"
#include "core/model_io.h"
#include "core/river_grammar.h"
#include "grad/tape.h"
#include "river/biology.h"
#include "river/constituents.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace {

struct Options {
  bool strict = false;
  bool require_findings = false;
  bool builtin_grammar = false;
  bool notes = true;
  /// Reporting threshold as a Severity int, or -1 for the legacy scheme.
  int severity = -1;
  /// Constituent registry model files are linted against.
  gmr::river::ConstituentSet constituents =
      gmr::river::ConstituentSet::LegacyPlankton();
  std::vector<std::string> files;
};

bool ResolvePreset(const char* name, gmr::river::ConstituentSet* set) {
  const std::string preset = name;
  if (preset == "plankton2") {
    *set = gmr::river::ConstituentSet::LegacyPlankton();
    return true;
  }
  for (int n = 1; n <= 5; ++n) {
    if (preset == "transport" + std::to_string(n)) {
      *set = gmr::river::ConstituentSet::Transport(n);
      return true;
    }
  }
  return false;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--strict") == 0) {
      options->strict = true;
    } else if (std::strcmp(arg, "--require-findings") == 0) {
      options->require_findings = true;
    } else if (std::strcmp(arg, "--builtin-grammar") == 0) {
      options->builtin_grammar = true;
    } else if (std::strcmp(arg, "--no-notes") == 0) {
      options->notes = false;
    } else if (std::strncmp(arg, "--preset=", 9) == 0) {
      if (!ResolvePreset(arg + 9, &options->constituents)) {
        std::fprintf(stderr,
                     "gmr_lint: --preset expects plankton2 or "
                     "transport1..transport5 (got %s)\n",
                     arg + 9);
        return false;
      }
    } else if (std::strncmp(arg, "--severity=", 11) == 0) {
      const char* level = arg + 11;
      if (std::strcmp(level, "note") == 0) {
        options->severity = static_cast<int>(gmr::analysis::Severity::kNote);
      } else if (std::strcmp(level, "warn") == 0) {
        options->severity =
            static_cast<int>(gmr::analysis::Severity::kWarning);
      } else if (std::strcmp(level, "error") == 0) {
        options->severity =
            static_cast<int>(gmr::analysis::Severity::kError);
      } else {
        std::fprintf(stderr,
                     "gmr_lint: --severity expects note, warn, or error "
                     "(got %s)\n",
                     level);
        return false;
      }
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "gmr_lint: unknown option %s\n", arg);
      return false;
    } else {
      options->files.emplace_back(arg);
    }
  }
  return !options->files.empty() || options->builtin_grammar;
}

/// First non-empty line decides the file kind.
enum class FileKind { kModel, kGrammar, kUnknown };

FileKind SniffKind(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.find("gmr-model") != std::string::npos) return FileKind::kModel;
    if (line.find("gmr-grammar") != std::string::npos) {
      return FileKind::kGrammar;
    }
    break;
  }
  return FileKind::kUnknown;
}

void Print(const std::string& path, const gmr::analysis::Diagnostic& d) {
  std::printf("%s:%s\n", path.c_str(),
              gmr::analysis::FormatDiagnostic(d).c_str());
}

struct FileOutcome {
  bool load_failed = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  bool HasFindings() const { return load_failed || errors + warnings > 0; }
};

/// Prints a diagnostic list and folds its counts into `outcome`.
void Report(const std::string& path, const Options& options,
            const std::vector<gmr::analysis::Diagnostic>& diagnostics,
            FileOutcome* outcome) {
  for (const gmr::analysis::Diagnostic& d : diagnostics) {
    if (d.severity == gmr::analysis::Severity::kNote && !options.notes) {
      continue;
    }
    // Below the --severity threshold: fully suppressed (neither printed nor
    // counted toward the exit code).
    if (options.severity >= 0 &&
        static_cast<int>(d.severity) < options.severity) {
      continue;
    }
    Print(path, d);
    if (d.severity == gmr::analysis::Severity::kError) ++outcome->errors;
    if (d.severity == gmr::analysis::Severity::kWarning) ++outcome->warnings;
  }
}

FileOutcome LintModelFile(const std::string& path, const Options& options) {
  FileOutcome outcome;
  const gmr::river::ConstituentSet& constituents = options.constituents;
  const gmr::expr::SymbolTable symbols = gmr::river::SymbolsFor(constituents);
  const gmr::analysis::DomainEnv domains =
      gmr::river::LintDomainsFor(constituents);
  gmr::core::SavedModel model;
  std::string error;
  if (!gmr::core::LoadModel(path, symbols, &model, &error)) {
    std::printf("%s:-: error [load-failed] %s\n", path.c_str(),
                error.c_str());
    outcome.load_failed = true;
    return outcome;
  }
  gmr::analysis::LintOptions lint_options;
  lint_options.num_states = static_cast<int>(constituents.size());
  lint_options.variable_names = constituents.VariableNames();
  // Dead-parameter reporting covers exactly the parameters the file
  // declares; slots the file never mentions are not its business.
  lint_options.parameter_names.assign(model.parameters.size(), "");
  for (const std::string& name : model.declared_parameters) {
    const auto it = symbols.parameters.find(name);
    if (it != symbols.parameters.end() &&
        static_cast<std::size_t>(it->second) <
            lint_options.parameter_names.size()) {
      lint_options.parameter_names[static_cast<std::size_t>(it->second)] =
          name;
    }
  }
  lint_options.note_constant_foldable = options.notes;
  lint_options.note_dominated_branches = options.notes;
  const gmr::analysis::LintResult result =
      gmr::analysis::LintEquations(model.equations, domains, lint_options);
  Report(path, options, result.diagnostics, &outcome);

  // Dimensional consistency and mass-balance direction, per equation,
  // against the preset's per-constituent dimension table and the same
  // bounded domains the interval checks use. Both passes report by node
  // pointer (shared subtrees once); WalkAddresses recovers the
  // first-occurrence address for the <file>:eqN:<path> format.
  const gmr::analysis::UnitsEnv units_env =
      gmr::river::UnitsEnvFor(constituents);
  std::vector<gmr::analysis::Diagnostic> extra;
  for (std::size_t eq = 0; eq < model.equations.size(); ++eq) {
    const gmr::analysis::UnitsResult units =
        gmr::analysis::AnalyzeUnits(*model.equations[eq], units_env);
    const gmr::analysis::MassBalanceResult balance =
        gmr::analysis::CheckMassBalance(*model.equations[eq], domains);
    if (units.findings.empty() && balance.findings.empty()) continue;
    std::map<const gmr::expr::Expr*, std::vector<int>> addresses;
    gmr::analysis::WalkAddresses(
        *model.equations[eq],
        [&addresses](const gmr::expr::Expr& node,
                     const std::vector<int>& address) {
          addresses.emplace(&node, address);
        });
    auto attach = [&](const gmr::expr::Expr* node, const char* code,
                      const std::string& message) {
      gmr::analysis::Diagnostic d;
      d.severity = gmr::analysis::Severity::kWarning;
      d.code = code;
      d.equation = static_cast<int>(eq);
      const auto it = addresses.find(node);
      if (it != addresses.end()) d.address = it->second;
      d.message = message;
      extra.push_back(std::move(d));
    };
    for (const gmr::analysis::UnitsFinding& f : units.findings) {
      attach(f.node, f.code, f.message);
    }
    for (const gmr::analysis::SignFinding& f : balance.findings) {
      attach(f.node, f.code, f.message);
    }
  }

  // Declared parameters that are syntactically live yet provably outside
  // every observed constituent's output closure: calibration budget spent
  // on them is wasted (the activity oracle guarantees perturbing them
  // leaves rollouts bit-identical). A parameter driving any observed
  // output — sediment as well as nitrate under the five-species transport
  // registry — is active. Dead parameters are already reported by
  // LintEquations.
  std::vector<int> observed = constituents.ObservedConstituents();
  if (observed.empty()) observed.push_back(constituents.PrimaryObserved());
  std::string observed_names;
  gmr::analysis::Activity closure;
  bool closure_valid = false;
  for (const int output : observed) {
    if (static_cast<std::size_t>(output) >= model.equations.size()) continue;
    closure |= gmr::analysis::OutputClosureActivity(model.equations, output,
                                                    domains);
    if (!observed_names.empty()) observed_names += "/";
    observed_names += constituents.at(static_cast<std::size_t>(output)).name;
    closure_valid = true;
  }
  if (closure_valid) {
    for (std::size_t slot = 0; slot < lint_options.parameter_names.size();
         ++slot) {
      const std::string& name = lint_options.parameter_names[slot];
      if (name.empty() || slot >= 63) continue;
      const int slot_index = static_cast<int>(slot);
      if (std::find(result.live_parameters.begin(),
                    result.live_parameters.end(),
                    slot_index) == result.live_parameters.end()) {
        continue;
      }
      if ((closure.parameters & gmr::analysis::ActivityBit(slot_index)) !=
          0) {
        continue;
      }
      gmr::analysis::Diagnostic d;
      d.severity = gmr::analysis::Severity::kWarning;
      d.code = "inactive-parameter";
      d.message = "parameter " + name +
                  " is referenced but provably cannot affect the " +
                  observed_names +
                  " output trajectory; calibration can freeze it";
      extra.push_back(std::move(d));
    }
  }

  // Gradient-structural-zero: the reverse-mode tapes (grad/tape.h) of every
  // equation, activity-pruned over the same lint domains. A syntactically
  // live parameter outside every equation's root activity accumulates an
  // adjoint of exactly 0.0 on every rollout — L-BFGS/Adam and the TAG3P
  // elite polish can never move it, so it should be frozen or the model
  // revised. Strictly sharper than inactive-parameter: the activity pass
  // also prunes x - x, self-division, and operands locked inside the
  // protected div/log bands by their domains.
  {
    gmr::analysis::Activity tape_union;
    const int num_parameters =
        static_cast<int>(lint_options.parameter_names.size());
    for (const gmr::expr::ExprPtr& equation : model.equations) {
      const gmr::grad::Tape tape(*equation, num_parameters,
                                 static_cast<int>(constituents.size()),
                                 &domains);
      tape_union |= tape.root_activity();
    }
    for (const int slot : result.live_parameters) {
      if (slot < 0 || slot >= num_parameters || slot >= 63) continue;
      const std::string& name =
          lint_options.parameter_names[static_cast<std::size_t>(slot)];
      if (name.empty()) continue;
      if ((tape_union.parameters & gmr::analysis::ActivityBit(slot)) != 0) {
        continue;
      }
      gmr::analysis::Diagnostic d;
      d.severity = gmr::analysis::Severity::kWarning;
      d.code = "zero-gradient";
      d.message =
          "parameter " + name +
          " has a structurally zero reverse-mode gradient over the "
          "declared domains; gradient-based calibration cannot move it";
      extra.push_back(std::move(d));
    }
  }
  Report(path, options, extra, &outcome);
  return outcome;
}

FileOutcome LintGrammarFile(const std::string& path, const Options& options) {
  FileOutcome outcome;
  gmr::tag::Grammar grammar;
  std::string error;
  if (!gmr::analysis::LoadGrammarSpec(path, gmr::river::RiverSymbols(),
                                      &grammar, &error)) {
    std::printf("%s:-: error [load-failed] %s\n", path.c_str(),
                error.c_str());
    outcome.load_failed = true;
    return outcome;
  }
  const gmr::analysis::GrammarLintResult result =
      gmr::analysis::LintGrammar(grammar);
  Report(path, options, result.diagnostics, &outcome);
  Report(path, options,
         gmr::analysis::AnalyzeGrammarDimensions(grammar,
                                                 gmr::river::RiverUnitsEnv())
             .diagnostics,
         &outcome);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: gmr_lint [--strict] [--require-findings] "
                 "[--builtin-grammar] [--no-notes] "
                 "[--severity=note|warn|error] <file>...\n");
    return 2;
  }

  bool any_usage_error = false;
  bool any_findings = false;
  bool all_files_have_findings = true;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  auto fold = [&](const FileOutcome& outcome) {
    if (outcome.HasFindings()) {
      any_findings = true;
    } else {
      all_files_have_findings = false;
    }
    errors += outcome.errors + (outcome.load_failed ? 1 : 0);
    warnings += outcome.warnings;
  };

  for (const std::string& path : options.files) {
    switch (SniffKind(path)) {
      case FileKind::kModel:
        fold(LintModelFile(path, options));
        break;
      case FileKind::kGrammar:
        fold(LintGrammarFile(path, options));
        break;
      case FileKind::kUnknown:
        std::fprintf(stderr,
                     "gmr_lint: %s: not a gmr-model or gmr-grammar file\n",
                     path.c_str());
        any_usage_error = true;
        break;
    }
  }

  if (options.builtin_grammar) {
    FileOutcome outcome;
    const gmr::core::RiverPriorKnowledge knowledge =
        gmr::core::BuildRiverPriorKnowledge();
    Report("<builtin-river-grammar>", options,
           gmr::analysis::LintGrammar(knowledge.grammar).diagnostics,
           &outcome);
    Report("<builtin-river-grammar>", options,
           gmr::analysis::AnalyzeGrammarDimensions(
               knowledge.grammar, gmr::river::RiverUnitsEnv())
               .diagnostics,
           &outcome);
    fold(outcome);
  }

  std::printf("gmr_lint: %zu error(s), %zu warning(s)\n", errors, warnings);
  if (any_usage_error) return 2;
  if (options.require_findings) return all_files_have_findings ? 0 : 2;
  if (options.severity >= 0) {
    // Severity-graded scheme: 2 errors, 1 warnings, 0 clean (diagnostics
    // below the threshold were suppressed in Report and count as clean).
    if (errors > 0) return 2;
    if (warnings > 0) return 1;
    return 0;
  }
  if (errors > 0) return 1;
  if (options.strict && warnings > 0) return 1;
  return 0;
}
