#include "analysis/activity.h"

#include <cmath>

#include "analysis/dataflow.h"
#include "common/check.h"

namespace gmr::analysis {
namespace {

/// The activity instance of the dataflow framework. A nested interval pass
/// over the same environment supplies the exactness facts that justify
/// pruning a dependence; every guard requires the runtime value to be
/// *bit-exactly* independent of the pruned subtree (not merely bounded),
/// because the activity oracle compares rollouts bitwise.
struct ActivityDomain {
  using Value = Activity;

  DataflowPass<IntervalDomain>* intervals;

  Activity Constant(const expr::Expr&) const { return Activity{}; }

  Activity Variable(const expr::Expr& node) const {
    return Activity{ActivityBit(node.slot()), 0};
  }

  Activity Parameter(const expr::Expr& node) const {
    return Activity{0, ActivityBit(node.slot())};
  }

  Activity Unary(const expr::Expr& node, const Activity& a) const {
    const expr::Expr& child = *node.children()[0];
    switch (node.kind()) {
      case expr::NodeKind::kLog: {
        // Argument range entirely inside the |x| < kLogEpsilon zero band:
        // the protected kernel returns exactly 0 for every input.
        const Interval& c = intervals->Evaluate(child);
        const double mhi = std::max(std::fabs(c.lo), std::fabs(c.hi));
        if (!c.maybe_nan && mhi < expr::kLogEpsilon) return Activity{};
        return a;
      }
      case expr::NodeKind::kExp: {
        // Argument range entirely beyond a clamp edge: constant exp(+/-80).
        const Interval& c = intervals->Evaluate(child);
        if (!c.maybe_nan && (c.lo >= expr::kExpArgClamp ||
                             c.hi <= -expr::kExpArgClamp)) {
          return Activity{};
        }
        return a;
      }
      default:
        return a;
    }
  }

  Activity Binary(const expr::Expr& node, const Activity& a,
                  const Activity& b) const {
    const expr::Expr& left = *node.children()[0];
    const expr::Expr& right = *node.children()[1];
    if (expr::StructurallyEqual(left, right)) {
      switch (node.kind()) {
        case expr::NodeKind::kSub:
        case expr::NodeKind::kDiv:
          // x - x == 0 and protected x / x == 1 exactly, for finite x.
          if (intervals->Evaluate(left).IsFinite()) return Activity{};
          break;
        case expr::NodeKind::kMin:
        case expr::NodeKind::kMax:
          return a;
        default:
          break;
      }
      return Union(a, b);
    }
    switch (node.kind()) {
      case expr::NodeKind::kMul: {
        // 0 * finite == 0 exactly (0 * inf would be NaN).
        const Interval& ia = intervals->Evaluate(left);
        const Interval& ib = intervals->Evaluate(right);
        if (IsZeroPoint(ia) && ib.IsFinite()) return Activity{};
        if (IsZeroPoint(ib) && ia.IsFinite()) return Activity{};
        break;
      }
      case expr::NodeKind::kDiv: {
        // Denominator range entirely inside the protection band: the
        // kernel returns the constant 1 for every input.
        const Interval& ib = intervals->Evaluate(right);
        if (!ib.maybe_nan && ib.lo > -expr::kDivEpsilon &&
            ib.hi < expr::kDivEpsilon) {
          return Activity{};
        }
        break;
      }
      case expr::NodeKind::kMin: {
        const Interval& ia = intervals->Evaluate(left);
        const Interval& ib = intervals->Evaluate(right);
        if (!ia.maybe_nan && !ib.maybe_nan) {
          if (ia.hi < ib.lo) return a;
          if (ib.hi < ia.lo) return b;
        }
        break;
      }
      case expr::NodeKind::kMax: {
        const Interval& ia = intervals->Evaluate(left);
        const Interval& ib = intervals->Evaluate(right);
        if (!ia.maybe_nan && !ib.maybe_nan) {
          if (ia.lo > ib.hi) return a;
          if (ib.lo > ia.hi) return b;
        }
        break;
      }
      default:
        break;
    }
    return Union(a, b);
  }

 private:
  static Activity Union(const Activity& a, const Activity& b) {
    Activity out = a;
    out |= b;
    return out;
  }

  static bool IsZeroPoint(const Interval& interval) {
    return interval.IsPoint() && interval.lo == 0.0;
  }
};

}  // namespace

std::uint64_t ActivityBit(int slot) {
  GMR_CHECK(slot >= 0);
  return std::uint64_t{1} << (slot < 63 ? slot : 63);
}

Activity AnalyzeActivity(const expr::Expr& root, const DomainEnv& env) {
  DataflowPass<IntervalDomain> intervals(IntervalDomain{&env});
  DataflowPass<ActivityDomain> pass(ActivityDomain{&intervals});
  return pass.Evaluate(root);
}

Activity OutputClosureActivity(const std::vector<expr::ExprPtr>& equations,
                               int output_state, const DomainEnv& env) {
  const int num_states = static_cast<int>(equations.size());
  GMR_CHECK(output_state >= 0 && output_state < num_states);
  std::vector<Activity> per_equation;
  per_equation.reserve(equations.size());
  for (const expr::ExprPtr& eq : equations) {
    GMR_CHECK(eq != nullptr);
    per_equation.push_back(AnalyzeActivity(*eq, env));
  }

  std::uint64_t state_mask = 0;
  for (int s = 0; s < num_states; ++s) state_mask |= ActivityBit(s);

  // Least fixpoint of state reachability from the output: a state is in
  // the closure when the output's own equation — or any equation already
  // in the closure — reads its state variable.
  std::uint64_t active_states = ActivityBit(output_state);
  for (;;) {
    std::uint64_t next = active_states;
    for (int s = 0; s < num_states; ++s) {
      if (active_states & ActivityBit(s)) {
        next |= per_equation[static_cast<std::size_t>(s)].variables &
                state_mask;
      }
    }
    if (next == active_states) break;
    active_states = next;
  }

  Activity closure;
  closure.variables = active_states;  // The output reads its own state.
  for (int s = 0; s < num_states; ++s) {
    if (active_states & ActivityBit(s)) {
      closure |= per_equation[static_cast<std::size_t>(s)];
    }
  }
  return closure;
}

std::vector<int> InactiveParameters(const Activity& activity,
                                    int num_parameters) {
  std::vector<int> inactive;
  for (int slot = 0; slot < num_parameters && slot < 63; ++slot) {
    if (!(activity.parameters & ActivityBit(slot))) inactive.push_back(slot);
  }
  return inactive;
}

}  // namespace gmr::analysis
