#ifndef GMR_ANALYSIS_SIGN_H_
#define GMR_ANALYSIS_SIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/interval.h"
#include "expr/ast.h"

namespace gmr::analysis {

/// One element of the sign lattice: a bitmask over the value classes a
/// subexpression can produce under the protected scalar semantics. The
/// lattice order is subset inclusion; join is bitwise-or. Infinite values
/// count as kSignNeg/kSignPos (the sign pass does not track magnitude —
/// the interval pass does).
enum SignBits : std::uint8_t {
  kSignNeg = 1,   ///< A strictly negative value is reachable.
  kSignZero = 2,  ///< Exactly zero is reachable.
  kSignPos = 4,   ///< A strictly positive value is reachable.
  kSignNaN = 8,   ///< NaN is reachable.
};
using SignSet = std::uint8_t;
constexpr SignSet kSignAll = kSignNeg | kSignZero | kSignPos | kSignNaN;

/// "{-,0,+,NaN}" subset notation for diagnostics, e.g. "{-}" or "{0,+}".
std::string FormatSignSet(SignSet s);

/// Sign abstraction of an interval-lattice element (the leaf seeding rule
/// of the sign pass: leaves inherit their sign from the declared domains).
SignSet SignOfInterval(const Interval& interval);

/// Sign transfer functions over the protected kernels. NaN handling is
/// deliberately conservative (sound but imprecise): the sign domain cannot
/// see magnitudes, so any operand combination that could hit an
/// indeterminate form (opposite-sign addition = inf - inf, zero times a
/// signed factor = 0 * inf, signed / signed = inf / inf) sets kSignNaN.
/// The mass-balance check below only fires on NaN-free verdicts, so this
/// conservatism suppresses findings rather than fabricating them.
SignSet ApplyUnarySign(expr::NodeKind kind, SignSet a);
SignSet ApplyBinarySign(expr::NodeKind kind, SignSet a, SignSet b);

/// The sign instance of the dataflow framework.
struct SignDomain {
  using Value = SignSet;
  const DomainEnv* env;

  SignSet Constant(const expr::Expr& node) const;
  SignSet Variable(const expr::Expr& node) const;
  SignSet Parameter(const expr::Expr& node) const;
  SignSet Unary(const expr::Expr& node, SignSet a) const;
  SignSet Binary(const expr::Expr& node, SignSet a, SignSet b) const;
};

/// Possible signs of `node` over `env`.
SignSet EvaluateSign(const expr::Expr& node, const DomainEnv& env);

/// A mass-balance direction violation: a term of a derivative's top-level
/// sum/difference spine whose sign contradicts its polarity.
struct SignFinding {
  const expr::Expr* node = nullptr;
  /// "loss-term-adds-mass": a subtracted term is provably strictly
  /// negative, so the "loss" can only inject mass.
  /// "gain-term-removes-mass": an added term is provably strictly
  /// negative, so the "gain" can only drain mass.
  const char* code = "loss-term-adds-mass";
  std::string message;
};

struct MassBalanceResult {
  std::vector<SignFinding> findings;
  bool Consistent() const { return findings.empty(); }
};

/// Walks the top-level +/-/neg spine of a derivative right-hand side,
/// tracking polarity, and flags every term whose sign set is exactly
/// {kSignNeg} (strictly negative, provably never zero or NaN) yet appears
/// with the polarity of the opposite direction. Well-formed kinetic terms
/// are products of non-negative factors (rates, concentrations, response
/// curves), so they carry a zero or NaN bit and are never flagged; a
/// finding means the term *always* moves mass against its stated
/// direction over the declared domains.
MassBalanceResult CheckMassBalance(const expr::Expr& derivative,
                                   const DomainEnv& env);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_SIGN_H_
