#ifndef GMR_ANALYSIS_INTERVAL_H_
#define GMR_ANALYSIS_INTERVAL_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "expr/ast.h"

namespace gmr::analysis {

/// One element of the interval lattice used by the static analyzer: the set
/// of values a subexpression can take over every admissible input, as a
/// closed real interval [lo, hi] plus a "may be NaN" bit. The bounds are
/// never NaN; lo <= hi always holds, and an endpoint of +/-inf means the
/// set is unbounded on that side (and that an actually-infinite value is
/// considered reachable — RK4 stage states are unclamped, so runtime values
/// can genuinely overflow to inf). See DESIGN.md §4e.
///
/// Every operator rule over-approximates the *protected* scalar semantics
/// of expr/eval.h (protected division, log(|x|) with a zero band, clamped
/// exp), not textbook real arithmetic — soundness of the reject gate
/// depends on that match.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool maybe_nan = false;

  static Interval All() { return Interval{}; }

  static Interval Point(double v) {
    if (std::isnan(v)) {
      Interval r = All();
      r.maybe_nan = true;
      return r;
    }
    return Interval{v, v, false};
  }

  static Interval Of(double lo, double hi) { return Interval{lo, hi, false}; }

  /// Exactly one finite value and provably never NaN.
  bool IsPoint() const {
    return lo == hi && !maybe_nan && std::isfinite(lo);
  }

  bool Contains(double v) const { return lo <= v && v <= hi; }

  /// Every reachable value is a finite real.
  bool IsFinite() const {
    return std::isfinite(lo) && std::isfinite(hi) && !maybe_nan;
  }

  /// An infinite value is reachable (either side unbounded).
  bool CanBeInf() const {
    return lo == -std::numeric_limits<double>::infinity() ||
           hi == std::numeric_limits<double>::infinity();
  }
};

/// "[lo, hi]" (with a "?NaN" suffix when the NaN bit is set), for
/// diagnostics.
std::string FormatInterval(const Interval& interval);

/// Per-slot value ranges of the evaluation environment: what the variable
/// and parameter vectors handed to expr::EvalContext can contain. Slots
/// beyond either vector are treated as unconstrained (Interval::All).
struct DomainEnv {
  std::vector<Interval> variables;
  std::vector<Interval> parameters;
};

/// True when every parameter value lies inside its env interval (slots
/// beyond env.parameters are unconstrained). The evaluator's reject gate
/// only trusts a structure-keyed verdict when this holds.
bool ParametersInDomain(const std::vector<double>& parameters,
                        const DomainEnv& env);

/// Interval transfer functions, one per operator, exactly mirroring the
/// protected kernels in expr/eval.h.
Interval IntervalNeg(const Interval& a);
Interval IntervalLog(const Interval& a);
Interval IntervalExp(const Interval& a);
Interval IntervalAdd(const Interval& a, const Interval& b);
Interval IntervalSub(const Interval& a, const Interval& b);
Interval IntervalMul(const Interval& a, const Interval& b);
Interval IntervalDiv(const Interval& a, const Interval& b);
Interval IntervalMin(const Interval& a, const Interval& b);
Interval IntervalMax(const Interval& a, const Interval& b);

/// Range of x*x for x in `a` — strictly tighter than IntervalMul(a, a),
/// which loses the correlation between the two factors (e.g. the expert
/// model's Gaussian temperature term (V_tmp - C_BTP)^2 must come out
/// non-negative).
Interval IntervalSquare(const Interval& a);

/// Dispatch by node kind. Aborts on non-matching arity.
Interval ApplyUnaryInterval(expr::NodeKind kind, const Interval& a);
Interval ApplyBinaryInterval(expr::NodeKind kind, const Interval& a,
                             const Interval& b);

/// The interval instance of the dataflow framework (analysis/dataflow.h):
/// a lattice element per subtree, with the correlation-aware rules for
/// syntactically identical operands (x - x ⊆ {0}, x / x ⊆ {1} protected,
/// x * x = square — each still NaN when x can be infinite).
struct IntervalDomain {
  using Value = Interval;
  const DomainEnv* env;

  Interval Constant(const expr::Expr& node) const;
  Interval Variable(const expr::Expr& node) const;
  Interval Parameter(const expr::Expr& node) const;
  Interval Unary(const expr::Expr& node, const Interval& a) const;
  Interval Binary(const expr::Expr& node, const Interval& a,
                  const Interval& b) const;
};

/// Bottom-up interval evaluation of a whole tree over `env`: one
/// DataflowPass<IntervalDomain> per call.
Interval EvaluateInterval(const expr::Expr& node, const DomainEnv& env);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_INTERVAL_H_
