#ifndef GMR_ANALYSIS_DATAFLOW_H_
#define GMR_ANALYSIS_DATAFLOW_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "expr/ast.h"

namespace gmr::analysis {

/// Generic bottom-up abstract interpretation over the expression AST — the
/// shared skeleton of the interval, units, sign, and activity passes (see
/// DESIGN.md §4j).
///
/// A *domain* supplies the lattice elements and transfer functions:
///
///   struct MyDomain {
///     using Value = ...;                       // one lattice element
///     Value Constant(const expr::Expr& node);  // kConstant leaves
///     Value Variable(const expr::Expr& node);  // kVariable leaves
///     Value Parameter(const expr::Expr& node); // kParameter leaves
///     Value Unary(const expr::Expr& node, const Value& a);
///     Value Binary(const expr::Expr& node, const Value& a, const Value& b);
///   };
///
/// Transfer functions receive the node itself (not just its kind) so a
/// domain can apply correlation-aware rules to syntactically identical
/// operands (x - x, x / x, x * x) via expr::StructurallyEqual, and record
/// per-node diagnostics keyed by node pointer.
///
/// Soundness contract shared by every instance: transfer functions must
/// over-approximate the *protected* scalar kernels of expr/eval.h
/// (protected division, log(|x|) with a zero band, clamped exp), not
/// textbook real arithmetic.
///
/// Evaluation is memoized by node pointer, so shared subtrees (the AST is
/// immutable and shares structure across phenotypes) are visited once per
/// pass instance. Transfer functions must therefore be deterministic:
/// structurally equal subtrees always map to equal abstract values.
template <typename Domain>
class DataflowPass {
 public:
  using Value = typename Domain::Value;

  explicit DataflowPass(Domain domain) : domain_(std::move(domain)) {}

  /// Bottom-up abstract value of `node`, memoized by node pointer for the
  /// lifetime of this pass instance.
  const Value& Evaluate(const expr::Expr& node) {
    const auto it = memo_.find(&node);
    if (it != memo_.end()) return it->second;
    Value value = Transfer(node);
    return memo_.emplace(&node, std::move(value)).first->second;
  }

  Domain& domain() { return domain_; }
  const Domain& domain() const { return domain_; }

  /// Nodes evaluated so far (distinct shared subtrees, not tree size).
  std::size_t nodes_visited() const { return memo_.size(); }

 private:
  Value Transfer(const expr::Expr& node) {
    switch (node.kind()) {
      case expr::NodeKind::kConstant:
        return domain_.Constant(node);
      case expr::NodeKind::kVariable:
        return domain_.Variable(node);
      case expr::NodeKind::kParameter:
        return domain_.Parameter(node);
      default:
        break;
    }
    if (node.children().size() == 1) {
      const Value& a = Evaluate(*node.children()[0]);
      return domain_.Unary(node, a);
    }
    const Value& a = Evaluate(*node.children()[0]);
    const Value& b = Evaluate(*node.children()[1]);
    return domain_.Binary(node, a, b);
  }

  Domain domain_;
  std::unordered_map<const expr::Expr*, Value> memo_;
};

/// Pre-order walk of `root` handing each node its child-index address from
/// the root. Diagnostics passes evaluate on the (pointer-memoized) dataflow
/// lattice and then attach findings to addresses with this walk — the memo
/// loses addresses by construction (a shared subtree has several).
void WalkAddresses(
    const expr::Expr& root,
    const std::function<void(const expr::Expr&, const std::vector<int>&)>&
        visit);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_DATAFLOW_H_
