#ifndef GMR_ANALYSIS_UNITS_H_
#define GMR_ANALYSIS_UNITS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "expr/ast.h"

namespace gmr::analysis {

/// One element of the dimension lattice used by the units pass: either a
/// known SI-exponent vector over the basis {mass M, length L, time T,
/// temperature Θ, current I}, or the polymorphic "Any" element. Numeric
/// constants and grammar lexemes are Any — they absorb whatever dimension
/// their context requires, exactly like the paper's random scaling
/// constants R (a lexeme such as 253.4 carries implicit units).
///
/// Any ⊔ d = d and Any · d = Any, so Any behaves as both the join identity
/// and the multiplicative absorber; a provable inconsistency is recorded as
/// a finding rather than encoded as a ⊤ element (error recovery then
/// continues with Any, avoiding cascading findings).
struct Dim {
  /// Basis indices into `exponents`.
  enum Axis : int { kMass = 0, kLength, kTime, kTemperature, kCurrent };
  static constexpr int kNumAxes = 5;

  bool known = false;  ///< false = Any (polymorphic).
  std::array<std::int8_t, kNumAxes> exponents{};

  static Dim Any() { return Dim{}; }
  static Dim Dimensionless() { return Dim{true, {}}; }
  static Dim Of(int mass, int length, int time, int temperature = 0,
                int current = 0) {
    Dim d;
    d.known = true;
    d.exponents = {static_cast<std::int8_t>(mass),
                   static_cast<std::int8_t>(length),
                   static_cast<std::int8_t>(time),
                   static_cast<std::int8_t>(temperature),
                   static_cast<std::int8_t>(current)};
    return d;
  }

  /// Mass concentration M·L⁻³ (the mg/L and ug/L of Tables III/IV — unit
  /// *scale* is invisible to exponent vectors, only the physical dimension
  /// matters).
  static Dim Concentration() { return Of(1, -3, 0); }
  /// Irradiance M·T⁻³ (MJ/m²/day: energy per area per time).
  static Dim Irradiance() { return Of(1, 0, -3); }
  /// Rate T⁻¹ (1/day).
  static Dim PerTime() { return Of(0, 0, -1); }

  bool IsDimensionless() const {
    if (!known) return false;
    for (const std::int8_t e : exponents) {
      if (e != 0) return false;
    }
    return true;
  }

  friend bool operator==(const Dim& a, const Dim& b) {
    return a.known == b.known && (!a.known || a.exponents == b.exponents);
  }
  friend bool operator!=(const Dim& a, const Dim& b) { return !(a == b); }
};

/// "M·L^-3·T^-1", "1" for dimensionless, "?" for Any.
std::string FormatDim(const Dim& dim);

/// Declared dimensions of the evaluation environment's slots. Slots beyond
/// either vector are Any (polymorphic, never flagged).
struct UnitsEnv {
  std::vector<Dim> variables;
  std::vector<Dim> parameters;
};

/// Dimension transfer functions, shared by the expression-level pass and
/// the TAG elementary-tree inference in grammar_lint:
///
///  - join (Add/Sub/Min/Max): Any ⊔ d = d; two different known dimensions
///    set *mismatch
///  - product/quotient (Mul/Div): exponent sum/difference, Any absorbing
///  - transcendental (Log/Exp) and Neg via ApplyUnaryDim: a known
///    non-dimensionless argument sets *mismatch; the result is
///    dimensionless (Neg passes through)
///
/// `mismatch` may be null when the caller only needs the result dimension.
Dim JoinDim(const Dim& a, const Dim& b, bool* mismatch);
Dim MulDim(const Dim& a, const Dim& b);
Dim DivDim(const Dim& a, const Dim& b);
Dim ApplyUnaryDim(expr::NodeKind kind, const Dim& a, bool* mismatch);
Dim ApplyBinaryDim(expr::NodeKind kind, const Dim& a, const Dim& b,
                   bool* mismatch);

/// One units finding, keyed by node pointer (addresses are attached by the
/// caller via WalkAddresses; a shared subtree is reported once per
/// distinct node, not once per occurrence).
struct UnitsFinding {
  const expr::Expr* node = nullptr;
  /// "units-mismatch" (dimension-mismatched addition/comparison) or
  /// "units-transcendental" (non-dimensionless log/exp argument).
  const char* code = "units-mismatch";
  std::string message;
};

struct UnitsResult {
  /// Inferred dimension of the analyzed tree.
  Dim dim;
  /// Provable dimensional inconsistencies, in bottom-up discovery order.
  std::vector<UnitsFinding> findings;

  bool Consistent() const { return findings.empty(); }
};

/// The units instance of the dataflow framework: infers the dimension of
/// every subtree of `root` over the declared `env` and records provable
/// inconsistencies. Unlike the interval pass this analyzes *physical
/// well-formedness*, not numeric behavior: the protected kernels break
/// dimensional homogeneity by construction (log(|x|), the division band's
/// constant 1), so a units finding means "physically meaningless", never
/// "numerically doomed" — see DESIGN.md §4j.
UnitsResult AnalyzeUnits(const expr::Expr& root, const UnitsEnv& env);

/// Convenience over a whole candidate system: equation index of the first
/// inconsistent equation (or -1) plus the findings of every equation.
struct SystemUnitsResult {
  std::vector<UnitsResult> equations;
  int first_inconsistent = -1;

  bool Consistent() const { return first_inconsistent < 0; }
};
SystemUnitsResult AnalyzeSystemUnits(
    const std::vector<expr::ExprPtr>& equations, const UnitsEnv& env);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_UNITS_H_
