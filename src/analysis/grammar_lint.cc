#include "analysis/grammar_lint.h"

#include <cmath>
#include <cstdio>
#include <deque>
#include <set>

namespace gmr::analysis {
namespace {

void Emit(GrammarLintResult* result, Severity severity, const char* code,
          std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.message = std::move(message);
  result->diagnostics.push_back(std::move(d));
}

/// Collects the slot labels of a tree into `out`.
void CollectSlotLabels(const tag::ElementaryTree& tree,
                       std::set<tag::Symbol>* out) {
  for (const tag::Symbol& label : tree.slot_labels()) out->insert(label);
}

/// Bottom-up dimension of a TAG (sub)tree. Slots are Any (a lexeme absorbs
/// its context's dimension, like any numeric constant), foot nodes take
/// `foot_dim`, wrappers pass through. The first provable mismatch is
/// recorded in *first_mismatch (inference then recovers with Any, exactly
/// like the expression-level pass). When `label_dims` is non-null, the
/// dimension produced at every labeled operator/wrapper node is appended
/// under its label — the raw material of the label-context map.
Dim TagTreeDim(const tag::TagNode& node, const UnitsEnv& env,
               const Dim& foot_dim, std::string* first_mismatch,
               std::map<tag::Symbol, std::vector<Dim>>* label_dims) {
  auto record = [&](const Dim& dim) {
    if (label_dims != nullptr && !node.label.empty()) {
      (*label_dims)[node.label].push_back(dim);
    }
    return dim;
  };
  switch (node.kind) {
    case tag::TagNode::Kind::kLeaf:
      return AnalyzeUnits(*node.leaf, env).dim;
    case tag::TagNode::Kind::kSlot:
      return Dim::Any();
    case tag::TagNode::Kind::kFoot:
      return record(foot_dim);
    case tag::TagNode::Kind::kWrapper:
      return record(TagTreeDim(*node.children.at(0), env, foot_dim,
                               first_mismatch, label_dims));
    case tag::TagNode::Kind::kSystem: {
      for (const tag::TagNodePtr& child : node.children) {
        TagTreeDim(*child, env, foot_dim, first_mismatch, label_dims);
      }
      return Dim::Any();
    }
    case tag::TagNode::Kind::kOperator: {
      bool mismatch = false;
      Dim dim;
      if (node.children.size() == 1) {
        const Dim a = TagTreeDim(*node.children[0], env, foot_dim,
                                 first_mismatch, label_dims);
        dim = ApplyUnaryDim(node.op, a, &mismatch);
        if (mismatch && first_mismatch != nullptr &&
            first_mismatch->empty()) {
          *first_mismatch = std::string(expr::KindName(node.op)) +
                            " applied to a " + FormatDim(a) + " argument";
        }
      } else {
        const Dim a = TagTreeDim(*node.children.at(0), env, foot_dim,
                                 first_mismatch, label_dims);
        const Dim b = TagTreeDim(*node.children.at(1), env, foot_dim,
                                 first_mismatch, label_dims);
        dim = ApplyBinaryDim(node.op, a, b, &mismatch);
        if (mismatch) {
          dim = Dim::Any();
          if (first_mismatch != nullptr && first_mismatch->empty()) {
            *first_mismatch = std::string(expr::KindName(node.op)) +
                              " combines " + FormatDim(a) + " with " +
                              FormatDim(b);
          }
        }
      }
      return record(dim);
    }
  }
  return Dim::Any();
}

}  // namespace

bool GrammarLintResult::HasErrors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

bool GrammarLintResult::HasWarnings() const {
  for (const Diagnostic& d : diagnostics) {
    if (static_cast<int>(d.severity) >= static_cast<int>(Severity::kWarning)) {
      return true;
    }
  }
  return false;
}

GrammarLintResult LintGrammar(const tag::Grammar& grammar) {
  GrammarLintResult result;
  if (grammar.num_alpha_trees() == 0) {
    Emit(&result, Severity::kError, "no-alpha-tree",
         "grammar has no initial (alpha) trees; no derivation can start");
    return result;
  }

  // Breadth-first reachability over labels: a label is exposed at depth d
  // when some derived tree reachable with d adjunctions contains a node so
  // labeled. Alpha-resident adjoinable labels are depth 0; adjoining a beta
  // whose root matches a depth-d label exposes that beta's adjoinable
  // labels at depth d+1 (its root/foot keep the existing label's depth).
  std::deque<tag::Symbol> frontier;
  auto expose = [&](const tag::Symbol& label, int depth) {
    const auto it = result.label_depth.find(label);
    if (it != result.label_depth.end()) return;
    result.label_depth[label] = depth;
    frontier.push_back(label);
  };
  for (std::size_t i = 0; i < grammar.num_alpha_trees(); ++i) {
    for (const tag::Symbol& label :
         grammar.alpha(static_cast<int>(i)).adjoinable_labels()) {
      expose(label, 0);
    }
  }
  std::set<int> reachable_betas;
  while (!frontier.empty()) {
    const tag::Symbol label = frontier.front();
    frontier.pop_front();
    const int depth = result.label_depth[label];
    for (const int beta_index : grammar.BetasWithRootLabel(label)) {
      reachable_betas.insert(beta_index);
      for (const tag::Symbol& exposed :
           grammar.beta(beta_index).adjoinable_labels()) {
        expose(exposed, depth + 1);
      }
    }
  }

  // Unreachable beta trees: registered but no derivation can adjoin them.
  for (std::size_t i = 0; i < grammar.num_beta_trees(); ++i) {
    const int index = static_cast<int>(i);
    if (reachable_betas.count(index) != 0) continue;
    result.unreachable_betas.push_back(index);
    const tag::ElementaryTree& beta = grammar.beta(index);
    Emit(&result, Severity::kWarning, "unreachable-beta",
         "beta tree '" + beta.name() + "' (root label " + beta.root_label() +
             ") can never be adjoined: no reachable derived tree contains "
             "a node labeled " +
             beta.root_label());
  }

  // Reachable labels with no compatible beta are dead extension points —
  // note-level, since seeds legitimately contain plain interior labels.
  for (const auto& [label, depth] : result.label_depth) {
    if (!grammar.HasCompatibleBeta(label)) {
      Emit(&result, Severity::kNote, "dead-extension-point",
           "label " + label + " (depth " + std::to_string(depth) +
               ") has no compatible beta tree; nodes with this label are "
               "frozen");
    }
  }

  // Non-productive non-terminals: slot labels (in reachable trees) whose
  // lexeme spec has a non-finite bound. Grammar::SetSlotSpec only enforces
  // lo <= hi, so e.g. [0, inf] passes the API but makes uniform lexeme
  // drawing degenerate — derivations touching the label cannot terminate
  // in a usable lexeme.
  std::set<tag::Symbol> slot_labels;
  for (std::size_t i = 0; i < grammar.num_alpha_trees(); ++i) {
    CollectSlotLabels(grammar.alpha(static_cast<int>(i)), &slot_labels);
  }
  for (const int index : reachable_betas) {
    CollectSlotLabels(grammar.beta(index), &slot_labels);
  }
  for (const tag::Symbol& label : slot_labels) {
    const tag::SlotSpec spec = grammar.slot_spec(label);
    if (std::isfinite(spec.lo) && std::isfinite(spec.hi)) continue;
    result.nonproductive_labels.push_back(label);
    char lo[32];
    char hi[32];
    std::snprintf(lo, sizeof(lo), "%g", spec.lo);
    std::snprintf(hi, sizeof(hi), "%g", spec.hi);
    Emit(&result, Severity::kError, "non-productive-nonterminal",
         "slot label " + label + " has a non-finite lexeme spec [" + lo +
             ", " + hi +
             "]; no lexeme can be drawn, so derivations using the label "
             "never produce a usable tree");
  }

  // Minimum-derivation-depth notes, one per reachable label, so grammar
  // authors can see how many adjunctions each extension point costs.
  for (const auto& [label, depth] : result.label_depth) {
    Emit(&result, Severity::kNote, "min-derivation-depth",
         "label " + label + " is first exposed after " +
             std::to_string(depth) +
             (depth == 1 ? " adjunction" : " adjunctions"));
  }
  return result;
}

GrammarDimensionResult AnalyzeGrammarDimensions(const tag::Grammar& grammar,
                                                const UnitsEnv& env) {
  GrammarDimensionResult result;

  // Phase 1: run dimension inference over every alpha tree, recording the
  // dimension produced at each labeled node. A label's context dimension
  // is the unique Known dimension it always produces; any disagreement or
  // unknowable occurrence degrades it to Any (a beta binding such a label
  // learns nothing about its foot).
  std::map<tag::Symbol, std::vector<Dim>> label_dims;
  for (std::size_t i = 0; i < grammar.num_alpha_trees(); ++i) {
    TagTreeDim(grammar.alpha(static_cast<int>(i)).root(), env, Dim::Any(),
               nullptr, &label_dims);
  }
  for (const auto& [label, dims] : label_dims) {
    Dim context = dims.front();
    for (const Dim& d : dims) {
      if (!d.known || d != context) {
        context = Dim::Any();
        break;
      }
    }
    result.label_context[label] = context;
  }

  // Phase 2: infer each beta with its foot bound to the root label's
  // context dimension. Only a provable *internal* mismatch flags the beta;
  // betas whose consistency depends on what they are adjoined onto stay.
  for (std::size_t i = 0; i < grammar.num_beta_trees(); ++i) {
    const int index = static_cast<int>(i);
    const tag::ElementaryTree& beta = grammar.beta(index);
    Dim foot_dim = Dim::Any();
    const auto it = result.label_context.find(beta.root_label());
    if (it != result.label_context.end()) foot_dim = it->second;
    std::string mismatch;
    TagTreeDim(beta.root(), env, foot_dim, &mismatch, nullptr);
    if (mismatch.empty()) continue;
    result.inconsistent_betas.push_back(index);
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.code = "dimension-inconsistent-beta";
    d.message = "beta tree '" + beta.name() + "' (root label " +
                beta.root_label() +
                ") contains a provable dimension mismatch: " + mismatch +
                "; every derivation adjoining it is dimensionally "
                "meaningless and can be pruned from the search";
    result.diagnostics.push_back(std::move(d));
  }
  return result;
}

std::vector<int> PruneDimensionInconsistentBetas(tag::Grammar* grammar,
                                                 const UnitsEnv& env) {
  const GrammarDimensionResult result =
      AnalyzeGrammarDimensions(*grammar, env);
  grammar->DisableAdjunction(result.inconsistent_betas);
  return result.inconsistent_betas;
}

}  // namespace gmr::analysis
