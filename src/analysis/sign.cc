#include "analysis/sign.h"

#include "analysis/dataflow.h"
#include "common/check.h"
#include "expr/print.h"

namespace gmr::analysis {
namespace {

constexpr SignSet kValueBits = kSignNeg | kSignZero | kSignPos;

std::string Snippet(const expr::Expr& node) {
  std::string text = expr::ToString(node);
  constexpr std::size_t kMaxLength = 48;
  if (text.size() > kMaxLength) {
    text.resize(kMaxLength - 3);
    text += "...";
  }
  return text;
}

SignSet SignAdd(SignSet a, SignSet b) {
  SignSet out = (a | b) & kSignNaN;
  // inf - inf is only reachable from opposite-sign operands; the sign
  // domain cannot see magnitudes, so assume the worst.
  if (((a & kSignNeg) && (b & kSignPos)) ||
      ((a & kSignPos) && (b & kSignNeg))) {
    out |= kSignNaN | kValueBits;
  }
  if ((a & kSignNeg) && (b & (kSignNeg | kSignZero))) out |= kSignNeg;
  if ((b & kSignNeg) && (a & kSignZero)) out |= kSignNeg;
  if ((a & kSignZero) && (b & kSignZero)) out |= kSignZero;
  if ((a & kSignPos) && (b & (kSignPos | kSignZero))) out |= kSignPos;
  if ((b & kSignPos) && (a & kSignZero)) out |= kSignPos;
  return out;
}

SignSet SignNeg(SignSet a) {
  SignSet out = a & (kSignZero | kSignNaN);
  if (a & kSignNeg) out |= kSignPos;
  if (a & kSignPos) out |= kSignNeg;
  return out;
}

SignSet SignMul(SignSet a, SignSet b) {
  SignSet out = (a | b) & kSignNaN;
  // 0 * inf is NaN; a signed operand might be infinite.
  if (((a & kSignZero) && (b & (kSignNeg | kSignPos))) ||
      ((b & kSignZero) && (a & (kSignNeg | kSignPos)))) {
    out |= kSignNaN;
  }
  if ((a | b) & kSignZero) out |= kSignZero;
  if (((a & kSignNeg) && (b & kSignNeg)) ||
      ((a & kSignPos) && (b & kSignPos))) {
    out |= kSignPos;
  }
  if (((a & kSignNeg) && (b & kSignPos)) ||
      ((a & kSignPos) && (b & kSignNeg))) {
    out |= kSignNeg;
  }
  return out;
}

SignSet SignDiv(SignSet a, SignSet b) {
  SignSet out = (a | b) & kSignNaN;
  // Any denominator value might fall inside the protection band |b| < eps
  // (magnitude is invisible here), so the protected constant 1 is always
  // considered reachable.
  out |= kSignPos;
  // inf / inf: both operands signed could both be infinite.
  if ((a & (kSignNeg | kSignPos)) && (b & (kSignNeg | kSignPos))) {
    out |= kSignNaN;
  }
  if (a & kSignZero) out |= kSignZero;
  if (((a & kSignNeg) && (b & kSignPos)) ||
      ((a & kSignPos) && (b & kSignNeg))) {
    out |= kSignNeg;
  }
  return out;
}

void WalkSpine(const expr::Expr& node, bool positive,
               DataflowPass<SignDomain>* signs,
               std::vector<SignFinding>* findings) {
  switch (node.kind()) {
    case expr::NodeKind::kAdd:
      WalkSpine(*node.children()[0], positive, signs, findings);
      WalkSpine(*node.children()[1], positive, signs, findings);
      return;
    case expr::NodeKind::kSub:
      WalkSpine(*node.children()[0], positive, signs, findings);
      WalkSpine(*node.children()[1], !positive, signs, findings);
      return;
    case expr::NodeKind::kNeg:
      WalkSpine(*node.children()[0], !positive, signs, findings);
      return;
    default:
      break;
  }
  const SignSet s = signs->Evaluate(node);
  if (s != kSignNeg) return;  // Only pure {-} verdicts are violations.
  if (positive) {
    findings->push_back(SignFinding{
        &node, "gain-term-removes-mass",
        "gain term '" + Snippet(node) +
            "' is provably strictly negative over the declared domains; "
            "this added term can only remove mass"});
  } else {
    findings->push_back(SignFinding{
        &node, "loss-term-adds-mass",
        "loss term '" + Snippet(node) +
            "' is provably strictly negative over the declared domains; "
            "subtracting it can only add mass"});
  }
}

}  // namespace

std::string FormatSignSet(SignSet s) {
  std::string out = "{";
  const char* const names[] = {"-", "0", "+", "NaN"};
  const SignSet bits[] = {kSignNeg, kSignZero, kSignPos, kSignNaN};
  for (int i = 0; i < 4; ++i) {
    if (!(s & bits[i])) continue;
    if (out.size() > 1) out += ",";
    out += names[i];
  }
  return out + "}";
}

SignSet SignOfInterval(const Interval& interval) {
  SignSet s = 0;
  if (interval.lo < 0.0) s |= kSignNeg;
  if (interval.Contains(0.0)) s |= kSignZero;
  if (interval.hi > 0.0) s |= kSignPos;
  if (interval.maybe_nan) s |= kSignNaN;
  return s;
}

SignSet ApplyUnarySign(expr::NodeKind kind, SignSet a) {
  switch (kind) {
    case expr::NodeKind::kNeg:
      return SignNeg(a);
    case expr::NodeKind::kLog:
      // log(|x|) ranges over all of R (0 inside the protection band).
      return kValueBits | (a & kSignNaN);
    case expr::NodeKind::kExp:
      // Clamped exp is always strictly positive and finite.
      return kSignPos | (a & kSignNaN);
    default:
      GMR_CHECK_MSG(false, "not a unary operator");
      return kSignAll;
  }
}

SignSet ApplyBinarySign(expr::NodeKind kind, SignSet a, SignSet b) {
  switch (kind) {
    case expr::NodeKind::kAdd:
      return SignAdd(a, b);
    case expr::NodeKind::kSub:
      return SignAdd(a, SignNeg(b));
    case expr::NodeKind::kMul:
      return SignMul(a, b);
    case expr::NodeKind::kDiv:
      return SignDiv(a, b);
    case expr::NodeKind::kMin:
    case expr::NodeKind::kMax:
      // The kernel `a < b ? ...` selects one operand's value (either one
      // when NaN is involved), so the union is sound.
      return a | b;
    default:
      GMR_CHECK_MSG(false, "not a binary operator");
      return kSignAll;
  }
}

SignSet SignDomain::Constant(const expr::Expr& node) const {
  return SignOfInterval(Interval::Point(node.value()));
}

SignSet SignDomain::Variable(const expr::Expr& node) const {
  const auto slot = static_cast<std::size_t>(node.slot());
  return SignOfInterval(slot < env->variables.size() ? env->variables[slot]
                                                     : Interval::All());
}

SignSet SignDomain::Parameter(const expr::Expr& node) const {
  const auto slot = static_cast<std::size_t>(node.slot());
  return SignOfInterval(slot < env->parameters.size() ? env->parameters[slot]
                                                      : Interval::All());
}

SignSet SignDomain::Unary(const expr::Expr& node, SignSet a) const {
  return ApplyUnarySign(node.kind(), a);
}

SignSet SignDomain::Binary(const expr::Expr& node, SignSet a,
                           SignSet b) const {
  return ApplyBinarySign(node.kind(), a, b);
}

SignSet EvaluateSign(const expr::Expr& node, const DomainEnv& env) {
  DataflowPass<SignDomain> pass(SignDomain{&env});
  return pass.Evaluate(node);
}

MassBalanceResult CheckMassBalance(const expr::Expr& derivative,
                                   const DomainEnv& env) {
  MassBalanceResult result;
  DataflowPass<SignDomain> signs(SignDomain{&env});
  WalkSpine(derivative, /*positive=*/true, &signs, &result.findings);
  return result;
}

}  // namespace gmr::analysis
