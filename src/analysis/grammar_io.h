#ifndef GMR_ANALYSIS_GRAMMAR_IO_H_
#define GMR_ANALYSIS_GRAMMAR_IO_H_

#include <istream>
#include <string>

#include "expr/parser.h"
#include "tag/grammar.h"

namespace gmr::analysis {

/// Parses a TAG grammar from a small line-oriented text format, so
/// gmr_lint can diagnose grammars shipped as files (and tests can build
/// deliberately broken ones without tripping the Grammar API's aborts):
///
///   # gmr-grammar v1
///   slot <label> <lo> <hi>
///   alpha <name> <label> : <infix expression>
///   beta <name> <label> : <infix expression containing FOOT>
///
/// Expressions use the same infix syntax as model files; identifiers
/// resolve through `symbols`, augmented with the pseudo-identifier FOOT
/// (the auxiliary tree's foot node) and with every slot label declared by a
/// preceding `slot` line (an open substitution site). Interior operator
/// nodes are labeled with the tree's declared label, like tag::FromExpr.
///
/// Structural rules the Grammar/ElementaryTree API enforces by aborting are
/// pre-validated here and reported as load errors instead: an alpha tree
/// containing FOOT, a beta tree without exactly one FOOT, and a slot spec
/// with lo > hi (or NaN). Non-finite slot bounds load fine — flagging them
/// is LintGrammar's job.
///
/// Returns false with a diagnostic in *error on any failure; *grammar is
/// then in an unspecified (but valid) state.
bool ParseGrammarSpec(std::istream& in, const expr::SymbolTable& symbols,
                      tag::Grammar* grammar, std::string* error);

/// File wrapper around ParseGrammarSpec.
bool LoadGrammarSpec(const std::string& path,
                     const expr::SymbolTable& symbols, tag::Grammar* grammar,
                     std::string* error);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_GRAMMAR_IO_H_
