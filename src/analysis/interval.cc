#include "analysis/interval.h"

#include <algorithm>
#include <cstdio>

#include "analysis/dataflow.h"
#include "common/check.h"

namespace gmr::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Normalizes a candidate bound pair into a valid interval, mapping any
/// NaN that slipped through endpoint arithmetic to the conservative bound.
Interval MakeInterval(double lo, double hi, bool maybe_nan) {
  if (std::isnan(lo)) lo = -kInf;
  if (std::isnan(hi)) hi = kInf;
  GMR_CHECK(lo <= hi);
  return Interval{lo, hi, maybe_nan};
}

/// Endpoint product with the 0 * inf indeterminate form resolved to 0: the
/// limit value of x*y as the zero factor is approached, which is the right
/// candidate for a bound (the genuinely-NaN runtime combination is covered
/// by the caller's maybe_nan computation).
double MulBound(double x, double y) {
  if (x == 0.0 || y == 0.0) return 0.0;
  return x * y;
}

/// Folds the quotient range of numer / [dlo, dhi] (a sign-definite
/// denominator range excluding the protection band) into [*lo, *hi].
void AccumulateQuotient(const Interval& numer, double dlo, double dhi,
                        double* lo, double* hi) {
  for (const double d : {dlo, dhi}) {
    for (const double n : {numer.lo, numer.hi}) {
      double q;
      if (std::isinf(d)) {
        // n / ±inf → 0 for finite n; the inf/inf NaN case is covered by
        // the caller's maybe_nan. 0 is the limit candidate either way.
        q = 0.0;
      } else {
        q = n / d;
      }
      *lo = std::min(*lo, q);
      *hi = std::max(*hi, q);
    }
  }
}

}  // namespace

std::string FormatInterval(const Interval& interval) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "[%.6g, %.6g]%s", interval.lo,
                interval.hi, interval.maybe_nan ? "?NaN" : "");
  return buffer;
}

bool ParametersInDomain(const std::vector<double>& parameters,
                        const DomainEnv& env) {
  const std::size_t n = std::min(parameters.size(), env.parameters.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!env.parameters[i].Contains(parameters[i])) return false;
  }
  return true;
}

Interval IntervalNeg(const Interval& a) {
  return MakeInterval(-a.hi, -a.lo, a.maybe_nan);
}

Interval IntervalLog(const Interval& a) {
  // The protected kernel computes log(|x|), returning 0 inside the
  // |x| < kLogEpsilon band. Range of |x| first:
  double mlo;
  if (a.lo <= 0.0 && a.hi >= 0.0) {
    mlo = 0.0;
  } else {
    mlo = std::min(std::fabs(a.lo), std::fabs(a.hi));
  }
  const double mhi = std::max(std::fabs(a.lo), std::fabs(a.hi));
  if (mhi < expr::kLogEpsilon) {
    // Entirely inside the protection band: always exactly 0 (the
    // "empty log domain" edge — no value ever reaches the real log).
    return MakeInterval(0.0, 0.0, a.maybe_nan);
  }
  double lo = std::log(std::max(mlo, expr::kLogEpsilon));
  double hi = std::log(mhi);  // log(inf) == inf.
  if (mlo < expr::kLogEpsilon) {
    // The protected 0 is also reachable.
    lo = std::min(lo, 0.0);
    hi = std::max(hi, 0.0);
  }
  return MakeInterval(lo, hi, a.maybe_nan);
}

Interval IntervalExp(const Interval& a) {
  const double lo = std::clamp(a.lo, -expr::kExpArgClamp, expr::kExpArgClamp);
  const double hi = std::clamp(a.hi, -expr::kExpArgClamp, expr::kExpArgClamp);
  return MakeInterval(std::exp(lo), std::exp(hi), a.maybe_nan);
}

Interval IntervalAdd(const Interval& a, const Interval& b) {
  const bool nan = a.maybe_nan || b.maybe_nan ||
                   (a.hi == kInf && b.lo == -kInf) ||
                   (a.lo == -kInf && b.hi == kInf);
  return MakeInterval(a.lo + b.lo, a.hi + b.hi, nan);
}

Interval IntervalSub(const Interval& a, const Interval& b) {
  return IntervalAdd(a, IntervalNeg(b));
}

Interval IntervalMul(const Interval& a, const Interval& b) {
  const double c1 = MulBound(a.lo, b.lo);
  const double c2 = MulBound(a.lo, b.hi);
  const double c3 = MulBound(a.hi, b.lo);
  const double c4 = MulBound(a.hi, b.hi);
  const bool nan = a.maybe_nan || b.maybe_nan ||
                   (a.CanBeInf() && b.Contains(0.0)) ||
                   (b.CanBeInf() && a.Contains(0.0));
  return MakeInterval(std::min({c1, c2, c3, c4}), std::max({c1, c2, c3, c4}),
                      nan);
}

Interval IntervalSquare(const Interval& a) {
  double lo;
  double hi;
  if (a.lo >= 0.0) {
    lo = a.lo * a.lo;
    hi = a.hi * a.hi;
  } else if (a.hi <= 0.0) {
    lo = a.hi * a.hi;
    hi = a.lo * a.lo;
  } else {
    lo = 0.0;
    hi = std::max(a.lo * a.lo, a.hi * a.hi);
  }
  // x*x is never NaN for real x (inf^2 == inf), only for NaN x.
  return MakeInterval(lo, hi, a.maybe_nan);
}

Interval IntervalDiv(const Interval& a, const Interval& b) {
  const double eps = expr::kDivEpsilon;
  // The protection band |b| < eps maps to the constant 1.
  const bool protected_reachable = b.lo < eps && b.hi > -eps;
  double lo = kInf;
  double hi = -kInf;
  if (b.hi >= eps) {
    AccumulateQuotient(a, std::max(b.lo, eps), b.hi, &lo, &hi);
  }
  if (b.lo <= -eps) {
    AccumulateQuotient(a, b.lo, std::min(b.hi, -eps), &lo, &hi);
  }
  if (protected_reachable) {
    lo = std::min(lo, 1.0);
    hi = std::max(hi, 1.0);
  }
  // At least one branch is always reachable (b is non-empty), so [lo, hi]
  // is proper here.
  const bool nan =
      a.maybe_nan || b.maybe_nan || (a.CanBeInf() && b.CanBeInf());
  return MakeInterval(lo, hi, nan);
}

Interval IntervalMin(const Interval& a, const Interval& b) {
  if (a.maybe_nan || b.maybe_nan) {
    // The scalar kernel is `a < b ? a : b`, so a NaN operand selects the
    // *other* operand's value (or propagates); only the hull is sound.
    return MakeInterval(std::min(a.lo, b.lo), std::max(a.hi, b.hi), true);
  }
  return MakeInterval(std::min(a.lo, b.lo), std::min(a.hi, b.hi), false);
}

Interval IntervalMax(const Interval& a, const Interval& b) {
  if (a.maybe_nan || b.maybe_nan) {
    return MakeInterval(std::min(a.lo, b.lo), std::max(a.hi, b.hi), true);
  }
  return MakeInterval(std::max(a.lo, b.lo), std::max(a.hi, b.hi), false);
}

Interval ApplyUnaryInterval(expr::NodeKind kind, const Interval& a) {
  switch (kind) {
    case expr::NodeKind::kNeg:
      return IntervalNeg(a);
    case expr::NodeKind::kLog:
      return IntervalLog(a);
    case expr::NodeKind::kExp:
      return IntervalExp(a);
    default:
      GMR_CHECK_MSG(false, "not a unary operator");
      return Interval::All();
  }
}

Interval ApplyBinaryInterval(expr::NodeKind kind, const Interval& a,
                             const Interval& b) {
  switch (kind) {
    case expr::NodeKind::kAdd:
      return IntervalAdd(a, b);
    case expr::NodeKind::kSub:
      return IntervalSub(a, b);
    case expr::NodeKind::kMul:
      return IntervalMul(a, b);
    case expr::NodeKind::kDiv:
      return IntervalDiv(a, b);
    case expr::NodeKind::kMin:
      return IntervalMin(a, b);
    case expr::NodeKind::kMax:
      return IntervalMax(a, b);
    default:
      GMR_CHECK_MSG(false, "not a binary operator");
      return Interval::All();
  }
}

Interval IntervalDomain::Constant(const expr::Expr& node) const {
  return Interval::Point(node.value());
}

Interval IntervalDomain::Variable(const expr::Expr& node) const {
  const auto slot = static_cast<std::size_t>(node.slot());
  return slot < env->variables.size() ? env->variables[slot]
                                      : Interval::All();
}

Interval IntervalDomain::Parameter(const expr::Expr& node) const {
  const auto slot = static_cast<std::size_t>(node.slot());
  return slot < env->parameters.size() ? env->parameters[slot]
                                       : Interval::All();
}

Interval IntervalDomain::Unary(const expr::Expr& node,
                               const Interval& a) const {
  return ApplyUnaryInterval(node.kind(), a);
}

Interval IntervalDomain::Binary(const expr::Expr& node, const Interval& a,
                                const Interval& b) const {
  GMR_CHECK_EQ(node.children().size(), 2u);
  const expr::Expr& left = *node.children()[0];
  const expr::Expr& right = *node.children()[1];
  // Correlation-aware rules for syntactically identical operands: the
  // general transfer functions treat the two occurrences as independent and
  // lose e.g. the non-negativity of (t - c)^2. The domain functions are
  // deterministic, so structurally equal operands carry the same abstract
  // value; only the combination rule changes.
  if (expr::StructurallyEqual(left, right)) {
    const Interval& x = a;
    switch (node.kind()) {
      case expr::NodeKind::kMul:
        return IntervalSquare(x);
      case expr::NodeKind::kSub:
        // x - x == 0 for finite x; inf - inf is NaN.
        return Interval{0.0, 0.0, x.maybe_nan || x.CanBeInf()};
      case expr::NodeKind::kDiv:
        // Protected x / x == 1 for every finite x (including the
        // protection band); inf / inf is NaN.
        return Interval{1.0, 1.0, x.maybe_nan || x.CanBeInf()};
      case expr::NodeKind::kMin:
      case expr::NodeKind::kMax:
        return x;
      default:
        return ApplyBinaryInterval(node.kind(), x, x);
    }
  }
  return ApplyBinaryInterval(node.kind(), a, b);
}

Interval EvaluateInterval(const expr::Expr& node, const DomainEnv& env) {
  DataflowPass<IntervalDomain> pass(IntervalDomain{&env});
  return pass.Evaluate(node);
}

}  // namespace gmr::analysis
