#ifndef GMR_ANALYSIS_LINT_H_
#define GMR_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "analysis/interval.h"
#include "expr/ast.h"

namespace gmr::analysis {

enum class Severity : int {
  kNote = 0,  ///< Informational; never affects an exit code.
  kWarning,   ///< Suspicious under the protected semantics; --strict fails.
  kError,     ///< Provably degenerate; gmr_lint exits non-zero.
};

const char* SeverityName(Severity severity);

/// One finding, addressed to a node: `equation` indexes the linted system
/// (-1 for file/grammar-level findings) and `address` is the child-index
/// path from the equation root (empty = the root itself).
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Stable kebab-case identifier, e.g. "div-by-zero".
  std::string code;
  int equation = -1;
  std::vector<int> address;
  std::string message;
};

/// "eq0:1.0.2" (or "eq0" for a root finding, "-" for file-level).
std::string FormatAddress(const Diagnostic& diagnostic);

/// "eq0:1.0.2: error [div-by-zero] <message>".
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// What LintEquations checks beyond pure interval propagation.
struct LintOptions {
  /// Number of leading variable slots that are model state (their
  /// derivatives are the equations); a state with no live data-flow path
  /// into any equation is reported as a dead input.
  int num_states = 0;
  /// Names by parameter slot; a non-empty name marks the slot as declared,
  /// so it is reported when no live data-flow path to any output exists.
  /// Empty vector disables dead-parameter reporting.
  std::vector<std::string> parameter_names;
  /// Names by variable slot, used in dead-state messages (falls back to
  /// "slot N").
  std::vector<std::string> variable_names;
  /// Emit notes for non-constant subtrees whose interval is a single point
  /// (constant-foldable, but the syntactic simplifier could not prove it).
  bool note_constant_foldable = true;
  /// Emit notes for min/max branches that can never win.
  bool note_dominated_branches = true;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  /// Variable/parameter slots with at least one *live* occurrence — an
  /// occurrence whose value can influence some equation's value (not under
  /// a provably-constant or dominated subtree).
  std::vector<int> live_variables;
  std::vector<int> live_parameters;
  /// Slots referenced anywhere, live or not.
  std::vector<int> referenced_variables;
  std::vector<int> referenced_parameters;

  bool HasErrors() const;
  bool HasWarnings() const;
  std::size_t CountAtLeast(Severity severity) const;
};

/// Lints a system of equations against the environment: interval/domain
/// diagnostics (provable division-by-zero, log of a non-positive-capable
/// term, provable exp overflow/saturation, provably non-finite outputs,
/// constant-foldable subtrees) plus the dead-input analysis described in
/// LintOptions. Pure; deterministic for a given (equations, env, options).
LintResult LintEquations(const std::vector<expr::ExprPtr>& equations,
                         const DomainEnv& env,
                         const LintOptions& options = {});

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_LINT_H_
