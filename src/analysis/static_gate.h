#ifndef GMR_ANALYSIS_STATIC_GATE_H_
#define GMR_ANALYSIS_STATIC_GATE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/interval.h"
#include "analysis/units.h"

namespace gmr::analysis {

/// Which analysis rule rejected a candidate (kNone = passed). The order is
/// part of the observability schema: per-rule reject counters are reported
/// as gate_rule.<GateRuleName> fields of eval_batch events and as
/// gate_rule_rejects[] in gp::EvalStats, and the verdict cache stores the
/// rule byte, so renumbering invalidates checkpointed telemetry baselines.
enum class GateRule : std::uint8_t {
  kNone = 0,
  kIntervalNegInf,      ///< Derivative provably -inf everywhere.
  kIntervalSaturation,  ///< Derivative provably saturates the step clamp.
  kUnitsMismatch,       ///< Dimensionally inconsistent (opt-in).
  kSignViolation,       ///< Mass-balance direction violation (opt-in).
};
constexpr std::size_t kNumGateRules = 5;

/// Stable lowercase identifier ("none", "interval_neg_inf", ...).
const char* GateRuleName(GateRule rule);

/// Configuration of the pre-evaluation reject gate. Off by default; when
/// enabled, FitnessEvaluator runs AnalyzeCandidate on each phenotype before
/// any integration and short-circuits provably-doomed candidates with
/// EvalOutcome::kStaticReject and the deterministic penalty fitness.
///
/// Soundness contract: `domains` must OVER-approximate every value the
/// integrator can feed the equations. State variables are clamped to
/// [state_min, state_max] between steps but RK4 stage evaluations are
/// unclamped, so gate state intervals must be [state_min, +inf) — see
/// river/domains.h MakeStaticGate. The gate verdict is cached by structural
/// hash and is only consulted when ParametersInDomain holds for the
/// candidate's parameter vector.
struct StaticGateConfig {
  bool enabled = false;
  DomainEnv domains;
  /// A derivative provably >= this rate (in state units per day) saturates
  /// the integrator's clamp on every substep, guaranteeing a
  /// kClampSaturated watchdog abort; such candidates are rejected without
  /// integrating. +inf (the default) rejects only provably non-finite
  /// right-hand sides.
  double saturation_rate = std::numeric_limits<double>::infinity();
  /// Opt-in dimensional-consistency rejection: a candidate with a provable
  /// units mismatch (AnalyzeSystemUnits over `units`) is rejected. OFF by
  /// default — the TAG grammar's extender betas intentionally explore
  /// dimension-mixing forms, so enabling this changes which candidates
  /// survive (gate-on is then no longer bit-identical to gate-off on
  /// arbitrary populations; see DESIGN.md §4j).
  bool check_units = false;
  UnitsEnv units;
  /// Opt-in mass-balance direction rejection: a candidate with a
  /// provably-backwards gain/loss term (CheckMassBalance over `domains`)
  /// is rejected. OFF by default, same caveat as check_units.
  bool check_sign = false;
};

/// Result of the O(tree) static check on one candidate system.
struct StaticVerdict {
  bool reject = false;
  /// Which rule rejected (kNone when reject is false).
  GateRule rule = GateRule::kNone;
  /// Equation that triggered the rejection (-1 when reject is false).
  int equation = -1;
  /// Human-readable reason, e.g. for logging/benchmarks.
  std::string reason;
};

/// Interval-evaluates each equation over config.domains and rejects when
/// some right-hand side is provably -inf everywhere, or provably at or
/// above config.saturation_rate everywhere; with the opt-in passes enabled,
/// also when some equation is dimensionally inconsistent or violates
/// mass-balance direction. Candidates that merely *may* diverge pass — the
/// runtime watchdogs (PR 2) own that case; the interval rules only take
/// candidates whose doom is a theorem (the opt-in rules reject physically
/// meaningless candidates that may still integrate fine). Pure and
/// deterministic.
StaticVerdict AnalyzeCandidate(const std::vector<expr::ExprPtr>& equations,
                               const StaticGateConfig& config);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_STATIC_GATE_H_
