#ifndef GMR_ANALYSIS_STATIC_GATE_H_
#define GMR_ANALYSIS_STATIC_GATE_H_

#include <limits>
#include <string>
#include <vector>

#include "analysis/interval.h"

namespace gmr::analysis {

/// Configuration of the pre-evaluation reject gate. Off by default; when
/// enabled, FitnessEvaluator runs AnalyzeCandidate on each phenotype before
/// any integration and short-circuits provably-doomed candidates with
/// EvalOutcome::kStaticReject and the deterministic penalty fitness.
///
/// Soundness contract: `domains` must OVER-approximate every value the
/// integrator can feed the equations. State variables are clamped to
/// [state_min, state_max] between steps but RK4 stage evaluations are
/// unclamped, so gate state intervals must be [state_min, +inf) — see
/// river/domains.h MakeStaticGate. The gate verdict is cached by structural
/// hash and is only consulted when ParametersInDomain holds for the
/// candidate's parameter vector.
struct StaticGateConfig {
  bool enabled = false;
  DomainEnv domains;
  /// A derivative provably >= this rate (in state units per day) saturates
  /// the integrator's clamp on every substep, guaranteeing a
  /// kClampSaturated watchdog abort; such candidates are rejected without
  /// integrating. +inf (the default) rejects only provably non-finite
  /// right-hand sides.
  double saturation_rate = std::numeric_limits<double>::infinity();
};

/// Result of the O(tree) static check on one candidate system.
struct StaticVerdict {
  bool reject = false;
  /// Equation that triggered the rejection (-1 when reject is false).
  int equation = -1;
  /// Human-readable reason, e.g. for logging/benchmarks.
  std::string reason;
};

/// Interval-evaluates each equation over config.domains and rejects when
/// some right-hand side is provably -inf everywhere, or provably at or
/// above config.saturation_rate everywhere. Candidates that merely *may*
/// diverge pass — the runtime watchdogs (PR 2) own that case; the gate only
/// takes candidates whose doom is a theorem. Pure and deterministic.
StaticVerdict AnalyzeCandidate(const std::vector<expr::ExprPtr>& equations,
                               const StaticGateConfig& config);

}  // namespace gmr::analysis

#endif  // GMR_ANALYSIS_STATIC_GATE_H_
