#ifndef GMR_EXPR_COMPILE_H_
#define GMR_EXPR_COMPILE_H_

#include <cstdint>
#include <vector>

#include "expr/ast.h"
#include "expr/eval.h"

namespace gmr::expr {

/// One postfix instruction of the flattened expression tape, shared by the
/// scalar stack VM below and the stride-N batch VM (batch_vm.h).
struct TapeInstruction {
  NodeKind op;
  // kConstant: immediate; kParameter/kVariable: slot index.
  double immediate = 0.0;
  std::int32_t slot = -1;
};

/// A flattened expression: postorder instruction sequence plus the maximum
/// operand-stack depth it can reach. Pure data — every VM backend executes
/// the same tape, which is what makes their per-step operation order (and
/// therefore their floating-point results) bit-identical.
struct Tape {
  std::vector<TapeInstruction> ops;
  std::size_t max_stack = 0;

  bool empty() const { return ops.empty(); }
  std::size_t size() const { return ops.size(); }
};

/// Flattens `root` into a postorder tape (children before operators).
Tape Flatten(const Expr& root);

/// Runtime-compilation backend.
///
/// The paper compiles each candidate process to C source with g++ and
/// dlopen()s the result so that the thousands of per-time-step evaluations
/// during fitness evaluation run compiled code instead of re-parsing the
/// tree. This library substitutes an in-process equivalent: the tree is
/// flattened once into a postfix instruction tape executed by a tight stack
/// VM with a preallocated stack (no recursion, no virtual dispatch, no
/// pointer chasing). The measured effect — compiled-form evaluation replacing
/// repeated tree walking inside the GP loop — is the same mechanism (see
/// DESIGN.md section 4).
class CompiledProgram {
 public:
  /// Executes the program. Semantics are bit-identical to EvalExpr on the
  /// source tree (both call the same ApplyUnary/ApplyBinary kernels).
  double Run(const EvalContext& ctx) const;

  /// Number of instructions in the tape.
  std::size_t size() const { return tape_.size(); }

  /// True when Compile has not been run (or the source was empty).
  bool empty() const { return tape_.empty(); }

 private:
  friend CompiledProgram Compile(const Expr& root);

  Tape tape_;
  // Evaluation scratch space, sized once at compile time. Programs are
  // evaluated thousands of times per fitness case sequence; reusing the
  // buffer keeps Run() allocation-free. A CompiledProgram is therefore not
  // safe to Run() from two threads concurrently (clone it instead).
  mutable std::vector<double> stack_;
};

/// Flattens `root` into a CompiledProgram (postorder).
CompiledProgram Compile(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_COMPILE_H_
