#ifndef GMR_EXPR_COMPILE_H_
#define GMR_EXPR_COMPILE_H_

#include <cstdint>
#include <vector>

#include "expr/ast.h"
#include "expr/eval.h"

namespace gmr::expr {

/// Runtime-compilation backend.
///
/// The paper compiles each candidate process to C source with g++ and
/// dlopen()s the result so that the thousands of per-time-step evaluations
/// during fitness evaluation run compiled code instead of re-parsing the
/// tree. This library substitutes an in-process equivalent: the tree is
/// flattened once into a postfix instruction tape executed by a tight stack
/// VM with a preallocated stack (no recursion, no virtual dispatch, no
/// pointer chasing). The measured effect — compiled-form evaluation replacing
/// repeated tree walking inside the GP loop — is the same mechanism (see
/// DESIGN.md section 4).
class CompiledProgram {
 public:
  /// Executes the program. Semantics are bit-identical to EvalExpr on the
  /// source tree (both call the same ApplyUnary/ApplyBinary kernels).
  double Run(const EvalContext& ctx) const;

  /// Number of instructions in the tape.
  std::size_t size() const { return ops_.size(); }

  /// True when Compile has not been run (or the source was empty).
  bool empty() const { return ops_.empty(); }

 private:
  friend CompiledProgram Compile(const Expr& root);

  struct Instruction {
    NodeKind op;
    // kConstant: immediate; kParameter/kVariable: slot index.
    double immediate = 0.0;
    std::int32_t slot = -1;
  };

  std::vector<Instruction> ops_;
  std::size_t max_stack_ = 0;
  // Evaluation scratch space, sized once at compile time. Programs are
  // evaluated thousands of times per fitness case sequence; reusing the
  // buffer keeps Run() allocation-free. A CompiledProgram is therefore not
  // safe to Run() from two threads concurrently (clone it instead).
  mutable std::vector<double> stack_;
};

/// Flattens `root` into a CompiledProgram (postorder).
CompiledProgram Compile(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_COMPILE_H_
