#include "expr/ast.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/check.h"

namespace gmr::expr {
namespace {

std::uint64_t MixHash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void CollectSlots(const Expr& node, NodeKind kind, std::set<int>* out) {
  if (node.kind() == kind) out->insert(node.slot());
  for (const auto& child : node.children()) CollectSlots(*child, kind, out);
}

}  // namespace

Expr::Expr(NodeKind kind, double value, int slot, std::string name,
           std::vector<ExprPtr> children)
    : kind_(kind),
      value_(value),
      slot_(slot),
      name_(std::move(name)),
      children_(std::move(children)) {
  GMR_CHECK_EQ(static_cast<int>(children_.size()), Arity(kind_));
  for (const auto& child : children_) GMR_CHECK(child != nullptr);
}

std::size_t Expr::NodeCount() const {
  std::size_t count = 1;
  for (const auto& child : children_) count += child->NodeCount();
  return count;
}

std::size_t Expr::Height() const {
  std::size_t max_child = 0;
  for (const auto& child : children_) {
    max_child = std::max(max_child, child->Height());
  }
  return 1 + max_child;
}

std::uint64_t Expr::StructuralHash() const {
  // Subtrees are shared across individuals (crossover never copies), so
  // parallel evaluation hashes the same node from several threads. The lazy
  // cache is therefore an atomic with 0 = "not yet computed"; racing
  // computations write the same value, so a relaxed store is enough.
  const std::uint64_t cached = cached_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::uint64_t h = static_cast<std::uint64_t>(kind_) * 0xff51afd7ed558ccdULL;
  switch (kind_) {
    case NodeKind::kConstant:
      h = MixHash(h, DoubleBits(value_));
      break;
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      h = MixHash(h, static_cast<std::uint64_t>(slot_) + 1);
      break;
    default:
      for (const auto& child : children_) {
        h = MixHash(h, child->StructuralHash());
      }
      break;
  }
  if (h == 0) h = 1;  // Reserve 0 as the "uncomputed" sentinel.
  cached_hash_.store(h, std::memory_order_relaxed);
  return h;
}

bool StructurallyEqual(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case NodeKind::kConstant:
      return a.value() == b.value();
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      return a.slot() == b.slot();
    default:
      break;
  }
  if (a.children().size() != b.children().size()) return false;
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    if (!StructurallyEqual(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

ExprPtr Constant(double value) {
  return std::make_shared<Expr>(NodeKind::kConstant, value, -1, "",
                                std::vector<ExprPtr>{});
}

ExprPtr Parameter(int slot, std::string name) {
  GMR_CHECK_GE(slot, 0);
  return std::make_shared<Expr>(NodeKind::kParameter, 0.0, slot,
                                std::move(name), std::vector<ExprPtr>{});
}

ExprPtr Variable(int slot, std::string name) {
  GMR_CHECK_GE(slot, 0);
  return std::make_shared<Expr>(NodeKind::kVariable, 0.0, slot,
                                std::move(name), std::vector<ExprPtr>{});
}

ExprPtr MakeBinary(NodeKind kind, ExprPtr a, ExprPtr b) {
  GMR_CHECK_EQ(Arity(kind), 2);
  std::vector<ExprPtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return std::make_shared<Expr>(kind, 0.0, -1, "", std::move(children));
}

ExprPtr MakeUnary(NodeKind kind, ExprPtr a) {
  GMR_CHECK_EQ(Arity(kind), 1);
  std::vector<ExprPtr> children;
  children.push_back(std::move(a));
  return std::make_shared<Expr>(kind, 0.0, -1, "", std::move(children));
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kDiv, std::move(a), std::move(b));
}
ExprPtr Min(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kMin, std::move(a), std::move(b));
}
ExprPtr Max(ExprPtr a, ExprPtr b) {
  return MakeBinary(NodeKind::kMax, std::move(a), std::move(b));
}
ExprPtr Neg(ExprPtr a) { return MakeUnary(NodeKind::kNeg, std::move(a)); }
ExprPtr Log(ExprPtr a) { return MakeUnary(NodeKind::kLog, std::move(a)); }
ExprPtr Exp(ExprPtr a) { return MakeUnary(NodeKind::kExp, std::move(a)); }

int Arity(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConstant:
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      return 0;
    case NodeKind::kNeg:
    case NodeKind::kLog:
    case NodeKind::kExp:
      return 1;
    case NodeKind::kAdd:
    case NodeKind::kSub:
    case NodeKind::kMul:
    case NodeKind::kDiv:
    case NodeKind::kMin:
    case NodeKind::kMax:
      return 2;
  }
  GMR_CHECK_MSG(false, "unknown NodeKind");
  return 0;
}

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConstant: return "const";
    case NodeKind::kParameter: return "param";
    case NodeKind::kVariable: return "var";
    case NodeKind::kAdd: return "+";
    case NodeKind::kSub: return "-";
    case NodeKind::kMul: return "*";
    case NodeKind::kDiv: return "/";
    case NodeKind::kMin: return "min";
    case NodeKind::kMax: return "max";
    case NodeKind::kNeg: return "neg";
    case NodeKind::kLog: return "log";
    case NodeKind::kExp: return "exp";
  }
  return "?";
}

std::vector<int> ReferencedVariableSlots(const Expr& root) {
  std::set<int> slots;
  CollectSlots(root, NodeKind::kVariable, &slots);
  return std::vector<int>(slots.begin(), slots.end());
}

std::vector<int> ReferencedParameterSlots(const Expr& root) {
  std::set<int> slots;
  CollectSlots(root, NodeKind::kParameter, &slots);
  return std::vector<int>(slots.begin(), slots.end());
}

}  // namespace gmr::expr
