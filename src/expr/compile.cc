#include "expr/compile.h"

#include <algorithm>

#include "common/check.h"

namespace gmr::expr {

Tape Flatten(const Expr& root) {
  Tape tape;
  // Postorder emission: children first, then the operator.
  struct Frame {
    const Expr* node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({&root, 0});
  std::size_t depth = 0;
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child < top.node->children().size()) {
      const Expr* child = top.node->children()[top.next_child].get();
      ++top.next_child;
      stack.push_back({child, 0});
      continue;
    }
    const Expr& n = *top.node;
    TapeInstruction ins;
    ins.op = n.kind();
    switch (n.kind()) {
      case NodeKind::kConstant:
        ins.immediate = n.value();
        ++depth;
        break;
      case NodeKind::kParameter:
      case NodeKind::kVariable:
        ins.slot = n.slot();
        ++depth;
        break;
      default:
        // A k-ary operator pops k values and pushes one.
        depth -= static_cast<std::size_t>(Arity(n.kind())) - 1;
        break;
    }
    max_depth = std::max(max_depth, depth);
    tape.ops.push_back(ins);
    stack.pop_back();
  }
  GMR_CHECK_EQ(depth, 1u);
  tape.max_stack = max_depth;
  return tape;
}

CompiledProgram Compile(const Expr& root) {
  CompiledProgram program;
  program.tape_ = Flatten(root);
  program.stack_.resize(program.tape_.max_stack);
  return program;
}

double CompiledProgram::Run(const EvalContext& ctx) const {
  GMR_CHECK(!tape_.empty());
  double* stack = stack_.data();
  std::size_t top = 0;
  const TapeInstruction* ins = tape_.ops.data();
  const TapeInstruction* end = ins + tape_.ops.size();
  for (; ins != end; ++ins) {
    switch (ins->op) {
      case NodeKind::kConstant:
        stack[top++] = ins->immediate;
        break;
      case NodeKind::kParameter:
        stack[top++] = ctx.parameters[ins->slot];
        break;
      case NodeKind::kVariable:
        stack[top++] = ctx.variables[ins->slot];
        break;
      case NodeKind::kAdd:
        --top;
        stack[top - 1] += stack[top];
        break;
      case NodeKind::kSub:
        --top;
        stack[top - 1] -= stack[top];
        break;
      case NodeKind::kMul:
        --top;
        stack[top - 1] *= stack[top];
        break;
      case NodeKind::kNeg:
      case NodeKind::kLog:
      case NodeKind::kExp:
        stack[top - 1] = ApplyUnary(ins->op, stack[top - 1]);
        break;
      default: {
        const double b = stack[--top];
        stack[top - 1] = ApplyBinary(ins->op, stack[top - 1], b);
        break;
      }
    }
  }
  GMR_CHECK_EQ(top, 1u);
  return stack[0];
}

}  // namespace gmr::expr
