#ifndef GMR_EXPR_BATCH_JIT_H_
#define GMR_EXPR_BATCH_JIT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/striped_map.h"
#include "expr/ast.h"
#include "expr/jit.h"

namespace gmr::expr {

/// Generation-batched runtime compilation.
///
/// The paper's extensibility mechanism (Section III-D) compiles each
/// candidate ODE into its own shared object — hundreds of compiler
/// invocations per GP generation. BatchJitSession amortizes that: one
/// CompileBatch call emits a single translation unit with one exported
/// symbol per *unique* expression (structure-hash keyed, so duplicate
/// individuals after TAG3P crossover share a symbol), invokes the compiler
/// once, and dlopen()s once. Compiled symbols persist in a striped
/// structure-hash cache for the lifetime of the session, so individuals
/// recurring across generations never recompile at all.
///
/// The emitted symbols use the SoA batch calling convention of
/// batch_vm.h — `fn(v, p, out, width)` with `v[slot*width+lane]` — so one
/// compiled equation evaluates a whole lane block per call; scalar rollout
/// paths simply call with width 1 (SoA == AoS at stride 1). The TU is
/// compiled with -ffp-contract=off, which keeps every lane's result
/// bit-identical across widths (vector body and scalar epilogue perform
/// the same IEEE operations).
class BatchJitSession {
 public:
  /// out[lane] = f(v, p) for lane in [0, width); v/p in SoA layout.
  using BatchFn = void (*)(const double* v, const double* p, double* out,
                           long width);

  /// `breaker` guards the per-TU compiler invocations; null uses
  /// JitCircuitBreaker::Default(). The session does not own it.
  explicit BatchJitSession(JitCircuitBreaker* breaker = nullptr);
  ~BatchJitSession();

  BatchJitSession(const BatchJitSession&) = delete;
  BatchJitSession& operator=(const BatchJitSession&) = delete;

  /// Compiles every root not already cached into ONE translation unit and
  /// returns the per-root entry points in input order. A null entry means
  /// that root must run on the batched VM instead (compile failure, open
  /// circuit breaker, no compiler, or `batch_compile` fault injection) —
  /// the degradation is per-call-site, so healthy lanes are never
  /// poisoned. Coordinator-only: call from the batch barrier, not from
  /// worker lanes (Lookup is the lane-safe accessor).
  std::vector<BatchFn> CompileBatch(const std::vector<const Expr*>& roots);

  /// Thread-safe cache probe by Expr::StructuralHash(); null on miss.
  BatchFn Lookup(std::uint64_t structure_hash) const;

  /// Compile-cache counters (all totals since construction). "Requests"
  /// are CompileBatch inputs; hits are requests satisfied by the cache
  /// without entering the new TU.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t unique_misses = 0;
    std::uint64_t tu_compiles = 0;       ///< Compiler invocations.
    std::uint64_t symbols_compiled = 0;  ///< Exported symbols built.
    std::uint64_t compile_failures = 0;  ///< Failed TU compiles.

    double HitRate() const {
      return requests == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(requests);
    }
  };
  Stats stats() const;

  /// Entries currently cached.
  std::size_t cache_size() const { return cache_.size(); }

  /// The last generated TU source (for inspection/testing; empty before
  /// the first non-trivial CompileBatch).
  const std::string& last_source() const { return last_source_; }

  /// Process-wide session shared by runs that do not supply their own.
  static BatchJitSession* Default();

 private:
  JitCircuitBreaker* breaker_;
  StripedMap<std::uint64_t, BatchFn> cache_;
  /// Serializes TU generation/compilation (CompileBatch is documented
  /// coordinator-only, but the default session is shared process-wide).
  std::mutex compile_mu_;
  /// dlopen handles, closed in order at destruction.
  std::vector<void*> handles_;
  std::string last_source_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> unique_misses_{0};
  std::atomic<std::uint64_t> tu_compiles_{0};
  std::atomic<std::uint64_t> symbols_compiled_{0};
  std::atomic<std::uint64_t> compile_failures_{0};
};

/// Symbol name of a structure hash inside generated TUs (exposed for
/// tests): "gmr_b_<16 hex digits>".
std::string BatchSymbolName(std::uint64_t structure_hash);

/// Generates the multi-symbol TU source for the given (hash, root) pairs
/// without compiling (exposed for tests).
std::string GenerateBatchCSource(
    const std::vector<std::pair<std::uint64_t, const Expr*>>& entries);

}  // namespace gmr::expr

#endif  // GMR_EXPR_BATCH_JIT_H_
