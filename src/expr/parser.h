#ifndef GMR_EXPR_PARSER_H_
#define GMR_EXPR_PARSER_H_

#include <map>
#include <string>

#include "expr/ast.h"

namespace gmr::expr {

/// Maps leaf names to slots for the parser. A name present in both maps is
/// resolved as a variable.
struct SymbolTable {
  std::map<std::string, int> variables;
  std::map<std::string, int> parameters;
};

/// Outcome of a Parse call. On failure `expr` is null and `error` holds a
/// human-readable message with the offending position.
struct ParseResult {
  ExprPtr expr;
  std::string error;

  bool ok() const { return expr != nullptr; }
};

/// Parses infix expression text into an AST. Grammar:
///
///   expr    := term (('+' | '-') term)*
///   term    := unary (('*' | '/') unary)*
///   unary   := '-' unary | primary
///   primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')'
///            | '(' expr ')'
///
/// Recognized functions: min, max, log, exp (the operator set of the
/// grammar in Table II plus the expert min/max forms). Identifiers resolve
/// through `symbols`; unknown identifiers are an error. This is a
/// convenience front end for tests, examples, and defining seed processes —
/// the GP engine itself operates on trees, never on text.
ParseResult Parse(const std::string& text, const SymbolTable& symbols);

}  // namespace gmr::expr

#endif  // GMR_EXPR_PARSER_H_
