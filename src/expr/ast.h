#ifndef GMR_EXPR_AST_H_
#define GMR_EXPR_AST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gmr::expr {

/// Node kinds of the process-equation expression language. The binary
/// arithmetic operators and {log, exp} are exactly the connector/extender
/// operator set of the paper (Table II); min/max appear in the expert
/// nutrient-limitation and temperature-response terms of Eqs. (1)-(2).
enum class NodeKind : std::uint8_t {
  kConstant,   // Literal number (e.g., a substituted lexeme value).
  kParameter,  // Named constant parameter (Table III), indexed slot.
  kVariable,   // Named temporal variable or state (Table IV), indexed slot.
  kAdd,
  kSub,
  kMul,
  kDiv,  // Protected: |denominator| < kDivEpsilon evaluates to 1.
  kMin,
  kMax,
  kNeg,
  kLog,  // Protected: log(|x|), 0 when |x| < kLogEpsilon.
  kExp,  // Clamped argument to avoid overflow.
};

/// Protected-operator constants (standard GP conventions; see Koza 1993).
inline constexpr double kDivEpsilon = 1e-9;
inline constexpr double kLogEpsilon = 1e-12;
inline constexpr double kExpArgClamp = 80.0;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Trees are shared via ExprPtr, so subtrees can
/// be reused freely across individuals (crossover never copies).
class Expr {
 public:
  /// Leaf constructors; use the factory helpers below instead of these.
  Expr(NodeKind kind, double value, int slot, std::string name,
       std::vector<ExprPtr> children);

  NodeKind kind() const { return kind_; }

  /// Literal value (kConstant only).
  double value() const { return value_; }

  /// Slot into the parameter/variable vector (kParameter/kVariable only).
  int slot() const { return slot_; }

  /// Display name (kParameter/kVariable only).
  const std::string& name() const { return name_; }

  const std::vector<ExprPtr>& children() const { return children_; }

  bool IsLeaf() const { return children_.empty(); }

  /// Number of nodes in the subtree rooted here.
  std::size_t NodeCount() const;

  /// Height of the subtree (a leaf has height 1).
  std::size_t Height() const;

  /// Structural hash: equal trees hash equal; collisions are possible but
  /// the tree cache confirms with StructurallyEqual.
  std::uint64_t StructuralHash() const;

 private:
  NodeKind kind_;
  double value_ = 0.0;
  int slot_ = -1;
  std::string name_;
  std::vector<ExprPtr> children_;
  /// Lazily computed hash; 0 means "not yet computed". Atomic because
  /// shared subtrees are hashed concurrently under parallel evaluation.
  mutable std::atomic<std::uint64_t> cached_hash_{0};
};

/// True when the two trees are structurally identical (same shape, kinds,
/// slots, and literal values).
bool StructurallyEqual(const Expr& a, const Expr& b);

/// Factory helpers.
ExprPtr Constant(double value);
ExprPtr Parameter(int slot, std::string name);
ExprPtr Variable(int slot, std::string name);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Min(ExprPtr a, ExprPtr b);
ExprPtr Max(ExprPtr a, ExprPtr b);
ExprPtr Neg(ExprPtr a);
ExprPtr Log(ExprPtr a);
ExprPtr Exp(ExprPtr a);

/// Builds a binary node of the given kind. Aborts for non-binary kinds.
ExprPtr MakeBinary(NodeKind kind, ExprPtr a, ExprPtr b);

/// Builds a unary node of the given kind. Aborts for non-unary kinds.
ExprPtr MakeUnary(NodeKind kind, ExprPtr a);

/// Number of operands the kind takes (0 for leaves, 1 or 2 otherwise).
int Arity(NodeKind kind);

/// Printable operator/leaf name ("+", "min", "exp", ...).
const char* KindName(NodeKind kind);

/// Collects the distinct variable slots referenced by the tree, sorted.
std::vector<int> ReferencedVariableSlots(const Expr& root);

/// Collects the distinct parameter slots referenced by the tree, sorted.
std::vector<int> ReferencedParameterSlots(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_AST_H_
