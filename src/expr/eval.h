#ifndef GMR_EXPR_EVAL_H_
#define GMR_EXPR_EVAL_H_

#include <cstddef>

#include "expr/ast.h"

namespace gmr::expr {

/// Read-only evaluation environment: the temporal-variable slots (the
/// constituent states declared by the problem's registry, then the Table IV
/// driver values imported from observed data at each time step) and the
/// constant-parameter slots (prior-table values owned by the individual
/// being evaluated).
struct EvalContext {
  const double* variables = nullptr;
  std::size_t num_variables = 0;
  const double* parameters = nullptr;
  std::size_t num_parameters = 0;
};

/// The baseline evaluation backend: a recursive walk of the expression tree
/// at every time step ("repeated tree parsing" in the paper's terminology).
/// Protected-operator semantics are defined in ast.h and are shared with the
/// compiled backend, which must produce bit-identical results.
double EvalExpr(const Expr& node, const EvalContext& ctx);

/// Shared scalar semantics of each operator, used by both backends.
/// Defined inline: these sit on the innermost loop of fitness evaluation.
double ApplyUnary(NodeKind kind, double a);
double ApplyBinary(NodeKind kind, double a, double b);

// Implementation details only below here.

inline double ApplyUnary(NodeKind kind, double a) {
  switch (kind) {
    case NodeKind::kNeg:
      return -a;
    case NodeKind::kLog: {
      const double m = a < 0.0 ? -a : a;
      return m < kLogEpsilon ? 0.0 : __builtin_log(m);
    }
    case NodeKind::kExp: {
      double x = a;
      if (x > kExpArgClamp) x = kExpArgClamp;
      if (x < -kExpArgClamp) x = -kExpArgClamp;
      return __builtin_exp(x);
    }
    default:
      return 0.0;  // Unreachable for well-formed trees.
  }
}

inline double ApplyBinary(NodeKind kind, double a, double b) {
  switch (kind) {
    case NodeKind::kAdd:
      return a + b;
    case NodeKind::kSub:
      return a - b;
    case NodeKind::kMul:
      return a * b;
    case NodeKind::kDiv: {
      const double m = b < 0.0 ? -b : b;
      return m < kDivEpsilon ? 1.0 : a / b;
    }
    case NodeKind::kMin:
      return a < b ? a : b;
    case NodeKind::kMax:
      return a > b ? a : b;
    default:
      return 0.0;  // Unreachable for well-formed trees.
  }
}

}  // namespace gmr::expr

#endif  // GMR_EXPR_EVAL_H_
