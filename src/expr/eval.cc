#include "expr/eval.h"

#include "common/check.h"

namespace gmr::expr {

double EvalExpr(const Expr& node, const EvalContext& ctx) {
  switch (node.kind()) {
    case NodeKind::kConstant:
      return node.value();
    case NodeKind::kParameter:
      GMR_CHECK_LT(static_cast<std::size_t>(node.slot()),
                   ctx.num_parameters);
      return ctx.parameters[node.slot()];
    case NodeKind::kVariable:
      GMR_CHECK_LT(static_cast<std::size_t>(node.slot()), ctx.num_variables);
      return ctx.variables[node.slot()];
    case NodeKind::kNeg:
    case NodeKind::kLog:
    case NodeKind::kExp:
      return ApplyUnary(node.kind(), EvalExpr(*node.children()[0], ctx));
    default:
      return ApplyBinary(node.kind(), EvalExpr(*node.children()[0], ctx),
                         EvalExpr(*node.children()[1], ctx));
  }
}

}  // namespace gmr::expr
