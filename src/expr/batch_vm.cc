#include "expr/batch_vm.h"

#include "common/check.h"
#include "expr/eval.h"

namespace gmr::expr {

BatchProgram CompileBatch(const Expr& root) {
  BatchProgram program;
  program.tape_ = Flatten(root);
  return program;
}

void BatchProgram::RunLanes(const BatchEvalContext& ctx, double* out) const {
  GMR_CHECK(!tape_.empty());
  const std::size_t width = ctx.width;
  GMR_CHECK(width > 0);
  if (stack_.size() < tape_.max_stack * width) {
    stack_.resize(tape_.max_stack * width);
  }
  double* stack = stack_.data();
  std::size_t top = 0;
  const TapeInstruction* ins = tape_.ops.data();
  const TapeInstruction* end = ins + tape_.ops.size();
  // The operator switch is hoisted OUT of the lane loop: each case body is
  // a branch-free sweep over independent lanes, calling the same inline
  // scalar kernels as CompiledProgram::Run with the operator kind fixed at
  // compile time (the kernel switch constant-folds away). Per lane this is
  // the exact scalar operation sequence; across lanes it is the stride-N
  // form the autovectorizer targets.
  for (; ins != end; ++ins) {
    switch (ins->op) {
      case NodeKind::kConstant: {
        double* dst = stack + top * width;
        const double immediate = ins->immediate;
        for (std::size_t l = 0; l < width; ++l) dst[l] = immediate;
        ++top;
        break;
      }
      case NodeKind::kParameter: {
        double* dst = stack + top * width;
        const double* src =
            ctx.parameters + static_cast<std::size_t>(ins->slot) * width;
        for (std::size_t l = 0; l < width; ++l) dst[l] = src[l];
        ++top;
        break;
      }
      case NodeKind::kVariable: {
        double* dst = stack + top * width;
        const double* src =
            ctx.variables + static_cast<std::size_t>(ins->slot) * width;
        for (std::size_t l = 0; l < width; ++l) dst[l] = src[l];
        ++top;
        break;
      }
      case NodeKind::kAdd: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) a[l] += b[l];
        break;
      }
      case NodeKind::kSub: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) a[l] -= b[l];
        break;
      }
      case NodeKind::kMul: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) a[l] *= b[l];
        break;
      }
      case NodeKind::kDiv: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) {
          a[l] = ApplyBinary(NodeKind::kDiv, a[l], b[l]);
        }
        break;
      }
      case NodeKind::kMin: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) {
          a[l] = ApplyBinary(NodeKind::kMin, a[l], b[l]);
        }
        break;
      }
      case NodeKind::kMax: {
        --top;
        double* a = stack + (top - 1) * width;
        const double* b = stack + top * width;
        for (std::size_t l = 0; l < width; ++l) {
          a[l] = ApplyBinary(NodeKind::kMax, a[l], b[l]);
        }
        break;
      }
      case NodeKind::kNeg: {
        double* a = stack + (top - 1) * width;
        for (std::size_t l = 0; l < width; ++l) a[l] = -a[l];
        break;
      }
      case NodeKind::kLog: {
        double* a = stack + (top - 1) * width;
        for (std::size_t l = 0; l < width; ++l) {
          a[l] = ApplyUnary(NodeKind::kLog, a[l]);
        }
        break;
      }
      case NodeKind::kExp: {
        double* a = stack + (top - 1) * width;
        for (std::size_t l = 0; l < width; ++l) {
          a[l] = ApplyUnary(NodeKind::kExp, a[l]);
        }
        break;
      }
    }
  }
  GMR_CHECK_EQ(top, 1u);
  for (std::size_t l = 0; l < width; ++l) out[l] = stack[l];
}

}  // namespace gmr::expr
