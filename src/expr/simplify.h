#ifndef GMR_EXPR_SIMPLIFY_H_
#define GMR_EXPR_SIMPLIFY_H_

#include "expr/ast.h"

namespace gmr::expr {

/// Algebraic simplification.
///
/// The paper's tree cache "improves the hit rate by algebraically
/// simplifying the trees before they are evaluated": distinct genotypes that
/// denote the same function should map to the same cache key. Simplify
/// performs constant folding over literal constants and identity/annihilator
/// rewrites, and canonically orders commutative operands so that x+y and y+x
/// produce identical trees.
///
/// Rewrites preserve the protected-operator semantics of eval.h. In
/// particular x/x rewrites to 1 (protected division already returns 1 when
/// the denominator vanishes), and constants are folded with the same
/// protected kernels used at evaluation time.
ExprPtr Simplify(const ExprPtr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_SIMPLIFY_H_
