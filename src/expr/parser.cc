#include "expr/parser.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <vector>

namespace gmr::expr {
namespace {

struct Token {
  enum Kind { kNumber, kIdent, kOp, kLParen, kRParen, kComma, kEnd } kind;
  std::string text;
  double number = 0.0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Tokenizes the whole input; returns false and sets `error` on a bad
  /// character.
  bool Tokenize(std::vector<Token>* tokens, std::string* error) {
    std::size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        char* end = nullptr;
        const double v = std::strtod(text_.c_str() + i, &end);
        if (end == text_.c_str() + i) {
          // A lone '.' is in the number alphabet but strtod consumes
          // nothing; without this check the loop would never advance.
          *error =
              "malformed number at position " + std::to_string(i);
          return false;
        }
        Token t{Token::kNumber, "", v, i};
        i = static_cast<std::size_t>(end - text_.c_str());
        tokens->push_back(t);
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        tokens->push_back({Token::kIdent, text_.substr(i, j - i), 0.0, i});
        i = j;
        continue;
      }
      switch (c) {
        case '+': case '-': case '*': case '/':
          tokens->push_back({Token::kOp, std::string(1, c), 0.0, i});
          break;
        case '(':
          tokens->push_back({Token::kLParen, "(", 0.0, i});
          break;
        case ')':
          tokens->push_back({Token::kRParen, ")", 0.0, i});
          break;
        case ',':
          tokens->push_back({Token::kComma, ",", 0.0, i});
          break;
        default:
          *error = "unexpected character '" + std::string(1, c) +
                   "' at position " + std::to_string(i);
          return false;
      }
      ++i;
    }
    tokens->push_back({Token::kEnd, "", 0.0, text_.size()});
    return true;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const SymbolTable& symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  ParseResult Run() {
    ParseResult result;
    result.expr = ParseExpr();
    if (result.expr != nullptr && Peek().kind != Token::kEnd) {
      Fail("unexpected trailing input");
      result.expr = nullptr;
    }
    result.error = error_;
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at position " + std::to_string(Peek().pos);
    }
  }

  ExprPtr ParseExpr() {
    ExprPtr lhs = ParseTerm();
    if (lhs == nullptr) return nullptr;
    while (Peek().kind == Token::kOp &&
           (Peek().text == "+" || Peek().text == "-")) {
      const std::string op = Next().text;
      ExprPtr rhs = ParseTerm();
      if (rhs == nullptr) return nullptr;
      lhs = op == "+" ? Add(lhs, rhs) : Sub(lhs, rhs);
    }
    return lhs;
  }

  ExprPtr ParseTerm() {
    ExprPtr lhs = ParseUnary();
    if (lhs == nullptr) return nullptr;
    while (Peek().kind == Token::kOp &&
           (Peek().text == "*" || Peek().text == "/")) {
      const std::string op = Next().text;
      ExprPtr rhs = ParseUnary();
      if (rhs == nullptr) return nullptr;
      lhs = op == "*" ? Mul(lhs, rhs) : Div(lhs, rhs);
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (Peek().kind == Token::kOp && Peek().text == "-") {
      Next();
      ExprPtr operand = ParseUnary();
      if (operand == nullptr) return nullptr;
      return Neg(operand);
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& t = Next();
    switch (t.kind) {
      case Token::kNumber:
        return Constant(t.number);
      case Token::kLParen: {
        ExprPtr inner = ParseExpr();
        if (inner == nullptr) return nullptr;
        if (Next().kind != Token::kRParen) {
          Fail("expected ')'");
          return nullptr;
        }
        return inner;
      }
      case Token::kIdent: {
        if (Peek().kind == Token::kLParen) return ParseCall(t.text);
        return ResolveLeaf(t.text);
      }
      default:
        Fail("expected a number, identifier, or '('");
        return nullptr;
    }
  }

  ExprPtr ParseCall(const std::string& name) {
    Next();  // consume '('
    std::vector<ExprPtr> args;
    if (Peek().kind != Token::kRParen) {
      while (true) {
        ExprPtr arg = ParseExpr();
        if (arg == nullptr) return nullptr;
        args.push_back(std::move(arg));
        if (Peek().kind == Token::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    if (Next().kind != Token::kRParen) {
      Fail("expected ')' after call arguments");
      return nullptr;
    }
    if (name == "min" || name == "max") {
      if (args.size() != 2) {
        Fail(name + " takes exactly 2 arguments");
        return nullptr;
      }
      return name == "min" ? Min(args[0], args[1]) : Max(args[0], args[1]);
    }
    if (name == "log" || name == "exp") {
      if (args.size() != 1) {
        Fail(name + " takes exactly 1 argument");
        return nullptr;
      }
      return name == "log" ? Log(args[0]) : Exp(args[0]);
    }
    Fail("unknown function '" + name + "'");
    return nullptr;
  }

  ExprPtr ResolveLeaf(const std::string& name) {
    auto var = symbols_.variables.find(name);
    if (var != symbols_.variables.end()) {
      return Variable(var->second, name);
    }
    auto par = symbols_.parameters.find(name);
    if (par != symbols_.parameters.end()) {
      return Parameter(par->second, name);
    }
    // Reserved non-finite literals: the printer emits "inf"/"nan" for
    // constants produced by folding (e.g. 1e308 + 1e308), so the grammar
    // must accept them back or round-trip is not total. A symbol table
    // entry with either name wins, mirroring variable-over-parameter
    // shadowing.
    if (name == "inf") {
      return Constant(std::numeric_limits<double>::infinity());
    }
    if (name == "nan") {
      return Constant(std::numeric_limits<double>::quiet_NaN());
    }
    Fail("unknown identifier '" + name + "'");
    return nullptr;
  }

  std::vector<Token> tokens_;
  const SymbolTable& symbols_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult Parse(const std::string& text, const SymbolTable& symbols) {
  std::vector<Token> tokens;
  std::string error;
  Lexer lexer(text);
  if (!lexer.Tokenize(&tokens, &error)) {
    ParseResult result;
    result.error = error;
    return result;
  }
  Parser parser(std::move(tokens), symbols);
  return parser.Run();
}

}  // namespace gmr::expr
