#include "expr/jit.h"

#include <dlfcn.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"

namespace gmr::expr {
namespace {

/// Preamble with the protected-operator kernels, kept textually in sync
/// with the semantics of eval.h.
const char kPreamble[] = R"(#include <math.h>
static double gmr_pdiv(double a, double b) {
  return fabs(b) < 1e-9 ? 1.0 : a / b;
}
static double gmr_plog(double a) {
  double m = fabs(a);
  return m < 1e-12 ? 0.0 : log(m);
}
static double gmr_pexp(double a) {
  if (a > 80.0) a = 80.0;
  if (a < -80.0) a = -80.0;
  return exp(a);
}
static double gmr_min(double a, double b) { return a < b ? a : b; }
static double gmr_max(double a, double b) { return a > b ? a : b; }
)";

void EmitNode(const Expr& node, std::ostringstream& out,
              bool strided) {
  switch (node.kind()) {
    case NodeKind::kConstant: {
      const double v = node.value();
      // %.17g renders non-finite values as inf/nan, which are not C
      // literals; spell them through math.h instead.
      if (std::isnan(v)) {
        out << "(0.0/0.0)";
        return;
      }
      if (std::isinf(v)) {
        out << (v > 0 ? "HUGE_VAL" : "(-HUGE_VAL)");
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << buf;
      return;
    }
    case NodeKind::kParameter:
      out << "p[" << node.slot() << (strided ? "*w+i]" : "]");
      return;
    case NodeKind::kVariable:
      out << "v[" << node.slot() << (strided ? "*w+i]" : "]");
      return;
    case NodeKind::kAdd:
    case NodeKind::kSub:
    case NodeKind::kMul:
      out << '(';
      EmitNode(*node.children()[0], out, strided);
      out << ' ' << KindName(node.kind()) << ' ';
      EmitNode(*node.children()[1], out, strided);
      out << ')';
      return;
    case NodeKind::kDiv:
      out << "gmr_pdiv(";
      EmitNode(*node.children()[0], out, strided);
      out << ", ";
      EmitNode(*node.children()[1], out, strided);
      out << ')';
      return;
    case NodeKind::kMin:
    case NodeKind::kMax:
      out << (node.kind() == NodeKind::kMin ? "gmr_min(" : "gmr_max(");
      EmitNode(*node.children()[0], out, strided);
      out << ", ";
      EmitNode(*node.children()[1], out, strided);
      out << ')';
      return;
    case NodeKind::kNeg:
      // The space keeps "-" from fusing with a negative constant literal
      // into the C decrement operator ("--1" does not compile).
      out << "(- ";
      EmitNode(*node.children()[0], out, strided);
      out << ')';
      return;
    case NodeKind::kLog:
      out << "gmr_plog(";
      EmitNode(*node.children()[0], out, strided);
      out << ')';
      return;
    case NodeKind::kExp:
      out << "gmr_pexp(";
      EmitNode(*node.children()[0], out, strided);
      out << ')';
      return;
  }
}

/// RAII owner of the process-wide scratch directory. Constructed lazily by
/// JitScratchDir(); the destructor (static-object teardown at exit) removes
/// whatever is left — normally nothing, since sources and shared objects
/// are unlinked eagerly, but a compile killed mid-flight can strand files.
///
/// Signal tolerance: SIGKILL (the checkpoint crash drill, a preempted
/// batch job) never runs the destructor, so the directory name embeds the
/// owning PID (`gmr_jit_p<pid>_XXXXXX`) and construction first sweeps any
/// sibling whose owner is no longer alive (kill(pid, 0) => ESRCH). A
/// killed run's scratch is thus reclaimed by the next run — typically the
/// resume of the very same job — instead of accreting in TMPDIR.
class ScratchDirOwner {
 public:
  ScratchDirOwner() {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string base = tmpdir != nullptr ? tmpdir : "/tmp";
    SweepStaleScratchDirs(base);
    std::string pattern =
        base + "/gmr_jit_p" + std::to_string(getpid()) + "_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    if (mkdtemp(buffer.data()) != nullptr) {
      path_.assign(buffer.data());
    }
  }

  ~ScratchDirOwner() {
    if (path_.empty()) return;
    std::error_code ec;  // best effort; never throw during teardown
    std::filesystem::remove_all(path_, ec);
  }

  const std::string& path() const { return path_; }

 private:
  /// Removes `gmr_jit_p<pid>_*` directories whose owning process is gone.
  /// Best effort throughout: TMPDIR races and permission errors are
  /// ignored, and a live (or undeterminable) owner is left alone.
  static void SweepStaleScratchDirs(const std::string& base) {
    std::error_code ec;
    std::filesystem::directory_iterator it(base, ec);
    if (ec) return;
    for (const auto& entry : it) {
      const std::string name = entry.path().filename().string();
      constexpr char kPrefix[] = "gmr_jit_p";
      constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
      if (name.compare(0, kPrefixLen, kPrefix) != 0) continue;
      char* end = nullptr;
      const long pid = std::strtol(name.c_str() + kPrefixLen, &end, 10);
      if (end == name.c_str() + kPrefixLen || *end != '_' || pid <= 0) {
        continue;
      }
      if (pid == static_cast<long>(getpid())) continue;
      if (kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH) {
        std::filesystem::remove_all(entry.path(), ec);
      }
    }
  }

  std::string path_;
};

}  // namespace

/// The compiler command, probed once. Empty when none works.
const std::string& JitCompilerCommand() {
  static const std::string* const command = [] {
    for (const char* candidate : {"cc", "gcc", "clang"}) {
      const std::string probe =
          std::string(candidate) + " --version > /dev/null 2>&1";
      if (std::system(probe.c_str()) == 0) {
        return new std::string(candidate);
      }
    }
    return new std::string();
  }();
  return *command;
}

const std::string& JitScratchDir() {
  static ScratchDirOwner owner;
  return owner.path();
}

std::string JitScratchStem() {
  static std::atomic<int> counter{0};
  const std::string& dir = JitScratchDir();
  std::ostringstream stem;
  if (dir.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    stem << (tmpdir != nullptr ? tmpdir : "/tmp") << "/gmr_jit_" << getpid();
  } else {
    stem << dir << "/m";
  }
  stem << '_' << counter.fetch_add(1);
  return stem.str();
}

std::string GenerateCSource(const Expr& root) {
  std::ostringstream out;
  out << kPreamble;
  out << "double gmr_eval(const double* v, const double* p) {\n  return ";
  EmitNode(root, out, /*strided=*/false);
  out << ";\n}\n";
  return out.str();
}

const char* JitKernelPreamble() { return kPreamble; }

std::string RenderCExpression(const Expr& root) {
  std::ostringstream out;
  EmitNode(root, out, /*strided=*/false);
  return out.str();
}

std::string RenderCExpressionStrided(const Expr& root) {
  std::ostringstream out;
  EmitNode(root, out, /*strided=*/true);
  return out.str();
}

bool JitAvailable() { return !JitCompilerCommand().empty(); }

void JitCircuitBreaker::RecordFailure(const std::string& reason) {
  const int failures =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures < threshold_) return;
  // exchange() makes exactly one caller the opener, so the disable line is
  // logged once even when lanes race past the threshold together.
  if (!open_.exchange(true, std::memory_order_acq_rel)) {
    disable_logs_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[gmr] JIT disabled for the rest of this run after %d "
                 "consecutive compile failures (last: %s); falling back to "
                 "the bytecode VM\n",
                 failures, reason.c_str());
  }
}

JitCircuitBreaker* JitCircuitBreaker::Default() {
  static JitCircuitBreaker* const breaker = new JitCircuitBreaker();
  return breaker;
}

std::unique_ptr<JitProgram> JitProgram::Compile(const Expr& root,
                                                std::string* error) {
  if (FaultInjected(FaultPoint::kJitCompile)) {
    if (error != nullptr) *error = "fault injection: jit_compile";
    return nullptr;
  }
  if (!JitAvailable()) {
    if (error != nullptr) *error = "no C compiler found on this system";
    return nullptr;
  }
  const std::string stem = JitScratchStem();
  const std::string source_path = stem + ".c";
  const std::string library_path = stem + ".so";

  std::unique_ptr<JitProgram> program(new JitProgram());
  program->source_ = GenerateCSource(root);
  {
    std::ofstream out(source_path);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + source_path;
      return nullptr;
    }
    out << program->source_;
  }

  const std::string command = JitCompilerCommand() +
                              " -O2 -shared -fPIC -o " + library_path + " " +
                              source_path + " -lm > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  std::remove(source_path.c_str());
  if (status != 0) {
    if (error != nullptr) *error = "compiler failed: " + command;
    return nullptr;
  }

  program->handle_ = dlopen(library_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (program->handle_ == nullptr) {
    if (error != nullptr) *error = std::string("dlopen: ") + dlerror();
    std::remove(library_path.c_str());
    return nullptr;
  }
  program->fn_ = reinterpret_cast<Fn>(dlsym(program->handle_, "gmr_eval"));
  if (program->fn_ == nullptr) {
    if (error != nullptr) *error = "dlsym failed for gmr_eval";
    dlclose(program->handle_);
    std::remove(library_path.c_str());
    return nullptr;
  }
  // Unlink eagerly: the mapping stays valid until dlclose, and no .so is
  // ever stranded by a circuit-breaker trip or an aborted run.
  std::remove(library_path.c_str());
  program->library_path_ = library_path;
  return program;
}

JitProgram::~JitProgram() {
  if (handle_ != nullptr) dlclose(handle_);
}

}  // namespace gmr::expr
