#include "expr/simplify.h"

#include <cmath>

#include "common/check.h"
#include "expr/eval.h"

namespace gmr::expr {
namespace {

bool IsConst(const ExprPtr& e, double v) {
  return e->kind() == NodeKind::kConstant && e->value() == v;
}

bool IsAnyConst(const ExprPtr& e) {
  return e->kind() == NodeKind::kConstant;
}

bool Commutative(NodeKind kind) {
  return kind == NodeKind::kAdd || kind == NodeKind::kMul ||
         kind == NodeKind::kMin || kind == NodeKind::kMax;
}

/// Conservative syntactic finiteness: true only when the subtree provably
/// evaluates to a finite real for every finite, in-range input. Leaves are
/// finite (parameters are pre-checked finite by the evaluator; states are
/// clamped); exp is clamped and log is protected, so both preserve
/// finiteness; +,-,*,/ can overflow to inf even on finite inputs, so they
/// conservatively return false. This guards the value-based rewrites below:
/// x - x == 0, 0 * x == 0, and protected x / x == 1 all fail when x is
/// +/-inf (NaN, NaN, and NaN respectively).
bool ProvablyFinite(const Expr& e) {
  switch (e.kind()) {
    case NodeKind::kConstant:
      return std::isfinite(e.value());
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      return true;
    case NodeKind::kNeg:
    case NodeKind::kMin:
    case NodeKind::kMax:
    case NodeKind::kLog:
    case NodeKind::kExp: {
      for (const auto& child : e.children()) {
        if (!ProvablyFinite(*child)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

/// Total order on trees for canonicalizing commutative operands: by kind,
/// then slot/value, then recursively by children. Returns <0, 0, >0.
int CompareTrees(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case NodeKind::kConstant:
      if (a.value() < b.value()) return -1;
      if (a.value() > b.value()) return 1;
      return 0;
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      if (a.slot() < b.slot()) return -1;
      if (a.slot() > b.slot()) return 1;
      return 0;
    default:
      break;
  }
  for (std::size_t i = 0;
       i < a.children().size() && i < b.children().size(); ++i) {
    const int c = CompareTrees(*a.children()[i], *b.children()[i]);
    if (c != 0) return c;
  }
  if (a.children().size() < b.children().size()) return -1;
  if (a.children().size() > b.children().size()) return 1;
  return 0;
}

ExprPtr SimplifyNode(const ExprPtr& original, NodeKind kind,
                     std::vector<ExprPtr> kids) {
  // Constant folding with the shared protected kernels.
  if (kids.size() == 1 && IsAnyConst(kids[0])) {
    return Constant(ApplyUnary(kind, kids[0]->value()));
  }
  if (kids.size() == 2 && IsAnyConst(kids[0]) && IsAnyConst(kids[1])) {
    return Constant(ApplyBinary(kind, kids[0]->value(), kids[1]->value()));
  }

  switch (kind) {
    case NodeKind::kAdd:
      if (IsConst(kids[0], 0.0)) return kids[1];
      if (IsConst(kids[1], 0.0)) return kids[0];
      break;
    case NodeKind::kSub:
      if (IsConst(kids[1], 0.0)) return kids[0];
      // x - x == 0 only when x is provably finite (inf - inf is NaN).
      if (StructurallyEqual(*kids[0], *kids[1]) && ProvablyFinite(*kids[0])) {
        return Constant(0.0);
      }
      break;
    case NodeKind::kMul:
      if (IsConst(kids[0], 1.0)) return kids[1];
      if (IsConst(kids[1], 1.0)) return kids[0];
      // 0 * x == 0 only when x is provably finite (0 * inf is NaN).
      if (IsConst(kids[0], 0.0) && ProvablyFinite(*kids[1])) {
        return Constant(0.0);
      }
      if (IsConst(kids[1], 0.0) && ProvablyFinite(*kids[0])) {
        return Constant(0.0);
      }
      break;
    case NodeKind::kDiv:
      if (IsConst(kids[1], 1.0)) return kids[0];
      // Protected division returns 1 when the denominator vanishes, so
      // x/x == 1 holds for every *finite* x (including inside the
      // protection band) — but inf / inf is NaN, so the rewrite needs the
      // finiteness guard.
      if (StructurallyEqual(*kids[0], *kids[1]) && ProvablyFinite(*kids[0])) {
        return Constant(1.0);
      }
      break;
    case NodeKind::kMin:
    case NodeKind::kMax:
      if (StructurallyEqual(*kids[0], *kids[1])) return kids[0];
      break;
    case NodeKind::kNeg:
      if (kids[0]->kind() == NodeKind::kNeg) return kids[0]->children()[0];
      break;
    default:
      break;
  }

  // Canonical operand order for commutative operators.
  if (kids.size() == 2 && Commutative(kind) &&
      CompareTrees(*kids[0], *kids[1]) > 0) {
    std::swap(kids[0], kids[1]);
  }

  // Reuse the original node when nothing changed (keeps sharing intact).
  if (original != nullptr && original->kind() == kind &&
      original->children().size() == kids.size()) {
    bool same = true;
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (original->children()[i] != kids[i]) {
        same = false;
        break;
      }
    }
    if (same) return original;
  }

  if (kids.size() == 1) return MakeUnary(kind, std::move(kids[0]));
  return MakeBinary(kind, std::move(kids[0]), std::move(kids[1]));
}

}  // namespace

ExprPtr Simplify(const ExprPtr& root) {
  GMR_CHECK(root != nullptr);
  if (root->IsLeaf()) return root;
  std::vector<ExprPtr> kids;
  kids.reserve(root->children().size());
  for (const auto& child : root->children()) kids.push_back(Simplify(child));
  return SimplifyNode(root, root->kind(), std::move(kids));
}

}  // namespace gmr::expr
