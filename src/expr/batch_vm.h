#ifndef GMR_EXPR_BATCH_VM_H_
#define GMR_EXPR_BATCH_VM_H_

#include <cstddef>
#include <vector>

#include "expr/ast.h"
#include "expr/compile.h"

namespace gmr::expr {

/// Structure-of-arrays evaluation environment for the stride-N backends:
/// lane `l` of slot `s` lives at index `s * width + l`, so one compiled
/// equation evaluates a whole lane block per call. Width 1 degenerates to
/// the scalar EvalContext layout (SoA == AoS at stride 1), which is what
/// lets the scalar rollout paths reuse the batch kernels unchanged.
struct BatchEvalContext {
  /// variables[slot * width + lane].
  const double* variables = nullptr;
  std::size_t num_variables = 0;
  /// parameters[slot * width + lane] — lanes may carry distinct parameter
  /// vectors (the calibration/ensemble workloads batch over them).
  const double* parameters = nullptr;
  std::size_t num_parameters = 0;
  /// Number of lanes evaluated per call.
  std::size_t width = 1;
};

/// Stride-N dispatch loop over the shared expression tape (compile.h).
///
/// Each instruction executes as a tight lane loop over `width` independent
/// doubles — no per-lane branching, no cross-lane dependency — which is the
/// shape the autovectorizer can chew on. Per lane, the operation order and
/// the scalar kernels (ApplyUnary/ApplyBinary) are exactly those of
/// CompiledProgram::Run, so lane `l` of RunLanes is bit-identical to a
/// scalar Run over lane l's slots for EVERY width: width 1 ≡ width 16
/// bitwise (the `batch_width` fuzz property pins this).
class BatchProgram {
 public:
  /// Evaluates all lanes; writes out[lane] for lane in [0, ctx.width).
  /// A lane whose inputs already diverged simply produces a non-finite or
  /// wild value — divergence isolation (masking a lane out of further
  /// integration without aborting its neighbors) is the rollout's job, not
  /// the VM's: lanes cannot contaminate each other by construction.
  void RunLanes(const BatchEvalContext& ctx, double* out) const;

  std::size_t size() const { return tape_.size(); }
  bool empty() const { return tape_.empty(); }

 private:
  friend BatchProgram CompileBatch(const Expr& root);

  Tape tape_;
  // Lane-strided operand stack: stack_[depth * width + lane], grown to the
  // widest call seen. Mutable scratch, so a BatchProgram is not safe to
  // RunLanes() from two threads concurrently (clone it instead) — the same
  // contract as CompiledProgram.
  mutable std::vector<double> stack_;
};

/// Flattens `root` into a BatchProgram (same postorder tape as Compile).
BatchProgram CompileBatch(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_BATCH_VM_H_
