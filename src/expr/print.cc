#include "expr/print.h"

#include <cstdio>
#include <cstdlib>

namespace gmr::expr {
namespace {

std::string FormatNumber(double v) {
  // Shortest representation that round-trips exactly, so printed models can
  // be re-parsed without losing calibrated constants.
  char buf[64];
  for (int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string LeafName(const Expr& node) {
  if (!node.name().empty()) return node.name();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c%d",
                node.kind() == NodeKind::kParameter ? 'p' : 'v', node.slot());
  return buf;
}

/// Binding strength used to decide when parentheses are needed.
int Precedence(NodeKind kind) {
  switch (kind) {
    case NodeKind::kAdd:
    case NodeKind::kSub:
      return 1;
    case NodeKind::kMul:
    case NodeKind::kDiv:
      return 2;
    case NodeKind::kNeg:
      return 3;
    default:
      return 4;  // Leaves and function-call syntax never need parens.
  }
}

void Render(const Expr& node, int parent_precedence, std::string* out) {
  switch (node.kind()) {
    case NodeKind::kConstant:
      *out += FormatNumber(node.value());
      return;
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      *out += LeafName(node);
      return;
    case NodeKind::kNeg:
      *out += "-";
      Render(*node.children()[0], Precedence(NodeKind::kNeg), out);
      return;
    case NodeKind::kLog:
    case NodeKind::kExp:
    case NodeKind::kMin:
    case NodeKind::kMax: {
      *out += KindName(node.kind());
      *out += '(';
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        if (i > 0) *out += ", ";
        Render(*node.children()[i], 0, out);
      }
      *out += ')';
      return;
    }
    default: {
      const int prec = Precedence(node.kind());
      const bool parens = prec < parent_precedence;
      if (parens) *out += '(';
      Render(*node.children()[0], prec, out);
      *out += ' ';
      *out += KindName(node.kind());
      *out += ' ';
      // The right operand is always parenthesized at equal precedence so
      // the printed text re-parses with the exact same tree grouping
      // (floating-point evaluation is association-sensitive).
      Render(*node.children()[1], prec + 1, out);
      if (parens) *out += ')';
      return;
    }
  }
}

}  // namespace

std::string ToString(const Expr& root) {
  std::string out;
  Render(root, 0, &out);
  return out;
}

std::string ToSExpression(const Expr& root) {
  switch (root.kind()) {
    case NodeKind::kConstant:
      return FormatNumber(root.value());
    case NodeKind::kParameter:
    case NodeKind::kVariable:
      return LeafName(root);
    default: {
      std::string out = "(";
      out += KindName(root.kind());
      for (const auto& child : root.children()) {
        out += ' ';
        out += ToSExpression(*child);
      }
      out += ')';
      return out;
    }
  }
}

}  // namespace gmr::expr
