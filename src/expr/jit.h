#ifndef GMR_EXPR_JIT_H_
#define GMR_EXPR_JIT_H_

#include <memory>
#include <string>

#include "expr/ast.h"
#include "expr/eval.h"

namespace gmr::expr {

/// True runtime compilation — the paper's actual mechanism: "a program
/// encoded in the tree is converted into the corresponding source code,
/// compiled at runtime, and dynamically loaded" (Section III-D), relying on
/// "the G++ compiler suite" (Extensibility section).
///
/// JitProgram emits C source for the expression (with the same protected
/// operator semantics as eval.h), invokes the system C compiler to build a
/// shared object in a temporary directory, and dlopen()s it. Compilation
/// costs ~100 ms per expression, so this backend pays off only when an
/// expression is evaluated many thousands of times (long series, many
/// runs); the in-process bytecode backend (compile.h) is the default RC
/// implementation inside the GP loop. See DESIGN.md §4.
class JitProgram {
 public:
  /// Compiles `root`. Returns nullptr (with a diagnostic in *error) when no
  /// compiler is available or compilation fails.
  static std::unique_ptr<JitProgram> Compile(const Expr& root,
                                             std::string* error);

  ~JitProgram();

  JitProgram(const JitProgram&) = delete;
  JitProgram& operator=(const JitProgram&) = delete;

  /// Evaluates the compiled function; bit-compatible with EvalExpr except
  /// where the C compiler re-associates floating point (it is invoked
  /// without -ffast-math, so results match exactly in practice).
  double Run(const EvalContext& ctx) const {
    return fn_(ctx.variables, ctx.parameters);
  }

  /// The generated C source (for inspection/testing).
  const std::string& source() const { return source_; }

 private:
  JitProgram() = default;

  using Fn = double (*)(const double*, const double*);
  Fn fn_ = nullptr;
  void* handle_ = nullptr;
  std::string library_path_;
  std::string source_;
};

/// True when a working C compiler was found on this system (checked once).
bool JitAvailable();

/// Generates the C source for `root` without compiling (exposed for tests).
std::string GenerateCSource(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_JIT_H_
