#ifndef GMR_EXPR_JIT_H_
#define GMR_EXPR_JIT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "expr/ast.h"
#include "expr/eval.h"

namespace gmr::expr {

/// True runtime compilation — the paper's actual mechanism: "a program
/// encoded in the tree is converted into the corresponding source code,
/// compiled at runtime, and dynamically loaded" (Section III-D), relying on
/// "the G++ compiler suite" (Extensibility section).
///
/// JitProgram emits C source for the expression (with the same protected
/// operator semantics as eval.h), invokes the system C compiler to build a
/// shared object in a temporary directory, and dlopen()s it. Compilation
/// costs ~100 ms per expression, so this backend pays off only when an
/// expression is evaluated many thousands of times (long series, many
/// runs); the in-process bytecode backend (compile.h) is the default RC
/// implementation inside the GP loop. See DESIGN.md §4.
class JitProgram {
 public:
  /// Compiles `root`. Returns nullptr (with a diagnostic in *error) when no
  /// compiler is available or compilation fails.
  static std::unique_ptr<JitProgram> Compile(const Expr& root,
                                             std::string* error);

  ~JitProgram();

  JitProgram(const JitProgram&) = delete;
  JitProgram& operator=(const JitProgram&) = delete;

  /// Evaluates the compiled function; bit-compatible with EvalExpr except
  /// where the C compiler re-associates floating point (it is invoked
  /// without -ffast-math, so results match exactly in practice).
  double Run(const EvalContext& ctx) const {
    return fn_(ctx.variables, ctx.parameters);
  }

  /// The generated C source (for inspection/testing).
  const std::string& source() const { return source_; }

 private:
  JitProgram() = default;

  using Fn = double (*)(const double*, const double*);
  Fn fn_ = nullptr;
  void* handle_ = nullptr;
  std::string library_path_;
  std::string source_;
};

/// True when a working C compiler was found on this system (checked once).
bool JitAvailable();

/// The probed compiler command ("cc", "gcc", or "clang"); empty when none
/// works. Shared by the per-model JIT and the generation batch JIT.
const std::string& JitCompilerCommand();

/// One mkdtemp()-created scratch directory per process, shared by every
/// JIT compilation (per-model and batch): sources and shared objects are
/// unlinked eagerly (the .so right after dlopen), and the directory itself
/// is removed by RAII at process exit — so circuit-breaker trips and
/// aborted runs no longer strand gmr_jit_* temp files in TMPDIR.
/// The directory name embeds the owning PID (gmr_jit_p<pid>_XXXXXX);
/// creation first sweeps siblings whose owner is dead, so a SIGKILLed run
/// (which never reaches the RAII teardown) is cleaned up by the next
/// process to JIT — typically its own resume.
/// Returns the directory path; empty when no scratch dir could be created
/// (callers fall back to bare TMPDIR stems).
const std::string& JitScratchDir();

/// A fresh unique file stem inside JitScratchDir() (or TMPDIR when the
/// scratch dir is unavailable).
std::string JitScratchStem();

/// Circuit breaker guarding JIT compilation: after `threshold` consecutive
/// compile failures the breaker opens and JIT stays disabled for the rest
/// of the run (evaluation degrades to the bytecode VM, which is
/// bit-compatible). Opening is logged to stderr exactly once.
///
/// Thread-safe: evaluator lanes share one breaker per run. A success
/// resets the consecutive-failure count, so sporadic failures (a full
/// TMPDIR clearing up, a transient fork failure) never open the breaker.
class JitCircuitBreaker {
 public:
  static constexpr int kDefaultThreshold = 3;

  explicit JitCircuitBreaker(int threshold = kDefaultThreshold)
      : threshold_(threshold > 0 ? threshold : 1) {}

  /// True while JIT compilation should still be attempted.
  bool allowed() const { return !open_.load(std::memory_order_acquire); }

  /// True once the breaker tripped (JIT disabled for the rest of the run).
  bool open() const { return open_.load(std::memory_order_acquire); }

  void RecordSuccess() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
  }

  /// Records one compile failure; trips the breaker at the threshold.
  /// `reason` is included in the single disable log line.
  void RecordFailure(const std::string& reason);

  int consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

  /// Number of disable log lines emitted (0 or 1; exposed for tests).
  int disable_log_count() const {
    return disable_logs_.load(std::memory_order_relaxed);
  }

  /// Re-closes the breaker (tests only; a run never resets itself).
  void Reset() {
    open_.store(false, std::memory_order_release);
    consecutive_failures_.store(0, std::memory_order_relaxed);
    disable_logs_.store(0, std::memory_order_relaxed);
  }

  /// Process-wide default breaker, shared by runs that do not supply
  /// their own.
  static JitCircuitBreaker* Default();

 private:
  const int threshold_;
  std::atomic<bool> open_{false};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<int> disable_logs_{0};
};

/// Generates the C source for `root` without compiling (exposed for tests).
std::string GenerateCSource(const Expr& root);

/// The shared protected-operator kernel preamble (one copy per translation
/// unit; the generation batch JIT prepends it to its multi-symbol TUs).
const char* JitKernelPreamble();

/// Renders `root` as a C expression over `v`/`p` (the body GenerateCSource
/// wraps in gmr_eval), for callers that compose their own translation unit.
std::string RenderCExpression(const Expr& root);

/// Same, but leaves index with the SoA stride of the batch calling
/// convention: slot s of lane i reads `v[s*w+i]` / `p[s*w+i]` (the
/// generation batch JIT wraps this body in a `for (i = 0; i < w; ++i)`
/// lane loop).
std::string RenderCExpressionStrided(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_JIT_H_
