#include "expr/batch_jit.h"

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"

namespace gmr::expr {

std::string BatchSymbolName(std::uint64_t structure_hash) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "gmr_b_%016llx",
                static_cast<unsigned long long>(structure_hash));
  return buffer;
}

std::string GenerateBatchCSource(
    const std::vector<std::pair<std::uint64_t, const Expr*>>& entries) {
  std::ostringstream out;
  out << JitKernelPreamble();
  for (const auto& [hash, root] : entries) {
    // One exported symbol per unique structure. The lane loop is the
    // elementwise shape the autovectorizer targets; per lane the emitted
    // expression is exactly the scalar GenerateCSource body, so a symbol
    // called at width 1 computes the same operation sequence as the
    // per-model JIT (modulo contraction, which -ffp-contract=off pins).
    out << "void " << BatchSymbolName(hash)
        << "(const double* v, const double* p, double* out, long w) {\n"
        << "  long i;\n  for (i = 0; i < w; ++i) {\n    out[i] = "
        << RenderCExpressionStrided(*root) << ";\n  }\n}\n";
  }
  return out.str();
}

BatchJitSession::BatchJitSession(JitCircuitBreaker* breaker)
    : breaker_(breaker != nullptr ? breaker : JitCircuitBreaker::Default()) {}

BatchJitSession::~BatchJitSession() {
  for (void* handle : handles_) dlclose(handle);
}

BatchJitSession::BatchFn BatchJitSession::Lookup(
    std::uint64_t structure_hash) const {
  BatchFn fn = nullptr;
  if (!cache_.Lookup(structure_hash, &fn)) return nullptr;
  return fn;
}

std::vector<BatchJitSession::BatchFn> BatchJitSession::CompileBatch(
    const std::vector<const Expr*>& roots) {
  std::lock_guard<std::mutex> lock(compile_mu_);
  std::vector<BatchFn> result(roots.size(), nullptr);
  requests_.fetch_add(roots.size(), std::memory_order_relaxed);

  // Resolve cache hits and collect the unique misses in first-seen order
  // (deterministic TU content for a deterministic population order).
  std::vector<std::pair<std::uint64_t, const Expr*>> misses;
  std::unordered_map<std::uint64_t, std::size_t> miss_index;
  std::vector<std::uint64_t> hashes(roots.size(), 0);
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    hashes[i] = roots[i]->StructuralHash();
    if ((result[i] = Lookup(hashes[i])) != nullptr) {
      ++hits;
      continue;
    }
    if (miss_index.emplace(hashes[i], misses.size()).second) {
      misses.emplace_back(hashes[i], roots[i]);
    }
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  unique_misses_.fetch_add(misses.size(), std::memory_order_relaxed);
  if (misses.empty()) return result;

  const auto fail = [this](const std::string& reason) {
    compile_failures_.fetch_add(1, std::memory_order_relaxed);
    breaker_->RecordFailure(reason);
  };
  if (FaultInjected(FaultPoint::kBatchCompile)) {
    fail("fault injection: batch_compile");
    return result;
  }
  if (!breaker_->allowed()) return result;
  if (!JitAvailable()) {
    fail("no C compiler found on this system");
    return result;
  }

  last_source_ = GenerateBatchCSource(misses);
  const std::string stem = JitScratchStem();
  const std::string source_path = stem + ".c";
  const std::string library_path = stem + ".so";
  {
    std::ofstream out(source_path);
    if (!out) {
      fail("cannot write " + source_path);
      return result;
    }
    out << last_source_;
  }

  // One compiler invocation for the whole generation. -O2 with explicit
  // tree vectorization: the lane loops are elementwise, so vectorizing
  // them preserves each lane's IEEE result; -ffp-contract=off keeps the
  // vector body and the scalar epilogue emitting the same operations, so
  // results are bit-identical across batch widths.
  const std::string command =
      JitCompilerCommand() +
      " -O2 -ftree-vectorize -ffp-contract=off -shared -fPIC -o " +
      library_path + " " + source_path + " -lm > /dev/null 2>&1";
  tu_compiles_.fetch_add(1, std::memory_order_relaxed);
  const int status = std::system(command.c_str());
  std::remove(source_path.c_str());
  if (status != 0) {
    fail("batch compiler failed: " + command);
    return result;
  }

  void* handle = dlopen(library_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  // Unlink eagerly (the mapping stays valid until dlclose): no .so is ever
  // stranded, even when a later dlsym fails or the run aborts.
  std::remove(library_path.c_str());
  if (handle == nullptr) {
    fail(std::string("dlopen: ") + dlerror());
    return result;
  }
  handles_.push_back(handle);

  bool all_resolved = true;
  for (const auto& [hash, root] : misses) {
    (void)root;
    const std::string symbol = BatchSymbolName(hash);
    auto fn = reinterpret_cast<BatchFn>(dlsym(handle, symbol.c_str()));
    if (fn == nullptr) {
      all_resolved = false;
      continue;
    }
    cache_.Insert(hash, fn);
    symbols_compiled_.fetch_add(1, std::memory_order_relaxed);
  }
  if (all_resolved) {
    breaker_->RecordSuccess();
  } else {
    fail("dlsym failed for a batch symbol");
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (result[i] == nullptr) result[i] = Lookup(hashes[i]);
  }
  return result;
}

BatchJitSession::Stats BatchJitSession::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.unique_misses = unique_misses_.load(std::memory_order_relaxed);
  s.tu_compiles = tu_compiles_.load(std::memory_order_relaxed);
  s.symbols_compiled = symbols_compiled_.load(std::memory_order_relaxed);
  s.compile_failures = compile_failures_.load(std::memory_order_relaxed);
  return s;
}

BatchJitSession* BatchJitSession::Default() {
  static BatchJitSession* const session = new BatchJitSession();
  return session;
}

}  // namespace gmr::expr
