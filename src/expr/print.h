#ifndef GMR_EXPR_PRINT_H_
#define GMR_EXPR_PRINT_H_

#include <string>

#include "expr/ast.h"

namespace gmr::expr {

/// Renders the expression as infix text with minimal parentheses, e.g.
/// "M_NO3 * (K_NIT - 1.5)". Parameters and variables print the names their
/// leaves carry (assigned by the constituent registry's symbol table);
/// unnamed slots print as p<slot> / v<slot>.
std::string ToString(const Expr& root);

/// Renders the expression as an S-expression, e.g. "(* M_NO3 (- K_NIT
/// 1.5))". Useful for unambiguous golden tests.
std::string ToSExpression(const Expr& root);

}  // namespace gmr::expr

#endif  // GMR_EXPR_PRINT_H_
