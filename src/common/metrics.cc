#include "common/metrics.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace gmr {
namespace {

/// Maps an IEEE-754 bit pattern onto a line where integer order matches
/// numeric order (negative values are reflected around the sign bit).
std::uint64_t OrderedBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;
  return (bits & kSignBit) != 0 ? kSignBit - (bits & ~kSignBit)
                                : kSignBit + bits;
}

}  // namespace

std::uint64_t UlpDistance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t ua = OrderedBits(a);
  const std::uint64_t ub = OrderedBits(b);
  return ua >= ub ? ua - ub : ub - ua;
}

bool WithinUlps(double a, double b, std::uint64_t max_ulps) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (a == b) return true;  // Equal infinities, +0 vs -0.
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return UlpDistance(a, b) <= max_ulps;
}

double Mse(const std::vector<double>& predicted,
           const std::vector<double>& observed) {
  GMR_CHECK_EQ(predicted.size(), observed.size());
  GMR_CHECK_GT(predicted.size(), 0u);
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - observed[i];
    sum += d * d;
  }
  return sum / static_cast<double>(predicted.size());
}

double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& observed) {
  return std::sqrt(Mse(predicted, observed));
}

double Mae(const std::vector<double>& predicted,
           const std::vector<double>& observed) {
  GMR_CHECK_EQ(predicted.size(), observed.size());
  GMR_CHECK_GT(predicted.size(), 0u);
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum += std::fabs(predicted[i] - observed[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double GaussianLogLikelihood(const std::vector<double>& predicted,
                             const std::vector<double>& observed) {
  const double n = static_cast<double>(predicted.size());
  double sigma2 = Mse(predicted, observed);
  if (sigma2 <= 0.0) sigma2 = 1e-300;  // Degenerate perfect fit.
  return -0.5 * n * (std::log(2.0 * M_PI * sigma2) + 1.0);
}

double Aic(double log_likelihood, std::size_t num_parameters) {
  return 2.0 * static_cast<double>(num_parameters) - 2.0 * log_likelihood;
}

double NashSutcliffe(const std::vector<double>& predicted,
                     const std::vector<double>& observed) {
  GMR_CHECK_EQ(predicted.size(), observed.size());
  GMR_CHECK_GT(predicted.size(), 0u);
  double mean = 0.0;
  for (double y : observed) mean += y;
  mean /= static_cast<double>(observed.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = predicted[i] - observed[i];
    const double d = observed[i] - mean;
    num += e * e;
    den += d * d;
  }
  if (den == 0.0) return num == 0.0 ? 1.0 : -1e300;
  return 1.0 - num / den;
}

}  // namespace gmr
