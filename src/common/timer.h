#ifndef GMR_COMMON_TIMER_H_
#define GMR_COMMON_TIMER_H_

#include <chrono>

namespace gmr {

/// Wall-clock stopwatch used by the speedup benchmarks (paper Section IV-F).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gmr

#endif  // GMR_COMMON_TIMER_H_
