#include "common/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace gmr {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < column_names.size(); ++i) {
    if (column_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> CsvTable::Column(const std::string& name) const {
  const int idx = ColumnIndex(name);
  GMR_CHECK_MSG(idx >= 0, name.c_str());
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[static_cast<size_t>(idx)]);
  return out;
}

bool WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t i = 0; i < table.column_names.size(); ++i) {
    if (i > 0) out << ',';
    out << table.column_names[i];
  }
  out << '\n';
  out.precision(12);
  for (const auto& row : table.rows) {
    GMR_CHECK_EQ(row.size(), table.column_names.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

namespace {

/// Sets *error (when non-null) to "<path>:<line>: <what>" so a malformed
/// cell can be located in the file without a debugger.
bool Fail(const std::string& path, std::size_t line_number,
          const std::string& what, std::string* error) {
  if (error != nullptr) {
    *error = path + ":" + std::to_string(line_number) + ": " + what;
  }
  return false;
}

/// Strips a trailing '\r' (CRLF files) plus trailing spaces/tabs.
void TrimTrailing(std::string* text) {
  while (!text->empty()) {
    const char c = text->back();
    if (c != '\r' && c != ' ' && c != '\t') break;
    text->pop_back();
  }
}

}  // namespace

bool ReadCsv(const std::string& path, CsvTable* table, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return false;
  }
  table->column_names.clear();
  table->rows.clear();

  std::string line;
  std::size_t line_number = 1;
  if (!std::getline(in, line)) {
    return Fail(path, line_number, "empty file (missing header row)", error);
  }
  TrimTrailing(&line);
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) table->column_names.push_back(cell);
  }
  if (table->column_names.empty()) {
    return Fail(path, line_number, "empty header row", error);
  }

  while (std::getline(in, line)) {
    ++line_number;
    TrimTrailing(&line);
    if (line.empty()) continue;
    std::vector<double> row;
    row.reserve(table->column_names.size());
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end != cell.c_str() + cell.size() || cell.empty()) {
        return Fail(path, line_number,
                    "field " + std::to_string(row.size() + 1) + " ('" + cell +
                        "'): not a number",
                    error);
      }
      row.push_back(v);
    }
    if (row.size() != table->column_names.size()) {
      return Fail(path, line_number,
                  "expected " + std::to_string(table->column_names.size()) +
                      " fields, got " + std::to_string(row.size()),
                  error);
    }
    table->rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace gmr
