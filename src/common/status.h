#ifndef GMR_COMMON_STATUS_H_
#define GMR_COMMON_STATUS_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// Structured evaluation outcomes and a lightweight status carrier.
///
/// The GP search spends most of its time evaluating deliberately wrong
/// candidate models, so "this candidate got a penalty fitness" is the normal
/// case, not the exceptional one. EvalOutcome records *why* a candidate's
/// fitness is what it is, so containment events (divergence watchdogs, JIT
/// fallback, task failures) are observable instead of silently folding into
/// a clamped RMSE. See DESIGN.md §4d (fault containment).

namespace gmr {

/// Why an evaluation produced the fitness it did. kOk and
/// kJitCompileFailed carry an exact fitness (the JIT failure degrades to
/// the bytecode VM, which is bit-compatible); every other value means the
/// fitness is a deterministic penalty, not the true model error.
enum class EvalOutcome : std::uint8_t {
  kOk = 0,                ///< Normal evaluation.
  kNonFiniteDerivative,   ///< Watchdog: NaN/Inf derivatives or states.
  kClampSaturated,        ///< Watchdog: state pinned at the clamp ceiling.
  kDomainViolation,       ///< Non-finite parameters / invalid inputs.
  kJitCompileFailed,      ///< cc+dlopen failed; fitness computed on the VM.
  kBudgetExceeded,        ///< Watchdog: per-candidate substep budget hit.
  kTaskFailed,            ///< The evaluation task threw; penalty assigned.
  kStaticReject,          ///< Static analysis proved the candidate doomed
                          ///< before any integration (see analysis/).
};

inline constexpr std::size_t kNumEvalOutcomes = 8;

inline const char* EvalOutcomeName(EvalOutcome outcome) {
  switch (outcome) {
    case EvalOutcome::kOk:
      return "ok";
    case EvalOutcome::kNonFiniteDerivative:
      return "non_finite_derivative";
    case EvalOutcome::kClampSaturated:
      return "clamp_saturated";
    case EvalOutcome::kDomainViolation:
      return "domain_violation";
    case EvalOutcome::kJitCompileFailed:
      return "jit_compile_failed";
    case EvalOutcome::kBudgetExceeded:
      return "budget_exceeded";
    case EvalOutcome::kTaskFailed:
      return "task_failed";
    case EvalOutcome::kStaticReject:
      return "static_reject";
  }
  return "unknown";
}

/// True when the outcome's fitness is a deterministic penalty rather than
/// the candidate's true (possibly clamped) model error.
inline bool IsPenalizedOutcome(EvalOutcome outcome) {
  return outcome != EvalOutcome::kOk &&
         outcome != EvalOutcome::kJitCompileFailed;
}

/// The fitness assigned to candidates whose evaluation could not produce a
/// model error at all (task threw, non-finite parameters). Large but finite
/// so selection can still order penalized candidates below everything real
/// without poisoning means with infinities.
inline constexpr double kPenaltyFitness = 1e30;

/// Minimal ok-or-message status for recoverable runtime failures (the
/// project reports these through return values, not exceptions — see
/// check.h). An empty message means success.
struct Status {
  std::string message;

  bool ok() const { return message.empty(); }

  static Status Ok() { return Status{}; }
  static Status Error(std::string message) { return Status{std::move(message)}; }
};

}  // namespace gmr

#endif  // GMR_COMMON_STATUS_H_
