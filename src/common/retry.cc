#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace gmr {

Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& attempt,
                        const RetrySleeper& sleeper) {
  const int attempts = std::max(options.max_attempts, 1);
  double backoff_ms = options.initial_backoff_ms;
  Status status;
  for (int i = 0; i < attempts; ++i) {
    status = attempt();
    if (status.ok()) return status;
    if (i + 1 == attempts) break;  // exhausted; skip the final sleep
    const double sleep_ms =
        std::min(std::max(backoff_ms, 0.0), options.max_backoff_ms);
    if (sleeper) {
      sleeper(sleep_ms);
    } else if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sleep_ms));
    }
    backoff_ms *= options.multiplier;
  }
  return status;
}

}  // namespace gmr
