#ifndef GMR_COMMON_CHECK_H_
#define GMR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Checked-assertion macros. The project does not use exceptions (see
/// DESIGN.md); programmer errors abort with a source location, and
/// recoverable runtime failures are reported through return values.

#define GMR_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GMR_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define GMR_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GMR_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Equality/relational variants that print both operands on failure.
#define GMR_CHECK_OP(op, a, b)                                              \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::fprintf(stderr,                                                  \
                   "GMR_CHECK failed at %s:%d: %s %s %s (%.17g vs %.17g)\n",\
                   __FILE__, __LINE__, #a, #op, #b,                         \
                   static_cast<double>(a), static_cast<double>(b));         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define GMR_CHECK_EQ(a, b) GMR_CHECK_OP(==, a, b)
#define GMR_CHECK_NE(a, b) GMR_CHECK_OP(!=, a, b)
#define GMR_CHECK_LT(a, b) GMR_CHECK_OP(<, a, b)
#define GMR_CHECK_LE(a, b) GMR_CHECK_OP(<=, a, b)
#define GMR_CHECK_GT(a, b) GMR_CHECK_OP(>, a, b)
#define GMR_CHECK_GE(a, b) GMR_CHECK_OP(>=, a, b)

#endif  // GMR_COMMON_CHECK_H_
