#ifndef GMR_COMMON_STRIPED_MAP_H_
#define GMR_COMMON_STRIPED_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace gmr {

/// A hash map sharded into N independently locked stripes, for concurrent
/// read-mostly workloads like the fitness tree cache: threads evaluating
/// different individuals contend only when their keys land on the same
/// stripe, so lock contention falls ~linearly with the stripe count.
///
/// Semantics are intentionally minimal (lookup / insert-if-absent / size /
/// clear): values are immutable once inserted, which is exactly the cache's
/// contract — a key is a pure function of the phenotype and parameters, so
/// two racing inserts of the same key carry equal values and first-wins is
/// indistinguishable from last-wins.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  explicit StripedMap(std::size_t num_stripes = 16)
      : num_stripes_(num_stripes == 0 ? 1 : num_stripes),
        stripes_(std::make_unique<Stripe[]>(num_stripes_)) {}

  /// Copies the found value into *value and returns true; false on miss.
  bool Lookup(const Key& key, Value* value) const {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) return false;
    *value = it->second;
    return true;
  }

  /// Inserts (key, value) unless the key is already present. Returns true
  /// when this call inserted.
  bool Insert(const Key& key, const Value& value) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.map.emplace(key, value).second;
  }

  /// Total entries across stripes. Consistent only when quiescent.
  std::size_t size() const {
    std::size_t total = 0;
    for (std::size_t s = 0; s < num_stripes_; ++s) {
      std::lock_guard<std::mutex> lock(stripes_[s].mu);
      total += stripes_[s].map.size();
    }
    return total;
  }

  void Clear() {
    for (std::size_t s = 0; s < num_stripes_; ++s) {
      std::lock_guard<std::mutex> lock(stripes_[s].mu);
      stripes_[s].map.clear();
    }
  }

  /// Visits every (key, value) pair, holding one stripe lock at a time.
  /// Iteration order is arbitrary (stripe order, then hash-map order) —
  /// callers needing a stable order (e.g. checkpoint serialization) must
  /// sort the collected pairs themselves. Only safe for snapshot/export
  /// use when no concurrent inserts are in flight.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t s = 0; s < num_stripes_; ++s) {
      std::lock_guard<std::mutex> lock(stripes_[s].mu);
      for (const auto& entry : stripes_[s].map) fn(entry.first, entry.second);
    }
  }

  std::size_t num_stripes() const { return num_stripes_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  Stripe& StripeFor(const Key& key) const {
    // Fibonacci-mix the hash before taking the stripe so that low-entropy
    // key distributions (e.g. sequential 64-bit cache keys) spread evenly.
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return stripes_[(h >> 32) % num_stripes_];
  }

  std::size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace gmr

#endif  // GMR_COMMON_STRIPED_MAP_H_
