#ifndef GMR_COMMON_MATRIX_H_
#define GMR_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

namespace gmr {

/// Minimal dense row-major matrix used by the ARIMAX least-squares fit and
/// the LSTM baseline. Not a general linear-algebra library: it provides only
/// the operations those baselines need (products, transpose, and a
/// regularized symmetric solve).
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  /// Direct access to the row-major backing store.
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Matrix product; requires this->cols() == rhs.rows().
  Matrix Multiply(const Matrix& rhs) const;

  /// Matrix-vector product; requires cols() == x.size().
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  Matrix Transpose() const;

  /// Elementwise sum; requires identical shapes.
  Matrix Add(const Matrix& rhs) const;

  /// Scales every element by s.
  Matrix Scale(double s) const;

  static Matrix Identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves (A + ridge*I) x = b for symmetric positive-definite A via Cholesky
/// decomposition. Returns false (and leaves x unspecified) if the matrix is
/// not positive definite even after regularization.
bool CholeskySolve(const Matrix& a, const std::vector<double>& b,
                   double ridge, std::vector<double>* x);

/// Ordinary least squares: minimizes ||X beta - y||^2 with a tiny ridge term
/// for numerical stability. Returns false on a singular system.
bool LeastSquares(const Matrix& x, const std::vector<double>& y,
                  std::vector<double>* beta);

}  // namespace gmr

#endif  // GMR_COMMON_MATRIX_H_
