#ifndef GMR_COMMON_RNG_H_
#define GMR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace gmr {

/// Complete serializable generator state: the four xoshiro256++ words plus
/// the Box-Muller pair cache. Restoring this mid-stream continues the exact
/// output sequence, including a pending cached Gaussian.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_gaussian = 0.0;
  bool has_cached_gaussian = false;
};

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic component in the library takes an `Rng&` so that runs are
/// reproducible from a single seed. The generator is cheap to copy, which
/// lets tests snapshot and replay random streams.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Returns a standard normal variate (Box-Muller, cached pair).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a normal variate truncated (by clamping) to [lo, hi], as used by
  /// the paper's Gaussian parameter mutation ("if the sampled value lies
  /// outside of the given range, the boundary value is used instead").
  double TruncatedGaussian(double mean, double stddev, double lo, double hi);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container.
  template <typename T>
  std::size_t PickIndex(const std::vector<T>& items) {
    return static_cast<std::size_t>(UniformInt(items.size()));
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Captures the full generator state for checkpointing.
  RngState SaveState() const;

  /// Restores a previously saved state; the next draws continue that
  /// stream exactly.
  void RestoreState(const RngState& state);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gmr

#endif  // GMR_COMMON_RNG_H_
