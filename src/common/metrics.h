#ifndef GMR_COMMON_METRICS_H_
#define GMR_COMMON_METRICS_H_

#include <cstddef>
#include <vector>

namespace gmr {

/// Forecast-accuracy metrics used throughout the paper's evaluation
/// (Section IV-C): RMSE (quadratic score) and MAE (linear score), plus the
/// information criteria used by the ARIMAX order search and MLE calibration.

/// Root mean square error between predictions and observations.
/// Requires equal, non-zero lengths.
double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& observed);

/// Mean absolute error between predictions and observations.
double Mae(const std::vector<double>& predicted,
           const std::vector<double>& observed);

/// Mean squared error.
double Mse(const std::vector<double>& predicted,
           const std::vector<double>& observed);

/// Gaussian log-likelihood of residuals with variance estimated from the
/// residuals themselves (concentrated likelihood).
double GaussianLogLikelihood(const std::vector<double>& predicted,
                             const std::vector<double>& observed);

/// Akaike information criterion: 2k - 2 log L.
double Aic(double log_likelihood, std::size_t num_parameters);

/// Nash-Sutcliffe model efficiency, a standard hydrology skill score
/// (1 = perfect, 0 = no better than the observed mean).
double NashSutcliffe(const std::vector<double>& predicted,
                     const std::vector<double>& observed);

}  // namespace gmr

#endif  // GMR_COMMON_METRICS_H_
