#ifndef GMR_COMMON_METRICS_H_
#define GMR_COMMON_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gmr {

/// Forecast-accuracy metrics used throughout the paper's evaluation
/// (Section IV-C): RMSE (quadratic score) and MAE (linear score), plus the
/// information criteria used by the ARIMAX order search and MLE calibration.

/// Root mean square error between predictions and observations.
/// Requires equal, non-zero lengths.
double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& observed);

/// Mean absolute error between predictions and observations.
double Mae(const std::vector<double>& predicted,
           const std::vector<double>& observed);

/// Mean squared error.
double Mse(const std::vector<double>& predicted,
           const std::vector<double>& observed);

/// Gaussian log-likelihood of residuals with variance estimated from the
/// residuals themselves (concentrated likelihood).
double GaussianLogLikelihood(const std::vector<double>& predicted,
                             const std::vector<double>& observed);

/// Akaike information criterion: 2k - 2 log L.
double Aic(double log_likelihood, std::size_t num_parameters);

/// Nash-Sutcliffe model efficiency, a standard hydrology skill score
/// (1 = perfect, 0 = no better than the observed mean).
double NashSutcliffe(const std::vector<double>& predicted,
                     const std::vector<double>& observed);

/// Units-in-the-last-place distance between two doubles: the number of
/// representable values between them under the monotone mapping of IEEE
/// bit patterns onto a signed integer line (so the distance is symmetric
/// and crossing zero counts every subnormal in between; +0 and -0 are 0
/// apart). Infinities sit on the same line, one step beyond the largest
/// finite double. Returns UINT64_MAX when either input is NaN.
///
/// This is the comparison currency of the differential oracles in
/// src/check/ and of the cross-backend tests: "bitwise agreement" is
/// UlpDistance == 0, and each oracle's tolerance is a small ULP budget
/// rather than an ad-hoc epsilon (see DESIGN.md on per-op budgets).
std::uint64_t UlpDistance(double a, double b);

/// True when `a` and `b` agree up to `max_ulps` representable values:
/// both NaN, exactly equal (covering equal infinities and +0 vs -0), or
/// finite with UlpDistance(a, b) <= max_ulps. A finite value never agrees
/// with a non-finite one, and NaN never agrees with a number.
bool WithinUlps(double a, double b, std::uint64_t max_ulps);

}  // namespace gmr

#endif  // GMR_COMMON_METRICS_H_
