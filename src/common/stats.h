#ifndef GMR_COMMON_STATS_H_
#define GMR_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace gmr {

/// Descriptive statistics and series transforms shared by the data-driven
/// baselines and the ecological analysis.

/// Arithmetic mean. Requires a non-empty input.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by N).
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Standardization parameters for one feature.
struct Standardizer {
  double mean = 0.0;
  double stddev = 1.0;

  double Transform(double x) const { return (x - mean) / stddev; }
  double Inverse(double z) const { return z * stddev + mean; }
};

/// Fits a Standardizer on `xs` (stddev clamped away from zero).
Standardizer FitStandardizer(const std::vector<double>& xs);

/// Applies `s` elementwise.
std::vector<double> StandardizeSeries(const Standardizer& s,
                                      const std::vector<double>& xs);

/// Linear interpolation of a sparsely-sampled series, matching the paper's
/// preprocessing ("for those variables measured with a longer interval, we
/// performed linear interpolation"). `sample_indices` must be strictly
/// increasing positions in [0, length); values outside the first/last sample
/// are held flat. Requires at least one sample.
std::vector<double> LinearInterpolate(
    const std::vector<std::size_t>& sample_indices,
    const std::vector<double>& sample_values, std::size_t length);

/// `q`-quantile (0 <= q <= 1) by linear interpolation of order statistics.
double Quantile(std::vector<double> xs, double q);

}  // namespace gmr

#endif  // GMR_COMMON_STATS_H_
