#ifndef GMR_COMMON_RETRY_H_
#define GMR_COMMON_RETRY_H_

#include <functional>

#include "common/status.h"

namespace gmr {

/// Bounded retry with exponential backoff for transient failures (disk
/// write/fsync hiccups, NFS stalls). Deliberately small: no jitter (callers
/// are coordinators, not stampeding herds) and a hard attempt cap so a
/// persistent fault degrades in bounded time instead of wedging the run.
struct RetryOptions {
  /// Total attempts, including the first (<= 1 means "no retry").
  int max_attempts = 4;
  /// Sleep before the first retry; doubles (by `multiplier`) per retry.
  double initial_backoff_ms = 1.0;
  double multiplier = 2.0;
  /// Backoff ceiling, so long ladders stay responsive.
  double max_backoff_ms = 50.0;
};

/// Sleep hook, injectable so tests can assert the backoff ladder without
/// actually sleeping. The default sleeps the calling thread.
using RetrySleeper = std::function<void(double milliseconds)>;

/// Calls `attempt` until it returns an ok Status or `options.max_attempts`
/// calls have failed, sleeping the backoff ladder between calls. Returns
/// the final Status (ok on success, the last error on exhaustion).
Status RetryWithBackoff(const RetryOptions& options,
                        const std::function<Status()>& attempt,
                        const RetrySleeper& sleeper = {});

}  // namespace gmr

#endif  // GMR_COMMON_RETRY_H_
