#include "common/fault_injection.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace gmr {
namespace {

enum class Mode : std::uint8_t { kOff = 0, kAlways, kNever, kFirst, kAfter, kProb };

/// One armed fault point. The counter is atomic (queried from worker
/// threads); the rest is written only while arming.
struct Arm {
  Mode mode = Mode::kOff;
  std::uint64_t n = 0;      // kFirst / kAfter threshold
  double p = 0.0;           // kProb probability
  std::uint64_t seed = 0;   // kProb seed
  std::atomic<std::uint64_t> calls{0};
};

Arm g_arms[kNumFaultPoints];
std::atomic<bool> g_ready{false};  // env spec parsed (or overridden)
std::atomic<int> g_armed{0};       // points armed with a firing-capable mode
std::mutex g_mu;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Resets every arm to kOff. Caller holds g_mu.
void ResetArmsLocked() {
  for (Arm& arm : g_arms) {
    arm.mode = Mode::kOff;
    arm.n = 0;
    arm.p = 0.0;
    arm.seed = 0;
    arm.calls.store(0, std::memory_order_relaxed);
  }
  g_armed.store(0, std::memory_order_release);
}

bool ParsePoint(const std::string& name, FaultPoint* point) {
  if (name == "jit_compile") {
    *point = FaultPoint::kJitCompile;
  } else if (name == "derivative_nan") {
    *point = FaultPoint::kDerivativeNan;
  } else if (name == "pool_task") {
    *point = FaultPoint::kPoolTask;
  } else if (name == "batch_compile") {
    *point = FaultPoint::kBatchCompile;
  } else if (name == "ckpt_write") {
    *point = FaultPoint::kCkptWrite;
  } else if (name == "ckpt_fsync") {
    *point = FaultPoint::kCkptFsync;
  } else if (name == "ckpt_corrupt") {
    *point = FaultPoint::kCkptCorrupt;
  } else if (name == "resume_torn") {
    *point = FaultPoint::kResumeTorn;
  } else if (name == "tape_alloc") {
    *point = FaultPoint::kTapeAlloc;
  } else if (name == "adjoint_nan") {
    *point = FaultPoint::kAdjointNan;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

bool ParseUint(const std::string& text, std::uint64_t* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  *value = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

/// Parses one `point:mode[...]` entry into the global table. Caller holds
/// g_mu. Returns false with *error set on malformed input.
bool ParseEntryLocked(const std::string& entry, std::string* error) {
  const std::vector<std::string> parts = Split(entry, ':');
  FaultPoint point;
  if (parts.size() < 2 || !ParsePoint(parts[0], &point)) {
    if (error != nullptr) *error = "bad fault entry '" + entry + "'";
    return false;
  }
  Arm& arm = g_arms[static_cast<int>(point)];
  const std::string& mode = parts[1];
  if (mode == "always" && parts.size() == 2) {
    arm.mode = Mode::kAlways;
  } else if (mode == "never" && parts.size() == 2) {
    arm.mode = Mode::kNever;
  } else if (mode == "once" && parts.size() == 2) {
    arm.mode = Mode::kFirst;
    arm.n = 1;
  } else if ((mode == "first" || mode == "after") && parts.size() == 3 &&
             ParseUint(parts[2], &arm.n)) {
    arm.mode = mode == "first" ? Mode::kFirst : Mode::kAfter;
  } else if (mode == "prob" && (parts.size() == 3 || parts.size() == 4)) {
    char* end = nullptr;
    arm.p = std::strtod(parts[2].c_str(), &end);
    if (end != parts[2].c_str() + parts[2].size() || arm.p < 0.0 ||
        arm.p > 1.0) {
      if (error != nullptr) *error = "bad probability in '" + entry + "'";
      return false;
    }
    arm.seed = 0;
    if (parts.size() == 4 && !ParseUint(parts[3], &arm.seed)) {
      if (error != nullptr) *error = "bad seed in '" + entry + "'";
      return false;
    }
    arm.mode = Mode::kProb;
  } else {
    if (error != nullptr) *error = "bad fault mode in '" + entry + "'";
    return false;
  }
  arm.calls.store(0, std::memory_order_relaxed);
  return true;
}

bool ParseSpecLocked(const std::string& spec, std::string* error) {
  ResetArmsLocked();
  int armed = 0;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    if (!ParseEntryLocked(entry, error)) {
      ResetArmsLocked();
      return false;
    }
  }
  for (const Arm& arm : g_arms) {
    if (arm.mode != Mode::kOff && arm.mode != Mode::kNever) ++armed;
  }
  g_armed.store(armed, std::memory_order_release);
  return true;
}

void EnsureInitialized() {
  if (g_ready.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_ready.load(std::memory_order_relaxed)) return;
  const char* env = std::getenv("GMR_FAULT");
  if (env != nullptr && env[0] != '\0') {
    std::string error;
    if (!ParseSpecLocked(env, &error)) {
      std::fprintf(stderr, "[gmr] ignoring malformed GMR_FAULT: %s\n",
                   error.c_str());
    }
  }
  g_ready.store(true, std::memory_order_release);
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kJitCompile:
      return "jit_compile";
    case FaultPoint::kDerivativeNan:
      return "derivative_nan";
    case FaultPoint::kPoolTask:
      return "pool_task";
    case FaultPoint::kBatchCompile:
      return "batch_compile";
    case FaultPoint::kCkptWrite:
      return "ckpt_write";
    case FaultPoint::kCkptFsync:
      return "ckpt_fsync";
    case FaultPoint::kCkptCorrupt:
      return "ckpt_corrupt";
    case FaultPoint::kResumeTorn:
      return "resume_torn";
    case FaultPoint::kTapeAlloc:
      return "tape_alloc";
    case FaultPoint::kAdjointNan:
      return "adjoint_nan";
  }
  return "unknown";
}

bool FaultInjected(FaultPoint point) {
  EnsureInitialized();
  if (g_armed.load(std::memory_order_acquire) == 0) return false;
  Arm& arm = g_arms[static_cast<int>(point)];
  switch (arm.mode) {
    case Mode::kOff:
    case Mode::kNever:
      return false;
    case Mode::kAlways:
      arm.calls.fetch_add(1, std::memory_order_relaxed);
      return true;
    case Mode::kFirst:
      return arm.calls.fetch_add(1, std::memory_order_relaxed) < arm.n;
    case Mode::kAfter:
      return arm.calls.fetch_add(1, std::memory_order_relaxed) >= arm.n;
    case Mode::kProb: {
      const std::uint64_t c =
          arm.calls.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t h = SplitMix64(arm.seed * 0x2545f4914f6cdd1dULL + c);
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      return u < arm.p;
    }
  }
  return false;
}

bool SetFaultSpec(const std::string& spec, std::string* error) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_ready.store(true, std::memory_order_release);  // env no longer consulted
  return ParseSpecLocked(spec, error);
}

void ClearFaults() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_ready.store(true, std::memory_order_release);
  ResetArmsLocked();
}

bool AnyFaultArmed() {
  EnsureInitialized();
  return g_armed.load(std::memory_order_acquire) > 0;
}

}  // namespace gmr
