#ifndef GMR_COMMON_FAULT_INJECTION_H_
#define GMR_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <string>

/// Seeded, env-gated fault injection for exercising the containment layer.
///
/// Production code hosts named injection points (`FaultInjected(point)`)
/// that are dormant unless armed — either through the `GMR_FAULT`
/// environment variable or programmatically from tests via `SetFaultSpec`.
/// The spec grammar is a comma-separated list of `point:mode` entries:
///
///   GMR_FAULT=jit_compile:always
///   GMR_FAULT=derivative_nan:first:4,pool_task:prob:0.25:42
///
/// Points: `jit_compile` (JitProgram::Compile reports failure),
/// `derivative_nan` (ProcessRunner::Derivatives returns NaN),
/// `pool_task` (a ThreadPool task throws std::runtime_error),
/// `batch_compile` (BatchJitSession::CompileBatch reports a failed
/// generation TU; every affected equation degrades to the batched VM),
/// `ckpt_write` (snapshot temp-file open/write fails),
/// `ckpt_fsync` (snapshot fsync fails; the write is treated as not
/// durable and retried/skipped),
/// `ckpt_corrupt` (a successfully written snapshot is bit-rotted on
/// disk after the fact; the loader must fall back to the previous one),
/// `resume_torn` (a snapshot read is truncated mid-record, simulating a
/// torn write surviving a crash),
/// `tape_alloc` (building a reverse-mode gradient tape fails as if
/// allocation were exhausted; gradient consumers degrade to
/// derivative-free paths),
/// `adjoint_nan` (the discrete-adjoint reverse sweep produces a NaN
/// cotangent; gradients come back flagged invalid, never silently wrong).
///
/// Modes (per-point invocation counter `c`, starting at 0):
///   always        fire on every call
///   never         armed but inert (useful to override an env spec)
///   once          fire on the first call only
///   first:N       fire on calls c < N
///   after:N       fire on calls c >= N
///   prob:P[:SEED] fire when splitmix64(SEED, c) maps below P — seeded and
///                 a pure function of the call count, so a given total call
///                 count fires a deterministic subset regardless of thread
///                 interleaving.
///
/// All queries are thread-safe; arming/clearing must not race with
/// in-flight queries (arm before starting workers).
namespace gmr {

enum class FaultPoint : int {
  kJitCompile = 0,
  kDerivativeNan,
  kPoolTask,
  kBatchCompile,
  kCkptWrite,
  kCkptFsync,
  kCkptCorrupt,
  kResumeTorn,
  kTapeAlloc,
  kAdjointNan,
};

inline constexpr std::size_t kNumFaultPoints = 10;

const char* FaultPointName(FaultPoint point);

/// True when the fault armed for `point` fires on this invocation. Each
/// call advances the point's invocation counter. Cheap when nothing is
/// armed (one relaxed atomic load).
bool FaultInjected(FaultPoint point);

/// Arms faults from a spec string (see the grammar above), replacing any
/// previously armed faults and resetting all counters. Returns false and
/// fills *error on a malformed spec (leaving all faults cleared).
bool SetFaultSpec(const std::string& spec, std::string* error = nullptr);

/// Disarms every fault point and suppresses re-reading GMR_FAULT.
void ClearFaults();

/// True when at least one point is armed with a mode other than `never`.
bool AnyFaultArmed();

}  // namespace gmr

#endif  // GMR_COMMON_FAULT_INJECTION_H_
