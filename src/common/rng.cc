#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace gmr {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  GMR_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  GMR_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x;
  do {
    x = NextUint64();
  } while (x > limit);
  return x % n;
}

int Rng::UniformInt(int lo, int hi) {
  GMR_CHECK_LE(lo, hi);
  return lo + static_cast<int>(UniformInt(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::TruncatedGaussian(double mean, double stddev, double lo,
                              double hi) {
  GMR_CHECK_LE(lo, hi);
  const double x = Gaussian(mean, stddev);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  GMR_CHECK_LE(k, n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.cached_gaussian = cached_gaussian_;
  state.has_cached_gaussian = has_cached_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace gmr
