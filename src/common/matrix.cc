#include "common/matrix.h"

#include <cmath>

#include "common/check.h"

namespace gmr {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::At(std::size_t r, std::size_t c) {
  GMR_CHECK_LT(r, rows_);
  GMR_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  GMR_CHECK_LT(r, rows_);
  GMR_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::Multiply(const Matrix& rhs) const {
  GMR_CHECK_EQ(cols_, rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.data_[i * rhs.cols_ + j] += a * rhs.data_[k * rhs.cols_ + j];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& x) const {
  GMR_CHECK_EQ(cols_, x.size());
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += data_[i * cols_ + j] * x[j];
    out[i] = sum;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.data_[j * rows_ + i] = data_[i * cols_ + j];
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& rhs) const {
  GMR_CHECK_EQ(rows_, rhs.rows_);
  GMR_CHECK_EQ(cols_, rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + rhs.data_[i];
  }
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

bool CholeskySolve(const Matrix& a, const std::vector<double>& b,
                   double ridge, std::vector<double>* x) {
  GMR_CHECK_EQ(a.rows(), a.cols());
  GMR_CHECK_EQ(a.rows(), b.size());
  const std::size_t n = a.rows();
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j) + (i == j ? ridge : 0.0);
      for (std::size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        l.At(i, j) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.At(i, k) * z[k];
    z[i] = sum / l.At(i, i);
  }
  // Back solve L^T x = z.
  x->assign(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = z[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * (*x)[k];
    (*x)[i] = sum / l.At(i, i);
  }
  return true;
}

bool LeastSquares(const Matrix& x, const std::vector<double>& y,
                  std::vector<double>* beta) {
  GMR_CHECK_EQ(x.rows(), y.size());
  const Matrix xt = x.Transpose();
  const Matrix xtx = xt.Multiply(x);
  const std::vector<double> xty = xt.MultiplyVector(y);
  return CholeskySolve(xtx, xty, 1e-8, beta);
}

}  // namespace gmr
