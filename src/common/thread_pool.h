#ifndef GMR_COMMON_THREAD_POOL_H_
#define GMR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gmr {

/// One ParallelFor index whose body threw: the index and the exception
/// text. A failed index counts as completed for the barrier; containment
/// (penalty fitness, retry, ...) is the caller's decision at the barrier.
struct TaskFailure {
  std::size_t index = 0;
  std::string message;
};

/// A fixed-size pool of worker threads executing chunked index ranges.
///
/// The pool is the substrate of the parallel-evaluation (PE) speedup: a
/// population-sized batch of fitness evaluations is split into contiguous
/// chunks that workers claim via an atomic cursor, so uneven per-individual
/// cost (short-circuited vs full evaluations) load-balances automatically.
/// `ParallelFor` blocks the calling thread until the whole range is done —
/// it is a barrier, which is what gives the kFrozenFrontier evaluation mode
/// its determinism guarantee (see gp::FrontierMode).
///
/// The pool is reusable across calls and cheap to keep alive for the whole
/// search; workers sleep on a condition variable between jobs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads <= 1` spawns none; every
  /// ParallelFor then runs inline on the caller (same code path, no locks).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work, counting the caller (>= 1).
  int num_threads() const { return num_threads_; }

  /// Worker body: invoked as body(index, worker) for every index in [0, n),
  /// where worker in [0, num_threads()) identifies the executing lane
  /// (usable to index per-thread scratch without false sharing hazards).
  using IndexedBody = std::function<void(std::size_t index, int worker)>;

  /// Runs body over [0, n), distributing chunks of `chunk` indices across
  /// the workers and the calling thread; returns after every index ran.
  /// `chunk == 0` picks a chunk size that yields ~4 chunks per thread.
  ///
  /// Exception-safe: a body invocation that throws never terminates the
  /// process or poisons the pool — the exception is captured and reported
  /// in the returned list (sorted by index; empty on full success), and the
  /// remaining indices still run.
  std::vector<TaskFailure> ParallelFor(std::size_t n, const IndexedBody& body,
                                       std::size_t chunk = 0);

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t chunk = 1;
    const IndexedBody* body = nullptr;
    std::size_t cursor = 0;      // next unclaimed index (guarded by mu_)
    std::size_t done = 0;        // indices finished (guarded by mu_)
    std::uint64_t generation = 0;
    std::vector<TaskFailure> failures;  // indices that threw (guarded by mu_)
  };

  void WorkerLoop(int worker);
  /// Claims and runs chunks of the current job until the range is drained.
  void DrainCurrentJob(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signaled when a job is posted / stop
  std::condition_variable done_cv_;  // signaled when a job completes
  Job job_;
  bool stop_ = false;
};

/// Shared fan-out helper: runs body(i) for i in [0, n) on `pool`, or inline
/// in index order when `pool` is null or single-threaded. All parallel call
/// sites (GP population batches, GGGP generations, the population-based
/// calibrators, benches) funnel through this so the serial path is always
/// the same code executed in the same order. Exception-safe like
/// ThreadPool::ParallelFor: throwing bodies are captured and returned.
std::vector<TaskFailure> ParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t)>& body);

}  // namespace gmr

#endif  // GMR_COMMON_THREAD_POOL_H_
