#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gmr {

double Mean(const std::vector<double>& xs) {
  GMR_CHECK_GT(xs.size(), 0u);
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  const double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  GMR_CHECK_EQ(xs.size(), ys.size());
  GMR_CHECK_GT(xs.size(), 0u);
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Standardizer FitStandardizer(const std::vector<double>& xs) {
  Standardizer s;
  s.mean = Mean(xs);
  s.stddev = std::max(StdDev(xs), 1e-12);
  return s;
}

std::vector<double> StandardizeSeries(const Standardizer& s,
                                      const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = s.Transform(xs[i]);
  return out;
}

std::vector<double> LinearInterpolate(
    const std::vector<std::size_t>& sample_indices,
    const std::vector<double>& sample_values, std::size_t length) {
  GMR_CHECK_EQ(sample_indices.size(), sample_values.size());
  GMR_CHECK_GT(sample_indices.size(), 0u);
  for (std::size_t i = 1; i < sample_indices.size(); ++i) {
    GMR_CHECK_LT(sample_indices[i - 1], sample_indices[i]);
  }
  GMR_CHECK_LT(sample_indices.back(), length);

  std::vector<double> out(length);
  // Flat extrapolation before the first and after the last sample.
  for (std::size_t t = 0; t <= sample_indices.front(); ++t) {
    out[t] = sample_values.front();
  }
  for (std::size_t t = sample_indices.back(); t < length; ++t) {
    out[t] = sample_values.back();
  }
  for (std::size_t k = 0; k + 1 < sample_indices.size(); ++k) {
    const std::size_t t0 = sample_indices[k];
    const std::size_t t1 = sample_indices[k + 1];
    const double v0 = sample_values[k];
    const double v1 = sample_values[k + 1];
    for (std::size_t t = t0; t <= t1; ++t) {
      const double w = static_cast<double>(t - t0) /
                       static_cast<double>(t1 - t0);
      out[t] = v0 + w * (v1 - v0);
    }
  }
  return out;
}

double Quantile(std::vector<double> xs, double q) {
  GMR_CHECK_GT(xs.size(), 0u);
  GMR_CHECK_GE(q, 0.0);
  GMR_CHECK_LE(q, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace gmr
