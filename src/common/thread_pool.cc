#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/fault_injection.h"

namespace gmr {
namespace {

/// Runs one index of a job, containing any exception. Returns true on
/// success; on a throw, fills *message and returns false. The kPoolTask
/// fault point sits inside the try so injected throws exercise exactly the
/// production containment path.
bool RunTask(const ThreadPool::IndexedBody& body, std::size_t index,
             int worker, std::string* message) {
  try {
    if (FaultInjected(FaultPoint::kPoolTask)) {
      throw std::runtime_error("fault injection: pool_task");
    }
    body(index, worker);
    return true;
  } catch (const std::exception& e) {
    *message = e.what();
  } catch (...) {
    *message = "unknown exception";
  }
  return false;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  // The calling thread is lane 0 and participates in every ParallelFor, so
  // only num_threads - 1 workers are spawned (lanes 1..num_threads-1).
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int worker = 1; worker < num_threads_; ++worker) {
    workers_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::vector<TaskFailure> ThreadPool::ParallelFor(std::size_t n,
                                                 const IndexedBody& body,
                                                 std::size_t chunk) {
  if (n == 0) return {};
  if (workers_.empty()) {
    std::vector<TaskFailure> failures;
    std::string message;
    for (std::size_t i = 0; i < n; ++i) {
      if (!RunTask(body, i, 0, &message)) {
        failures.push_back({i, std::move(message)});
        message.clear();
      }
    }
    return failures;
  }
  if (chunk == 0) {
    // ~4 chunks per lane balances scheduling overhead against the cost
    // skew between short-circuited and full evaluations.
    chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(num_threads_) * 4));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.n = n;
    job_.chunk = chunk;
    job_.body = &body;
    job_.cursor = 0;
    job_.done = 0;
    job_.failures.clear();
    ++job_.generation;
  }
  work_cv_.notify_all();
  DrainCurrentJob(/*worker=*/0);
  std::vector<TaskFailure> failures;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return job_.done >= job_.n; });
    job_.body = nullptr;  // the barrier: no worker touches the body past here
    failures = std::move(job_.failures);
    job_.failures.clear();
  }
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

void ThreadPool::WorkerLoop(int worker) {
  std::uint64_t last_seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, last_seen] {
        return stop_ || (job_.body != nullptr &&
                         job_.generation != last_seen &&
                         job_.cursor < job_.n);
      });
      if (stop_) return;
      last_seen = job_.generation;
    }
    DrainCurrentJob(worker);
  }
}

void ThreadPool::DrainCurrentJob(int worker) {
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    const IndexedBody* body = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_.body == nullptr || job_.cursor >= job_.n) return;
      begin = job_.cursor;
      end = std::min(job_.n, begin + job_.chunk);
      job_.cursor = end;
      body = job_.body;
    }
    std::vector<TaskFailure> chunk_failures;
    std::string message;
    for (std::size_t i = begin; i < end; ++i) {
      if (!RunTask(*body, i, worker, &message)) {
        chunk_failures.push_back({i, std::move(message)});
        message.clear();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (TaskFailure& failure : chunk_failures) {
        job_.failures.push_back(std::move(failure));
      }
      job_.done += end - begin;
      if (job_.done >= job_.n) done_cv_.notify_all();
    }
  }
}

std::vector<TaskFailure> ParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<void(std::size_t)>& body) {
  const ThreadPool::IndexedBody indexed = [&body](std::size_t i,
                                                  int /*worker*/) {
    body(i);
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    std::vector<TaskFailure> failures;
    std::string message;
    for (std::size_t i = 0; i < n; ++i) {
      if (!RunTask(indexed, i, 0, &message)) {
        failures.push_back({i, std::move(message)});
        message.clear();
      }
    }
    return failures;
  }
  return pool->ParallelFor(n, indexed);
}

}  // namespace gmr
