#include "common/thread_pool.h"

#include <algorithm>

namespace gmr {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  // The calling thread is lane 0 and participates in every ParallelFor, so
  // only num_threads - 1 workers are spawned (lanes 1..num_threads-1).
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int worker = 1; worker < num_threads_; ++worker) {
    workers_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(std::size_t n, const IndexedBody& body,
                             std::size_t chunk) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  if (chunk == 0) {
    // ~4 chunks per lane balances scheduling overhead against the cost
    // skew between short-circuited and full evaluations.
    chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(num_threads_) * 4));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_.n = n;
    job_.chunk = chunk;
    job_.body = &body;
    job_.cursor = 0;
    job_.done = 0;
    ++job_.generation;
  }
  work_cv_.notify_all();
  DrainCurrentJob(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return job_.done >= job_.n; });
  job_.body = nullptr;  // the barrier: no worker touches the body past here
}

void ThreadPool::WorkerLoop(int worker) {
  std::uint64_t last_seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, last_seen] {
        return stop_ || (job_.body != nullptr &&
                         job_.generation != last_seen &&
                         job_.cursor < job_.n);
      });
      if (stop_) return;
      last_seen = job_.generation;
    }
    DrainCurrentJob(worker);
  }
}

void ThreadPool::DrainCurrentJob(int worker) {
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    const IndexedBody* body = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_.body == nullptr || job_.cursor >= job_.n) return;
      begin = job_.cursor;
      end = std::min(job_.n, begin + job_.chunk);
      job_.cursor = end;
      body = job_.body;
    }
    for (std::size_t i = begin; i < end; ++i) (*body)(i, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_.done += end - begin;
      if (job_.done >= job_.n) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ParallelFor(n, [&body](std::size_t i, int /*worker*/) { body(i); });
}

}  // namespace gmr
