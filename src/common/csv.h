#ifndef GMR_COMMON_CSV_H_
#define GMR_COMMON_CSV_H_

#include <string>
#include <vector>

namespace gmr {

/// A rectangular table of doubles with named columns, used to export the
/// synthetic dataset and benchmark series, and to re-import them in tests.
struct CsvTable {
  std::vector<std::string> column_names;
  /// rows[i][j] is row i, column j; all rows have column_names.size() cells.
  std::vector<std::vector<double>> rows;

  /// Index of a named column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Extracts one column as a series. Aborts if the column is missing.
  std::vector<double> Column(const std::string& name) const;
};

/// Writes `table` to `path`. Returns false on I/O failure.
bool WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a CSV with a header row of column names and numeric cells.
/// Returns false on I/O or parse failure; when `error` is non-null it is
/// filled with a `path:line:` prefixed message naming the offending field,
/// e.g. `data.csv:7: field 3 ('abc'): not a number`.
bool ReadCsv(const std::string& path, CsvTable* table,
             std::string* error = nullptr);

}  // namespace gmr

#endif  // GMR_COMMON_CSV_H_
