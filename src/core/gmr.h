#ifndef GMR_CORE_GMR_H_
#define GMR_CORE_GMR_H_

#include <string>
#include <vector>

#include "core/river_grammar.h"
#include "gp/tag3p.h"
#include "obs/run_context.h"
#include "river/constituents.h"
#include "river/dataset.h"
#include "river/simulate.h"

namespace gmr::core {

/// Top-level configuration of a GMR run on the river task. The defaults
/// follow Appendix B (population 200, 100 generations, elite 2, tournament
/// 5, chromosome size 2-50, operator probabilities 0.3/0.3/0.3/0.1,
/// 5 local-search steps), with all three speedups enabled.
struct GmrConfig {
  gp::Tag3pConfig tag3p;
  river::SimulationConfig simulation;

  GmrConfig() {
    tag3p.speedups.tree_caching = true;
    tag3p.speedups.short_circuiting = true;
    tag3p.speedups.runtime_compilation = true;
  }
};

/// Outcome of one GMR run, with train/test accuracy of the best model.
struct GmrRunResult {
  gp::Individual best;
  /// Simplified revised equations {dB_Phy/dt, dB_Zoo/dt}.
  std::vector<expr::ExprPtr> best_equations;
  double train_rmse = 0.0;
  double train_mae = 0.0;
  double test_rmse = 0.0;
  double test_mae = 0.0;
  gp::Tag3pResult search;
};

/// The domain side of a GMR run (unified driver API): the observed river
/// data plus the expert prior knowledge (grammar, seed process, priors)
/// and, optionally, the constituent registry the run revises. A null
/// `constituents` means the legacy two-species plankton problem (initial
/// conditions from the dataset) — that path is bit-identical to the
/// pre-registry driver. Pointees are borrowed and must outlive the run.
struct GmrProblem {
  const river::RiverDataset* dataset = nullptr;
  const RiverPriorKnowledge* knowledge = nullptr;
  const river::ConstituentSet* constituents = nullptr;
};

/// Unified driver entry point: runs genetic model revision on
/// `problem.dataset` under `problem.knowledge`, drawing shared resources
/// (pool, telemetry sink, RNG) from `context`. Emits a "gmr" run manifest
/// and a final "run_result" event when the context carries an enabled sink.
GmrRunResult RunGmr(const GmrConfig& config, const GmrProblem& problem,
                    const obs::RunContext& context = {});

/// Standalone entry point (default RunContext).
GmrRunResult RunGmr(const river::RiverDataset& dataset,
                    const RiverPriorKnowledge& knowledge,
                    const GmrConfig& config);

/// Train/test RMSE and MAE of an arbitrary process (equations + parameter
/// vector) on `dataset` — shared by every method's reporting.
struct AccuracyReport {
  double train_rmse = 0.0;
  double train_mae = 0.0;
  double test_rmse = 0.0;
  double test_mae = 0.0;
};
AccuracyReport EvaluateAccuracy(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                const river::RiverDataset& dataset,
                                const river::SimulationConfig& simulation);

/// Accuracy of an arbitrary constituent registry's process: the primary
/// observed constituent's free-run trajectory against its mapped series,
/// train and test windows, initial conditions from the registry. The
/// legacy overload above equals this one under the dataset's plankton
/// preset.
AccuracyReport EvaluateAccuracy(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                const river::RiverDataset& dataset,
                                const river::SimulationConfig& simulation,
                                const river::ConstituentSet& constituents);

/// Pretty-prints the revised process for ecological inspection.
std::string DescribeModel(const std::vector<expr::ExprPtr>& equations);

/// Same, with the equation left-hand sides named from the registry
/// ("dM_NO3/dt = ...").
std::string DescribeModel(const std::vector<expr::ExprPtr>& equations,
                          const river::ConstituentSet& constituents);

}  // namespace gmr::core

#endif  // GMR_CORE_GMR_H_
