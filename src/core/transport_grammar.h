#ifndef GMR_CORE_TRANSPORT_GRAMMAR_H_
#define GMR_CORE_TRANSPORT_GRAMMAR_H_

#include "core/river_grammar.h"
#include "river/constituents.h"

namespace gmr::core {

/// Prior knowledge for a transport constituent registry
/// (ConstituentSet::Transport): the seed alpha tree encodes the expert
/// linear-reservoir mass balances of river::TransportProcess under one
/// system root, one equation per species, each written `gain - loss`.
///
/// Extension points, for a set of n species (so 2n points in total):
///   Ext(i+1)     on equation i   — connector +, the species' relevant
///                                  drivers (nutrients for N/P species,
///                                  conductivity/depth for sediment) + R;
///   Ext(n+i+1)   on loss term i  — connector *, variables {V_tmp, R}.
/// The multiplicative points are where the generator hides its
/// temperature-modulated nitrification and settling rates, mirroring the
/// plankton grammar's Ext5-Ext9 design.
RiverPriorKnowledge BuildTransportPriorKnowledge(
    const river::ConstituentSet& constituents);

}  // namespace gmr::core

#endif  // GMR_CORE_TRANSPORT_GRAMMAR_H_
