#include "core/ext_grammar.h"

namespace gmr::core {

namespace e = gmr::expr;
namespace t = gmr::tag;

std::string ConnectorLabel(int ext) { return "ExtC" + std::to_string(ext); }
std::string ExtenderLabel(int ext) { return "ExtE" + std::to_string(ext); }

t::TagNodePtr ExtOperand::MakeLeaf() const {
  if (variable_slot < 0) return t::SlotNode("R");
  return t::LeafNode(e::Variable(variable_slot, name));
}

t::TagNodePtr ExtOperand::MakeScaled(const t::Symbol& exte) const {
  if (variable_slot < 0) return t::SlotNode("R");
  std::vector<t::TagNodePtr> children;
  children.push_back(
      t::WrapperNode(exte, t::LeafNode(e::Variable(variable_slot, name))));
  children.push_back(t::SlotNode("R"));
  return t::OperatorNode(exte, e::NodeKind::kMul, std::move(children));
}

ExtOperand VariableOperand(int slot, std::string name) {
  ExtOperand operand;
  operand.variable_slot = slot;
  operand.name = std::move(name);
  return operand;
}

ExtOperand RandomOperand() { return ExtOperand{}; }

void AddExtensionBetas(int ext, e::NodeKind connector_op,
                       const std::vector<ExtOperand>& operands,
                       t::Grammar* grammar) {
  const std::string extc = ConnectorLabel(ext);
  const std::string exte = ExtenderLabel(ext);

  // Connectors: the single allowed operator applied to the seed process,
  // with the fresh (scaled) operand wrapped in the extender symbol so that
  // further revisions of the operand go through extender trees only.
  for (const ExtOperand& operand : operands) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(extc));
    children.push_back(t::WrapperNode(exte, operand.MakeScaled(exte)));
    grammar->AddBetaTree(t::ElementaryTree(
        "conn:" + extc + e::KindName(connector_op) + operand.name,
        t::OperatorNode(extc, connector_op, std::move(children))));
  }

  // Binary extenders: {+, -, *, /} x operands, foot (the existing
  // sub-expression) on the left.
  const e::NodeKind binary_ops[] = {e::NodeKind::kAdd, e::NodeKind::kSub,
                                    e::NodeKind::kMul, e::NodeKind::kDiv};
  for (e::NodeKind op : binary_ops) {
    for (const ExtOperand& operand : operands) {
      std::vector<t::TagNodePtr> children;
      children.push_back(t::FootNode(exte));
      children.push_back(t::WrapperNode(exte, operand.MakeLeaf()));
      grammar->AddBetaTree(t::ElementaryTree(
          "ext:" + exte + e::KindName(op) + operand.name,
          t::OperatorNode(exte, op, std::move(children))));
    }
  }

  // Unary extenders: log/exp applied to the existing sub-expression.
  for (e::NodeKind op : {e::NodeKind::kLog, e::NodeKind::kExp}) {
    std::vector<t::TagNodePtr> children;
    children.push_back(t::FootNode(exte));
    grammar->AddBetaTree(t::ElementaryTree(
        "ext:" + exte + e::KindName(op),
        t::OperatorNode(exte, op, std::move(children))));
  }
}

}  // namespace gmr::core
