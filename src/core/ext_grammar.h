#ifndef GMR_CORE_EXT_GRAMMAR_H_
#define GMR_CORE_EXT_GRAMMAR_H_

#include <string>
#include <vector>

#include "expr/ast.h"
#include "tag/grammar.h"

namespace gmr::core {

/// Shared beta-tree machinery of the GMR prior-knowledge builders
/// (Section III-B3): every domain grammar — the plankton grammar of
/// Table II and the transport grammars — generates its revision trees from
/// the same connector/extender scheme; only the seed alpha tree and the
/// per-extension operand lists differ.

/// Label of extension point `ext`'s connector symbol ("ExtC3") — the symbol
/// a seed tree wraps an extensible subprocess in.
std::string ConnectorLabel(int ext);
/// Label of extension point `ext`'s extender symbol ("ExtE3") — the symbol
/// revisions introduced at that point stay adjoinable under.
std::string ExtenderLabel(int ext);

/// An extension operand: either a concrete temporal variable (slot + display
/// name under the problem's variable layout) or the random lexeme slot R.
struct ExtOperand {
  int variable_slot = -1;  ///< -1 means R.
  std::string name = "R";

  /// Bare operand (extenders): the variable itself, or the R slot.
  tag::TagNodePtr MakeLeaf() const;

  /// Scaled operand (connectors): `var * R`. Raw temporal variables span
  /// orders of magnitude (conductivity in the hundreds, phosphorus in
  /// thousandths), so a connector that introduced a bare variable would be
  /// almost always lethal and the revision unreachable by hill climbing.
  /// Entering with a tunable coefficient R in [0, 1] keeps intermediate
  /// revisions viable — the "more careful design of alpha- and beta-trees"
  /// the paper calls for in Section III-A2. Both factors stay extensible.
  tag::TagNodePtr MakeScaled(const tag::Symbol& exte) const;
};

/// Operand for variable `slot` displayed as `name`.
ExtOperand VariableOperand(int slot, std::string name);
/// The random lexeme operand R.
ExtOperand RandomOperand();

/// Beta-tree generation for one extension point: "we then generate a list
/// of beta-trees for each combination of variables and operators"
/// (Section III-B3). Emits, into `grammar`:
///  - one connector per operand: `foot <connector_op> (var * R)`;
///  - binary extenders {+, -, *, /} x operands, foot on the left;
///  - unary extenders log/exp on the foot.
void AddExtensionBetas(int ext, expr::NodeKind connector_op,
                       const std::vector<ExtOperand>& operands,
                       tag::Grammar* grammar);

}  // namespace gmr::core

#endif  // GMR_CORE_EXT_GRAMMAR_H_
