#include "core/transport_grammar.h"

#include <vector>

#include "core/ext_grammar.h"
#include "river/chemistry.h"
#include "river/variables.h"

namespace gmr::core {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;
namespace r = gmr::river;

/// Operand for legacy driver slot `legacy_slot` under the set's layout
/// (states first, then the ten Table IV drivers).
ExtOperand DriverOperand(const r::ConstituentSet& constituents,
                         int legacy_slot) {
  return VariableOperand(constituents.driver_slot(legacy_slot - r::kVlgt),
                         r::VariableName(legacy_slot));
}

/// The drivers an expert would consider plausible revision material for
/// species i's whole-equation extension point: the nutrient the species
/// sources from plus one confounder (temperature, oxygen, transparency,
/// conductivity) — small lists, like Table II's three-variable rows.
std::vector<ExtOperand> EquationOperands(const r::ConstituentSet& constituents,
                                         int species) {
  std::vector<ExtOperand> operands;
  switch (species) {
    case 0:  // M_NO3
      operands.push_back(DriverOperand(constituents, r::kVn));
      operands.push_back(DriverOperand(constituents, r::kVtmp));
      break;
    case 1:  // M_NH4
      operands.push_back(DriverOperand(constituents, r::kVn));
      operands.push_back(DriverOperand(constituents, r::kVdo));
      break;
    case 2:  // M_DPH
      operands.push_back(DriverOperand(constituents, r::kVp));
      operands.push_back(DriverOperand(constituents, r::kVtmp));
      break;
    case 3:  // M_PPH
      operands.push_back(DriverOperand(constituents, r::kVp));
      operands.push_back(DriverOperand(constituents, r::kVsd));
      break;
    default:  // M_SED
      operands.push_back(DriverOperand(constituents, r::kVcd));
      operands.push_back(DriverOperand(constituents, r::kVsd));
      break;
  }
  operands.push_back(RandomOperand());
  return operands;
}

}  // namespace

RiverPriorKnowledge BuildTransportPriorKnowledge(
    const river::ConstituentSet& constituents) {
  const int n = static_cast<int>(constituents.size());
  const t::Symbol exp = t::kExpSymbol;

  RiverPriorKnowledge knowledge;
  knowledge.priors = constituents.priors();

  // Seed alpha: per species, `gain - loss` with the whole equation behind
  // the additive connector Ext(i+1) and the first-order loss factor behind
  // the multiplicative connector Ext(n+i+1).
  std::vector<t::TagNodePtr> equations;
  equations.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    t::TagNodePtr gain = t::FromExpr(r::TransportGain(constituents, i), exp);
    t::TagNodePtr loss = t::WrapperNode(
        ConnectorLabel(n + i + 1),
        t::FromExpr(r::TransportLoss(constituents, i), exp));
    std::vector<t::TagNodePtr> eq_children;
    eq_children.push_back(std::move(gain));
    eq_children.push_back(std::move(loss));
    equations.push_back(t::WrapperNode(
        ConnectorLabel(i + 1),
        t::OperatorNode(exp, e::NodeKind::kSub, std::move(eq_children))));
  }
  knowledge.seed_alpha_index = knowledge.grammar.AddAlphaTree(
      t::ElementaryTree("seed:" + constituents.preset(),
                        t::SystemNode(std::move(equations))));

  for (int i = 0; i < n; ++i) {
    AddExtensionBetas(i + 1, e::NodeKind::kAdd,
                      EquationOperands(constituents, i), &knowledge.grammar);
    AddExtensionBetas(n + i + 1, e::NodeKind::kMul,
                      {DriverOperand(constituents, r::kVtmp), RandomOperand()},
                      &knowledge.grammar);
  }

  // "R denotes a random variable between 0 and 1" (Table II).
  knowledge.grammar.SetSlotSpec("R", tag::SlotSpec{0.0, 1.0});
  return knowledge;
}

}  // namespace gmr::core
