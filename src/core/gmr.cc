#include "core/gmr.h"

#include "common/metrics.h"
#include "expr/print.h"
#include "expr/simplify.h"

namespace gmr::core {

AccuracyReport EvaluateAccuracy(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                const river::RiverDataset& dataset,
                                const river::SimulationConfig& simulation) {
  AccuracyReport report;
  const std::vector<double> train_pred = river::SimulateBPhy(
      equations, parameters, dataset, 0, dataset.train_end,
      dataset.initial_bphy, dataset.initial_bzoo, simulation,
      /*compiled=*/true);
  const std::vector<double> train_obs(
      dataset.observed_bphy.begin(),
      dataset.observed_bphy.begin() +
          static_cast<std::ptrdiff_t>(dataset.train_end));
  report.train_rmse = Rmse(train_pred, train_obs);
  report.train_mae = Mae(train_pred, train_obs);

  const std::vector<double> test_pred = river::SimulateBPhy(
      equations, parameters, dataset, dataset.train_end, dataset.num_days,
      dataset.test_initial_bphy, dataset.test_initial_bzoo, simulation,
      /*compiled=*/true);
  const std::vector<double> test_obs(
      dataset.observed_bphy.begin() +
          static_cast<std::ptrdiff_t>(dataset.train_end),
      dataset.observed_bphy.end());
  report.test_rmse = Rmse(test_pred, test_obs);
  report.test_mae = Mae(test_pred, test_obs);
  return report;
}

GmrRunResult RunGmr(const river::RiverDataset& dataset,
                    const RiverPriorKnowledge& knowledge,
                    const GmrConfig& config) {
  const river::RiverFitness fitness =
      river::RiverFitness::ForTraining(&dataset, config.simulation);

  gp::Tag3pConfig tag3p = config.tag3p;
  tag3p.seed_alpha_index = knowledge.seed_alpha_index;
  gp::Tag3pEngine engine(&knowledge.grammar, &fitness, knowledge.priors,
                         tag3p);

  GmrRunResult result;
  result.search = engine.Run();
  result.best = result.search.best.Clone();

  result.best_equations =
      tag::ExpandToExpressions(knowledge.grammar, *result.best.genotype);
  for (auto& eq : result.best_equations) eq = expr::Simplify(eq);

  const AccuracyReport report = EvaluateAccuracy(
      result.best_equations, result.best.parameters, dataset,
      config.simulation);
  result.train_rmse = report.train_rmse;
  result.train_mae = report.train_mae;
  result.test_rmse = report.test_rmse;
  result.test_mae = report.test_mae;
  return result;
}

std::string DescribeModel(const std::vector<expr::ExprPtr>& equations) {
  std::string out;
  const char* names[] = {"dB_Phy/dt", "dB_Zoo/dt"};
  for (std::size_t i = 0; i < equations.size(); ++i) {
    out += i < 2 ? names[i] : "eq";
    out += " = ";
    out += expr::ToString(*equations[i]);
    out += '\n';
  }
  return out;
}

}  // namespace gmr::core
