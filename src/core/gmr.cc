#include "core/gmr.h"

#include "common/metrics.h"
#include "expr/print.h"
#include "expr/simplify.h"
#include "obs/manifest.h"

namespace gmr::core {

AccuracyReport EvaluateAccuracy(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                const river::RiverDataset& dataset,
                                const river::SimulationConfig& simulation) {
  return EvaluateAccuracy(
      equations, parameters, dataset, simulation,
      river::ConstituentSet::LegacyPlankton(
          dataset.initial_bphy, dataset.initial_bzoo,
          dataset.test_initial_bphy, dataset.test_initial_bzoo));
}

AccuracyReport EvaluateAccuracy(const std::vector<expr::ExprPtr>& equations,
                                const std::vector<double>& parameters,
                                const river::RiverDataset& dataset,
                                const river::SimulationConfig& simulation,
                                const river::ConstituentSet& constituents) {
  river::SimulationConfig config = simulation;
  config.num_species = static_cast<int>(constituents.size());
  const int primary = constituents.PrimaryObserved();
  const int mapped = constituents.at(static_cast<std::size_t>(primary))
                         .observed_series;
  const std::vector<double>& observed =
      dataset.ObservedSeries(mapped >= 0 ? mapped : 0);
  const std::size_t p = static_cast<std::size_t>(primary);

  AccuracyReport report;
  const std::vector<double> train_pred =
      river::Simulate(equations, parameters, dataset, 0, dataset.train_end,
                      constituents, constituents.InitialStates(), config,
                      /*compiled=*/true)
          .series[p];
  const std::vector<double> train_obs(
      observed.begin(),
      observed.begin() + static_cast<std::ptrdiff_t>(dataset.train_end));
  report.train_rmse = Rmse(train_pred, train_obs);
  report.train_mae = Mae(train_pred, train_obs);

  const std::vector<double> test_pred =
      river::Simulate(equations, parameters, dataset, dataset.train_end,
                      dataset.num_days, constituents,
                      constituents.TestInitialStates(), config,
                      /*compiled=*/true)
          .series[p];
  const std::vector<double> test_obs(
      observed.begin() + static_cast<std::ptrdiff_t>(dataset.train_end),
      observed.end());
  report.test_rmse = Rmse(test_pred, test_obs);
  report.test_mae = Mae(test_pred, test_obs);
  return report;
}

GmrRunResult RunGmr(const GmrConfig& config, const GmrProblem& problem,
                    const obs::RunContext& context) {
  const river::RiverDataset& dataset = *problem.dataset;
  const RiverPriorKnowledge& knowledge = *problem.knowledge;
  const river::RiverFitness fitness =
      problem.constituents == nullptr
          ? river::RiverFitness::ForTraining(&dataset, config.simulation)
          : river::RiverFitness::ForTrainingWith(
                &dataset, *problem.constituents, config.simulation);

  obs::TelemetrySink* sink = obs::ResolveSink(context.sink);
  if (sink->enabled()) {
    // The GMR manifest wraps the search; the nested TAG3P engine emits its
    // own "tag3p" manifest with the full search config snapshot.
    obs::RunManifest manifest =
        obs::MakeRunManifest("gmr", config.tag3p.seed);
    manifest.config_fields = {
        {"train_days", static_cast<double>(dataset.train_end)},
        {"num_days", static_cast<double>(dataset.num_days)},
        {"num_species", static_cast<double>(fitness.num_states())},
    };
    manifest.num_threads = context.pool != nullptr
                               ? context.pool->num_threads()
                               : config.tag3p.speedups.num_threads;
    obs::EmitManifest(sink, manifest);
  }

  gp::Tag3pConfig tag3p = config.tag3p;
  tag3p.seed_alpha_index = knowledge.seed_alpha_index;
  gp::Tag3pProblem search_problem{&knowledge.grammar, &fitness,
                                  knowledge.priors};
  gp::Tag3pEngine engine(search_problem, tag3p, context);

  // Snapshot the batch-JIT compile cache before the search so the emitted
  // metric is this run's delta (the default session is process-wide).
  expr::BatchJitSession* batch_jit =
      config.simulation.compiled_backend == river::CompiledBackend::kBatchJit
          ? (config.simulation.batch_jit_session != nullptr
                 ? config.simulation.batch_jit_session
                 : expr::BatchJitSession::Default())
          : nullptr;
  const expr::BatchJitSession::Stats jit_before =
      batch_jit != nullptr ? batch_jit->stats()
                           : expr::BatchJitSession::Stats{};

  GmrRunResult result;
  result.search = engine.Run();
  result.best = result.search.best.Clone();

  if (sink->enabled() && batch_jit != nullptr) {
    const expr::BatchJitSession::Stats s = batch_jit->stats();
    expr::BatchJitSession::Stats d;
    d.requests = s.requests - jit_before.requests;
    d.hits = s.hits - jit_before.hits;
    d.unique_misses = s.unique_misses - jit_before.unique_misses;
    d.tu_compiles = s.tu_compiles - jit_before.tu_compiles;
    d.symbols_compiled = s.symbols_compiled - jit_before.symbols_compiled;
    d.compile_failures = s.compile_failures - jit_before.compile_failures;
    obs::TraceEvent event("batch_jit_cache");
    event.Label("driver", "gmr")
        .Field("requests", static_cast<double>(d.requests))
        .Field("hits", static_cast<double>(d.hits))
        .Field("hit_rate", d.HitRate())
        .Field("unique_misses", static_cast<double>(d.unique_misses))
        .Field("tu_compiles", static_cast<double>(d.tu_compiles))
        .Field("symbols_compiled", static_cast<double>(d.symbols_compiled))
        .Field("compile_failures", static_cast<double>(d.compile_failures))
        .Field("cache_size", static_cast<double>(batch_jit->cache_size()));
    sink->Emit(std::move(event));
  }

  result.best_equations =
      tag::ExpandToExpressions(knowledge.grammar, *result.best.genotype);
  for (auto& eq : result.best_equations) eq = expr::Simplify(eq);

  const AccuracyReport report =
      problem.constituents == nullptr
          ? EvaluateAccuracy(result.best_equations, result.best.parameters,
                             dataset, config.simulation)
          : EvaluateAccuracy(result.best_equations, result.best.parameters,
                             dataset, config.simulation,
                             *problem.constituents);
  result.train_rmse = report.train_rmse;
  result.train_mae = report.train_mae;
  result.test_rmse = report.test_rmse;
  result.test_mae = report.test_mae;

  if (sink->enabled()) {
    obs::TraceEvent event("run_result");
    event.Label("driver", "gmr")
        .Field("best_fitness", result.best.fitness)
        .Field("train_rmse", result.train_rmse)
        .Field("train_mae", result.train_mae)
        .Field("test_rmse", result.test_rmse)
        .Field("test_mae", result.test_mae);
    sink->Emit(std::move(event));
    sink->Flush();
  }
  return result;
}

GmrRunResult RunGmr(const river::RiverDataset& dataset,
                    const RiverPriorKnowledge& knowledge,
                    const GmrConfig& config) {
  return RunGmr(config, GmrProblem{&dataset, &knowledge},
                obs::RunContext{});
}

std::string DescribeModel(const std::vector<expr::ExprPtr>& equations) {
  std::string out;
  const char* names[] = {"dB_Phy/dt", "dB_Zoo/dt"};
  for (std::size_t i = 0; i < equations.size(); ++i) {
    out += i < 2 ? names[i] : "eq";
    out += " = ";
    out += expr::ToString(*equations[i]);
    out += '\n';
  }
  return out;
}

std::string DescribeModel(const std::vector<expr::ExprPtr>& equations,
                          const river::ConstituentSet& constituents) {
  std::string out;
  for (std::size_t i = 0; i < equations.size(); ++i) {
    out += i < constituents.size()
               ? "d" + constituents.at(i).name + "/dt"
               : "eq";
    out += " = ";
    out += expr::ToString(*equations[i]);
    out += '\n';
  }
  return out;
}

}  // namespace gmr::core
