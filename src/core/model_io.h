#ifndef GMR_CORE_MODEL_IO_H_
#define GMR_CORE_MODEL_IO_H_

#include <string>
#include <vector>

#include "expr/ast.h"
#include "expr/parser.h"

namespace gmr::core {

/// A revised model ready for persistence: equations plus the calibrated
/// constant-parameter values (named per the symbol table used to save).
struct SavedModel {
  std::vector<expr::ExprPtr> equations;
  std::vector<double> parameters;
  /// Names that appeared on `param` lines when loading (empty after manual
  /// construction). Lets gmr_lint distinguish "declared but dead" from
  /// slots the file never mentioned.
  std::vector<std::string> declared_parameters;
};

/// Serializes a model to a small line-oriented text format:
///
///   # gmr-model v1
///   equation <infix expression>
///   param <name> = <value>
///
/// Expressions print through the exact round-tripping printer, so constants
/// survive bit-exactly. Returns false on I/O failure.
bool SaveModel(const std::string& path, const SavedModel& model,
               const std::vector<std::string>& parameter_names);

/// Loads a model saved by SaveModel, resolving identifiers through
/// `symbols`. Parameter values are assigned by name into the slot given by
/// `symbols.parameters`; missing parameters default to 0. Returns false on
/// I/O, parse, or schema errors (diagnostic in *error).
bool LoadModel(const std::string& path, const expr::SymbolTable& symbols,
               SavedModel* model, std::string* error);

}  // namespace gmr::core

#endif  // GMR_CORE_MODEL_IO_H_
