#ifndef GMR_CORE_ANALYSIS_H_
#define GMR_CORE_ANALYSIS_H_

#include <vector>

#include "expr/ast.h"
#include "river/dataset.h"
#include "river/simulate.h"

namespace gmr::core {

/// One candidate model for the ecological analysis: its (simplified)
/// equations and parameter vector.
struct CandidateModel {
  std::vector<expr::ExprPtr> equations;
  std::vector<double> parameters;
};

/// Figure 9 analysis: selectivity of each temporal variable among the best
/// models, split by the sign of its influence on phytoplankton growth
/// (determined by perturbing the variable's series and re-simulating).
struct SelectivityEntry {
  int variable_slot = 0;
  /// Percent of models whose equations reference the variable.
  double selected_pct = 0.0;
  /// Of the selected models, percent whose perturbation response is
  /// positive / negative / negligible. Sums to selected_pct.
  double correlated_pct = 0.0;
  double inversely_correlated_pct = 0.0;
  double uncorrelated_pct = 0.0;
};

struct SelectivityReport {
  std::vector<SelectivityEntry> entries;  // One per analyzed variable slot.
};

/// Analysis knobs.
struct SelectivityConfig {
  /// Relative perturbation applied to a variable's driver series.
  double perturbation = 0.10;
  /// |mean response| below this fraction of the baseline biomass mean
  /// counts as uncorrelated.
  double uncorrelated_threshold = 0.005;
  /// Variable slots to analyze (defaults to the Figure 9 set inside
  /// AnalyzeSelectivity when empty).
  std::vector<int> slots;
  river::SimulationConfig simulation;
};

/// Runs the Figure 9 analysis over `models` on the training period of
/// `dataset`.
SelectivityReport AnalyzeSelectivity(const std::vector<CandidateModel>& models,
                                     const river::RiverDataset& dataset,
                                     const SelectivityConfig& config);

/// Mean relative change of simulated B_Phy when `variable_slot`'s series is
/// scaled by (1 + perturbation) — the perturbation-response statistic behind
/// the correlation classification.
double PerturbationResponse(const CandidateModel& model,
                            const river::RiverDataset& dataset,
                            int variable_slot, double perturbation,
                            const river::SimulationConfig& simulation);

}  // namespace gmr::core

#endif  // GMR_CORE_ANALYSIS_H_
