#include "core/revision_report.h"

#include <cstdio>

namespace gmr::core {
namespace {

void Walk(const tag::Grammar& grammar, const tag::DerivationNode& node,
          bool is_root, int depth, RevisionSummary* summary) {
  const tag::ElementaryTree& elementary =
      tag::ElementaryTreeOf(grammar, node, is_root);
  for (const auto& child : node.children) {
    RevisionEntry entry;
    entry.depth = depth;
    entry.site_label =
        elementary
            .adjoinable_labels()[static_cast<std::size_t>(child.address_index)];
    entry.beta_name = grammar.beta(child.node->tree_index).name();
    entry.lexemes = child.node->lexemes;
    summary->entries.push_back(std::move(entry));
    Walk(grammar, *child.node, /*is_root=*/false, depth + 1, summary);
  }
}

}  // namespace

std::string RevisionSummary::ToString() const {
  std::string out;
  for (const RevisionEntry& entry : entries) {
    out.append(static_cast<std::size_t>(2 * entry.depth), ' ');
    out += entry.site_label;
    out += " <- ";
    out += entry.beta_name;
    if (!entry.lexemes.empty()) {
      out += " (";
      for (std::size_t i = 0; i < entry.lexemes.size(); ++i) {
        if (i > 0) out += ", ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4g", entry.lexemes[i]);
        out += buf;
      }
      out += ')';
    }
    out += '\n';
  }
  return out;
}

RevisionSummary SummarizeRevisions(const tag::Grammar& grammar,
                                   const tag::DerivationNode& root) {
  RevisionSummary summary;
  Walk(grammar, root, /*is_root=*/true, 0, &summary);
  return summary;
}

}  // namespace gmr::core
