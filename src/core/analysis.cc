#include "core/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "river/variables.h"

namespace gmr::core {
namespace {

bool ReferencesSlot(const std::vector<expr::ExprPtr>& equations, int slot) {
  for (const auto& eq : equations) {
    const std::vector<int> slots = expr::ReferencedVariableSlots(*eq);
    if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
      return true;
    }
  }
  return false;
}

std::vector<double> SimulateTraining(
    const CandidateModel& model, const river::RiverDataset& dataset,
    const river::SimulationConfig& simulation) {
  return river::SimulateBPhy(model.equations, model.parameters, dataset, 0,
                             dataset.train_end, dataset.initial_bphy,
                             dataset.initial_bzoo, simulation,
                             /*compiled=*/true);
}

}  // namespace

double PerturbationResponse(const CandidateModel& model,
                            const river::RiverDataset& dataset,
                            int variable_slot, double perturbation,
                            const river::SimulationConfig& simulation) {
  const std::vector<double> baseline =
      SimulateTraining(model, dataset, simulation);

  river::RiverDataset perturbed = dataset;
  auto& series = perturbed.drivers[static_cast<std::size_t>(variable_slot)];
  GMR_CHECK(!series.empty());
  for (double& v : series) v *= 1.0 + perturbation;
  const std::vector<double> response =
      SimulateTraining(model, perturbed, simulation);

  const double base_mean = std::max(Mean(baseline), 1e-9);
  double delta = 0.0;
  for (std::size_t t = 0; t < baseline.size(); ++t) {
    delta += response[t] - baseline[t];
  }
  delta /= static_cast<double>(baseline.size());
  return delta / base_mean;
}

SelectivityReport AnalyzeSelectivity(const std::vector<CandidateModel>& models,
                                     const river::RiverDataset& dataset,
                                     const SelectivityConfig& config) {
  GMR_CHECK(!models.empty());
  std::vector<int> slots = config.slots;
  if (slots.empty()) {
    // The Figure 9 variable set.
    slots = {river::kVlgt, river::kVtmp, river::kVph,
             river::kValk, river::kVcd,  river::kVdo};
  }

  SelectivityReport report;
  const double n = static_cast<double>(models.size());
  for (int slot : slots) {
    SelectivityEntry entry;
    entry.variable_slot = slot;
    int selected = 0;
    int positive = 0;
    int negative = 0;
    int neutral = 0;
    for (const CandidateModel& model : models) {
      if (!ReferencesSlot(model.equations, slot)) continue;
      ++selected;
      const double response = PerturbationResponse(
          model, dataset, slot, config.perturbation, config.simulation);
      if (std::fabs(response) < config.uncorrelated_threshold) {
        ++neutral;
      } else if (response > 0.0) {
        ++positive;
      } else {
        ++negative;
      }
    }
    entry.selected_pct = 100.0 * selected / n;
    entry.correlated_pct = 100.0 * positive / n;
    entry.inversely_correlated_pct = 100.0 * negative / n;
    entry.uncorrelated_pct = 100.0 * neutral / n;
    report.entries.push_back(entry);
  }
  return report;
}

}  // namespace gmr::core
