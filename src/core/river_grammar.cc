#include "core/river_grammar.h"

#include <string>
#include <vector>

#include "core/ext_grammar.h"
#include "river/biology.h"
#include "river/parameters.h"
#include "river/variables.h"

namespace gmr::core {
namespace {

namespace e = gmr::expr;
namespace t = gmr::tag;
namespace r = gmr::river;

std::vector<ExtOperand> Operands(std::vector<int> slots) {
  std::vector<ExtOperand> operands;
  for (int slot : slots) {
    operands.push_back(VariableOperand(slot, r::VariableName(slot)));
  }
  operands.push_back(RandomOperand());
  return operands;
}

/// Builds the seed alpha tree encoding Eqs. (5)-(6): the two equations of
/// the MANUAL process under one system root, with the extensible
/// subprocesses wrapped in their connector symbols.
t::TagNodePtr BuildSeedTree() {
  using K = e::NodeKind;
  const t::Symbol exp = t::kExpSymbol;

  // mu_Phy = {C_UA * f * g * h} Ext3
  t::TagNodePtr mu_phy =
      t::WrapperNode(ConnectorLabel(3), t::FromExpr(r::MuPhy(), exp));
  // gamma_Phy = {C_BRA} Ext5
  t::TagNodePtr gamma_phy =
      t::WrapperNode(ConnectorLabel(5), t::FromExpr(r::GammaPhy(), exp));
  // phi = {C_MFR * lambda_Phy} Ext6 (the grazing-pressure occurrence in
  // dB_Phy/dt).
  t::TagNodePtr phi_eq1 =
      t::WrapperNode(ConnectorLabel(6), t::FromExpr(r::Phi(), exp));

  // dB_Phy/dt = {B_Phy * (mu_Phy - gamma_Phy) - B_Zoo * phi} Ext1
  std::vector<t::TagNodePtr> growth_children;
  growth_children.push_back(std::move(mu_phy));
  growth_children.push_back(std::move(gamma_phy));
  t::TagNodePtr growth =
      t::OperatorNode(exp, K::kSub, std::move(growth_children));
  std::vector<t::TagNodePtr> lhs_children;
  lhs_children.push_back(t::LeafNode(r::Var(r::kBPhy)));
  lhs_children.push_back(std::move(growth));
  t::TagNodePtr lhs = t::OperatorNode(exp, K::kMul, std::move(lhs_children));
  std::vector<t::TagNodePtr> graze_children;
  graze_children.push_back(t::LeafNode(r::Var(r::kBZoo)));
  graze_children.push_back(std::move(phi_eq1));
  t::TagNodePtr graze =
      t::OperatorNode(exp, K::kMul, std::move(graze_children));
  std::vector<t::TagNodePtr> eq1_children;
  eq1_children.push_back(std::move(lhs));
  eq1_children.push_back(std::move(graze));
  t::TagNodePtr eq1 = t::WrapperNode(
      ConnectorLabel(1),
      t::OperatorNode(exp, K::kSub, std::move(eq1_children)));

  // mu_Zoo = {C_UZ * lambda_Phy} Ext7
  t::TagNodePtr mu_zoo =
      t::WrapperNode(ConnectorLabel(7), t::FromExpr(r::MuZoo(), exp));
  // gamma_Zoo = {C_BRZ} Ext8 + C_BMT * phi
  std::vector<t::TagNodePtr> gz_children;
  gz_children.push_back(t::WrapperNode(
      ConnectorLabel(8), t::LeafNode(r::Param(r::kCBRZ))));
  gz_children.push_back(t::FromExpr(
      e::Mul(r::Param(r::kCBMT), r::Phi()), exp));
  t::TagNodePtr gamma_zoo =
      t::OperatorNode(exp, K::kAdd, std::move(gz_children));
  // delta_Zoo = {C_DZ} Ext9
  t::TagNodePtr delta_zoo = t::WrapperNode(
      ConnectorLabel(9), t::LeafNode(r::Param(r::kCDZ)));

  // dB_Zoo/dt = {B_Zoo * (mu_Zoo - (gamma_Zoo + delta_Zoo))} Ext2
  std::vector<t::TagNodePtr> loss_children;
  loss_children.push_back(std::move(gamma_zoo));
  loss_children.push_back(std::move(delta_zoo));
  t::TagNodePtr losses =
      t::OperatorNode(exp, K::kAdd, std::move(loss_children));
  std::vector<t::TagNodePtr> net_children;
  net_children.push_back(std::move(mu_zoo));
  net_children.push_back(std::move(losses));
  t::TagNodePtr net = t::OperatorNode(exp, K::kSub, std::move(net_children));
  std::vector<t::TagNodePtr> eq2_children;
  eq2_children.push_back(t::LeafNode(r::Var(r::kBZoo)));
  eq2_children.push_back(std::move(net));
  t::TagNodePtr eq2 = t::WrapperNode(
      ConnectorLabel(2),
      t::OperatorNode(exp, K::kMul, std::move(eq2_children)));

  // "Multiple equations can be encoded as a single alpha-tree by ...
  // combining them into one alpha-tree under a new, common root node."
  std::vector<t::TagNodePtr> equations;
  equations.push_back(std::move(eq1));
  equations.push_back(std::move(eq2));
  return t::SystemNode(std::move(equations));
}

}  // namespace

RiverPriorKnowledge BuildRiverPriorKnowledge() {
  RiverPriorKnowledge knowledge;
  knowledge.priors = r::RiverParameterPriors();

  knowledge.seed_alpha_index = knowledge.grammar.AddAlphaTree(
      t::ElementaryTree("seed:Eqs(5)-(6)", BuildSeedTree()));

  // Table II.
  AddExtensionBetas(1, e::NodeKind::kAdd,
                    Operands({r::kVcd, r::kVph, r::kValk}),
                    &knowledge.grammar);
  AddExtensionBetas(2, e::NodeKind::kAdd, Operands({r::kVsd}),
                    &knowledge.grammar);
  AddExtensionBetas(3, e::NodeKind::kAdd,
                    Operands({r::kVdo, r::kVph, r::kValk}),
                    &knowledge.grammar);
  for (int ext = 5; ext <= 9; ++ext) {
    AddExtensionBetas(ext, e::NodeKind::kMul, Operands({r::kVtmp}),
                      &knowledge.grammar);
  }

  // "R denotes a random variable between 0 and 1" (Table II).
  knowledge.grammar.SetSlotSpec("R", tag::SlotSpec{0.0, 1.0});
  return knowledge;
}

}  // namespace gmr::core
