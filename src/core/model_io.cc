#include "core/model_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "expr/print.h"

namespace gmr::core {

bool SaveModel(const std::string& path, const SavedModel& model,
               const std::vector<std::string>& parameter_names) {
  GMR_CHECK_EQ(model.parameters.size(), parameter_names.size());
  std::ofstream out(path);
  if (!out) return false;
  out << "# gmr-model v1\n";
  for (const auto& eq : model.equations) {
    out << "equation " << expr::ToString(*eq) << '\n';
  }
  out.precision(17);
  for (std::size_t i = 0; i < model.parameters.size(); ++i) {
    out << "param " << parameter_names[i] << " = " << model.parameters[i]
        << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadModel(const std::string& path, const expr::SymbolTable& symbols,
               SavedModel* model, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  model->equations.clear();
  model->declared_parameters.clear();

  // Parameter vector sized to the largest slot in the symbol table.
  int max_slot = -1;
  for (const auto& [name, slot] : symbols.parameters) {
    max_slot = std::max(max_slot, slot);
  }
  model->parameters.assign(static_cast<std::size_t>(max_slot + 1), 0.0);

  std::string line;
  bool header_seen = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("gmr-model") != std::string::npos) header_seen = true;
      continue;
    }
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "equation") {
      std::string text;
      std::getline(ss, text);
      const expr::ParseResult result = expr::Parse(text, symbols);
      if (!result.ok()) {
        if (error != nullptr) *error = "bad equation: " + result.error;
        return false;
      }
      model->equations.push_back(result.expr);
    } else if (keyword == "param") {
      std::string name;
      std::string equals;
      std::string value_text;
      ss >> name >> equals >> value_text;
      if (equals != "=" || value_text.empty()) {
        if (error != nullptr) *error = "bad param line: " + line;
        return false;
      }
      const auto it = symbols.parameters.find(name);
      if (it == symbols.parameters.end()) {
        if (error != nullptr) *error = "unknown parameter: " + name;
        return false;
      }
      model->parameters[static_cast<std::size_t>(it->second)] =
          std::strtod(value_text.c_str(), nullptr);
      model->declared_parameters.push_back(name);
    } else {
      if (error != nullptr) *error = "unknown keyword: " + keyword;
      return false;
    }
  }
  if (!header_seen) {
    if (error != nullptr) *error = "missing gmr-model header";
    return false;
  }
  if (model->equations.empty()) {
    if (error != nullptr) *error = "no equations in file";
    return false;
  }
  return true;
}

}  // namespace gmr::core
