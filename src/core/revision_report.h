#ifndef GMR_CORE_REVISION_REPORT_H_
#define GMR_CORE_REVISION_REPORT_H_

#include <string>
#include <vector>

#include "tag/derivation.h"
#include "tag/grammar.h"

namespace gmr::core {

/// One applied revision: an adjunction in the derivation tree.
struct RevisionEntry {
  /// Nesting depth (0 = adjoined directly into the seed process).
  int depth = 0;
  /// Label of the site the beta tree adjoined at (e.g. "ExtC1", "ExtE9").
  std::string site_label;
  /// Name of the beta tree (e.g. "conn:ExtC1+V_alk").
  std::string beta_name;
  /// The node's lexeme constants.
  std::vector<double> lexemes;
};

/// Structured summary of the revisions a derivation tree encodes — the
/// "which extension point received what" view used by the ecological
/// analysis of Section IV-E. Entries appear in preorder.
struct RevisionSummary {
  std::vector<RevisionEntry> entries;

  std::size_t num_revisions() const { return entries.size(); }

  /// Multi-line human-readable rendering (indented by nesting depth).
  std::string ToString() const;
};

/// Walks the derivation tree and names every adjunction against `grammar`.
RevisionSummary SummarizeRevisions(const tag::Grammar& grammar,
                                   const tag::DerivationNode& root);

}  // namespace gmr::core

#endif  // GMR_CORE_REVISION_REPORT_H_
