#ifndef GMR_CORE_RIVER_GRAMMAR_H_
#define GMR_CORE_RIVER_GRAMMAR_H_

#include "gp/parameter_prior.h"
#include "tag/grammar.h"

namespace gmr::core {

/// The three kinds of prior knowledge the GMR framework consumes
/// (paper Section III-B3), instantiated for the river task:
///  - plausible processes: the seed alpha tree encoding Eqs. (5)-(6) with
///    extension points Ext1-Ext3, Ext5-Ext9;
///  - plausible revisions: connector/extender beta trees generated from the
///    variable and operator lists of Table II;
///  - parameter priors: Table III means and exploration bounds.
struct RiverPriorKnowledge {
  tag::Grammar grammar;
  gp::ParameterPriors priors;
  int seed_alpha_index = 0;
};

/// Builds the full river prior knowledge. The paper's extension-point
/// numbering (with no Ext4) is preserved:
///   Ext1 on dB_Phy/dt   — connector +, variables {V_cd, V_ph, V_alk, R}
///   Ext2 on dB_Zoo/dt   — connector +, variables {V_sd, R}
///   Ext3 on mu_Phy      — connector +, variables {V_do, V_ph, V_alk, R}
///   Ext5 on gamma_Phy   — connector *, variables {V_tmp, R}
///   Ext6 on phi         — connector *, variables {V_tmp, R}
///   Ext7 on mu_Zoo      — connector *, variables {V_tmp, R}
///   Ext8 on C_BRZ       — connector *, variables {V_tmp, R}
///   Ext9 on delta_Zoo   — connector *, variables {V_tmp, R}
/// Extenders use {+, -, *, /, log, exp} over the same variable lists.
RiverPriorKnowledge BuildRiverPriorKnowledge();

/// Number of extension points (diagnostic).
inline constexpr int kNumExtensionPoints = 8;

}  // namespace gmr::core

#endif  // GMR_CORE_RIVER_GRAMMAR_H_
