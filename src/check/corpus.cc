#include "check/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/grammar_io.h"
#include "common/check.h"
#include "core/model_io.h"
#include "expr/print.h"

namespace gmr::check {
namespace {

/// Value of a "# key: value" header comment, or "" when absent.
std::string HeaderValue(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  std::string line;
  const std::string prefix = "# " + key + ":";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      std::string value = line.substr(prefix.size());
      const auto start = value.find_first_not_of(" \t");
      return start == std::string::npos ? "" : value.substr(start);
    }
    // Headers live before the first non-comment line.
    if (!line.empty() && line[0] != '#') break;
  }
  return "";
}

bool ParseSeed(const std::string& text, std::uint64_t* seed) {
  if (text.empty()) return false;
  std::istringstream in(text);
  return static_cast<bool>(in >> *seed);
}

void ReplayModelFile(const std::string& path, const OracleContext& ctx,
                     ReplayResult* result) {
  const std::string property = HeaderValue(path, "property");
  const ExprOracle oracle = FindExprOracle(property);
  if (oracle == nullptr) {
    ++result->errors;
    result->messages.push_back(path + ": unknown or missing '# property:' (" +
                               property + ")");
    return;
  }
  ExprCase c;
  if (!ParseSeed(HeaderValue(path, "seed"), &c.seed)) {
    ++result->errors;
    result->messages.push_back(path + ": missing '# seed:' header");
    return;
  }
  core::SavedModel model;
  std::string error;
  if (!core::LoadModel(path, SymbolsOf(*ctx.config), &model, &error) ||
      model.equations.empty()) {
    ++result->errors;
    result->messages.push_back(path + ": " +
                               (error.empty() ? "no equations" : error));
    return;
  }
  c.tree = model.equations.front();
  c.parameters = model.parameters;
  c.parameters.resize(
      static_cast<std::size_t>(std::max(ctx.config->num_parameters, 0)), 0.0);
  ++result->files;
  const OracleResult verdict = oracle(c, ctx);
  if (!verdict.ok) {
    ++result->failures;
    result->messages.push_back(path + ": " + property +
                               " still fails: " + verdict.detail);
  }
}

void ReplayGrammarFile(const std::string& path, const OracleContext& ctx,
                       ThreadPool* pool, ReplayResult* result) {
  std::uint64_t seed = 0;
  if (!ParseSeed(HeaderValue(path, "seed"), &seed)) {
    ++result->errors;
    result->messages.push_back(path + ": missing '# seed:' header");
    return;
  }
  tag::Grammar grammar;
  std::string error;
  if (!analysis::LoadGrammarSpec(path, SymbolsOf(*ctx.config), &grammar,
                                 &error)) {
    ++result->errors;
    result->messages.push_back(path + ": " + error);
    return;
  }
  if (grammar.num_alpha_trees() == 0) {
    ++result->errors;
    result->messages.push_back(path + ": grammar has no alpha tree");
    return;
  }
  ++result->files;
  const OracleResult verdict = CheckDerivationDeterministic(
      grammar, /*alpha_index=*/0, /*count=*/8, /*target_size=*/6, seed, pool);
  if (!verdict.ok) {
    ++result->failures;
    result->messages.push_back(path + ": derivation still fails: " +
                               verdict.detail);
  }
}

}  // namespace

std::string WriteCounterexample(
    const std::string& dir, const Counterexample& counterexample,
    const std::vector<std::string>& parameter_names) {
  GMR_CHECK(counterexample.tree != nullptr);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + counterexample.property + "-" +
                           std::to_string(counterexample.seed) + ".gmr";
  std::ofstream out(path);
  if (!out) return "";
  out << "# gmr-model v1\n";
  out << "# property: " << counterexample.property << "\n";
  out << "# seed: " << counterexample.seed << "\n";
  if (!counterexample.detail.empty()) {
    out << "# detail: " << counterexample.detail << "\n";
  }
  out << "equation " << expr::ToString(*counterexample.tree) << "\n";
  char buffer[64];
  for (std::size_t slot = 0; slot < counterexample.parameters.size(); ++slot) {
    const double value = counterexample.parameters[slot];
    if (value == 0.0 || slot >= parameter_names.size()) continue;
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << "param " << parameter_names[slot] << " = " << buffer << "\n";
  }
  out.flush();
  return out ? path : "";
}

ReplayResult ReplayCorpus(const std::string& dir, const OracleContext& ctx,
                          ThreadPool* pool) {
  ReplayResult result;
  GMR_CHECK(ctx.config != nullptr);
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return result;  // Missing directory: nothing to replay.
  std::vector<std::string> models;
  std::vector<std::string> grammars;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (entry.path().extension() == ".gmr") models.push_back(path);
    if (entry.path().extension() == ".gmrg") grammars.push_back(path);
  }
  std::sort(models.begin(), models.end());
  std::sort(grammars.begin(), grammars.end());
  for (const std::string& path : models) {
    ReplayModelFile(path, ctx, &result);
  }
  for (const std::string& path : grammars) {
    ReplayGrammarFile(path, ctx, pool, &result);
  }
  return result;
}

}  // namespace gmr::check
