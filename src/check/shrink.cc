#include "check/shrink.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace gmr::check {
namespace {

void CollectSubtrees(const expr::ExprPtr& node,
                     std::vector<expr::ExprPtr>* out) {
  out->push_back(node);
  for (const expr::ExprPtr& child : node->children()) {
    CollectSubtrees(child, out);
  }
}

/// Rebuilds `node` with the subtree at preorder position `target` replaced.
/// Shares every untouched subtree (Expr is immutable).
expr::ExprPtr ReplaceAt(const expr::ExprPtr& node, std::size_t target,
                        std::size_t& index,
                        const expr::ExprPtr& replacement) {
  const std::size_t position = index++;
  if (position == target) {
    // Advance the index over the replaced subtree so later positions keep
    // their preorder numbering.
    index += node->NodeCount() - 1;
    return replacement;
  }
  if (node->IsLeaf()) return node;
  std::vector<expr::ExprPtr> children;
  children.reserve(node->children().size());
  bool changed = false;
  for (const expr::ExprPtr& child : node->children()) {
    expr::ExprPtr rebuilt = ReplaceAt(child, target, index, replacement);
    changed = changed || rebuilt.get() != child.get();
    children.push_back(std::move(rebuilt));
  }
  if (!changed) return node;
  if (children.size() == 1) {
    return expr::MakeUnary(node->kind(), std::move(children[0]));
  }
  GMR_CHECK_EQ(children.size(), 2u);
  return expr::MakeBinary(node->kind(), std::move(children[0]),
                          std::move(children[1]));
}

/// Replacement candidates for one subtree, simplest first.
std::vector<expr::ExprPtr> CandidatesFor(const expr::ExprPtr& node) {
  std::vector<expr::ExprPtr> candidates;
  if (node->kind() == expr::NodeKind::kConstant) {
    const double v = node->value();
    for (double simpler : {0.0, 1.0, -1.0, std::trunc(v)}) {
      if (std::isfinite(simpler) && simpler != v) {
        candidates.push_back(expr::Constant(simpler));
      }
    }
    return candidates;
  }
  if (node->IsLeaf()) return candidates;  // Slot leaves are already minimal.
  candidates.push_back(expr::Constant(0.0));
  candidates.push_back(expr::Constant(1.0));
  for (const expr::ExprPtr& child : node->children()) {
    candidates.push_back(child);  // Subtree hoisting.
  }
  return candidates;
}

// ------------------------------------------------------ derivations ----

void CollectAllNodes(tag::DerivationNode* node,
                     std::vector<tag::DerivationNode*>* out) {
  out->push_back(node);
  for (auto& child : node->children) {
    CollectAllNodes(child.node.get(), out);
  }
}

}  // namespace

expr::ExprPtr ShrinkExpr(const expr::ExprPtr& root,
                         const ExprPredicate& still_fails, int max_attempts,
                         ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* s = stats != nullptr ? stats : &local;
  expr::ExprPtr current = root;
  std::unordered_set<std::uint64_t> seen{current->StructuralHash()};
  bool progress = true;
  while (progress && s->attempts < max_attempts) {
    progress = false;
    std::vector<expr::ExprPtr> subtrees;
    CollectSubtrees(current, &subtrees);
    for (std::size_t i = 0; i < subtrees.size() && !progress; ++i) {
      for (const expr::ExprPtr& replacement : CandidatesFor(subtrees[i])) {
        std::size_t index = 0;
        const expr::ExprPtr candidate =
            ReplaceAt(current, i, index, replacement);
        if (!seen.insert(candidate->StructuralHash()).second) continue;
        if (s->attempts >= max_attempts) break;
        ++s->attempts;
        if (still_fails(candidate)) {
          current = candidate;
          ++s->accepted;
          progress = true;  // Restart the scan from the smaller tree.
          break;
        }
      }
    }
  }
  return current;
}

tag::DerivationPtr ShrinkDerivation(const tag::Grammar& grammar,
                                    const tag::DerivationNode& root,
                                    const DerivationPredicate& still_fails,
                                    int max_attempts, ShrinkStats* stats) {
  (void)grammar;  // Structure-preserving moves need no grammar lookup.
  ShrinkStats local;
  ShrinkStats* s = stats != nullptr ? stats : &local;
  tag::DerivationPtr current = root.Clone();
  bool progress = true;
  while (progress && s->attempts < max_attempts) {
    progress = false;
    // Leaf deletion, one preorder position at a time. Positions are stable
    // across Clone, so index i addresses the same node in the copy.
    const auto refs = tag::CollectNodeRefs(current.get());
    for (std::size_t i = 0; i < refs.size() && !progress; ++i) {
      if (!refs[i].node()->children.empty()) continue;
      if (s->attempts >= max_attempts) break;
      tag::DerivationPtr candidate = current->Clone();
      const auto candidate_refs = tag::CollectNodeRefs(candidate.get());
      auto& siblings = candidate_refs[i].parent->children;
      siblings.erase(siblings.begin() +
                     static_cast<std::ptrdiff_t>(candidate_refs[i].child_index));
      ++s->attempts;
      if (still_fails(*candidate)) {
        current = std::move(candidate);
        ++s->accepted;
        progress = true;
      }
    }
    if (progress) continue;
    // Lexeme truncation toward simpler constants.
    std::vector<tag::DerivationNode*> nodes;
    CollectAllNodes(current.get(), &nodes);
    // `!progress` must be tested before touching `nodes[n]`: an accepted
    // candidate replaced (and freed) the tree these pointers refer to.
    for (std::size_t n = 0; !progress && n < nodes.size(); ++n) {
      for (std::size_t j = 0; !progress && j < nodes[n]->lexemes.size(); ++j) {
        const double v = nodes[n]->lexemes[j];
        for (double simpler : {0.0, std::trunc(v)}) {
          if (!std::isfinite(simpler) || simpler == v) continue;
          if (s->attempts >= max_attempts) break;
          tag::DerivationPtr candidate = current->Clone();
          std::vector<tag::DerivationNode*> candidate_nodes;
          CollectAllNodes(candidate.get(), &candidate_nodes);
          candidate_nodes[n]->lexemes[j] = simpler;
          ++s->attempts;
          if (still_fails(*candidate)) {
            current = std::move(candidate);
            ++s->accepted;
            progress = true;
            break;
          }
        }
      }
    }
  }
  return current;
}

}  // namespace gmr::check
