#include "check/fuzz.h"

#include <algorithm>
#include <mutex>

#include "check/shrink.h"
#include "common/check.h"
#include "core/river_grammar.h"

namespace gmr::check {
namespace {

/// One recorded failure, keyed by case index so aggregation over a thread
/// pool can be re-sorted into a deterministic order.
struct RecordedFailure {
  std::uint64_t index = 0;
  std::string detail;
  std::string written_path;
};

struct PropertyState {
  std::string name;
  ExprOracle oracle = nullptr;
  std::uint64_t cases = 0;
  std::vector<RecordedFailure> failures;
};

bool MatchesFilter(const std::string& name, const std::string& filter) {
  return filter.empty() || name.find(filter) != std::string::npos;
}

}  // namespace

FuzzReport RunFuzz(const FuzzOptions& options) {
  return RunFuzz(options, RiverGenConfig());
}

FuzzReport RunFuzz(const FuzzOptions& options, const GenConfig& config) {
  OracleContext ctx;
  ctx.config = &config;
  ctx.contexts_per_case = options.contexts_per_case;

  std::vector<PropertyState> properties;
  for (const std::string& name : ExprOracleNames()) {
    if (!MatchesFilter(name, options.filter)) continue;
    properties.push_back({name, FindExprOracle(name), 0, {}});
  }
  const bool run_derivation = MatchesFilter("derivation", options.filter);
  const bool run_ckpt_generation =
      MatchesFilter("ckpt_generation", options.filter);

  const int jit_every = std::max(options.jit_every, 1);
  std::mutex mu;
  const auto task_failures =
      ParallelFor(options.pool, options.iterations, [&](std::size_t i) {
        const std::uint64_t case_seed = CaseSeed(options.seed, i);
        Rng rng(case_seed);
        ExprCase c;
        c.seed = case_seed;
        c.tree = RandomExpr(config, rng);
        c.parameters = RandomParameters(config, rng);
        for (PropertyState& property : properties) {
          // Compiler-invoking oracles are throttled: jit compiles one TU
          // per case, batch_jit one TU per case through its own session.
          const bool is_jit =
              property.name == "jit" || property.name == "batch_jit";
          if (is_jit && i % static_cast<std::size_t>(jit_every) != 0) {
            continue;
          }
          const OracleResult first = property.oracle(c, ctx);
          std::string detail;
          std::string written;
          if (!first.ok) {
            // Shrink while the same oracle keeps failing on the same seed
            // and parameter vector.
            const auto still_fails = [&](const expr::ExprPtr& candidate) {
              ExprCase shrunk = c;
              shrunk.tree = candidate;
              return !property.oracle(shrunk, ctx).ok;
            };
            ExprCase shrunk = c;
            shrunk.tree = ShrinkExpr(c.tree, still_fails,
                                     options.max_shrink_attempts, nullptr);
            detail = property.oracle(shrunk, ctx).detail;
            if (detail.empty()) detail = first.detail;
            if (!options.corpus_dir.empty()) {
              Counterexample counterexample;
              counterexample.property = property.name;
              counterexample.seed = case_seed;
              counterexample.tree = shrunk.tree;
              counterexample.parameters = shrunk.parameters;
              counterexample.detail = detail;
              written = WriteCounterexample(options.corpus_dir, counterexample,
                                            config.parameter_names);
            }
          }
          std::lock_guard<std::mutex> lock(mu);
          ++property.cases;
          if (!first.ok) {
            property.failures.push_back({i, detail, written});
          }
        }
      });
  GMR_CHECK(task_failures.empty());

  FuzzReport report;
  for (PropertyState& property : properties) {
    std::sort(property.failures.begin(), property.failures.end(),
              [](const RecordedFailure& a, const RecordedFailure& b) {
                return a.index < b.index;
              });
    PropertyReport row;
    row.name = property.name;
    row.cases = property.cases;
    row.failures = property.failures.size();
    if (!property.failures.empty()) {
      row.first_failure = property.failures.front().detail;
    }
    for (const RecordedFailure& failure : property.failures) {
      if (!failure.written_path.empty()) {
        row.written.push_back(failure.written_path);
      }
    }
    report.total_cases += row.cases;
    report.total_failures += row.failures;
    report.properties.push_back(std::move(row));
  }

  // The population-level oracles spawn whole generations (and use the pool
  // themselves), so they run serially over their subsampled indices —
  // nesting ParallelFor inside a pool worker would deadlock the single-job
  // pool.
  if ((run_derivation || run_ckpt_generation) && options.iterations > 0) {
    const core::RiverPriorKnowledge knowledge =
        core::BuildRiverPriorKnowledge();
    const auto every =
        static_cast<std::uint64_t>(std::max(options.derivation_every, 1));
    struct PopulationOracle {
      const char* name;
      bool enabled;
      OracleResult (*check)(const tag::Grammar&, int, std::size_t,
                            std::size_t, std::uint64_t, ThreadPool*);
    };
    const PopulationOracle population_oracles[] = {
        {"derivation", run_derivation, CheckDerivationDeterministic},
        {"ckpt_generation", run_ckpt_generation, CheckGenerationRoundTrip},
    };
    for (const PopulationOracle& oracle : population_oracles) {
      if (!oracle.enabled) continue;
      PropertyReport row;
      row.name = oracle.name;
      for (std::uint64_t i = 0; i < options.iterations; i += every) {
        const std::uint64_t case_seed = CaseSeed(options.seed, i);
        ++row.cases;
        const OracleResult verdict = oracle.check(
            knowledge.grammar, knowledge.seed_alpha_index, /*count=*/4,
            /*target_size=*/8, case_seed, options.pool);
        if (!verdict.ok) {
          ++row.failures;
          if (row.first_failure.empty()) row.first_failure = verdict.detail;
        }
      }
      report.total_cases += row.cases;
      report.total_failures += row.failures;
      report.properties.push_back(std::move(row));
    }
  }
  return report;
}

}  // namespace gmr::check
