#include "check/gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "river/domains.h"
#include "river/parameters.h"
#include "river/variables.h"
#include "tag/generate.h"

namespace gmr::check {
namespace {

/// The operator sets the generator draws from — the full expression
/// language, including the min/max and unary operators of the expert model
/// terms (Table II plus Eqs. (1)-(2)).
constexpr expr::NodeKind kBinaryKinds[] = {
    expr::NodeKind::kAdd, expr::NodeKind::kSub, expr::NodeKind::kMul,
    expr::NodeKind::kDiv, expr::NodeKind::kMin, expr::NodeKind::kMax,
};
constexpr expr::NodeKind kUnaryKinds[] = {
    expr::NodeKind::kNeg, expr::NodeKind::kLog, expr::NodeKind::kExp,
};

expr::ExprPtr RandomLeaf(const GenConfig& config, Rng& rng) {
  const bool want_constant =
      rng.Bernoulli(config.constant_probability) ||
      (config.num_variables <= 0 && config.num_parameters <= 0);
  if (want_constant) {
    // Mix magnitudes so protected-operator edge cases (tiny denominators,
    // large exp arguments) are actually reachable.
    const double dice = rng.Uniform();
    if (dice < 0.70) return expr::Constant(rng.Uniform(-5.0, 5.0));
    if (dice < 0.85) return expr::Constant(rng.Uniform(-1e-8, 1e-8));
    return expr::Constant(rng.Uniform(-1e8, 1e8));
  }
  const int total = config.num_variables + config.num_parameters;
  const int pick = rng.UniformInt(0, total - 1);
  if (pick < config.num_variables) {
    const auto slot = pick;
    std::string name;
    if (slot < static_cast<int>(config.variable_names.size())) {
      name = config.variable_names[static_cast<std::size_t>(slot)];
    }
    return expr::Variable(slot, std::move(name));
  }
  const int slot = pick - config.num_variables;
  std::string name;
  if (slot < static_cast<int>(config.parameter_names.size())) {
    name = config.parameter_names[static_cast<std::size_t>(slot)];
  }
  return expr::Parameter(slot, std::move(name));
}

expr::ExprPtr RandomExprAtDepth(const GenConfig& config, int depth, Rng& rng) {
  if (depth <= 1 || rng.Bernoulli(config.leaf_probability)) {
    return RandomLeaf(config, rng);
  }
  if (rng.Bernoulli(config.unary_probability)) {
    const auto kind = kUnaryKinds[rng.UniformInt(
        0, static_cast<int>(std::size(kUnaryKinds)) - 1)];
    return expr::MakeUnary(kind, RandomExprAtDepth(config, depth - 1, rng));
  }
  const auto kind = kBinaryKinds[rng.UniformInt(
      0, static_cast<int>(std::size(kBinaryKinds)) - 1)];
  return expr::MakeBinary(kind, RandomExprAtDepth(config, depth - 1, rng),
                          RandomExprAtDepth(config, depth - 1, rng));
}

}  // namespace

GenConfig RiverGenConfig() {
  GenConfig config;
  config.num_variables = river::kNumVariables;
  config.num_parameters = river::kNumParameters;
  config.domains = river::LintDomains();
  config.priors = river::RiverParameterPriors();
  config.variable_names = river::VariableNames();
  for (int slot = 0; slot < river::kNumParameters; ++slot) {
    config.parameter_names.emplace_back(river::ParameterName(slot));
  }
  return config;
}

expr::SymbolTable SymbolsOf(const GenConfig& config) {
  expr::SymbolTable symbols;
  for (std::size_t slot = 0; slot < config.variable_names.size(); ++slot) {
    symbols.variables[config.variable_names[slot]] = static_cast<int>(slot);
  }
  for (std::size_t slot = 0; slot < config.parameter_names.size(); ++slot) {
    symbols.parameters[config.parameter_names[slot]] = static_cast<int>(slot);
  }
  return symbols;
}

std::uint64_t CaseSeed(std::uint64_t run_seed, std::uint64_t index) {
  // SplitMix64 finalizer over the (seed, index) pair. Any bit flip in
  // either input decorrelates the whole output, so neighboring cases do
  // not share random streams.
  std::uint64_t z = run_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SampleInterval(const analysis::Interval& interval, Rng& rng) {
  double lo = interval.lo;
  double hi = interval.hi;
  if (!std::isfinite(lo)) lo = -GenConfig::kUnboundedSpan;
  if (!std::isfinite(hi)) hi = GenConfig::kUnboundedSpan;
  if (lo > hi) lo = hi;  // Clamps can cross for one-sided huge intervals.
  if (lo == hi) return lo;
  return rng.Uniform(lo, hi);
}

expr::ExprPtr RandomExpr(const GenConfig& config, Rng& rng) {
  return RandomExprAtDepth(config, std::max(config.max_depth, 1), rng);
}

std::vector<double> RandomParameters(const GenConfig& config, Rng& rng) {
  std::vector<double> values;
  const auto n = static_cast<std::size_t>(std::max(config.num_parameters, 0));
  values.reserve(n);
  if (!config.priors.empty()) {
    GMR_CHECK_EQ(config.priors.size(), n);
    for (const gp::ParameterPrior& prior : config.priors) {
      values.push_back(rng.TruncatedGaussian(prior.mean, prior.InitialSigma(),
                                             prior.lo, prior.hi));
    }
    return values;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    const analysis::Interval interval =
        slot < config.domains.parameters.size()
            ? config.domains.parameters[slot]
            : analysis::Interval::All();
    values.push_back(SampleInterval(interval, rng));
  }
  return values;
}

std::vector<double> RandomVariables(const GenConfig& config, Rng& rng) {
  std::vector<double> values;
  const auto n = static_cast<std::size_t>(std::max(config.num_variables, 0));
  values.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const analysis::Interval interval =
        slot < config.domains.variables.size()
            ? config.domains.variables[slot]
            : analysis::Interval::All();
    values.push_back(SampleInterval(interval, rng));
  }
  return values;
}

std::vector<expr::ExprPtr> GeneratePopulation(const GenConfig& config,
                                              std::size_t count,
                                              std::uint64_t seed,
                                              ThreadPool* pool) {
  std::vector<expr::ExprPtr> population(count);
  const auto failures = ParallelFor(pool, count, [&](std::size_t i) {
    Rng rng(CaseSeed(seed, i));
    population[i] = RandomExpr(config, rng);
  });
  GMR_CHECK(failures.empty());
  return population;
}

std::vector<tag::DerivationPtr> GenerateDerivations(
    const tag::Grammar& grammar, int alpha_index, std::size_t count,
    std::size_t target_size, std::uint64_t seed, ThreadPool* pool) {
  std::vector<tag::DerivationPtr> population(count);
  const auto failures = ParallelFor(pool, count, [&](std::size_t i) {
    Rng rng(CaseSeed(seed, i));
    population[i] = tag::GrowRandom(grammar, alpha_index, target_size, rng);
  });
  GMR_CHECK(failures.empty());
  return population;
}

}  // namespace gmr::check
