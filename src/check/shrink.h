#ifndef GMR_CHECK_SHRINK_H_
#define GMR_CHECK_SHRINK_H_

#include <functional>

#include "expr/ast.h"
#include "tag/derivation.h"
#include "tag/grammar.h"

namespace gmr::check {

/// Counters reported by a shrink run (for logs and tests).
struct ShrinkStats {
  int attempts = 0;  ///< Candidate trees offered to the predicate.
  int accepted = 0;  ///< Candidates that still failed and were kept.
};

/// True when the candidate still exhibits the failure under shrink.
using ExprPredicate = std::function<bool(const expr::ExprPtr&)>;
using DerivationPredicate = std::function<bool(const tag::DerivationNode&)>;

/// Greedily minimizes a failing expression tree while `still_fails` holds.
///
/// Candidate moves, tried smallest-result-first at every node position:
///  - subtree hoisting: replace an operator node by one of its children;
///  - constant simplification: replace any non-trivial subtree by the
///    constants 0 and 1, and round surviving constant literals toward
///    0 / +/-1 / their integer truncation.
/// Each accepted move restarts the scan, so the result is a local minimum:
/// no single remaining move preserves the failure. At most `max_attempts`
/// predicate calls are spent (the predicate typically re-runs an oracle).
expr::ExprPtr ShrinkExpr(const expr::ExprPtr& root,
                         const ExprPredicate& still_fails, int max_attempts,
                         ShrinkStats* stats);

/// Greedily minimizes a failing TAG derivation: repeatedly deletes leaf
/// derivation nodes (never the root) and truncates lexeme values toward
/// their slot lower bound, keeping every change under which `still_fails`
/// holds. The result stays Validate-clean by construction (node deletion
/// and lexeme edits preserve the structural invariants).
tag::DerivationPtr ShrinkDerivation(const tag::Grammar& grammar,
                                    const tag::DerivationNode& root,
                                    const DerivationPredicate& still_fails,
                                    int max_attempts, ShrinkStats* stats);

}  // namespace gmr::check

#endif  // GMR_CHECK_SHRINK_H_
