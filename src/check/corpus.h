#ifndef GMR_CHECK_CORPUS_H_
#define GMR_CHECK_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.h"

namespace gmr::check {

/// A shrunk failing case ready for persistence as a regression reproducer.
struct Counterexample {
  std::string property;  ///< Oracle name ("vm", "roundtrip", ...).
  std::uint64_t seed = 0;
  expr::ExprPtr tree;
  std::vector<double> parameters;
  std::string detail;  ///< Oracle failure text, stored as a comment.
};

/// Writes the counterexample into `dir` as
/// `<property>-<seed>.gmr` — a standard `# gmr-model v1` file (loadable by
/// core::LoadModel and lintable by gmr_lint) with `# property:` and
/// `# seed:` header comments that the replay mode reads back. Parameters
/// equal to zero are omitted (LoadModel defaults them). Returns the file
/// path, or "" on I/O failure.
std::string WriteCounterexample(const std::string& dir,
                                const Counterexample& counterexample,
                                const std::vector<std::string>& parameter_names);

/// Outcome of replaying a corpus directory.
struct ReplayResult {
  int files = 0;     ///< Reproducers found and executed.
  int failures = 0;  ///< Reproducers whose property still fails.
  int errors = 0;    ///< Unreadable/unparseable files.
  std::vector<std::string> messages;  ///< One line per failure/error.
  bool ok() const { return failures == 0 && errors == 0; }
};

/// Replays every reproducer in `dir` (sorted by filename, so output is
/// deterministic): `*.gmr` model files re-run the oracle named by their
/// `# property:` header against the stored tree/parameters/seed; `*.gmrg`
/// grammar specs re-run the derivation-determinism oracle with the stored
/// `# seed:`. A missing or unknown property header is an error. An empty
/// or missing directory replays zero files and is ok.
ReplayResult ReplayCorpus(const std::string& dir, const OracleContext& ctx,
                          ThreadPool* pool);

}  // namespace gmr::check

#endif  // GMR_CHECK_CORPUS_H_
